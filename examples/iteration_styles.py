"""Listing 4 — three ways to iterate a hypergraph in parallel.

The paper shows three C++ iteration idioms over the bi-adjacency
representation: ``std::for_each`` with a parallel execution policy,
``tbb::parallel_for`` over a ``blocked_range``, and ``tbb::parallel_for``
over NWHy's custom ``cyclic_neighbor_range``.  This example is the Python
mirror: the same computation (sum of neighbor IDs per hyperedge) expressed
through each adaptor of the simulated runtime, with identical results and
visibly different load-balance profiles on a skewed input.

Run:  python examples/iteration_styles.py
"""

import numpy as np

from repro.io.datasets import load
from repro.parallel import (
    ParallelRuntime,
    TaskResult,
    blocked_range,
    cyclic_neighbor_range,
    cyclic_range,
)
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import relabel_hyperedges

THREADS = 8


def main() -> None:
    h = BiAdjacency.from_biedgelist(load("orkut-group"))
    # worst case for blocked partitioning: degree-sorted IDs (§III-D)
    h, _ = relabel_hyperedges(h, "descending")
    edges = h.edges
    n = edges.num_vertices()
    expected = np.array([int(edges[e].sum()) for e in range(n)])

    def run(chunks, label: str, with_neighbors: bool) -> np.ndarray:
        rt = ParallelRuntime(num_threads=THREADS, scheduler="static")
        out = np.zeros(n, dtype=np.int64)

        def body(chunk) -> TaskResult:
            work = 0
            if with_neighbors:  # cyclic_neighbor_range yields (ids, hoods)
                ids, hoods = chunk
                for e, hood in zip(ids.tolist(), hoods):
                    out[e] = int(hood.sum())
                    work += hood.size
            else:  # plain ID chunks: fetch neighborhoods from the CSR
                for e in chunk.tolist():
                    hood = edges[e]
                    out[e] = int(hood.sum())
                    work += hood.size
            return TaskResult(None, float(work))

        rt.parallel_for(chunks, body, phase=label)
        phase = rt.ledger.phases[-1]
        print(f"{label:28s} makespan {phase.makespan:10.0f}   "
              f"imbalance {phase.load_imbalance:5.2f}")
        assert np.array_equal(out, expected)
        return out

    print(f"summing neighbor IDs over {n} hyperedges, {THREADS} threads, "
          "degree-sorted (skewed) IDs\n")
    # 1) std::for_each(par_unseq, ...) — no partitioning control:
    #    one contiguous block per thread
    run(blocked_range(n, THREADS), "std::for_each (blocked)", False)
    # 2) tbb::parallel_for(blocked_range(...)) — finer contiguous chunks
    run(blocked_range(n, THREADS * 8), "tbb blocked_range", False)
    # 3) NWHy cyclic_range — strided IDs smooth the skew
    run(cyclic_range(n, THREADS * 8), "NWHy cyclic_range", False)
    # 4) NWHy cyclic_neighbor_range — strided (id, neighborhood) tuples
    run(
        cyclic_neighbor_range(edges, THREADS * 8),
        "NWHy cyclic_neighbor_range",
        True,
    )
    print("\nsame results from every adaptor; cyclic variants balance the "
          "degree-sorted skew (lower imbalance).")


if __name__ == "__main__":
    main()

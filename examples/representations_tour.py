"""Four representations of one hypergraph — the framework's core idea.

Takes one hypergraph through all four representations of §III-B (bipartite
bi-adjacency, adjoin graph, clique expansion, s-line graphs), shows the
matrix views of §II, and demonstrates that exact algorithms agree across
representations while approximations trade fidelity for generality.

Run:  python examples/representations_tour.py
"""

import numpy as np

from repro import NWHypergraph
from repro.structures.matrices import (
    adjoin_adjacency_matrix,
    incidence_matrix,
    overlap_matrix,
)


def main() -> None:
    # The running example of the test suite (4 hyperedges, 9 hypernodes).
    members = [[0, 1, 2], [1, 2, 3], [2, 3, 4, 5, 7, 8], [0, 1, 2, 6]]
    hg = NWHypergraph.from_hyperedge_lists(members, num_nodes=9)

    # -- Representation 1: bipartite, two mutually indexed CSRs -----------
    bi = hg.biadjacency
    print("1) bipartite (two index sets)")
    print(f"   hyperedge incidence rows: {bi.num_hyperedges()}, "
          f"hypernode incidence rows: {bi.num_hypernodes()}")
    print(f"   incidence matrix (9x4):\n{incidence_matrix(bi).toarray().astype(int)}")

    # -- Representation 2: adjoin graph, one consolidated index set --------
    ag = hg.adjoin_graph
    print("\n2) adjoin graph (one index set)")
    print(f"   hyperedges own IDs {list(ag.edge_range())}, "
          f"hypernodes own IDs {list(ag.node_range())}")
    a = adjoin_adjacency_matrix(ag).toarray().astype(int)
    print(f"   A_G is {a.shape[0]}x{a.shape[1]}, symmetric: "
          f"{bool((a == a.T).all())}, zero diagonal blocks: "
          f"{not a[:4, :4].any() and not a[4:, 4:].any()}")

    # exact algorithms agree across representations
    cc_adjoin = hg.connected_components("adjoin")
    cc_bipartite = hg.connected_components("bipartite")
    print(f"   AdjoinCC == HyperCC: "
          f"{np.array_equal(cc_adjoin[0], cc_bipartite[0])}")

    # -- Representation 3: clique expansion ---------------------------------
    ce = hg.clique_expansion()
    print("\n3) clique expansion (hypernode co-occurrence graph)")
    print(f"   {ce.num_vertices()} vertices, {ce.num_edges()} edges "
          "(inclusion structure is lost — the paper's §III-B.3 caveat)")

    # -- Representation 4: s-line graphs ---------------------------------------
    print("\n4) s-line graphs (hyperedge overlap graphs)")
    print(f"   overlap matrix diag = edge sizes: "
          f"{np.diag(overlap_matrix(bi).toarray()).astype(int).tolist()}")
    for s, lg in hg.s_linegraphs([1, 2, 3]).items():
        pairs = list(zip(lg.edgelist.src.tolist(), lg.edgelist.dst.tolist()))
        print(f"   s={s}: edges {pairs}")

    print("\nany graph algorithm runs on the approximations, e.g. "
          "2-line betweenness:",
          hg.s_linegraph(2).s_betweenness_centrality(False).tolist())


if __name__ == "__main__":
    main()

"""The paper's dataset pipeline, end to end (§IV-B).

Table I's social hypergraphs were produced by running community detection
on SNAP graphs; each community became a hyperedge.  This example runs that
exact pipeline on a synthetic social graph and continues into the
framework: build both representations, compare exact CC across them, and
analyze the community overlap structure with s-line graphs.

Run:  python examples/snap_pipeline.py
"""

import numpy as np

from repro import NWHypergraph
from repro.io.pipeline import hypergraph_from_graph_communities
from repro.structures.edgelist import EdgeList


def synthetic_social_graph(
    num_groups: int = 25, group_size: int = 8, bridges: int = 60,
    seed: int = 7,
) -> EdgeList:
    """Dense friend groups plus random cross-group friendships."""
    rng = np.random.default_rng(seed)
    n = num_groups * group_size
    src: list[int] = []
    dst: list[int] = []
    for g in range(num_groups):
        base = g * group_size
        for i in range(group_size):
            for j in range(i + 1, group_size):
                if rng.random() < 0.75:  # dense but not complete
                    src.append(base + i)
                    dst.append(base + j)
    for _ in range(bridges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            src.append(int(u))
            dst.append(int(v))
    # social butterflies: every third group has a member with several
    # friends in the next group — the overlap the expansion step detects
    for g in range(0, num_groups - 1, 3):
        butterfly = g * group_size
        friends = rng.choice(group_size, size=3, replace=False)
        for f in friends:
            src.append(butterfly)
            dst.append((g + 1) * group_size + int(f))
    return EdgeList(src, dst, num_vertices=n)


def main() -> None:
    graph = synthetic_social_graph()
    print(f"input graph: {graph.num_vertices()} people, "
          f"{graph.num_edges()} friendships")

    # §IV-B: community detection -> hypergraph materialization, with
    # overlap expansion (SNAP's ground-truth communities overlap)
    el = hypergraph_from_graph_communities(
        graph, min_size=3, seed=1, expand_overlap=True, min_links=2
    )
    hg = NWHypergraph(el.part0, el.part1,
                      num_edges=el.num_vertices(0),
                      num_nodes=el.num_vertices(1))
    sizes = hg.edge_sizes()
    print(f"materialized hypergraph: {hg.number_of_edges()} communities "
          f"(sizes {int(sizes.min())}..{int(sizes.max())}), "
          f"{hg.number_of_nodes()} members")

    # exact analytics on both representations must agree
    e1, n1 = hg.connected_components("adjoin")
    e2, n2 = hg.connected_components("bipartite")
    assert np.array_equal(e1, e2) and np.array_equal(n1, n2)
    n_comp = np.unique(np.concatenate([e1, n1])).size
    print(f"hypergraph components (exact, both representations): {n_comp}")

    # approximate analytics: which communities overlap?
    for s in (1, 2):
        lg = hg.s_linegraph(s)
        comps = lg.s_connected_components()
        print(f"s={s}: {lg.num_edges()} community pairs sharing >= {s} "
              f"members, {len(comps)} overlap clusters")

    # most central community in the 1-line graph
    lg1 = hg.s_linegraph(1)
    bc = lg1.s_betweenness_centrality()
    top = int(np.argmax(bc))
    print(f"most bridging community: {top} "
          f"(betweenness {bc[top]:.3f}, "
          f"{hg.size(top)} members)")


if __name__ == "__main__":
    main()

"""Strong-scaling study — regenerate one panel of Figures 7 and 8.

Runs the CC and BFS scaling drivers for a chosen dataset on the simulated
runtime and prints the speedup series, exactly as the benchmark harness
does for every dataset.

Run:  python examples/scaling_study.py [dataset]
      (dataset in: com-orkut friendster orkut-group livejournal web rand1)
"""

import sys

from repro.bench.harness import (
    DEFAULT_THREADS,
    fig9_slinegraph,
    strong_scaling_bfs,
    strong_scaling_cc,
)
from repro.bench.reporting import format_fig9, format_scaling


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "com-orkut"

    print("== Figure 7 panel: connected components ==")
    print(format_scaling(strong_scaling_cc(dataset, DEFAULT_THREADS)))

    print("\n== Figure 8 panel: breadth-first search ==")
    print(format_scaling(strong_scaling_bfs(dataset, DEFAULT_THREADS)))

    print("\n== Figure 9 panel: s-line graph construction ==")
    print(format_fig9(fig9_slinegraph(dataset, s=2)))

    # where does the time go? per-phase profile of one CC run
    from repro.algorithms.adjoincc import adjoincc
    from repro.bench.harness import nwhy_runtime
    from repro.io.datasets import load
    from repro.structures.adjoin import AdjoinGraph

    rt = nwhy_runtime(32)
    rt.new_run()
    adjoincc(AdjoinGraph.from_biedgelist(load(dataset)), runtime=rt)
    print(f"\n== AdjoinCC phase profile (t=32, dominant: "
          f"{rt.ledger.dominant_phase()}) ==")
    for name, span, imbalance, tasks in rt.ledger.timeline():
        print(f"  {name:24s} makespan {span:9.0f}  imbalance "
              f"{imbalance:5.2f}  tasks {tasks}")


if __name__ == "__main__":
    main()

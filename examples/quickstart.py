"""Quickstart — the paper's Listing 5, start to finish.

Build a tiny hypergraph from COO incidence arrays, construct its 2-line
graph, and run every s_* query the Python API exposes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NWHypergraph


def main() -> None:
    # Three hyperedges (0, 1, 2), each containing hypernodes {0, 1}.
    row = np.array([0, 1, 2, 0, 1, 2])  # hyperedge IDs
    col = np.array([0, 0, 0, 1, 1, 1])  # hypernode IDs
    weight = np.array([1, 1, 1, 1, 1, 1])

    hg = NWHypergraph(row, col, weight)
    print(f"hypergraph: {hg}")

    # The s-line graph for s=2: hyperedges joined by >= 2 shared nodes.
    s2lg = hg.s_linegraph(s=2, over_edges=True)
    print(f"2-line graph: {s2lg}")

    print("is 2-connected:        ", s2lg.is_s_connected())
    print("s-neighbors of edge 0: ", s2lg.s_neighbors(v=0).tolist())
    print("s-degree of edge 0:    ", s2lg.s_degree(v=0))
    print("s-connected components:",
          [c.tolist() for c in s2lg.s_connected_components()])
    print("s-distance 0 -> 1:     ", s2lg.s_distance(src=0, dest=1))
    print("s-path 0 -> 1:         ", s2lg.s_path(src=0, dest=1))
    print("s-betweenness:         ",
          s2lg.s_betweenness_centrality(normalized=True).tolist())
    print("s-closeness:           ", s2lg.s_closeness_centrality().tolist())
    print("s-harmonic closeness:  ",
          s2lg.s_harmonic_closeness_centrality().tolist())
    print("s-eccentricity:        ", s2lg.s_eccentricity().tolist())

    # Exact computations on the original hypergraph, both representations.
    edge_labels, node_labels = hg.connected_components()
    print("exact CC edge labels:  ", edge_labels.tolist())
    edge_dist, node_dist = hg.bfs(0)  # BFS from hypernode 0
    print("BFS edge distances:    ", edge_dist.tolist())
    print("toplexes:              ", hg.toplexes().tolist())


if __name__ == "__main__":
    main()

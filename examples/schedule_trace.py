"""Schedule tracing — see the simulated timeline in chrome://tracing.

Runs HyperCC on a degree-sorted skewed stand-in under two configurations
(static/blocked vs work-stealing/cyclic), exports both simulated schedules
as Chrome trace JSON, and prints where to look.  Open the files at
``chrome://tracing`` (or https://ui.perfetto.dev) to watch blocked
partitioning starve threads while the cyclic/work-stealing timeline stays
dense — §III-D, as a picture.

Run:  python examples/schedule_trace.py [output_dir]
"""

import sys
from pathlib import Path

from repro.algorithms.hypercc import hypercc
from repro.io.datasets import load
from repro.parallel import ParallelRuntime, export_chrome_trace
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import relabel_hyperedges

THREADS = 8


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    h, _ = relabel_hyperedges(
        BiAdjacency.from_biedgelist(load("orkut-group")), "descending"
    )
    configs = {
        "static_blocked": dict(scheduler="static", partitioner="blocked"),
        "stealing_cyclic": dict(scheduler="work_stealing",
                                partitioner="cyclic"),
    }
    for name, cfg in configs.items():
        rt = ParallelRuntime(num_threads=THREADS, trace=True, **cfg)
        rt.new_run()
        hypercc(h, runtime=rt)
        path = out_dir / f"trace_{name}.json"
        count = export_chrome_trace(rt.ledger, path)
        heaviest = max(rt.ledger.phases, key=lambda p: p.total_work)
        print(f"{name:16s} makespan {rt.makespan:9.0f}  "
              f"imbalance {heaviest.load_imbalance:5.2f}  "
              f"steals {rt.ledger.num_steals:4d}  "
              f"-> {path} ({count} events)")
    print("\nopen the JSON files at chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()

"""s-measure sweep — hypernetwork science à la Aksoy et al. [2].

The paper's approximate-analytics story: sweep the connection-strength
parameter s and watch the hypergraph's structure resolve — weak incidental
overlaps dissolve first, leaving the strongly-bound cores.  One ensemble
pass computes every s-line graph; the report aggregates components,
distances, clustering and density per s.

Run:  python examples/s_measure_sweep.py [dataset]
"""

import sys

from repro.core.smetrics import s_metrics_report
from repro.io.datasets import load
from repro.structures.biadjacency import BiAdjacency


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "com-orkut"
    h = BiAdjacency.from_biedgelist(load(dataset))
    print(f"dataset: {dataset} ({h.num_hyperedges()} hyperedges, "
          f"{h.num_hypernodes()} hypernodes)")
    print()

    s_values = [1, 2, 3, 4, 6, 8]
    reports = s_metrics_report(h, s_values)
    header = (f"{'s':>3} {'edges':>9} {'comps':>6} {'largest':>8} "
              f"{'diam':>5} {'avg dist':>9} {'clust':>6} {'isolated':>9}")
    print(header)
    print("-" * len(header))
    for s in s_values:
        r = reports[s]
        print(f"{r.s:>3} {r.num_edges:>9} {r.num_components:>6} "
              f"{r.largest_component:>8} {r.diameter_largest:>5} "
              f"{r.avg_distance_largest:>9.2f} {r.mean_clustering:>6.3f} "
              f"{r.num_isolated:>9}")

    print()
    print("reading the sweep:")
    print(" * edges shrink monotonically — only strong overlaps survive;")
    print(" * isolated hyperedges grow — weakly-tied groups drop out;")
    print(" * clustering typically RISES with s: what survives is the")
    print("   densely inter-overlapping cores of the hypergraph.")


if __name__ == "__main__":
    main()

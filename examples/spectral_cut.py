"""Spectral partitioning + null model — structure beyond degrees.

Two classical hypergraph analyses the framework enables ([29] and the
hypernetwork-science null-model workflow):

1. plant two overlapping community blocks, cut the hypergraph with the
   Fiedler vector of Zhou's normalized Laplacian, and recover the blocks;
2. rewire the hypergraph with the degree-preserving configuration model
   and show the planted cut quality vanishes — the structure lived in the
   wiring, not the degree sequences.

Run:  python examples/spectral_cut.py
"""

import numpy as np

from repro.core.spectral import fiedler_vector, hypergraph_laplacian, \
    spectral_bipartition
from repro.io.generators import configuration_model_hypergraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList


def planted_two_blocks(
    block: int = 40, edges_per_block: int = 60, bridges: int = 3,
    seed: int = 4,
) -> BiAdjacency:
    """Two node blocks, hyperedges mostly within a block, few bridges."""
    rng = np.random.default_rng(seed)
    rows: list[int] = []
    cols: list[int] = []
    e = 0
    for base in (0, block):
        for _ in range(edges_per_block):
            members = base + rng.choice(block, size=4, replace=False)
            rows += [e] * 4
            cols += members.tolist()
            e += 1
    for _ in range(bridges):
        members = np.concatenate([
            rng.choice(block, size=2, replace=False),
            block + rng.choice(block, size=2, replace=False),
        ])
        rows += [e] * 4
        cols += members.tolist()
        e += 1
    return BiAdjacency.from_biedgelist(
        BiEdgeList(rows, cols, n0=e, n1=2 * block)
    )


def cut_quality(h: BiAdjacency, labels: np.ndarray) -> float:
    """Fraction of hyperedges fully inside one side of the cut."""
    inside = sum(
        1 for e in range(h.num_hyperedges())
        if np.unique(labels[h.members(e)]).size == 1
    )
    return inside / h.num_hyperedges()


def main() -> None:
    block = 40
    h = planted_two_blocks(block=block)
    lam, _ = fiedler_vector(hypergraph_laplacian(h))
    labels = spectral_bipartition(h)
    accuracy = max(
        (labels[:block] == 0).mean() / 2 + (labels[block:] == 1).mean() / 2,
        (labels[:block] == 1).mean() / 2 + (labels[block:] == 0).mean() / 2,
    )
    print(f"planted hypergraph: {h.num_hyperedges()} hyperedges over "
          f"{h.num_hypernodes()} nodes")
    print(f"algebraic connectivity lambda_2 = {lam:.4f}")
    print(f"Fiedler cut recovers the blocks with accuracy {accuracy:.2f}")
    print(f"hyperedges uncut: {cut_quality(h, labels):.2f}")

    # degree-preserving rewiring destroys the planted structure
    null_el = configuration_model_hypergraph(
        h.edge_sizes(), h.node_degrees(), seed=9
    )
    h_null = BiAdjacency.from_biedgelist(null_el)
    labels_null = spectral_bipartition(h_null)
    print("\nafter configuration-model rewiring (same degree sequences):")
    lam_null, _ = fiedler_vector(hypergraph_laplacian(h_null))
    print(f"algebraic connectivity lambda_2 = {lam_null:.4f} "
          "(no weak cut any more)")
    print(f"hyperedges uncut by the best spectral cut: "
          f"{cut_quality(h_null, labels_null):.2f} "
          "(the planted separability is gone)")


if __name__ == "__main__":
    main()

"""A service session — resident hypergraphs behind a cached query engine.

``repro.service`` keeps named hypergraphs loaded in a ``HypergraphStore``
and answers JSON query dicts through a ``QueryEngine`` whose s-line
graphs live in a byte-budgeted LRU cache.  The cache is *s-monotone*:
because every construction stores overlap counts as edge weights,
``L_s`` can be derived from a cached ``L_{s'}`` (s' < s) by filtering —
no second construction pass.  The same engine serves sockets via
``AnalyticsServer`` or the asyncio front door; here we drive it
in process through an ``InProcessSession``.

Run:  python examples/service_session.py
"""

from repro.service import InProcessSession, QueryEngine, SLineGraphCache


def main() -> None:
    engine = QueryEngine(cache=SLineGraphCache(budget_bytes=64 * 1024 * 1024))
    client = InProcessSession(engine)

    # 1. register a resident dataset (Table I stand-in by name)
    card = client.query("register", name="orkut", source="orkut-group")["result"]
    print(f"registered 'orkut': {card['num_edges']} hyperedges, "
          f"{card['num_nodes']} hypernodes")

    # 2. warm the cache: s=1 is a cold build, s=2..4 derive from it
    served = client.query("warm", dataset="orkut", s_values=[1, 2, 3, 4])
    print(f"warm-up paths: {served['result']}")

    # 3. a batch of point queries, dispatched on the parallel runtime
    batch = client.batch([
        {"op": "s_degree", "dataset": "orkut", "s": 2, "v": 0},
        {"op": "s_connected_components", "dataset": "orkut", "s": 3},
        {"op": "s_distance", "dataset": "orkut", "s": 2, "src": 0, "dst": 5},
        {"op": "s_pagerank", "dataset": "orkut", "s": 1},
    ])
    for resp in batch:
        result = resp["result"]
        shown = f"len {len(result)}" if isinstance(result, list) else result
        print(f"  {resp['op']:24s} via {resp['via']:13s} -> {shown}")

    # 4. the metrics op exposes the session's counters
    m = client.metrics()["result"]
    cache = m["cache"]
    print(f"\ncache: {cache['hits']} hits, {cache['derives']} derives, "
          f"{cache['misses']} misses, "
          f"{cache['current_bytes']} / {cache['budget_bytes']} bytes")
    for op, c in sorted(m["ops"].items()):
        print(f"  {op:24s} x{c['count']}  mean {c['mean_ms']:.2f} ms")


if __name__ == "__main__":
    main()

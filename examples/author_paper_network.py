"""Collaboration analysis — the paper's motivating author–paper scenario.

The introduction motivates hypergraphs with author–paper relationships: a
three-author paper is one hyperedge over three author vertices, which no
pairwise graph encodes faithfully.  This example builds a synthetic
collaboration hypergraph (papers = hyperedges, authors = hypernodes) and
uses s-line graphs to answer questions graphs cannot:

* which papers share at least s authors (s-line components = research
  threads held together by overlapping author teams);
* which papers bridge threads (s-betweenness);
* how tight each thread is (s-diameter, s-eccentricity).

Run:  python examples/author_paper_network.py
"""

import numpy as np

from repro import NWHypergraph
from repro.io.generators import community_hypergraph


def build_collaboration_hypergraph(seed: int = 42) -> NWHypergraph:
    """120 papers over 150 authors, written by overlapping groups."""
    el = community_hypergraph(
        num_communities=120,  # papers
        num_nodes=150,  # authors
        mean_community_size=4.0,  # authors per paper
        locality=0.85,  # research groups reuse co-authors
        seed=seed,
    )
    return NWHypergraph(
        el.part0, el.part1,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


def main() -> None:
    hg = build_collaboration_hypergraph()
    print(f"collaboration network: {hg.number_of_edges()} papers, "
          f"{hg.number_of_nodes()} authors")
    sizes = hg.edge_sizes()
    print(f"authors per paper: mean {sizes.mean():.1f}, max {sizes.max()}")

    # Research threads at increasing collaboration strength.
    for s in (1, 2, 3):
        lg = hg.s_linegraph(s)
        comps = lg.s_connected_components()
        largest = max((len(c) for c in comps), default=0)
        print(f"s={s}: {lg.num_edges():4d} paper pairs sharing >= {s} "
              f"authors; {len(comps):3d} threads, largest {largest}")

    # Bridging papers: high 2-betweenness = connecting author communities.
    lg2 = hg.s_linegraph(2)
    bc = lg2.s_betweenness_centrality(normalized=True)
    top = np.argsort(bc)[::-1][:5]
    print("\ntop bridging papers (2-line betweenness):")
    for p in top:
        if bc[p] == 0:
            break
        authors = hg.edge_incidence(int(p)).tolist()
        print(f"  paper {int(p):3d} (authors {authors}): bc={bc[p]:.4f}")

    # Prolific authors via the dual: papers-per-author.
    degrees = hg.degrees()
    busiest = np.argsort(degrees)[::-1][:5]
    print("\nmost prolific authors:")
    for a in busiest:
        print(f"  author {int(a):3d}: {int(degrees[a])} papers")

    # Collaboration distance between two specific papers.
    live = lg2.non_isolated()
    if live.size >= 2:
        a, b = int(live[0]), int(live[-1])
        d = lg2.s_distance(a, b)
        path = lg2.s_path(a, b)
        print(f"\n2-walk distance paper {a} -> paper {b}: {d} "
              f"(via {path})")


if __name__ == "__main__":
    main()

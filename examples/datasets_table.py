"""Regenerate Table I over the stand-in datasets, next to the paper's.

Run:  python examples/datasets_table.py
"""

from repro.bench.reporting import format_table1
from repro.io.datasets import PAPER_TABLE1, table1


def main() -> None:
    rows = table1()
    print("Table I — measured over the seeded stand-ins:")
    print(format_table1(rows))
    print("\nTable I — as published (original scale):")
    print(format_table1([PAPER_TABLE1[r.name] for r in rows]))
    print(
        "\nStand-ins preserve the |V|:|E| balance, average degrees and "
        "skew class\nof each input at ~1/400 – 1/20000 scale (DESIGN.md §2)."
    )


if __name__ == "__main__":
    main()

"""Lazy s-line queries — answering questions without building L_s(H).

The s-line graph of a dense hypergraph can dwarf the hypergraph itself
(the same blow-up the paper describes for clique expansion).  When all you
need is one answer — "are these two communities 2-connected?" — the lazy
traversal in ``repro.algorithms.s_traversal`` generates line-graph
neighborhoods on the fly and stores nothing beyond the visited set.

Run:  python examples/lazy_queries.py
"""

import numpy as np

from repro.algorithms.s_traversal import (
    s_bfs_lazy,
    s_connected_components_lazy,
    s_distance_lazy,
    s_neighbors_lazy,
)
from repro.io.datasets import load
from repro.linegraph import slinegraph_hashmap
from repro.structures.biadjacency import BiAdjacency


def main() -> None:
    h = BiAdjacency.from_biedgelist(load("orkut-group"))
    print(f"hypergraph: {h}")

    s = 2
    # point query: neighbors of one hyperedge, no construction
    nbrs = s_neighbors_lazy(h, 0, s)
    print(f"\nhyperedge 0 has {nbrs.size} {s}-neighbors "
          f"(first few: {nbrs[:8].tolist()})")

    # point query: s-distance with early exit
    target = int(nbrs[0]) if nbrs.size else 1
    d = s_distance_lazy(h, 0, target, s)
    print(f"{s}-distance from 0 to {target}: {d}")

    # single-source: lazy BFS over the implicit line graph
    dist = s_bfs_lazy(h, 0, s)
    print(f"lazy {s}-BFS from hyperedge 0 reaches "
          f"{int((dist >= 0).sum())} hyperedges "
          f"(max distance {int(dist.max())})")

    # global: component labels, still without materializing
    labels = s_connected_components_lazy(h, s)
    n_comp = np.unique(labels).size
    print(f"lazy {s}-components: {n_comp} components")

    # sanity: identical to the materialized route
    lg = slinegraph_hashmap(h, s)
    print(f"\nmaterialized L_{s}(H) has {lg.num_edges()} edges "
          f"({lg.num_edges() / max(h.num_incidences(), 1):.1f}x the "
          "hypergraph's incidence count) — the memory the lazy path avoids")


if __name__ == "__main__":
    main()

"""CLI tests (python -m repro ...), run in-process via main()."""

import numpy as np
import pytest

from repro.cli import main
from repro.io.mmio import read_mm, write_mm

from .conftest import make_biedgelist, PAPER_MEMBERS


@pytest.fixture
def mtx(tmp_path):
    path = tmp_path / "example.mtx"
    write_mm(path, make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return str(path)


def run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestStats:
    def test_basic(self, capsys, mtx):
        out = run(capsys, "stats", mtx)
        assert "hypernodes      9" in out
        assert "hyperedges      4" in out
        assert "max edge size   6" in out

    def test_unsupported_format(self, tmp_path):
        bad = tmp_path / "x.parquet"
        bad.write_text("")
        with pytest.raises(SystemExit, match="unsupported input"):
            main(["stats", str(bad)])


class TestConvert:
    def test_mtx_to_hygra_roundtrip(self, capsys, mtx, tmp_path):
        hygra = tmp_path / "out.hygra"
        back = tmp_path / "back.mtx"
        run(capsys, "convert", mtx, str(hygra))
        run(capsys, "convert", str(hygra), str(back))
        assert set(read_mm(back)) == set(read_mm(mtx))

    def test_unsupported_output(self, mtx, tmp_path):
        with pytest.raises(SystemExit, match="unsupported output"):
            main(["convert", mtx, str(tmp_path / "x.bin")])


class TestAlgorithms:
    def test_cc(self, capsys, mtx):
        out = run(capsys, "cc", mtx)
        assert "components      1" in out

    def test_cc_bipartite(self, capsys, mtx):
        out = run(capsys, "cc", mtx, "--representation", "bipartite")
        assert "components      1" in out

    def test_bfs(self, capsys, mtx):
        out = run(capsys, "bfs", mtx, "--source", "2")
        assert "reached         4 hyperedges, 9 hypernodes" in out
        assert "max distance    2" in out

    def test_bfs_edge_source(self, capsys, mtx):
        out = run(capsys, "bfs", mtx, "--source", "0", "--edge")
        assert "reached         4 hyperedges" in out

    def test_slinegraph(self, capsys, mtx, tmp_path):
        out_path = tmp_path / "lg.mtx"
        out = run(capsys, "slinegraph", mtx, "-s", "2", "-o", str(out_path))
        assert "s=2 line graph: 4 vertices, 4 edges" in out
        lg = read_mm(out_path)
        assert len(lg) == 4

    def test_slinegraph_algorithm_choice(self, capsys, mtx):
        out = run(capsys, "slinegraph", mtx, "-s", "3",
                  "--algorithm", "queue_intersection")
        assert "4 vertices, 1 edges" in out

    def test_metrics(self, capsys, mtx):
        out = run(capsys, "metrics", mtx, "-s", "1", "2")
        assert "s=1:" in out and "s=2:" in out
        assert "components" in out

    def test_dot_export(self, capsys, mtx, tmp_path):
        out = run(capsys, "dot", mtx)
        assert out.startswith("graph hypergraph {")
        dot_path = tmp_path / "lg.dot"
        out = run(capsys, "dot", mtx, "--linegraph", "-s", "2",
                  "-o", str(dot_path))
        assert "wrote" in out
        assert dot_path.read_text().startswith("graph slinegraph_s2")

    def test_csv_roundtrip(self, capsys, mtx, tmp_path):
        csv_path = tmp_path / "h.csv"
        back = tmp_path / "h2.mtx"
        run(capsys, "convert", mtx, str(csv_path))
        run(capsys, "convert", str(csv_path), str(back))
        assert read_mm(back).num_edges() == read_mm(mtx).num_edges()

    def test_metrics_table(self, capsys, mtx):
        out = run(capsys, "metrics", mtx, "-s", "1", "2", "--table")
        assert "avg dist" in out and "s=2" in out

    def test_toplex(self, capsys, mtx):
        out = run(capsys, "toplex", mtx, "-v")
        assert "toplexes        3 / 4" in out
        assert "edge 1:" in out


class TestUpdate:
    def _ops_file(self, tmp_path, payload):
        import json

        path = tmp_path / "ops.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_single_batch_with_output(self, capsys, mtx, tmp_path):
        import json

        ops = self._ops_file(
            tmp_path,
            [
                {"op": "add_edge", "members": [0, 8]},
                {"op": "remove_edge", "edge": 1},
            ],
        )
        out_path = tmp_path / "updated.mtx"
        out = run(capsys, "update", mtx, "--ops", ops, "-o", str(out_path))
        summary = json.loads(out)
        assert summary["version"] == 1
        assert summary["num_edges"] == 5  # tombstone keeps the ID space
        assert summary["batches"][0]["new_edges"] == [4]
        el = read_mm(out_path)
        assert el.num_vertices(0) == 5

    def test_multiple_batches_with_maintained_linegraphs(
        self, capsys, mtx, tmp_path
    ):
        import json

        ops = self._ops_file(
            tmp_path,
            [
                [{"op": "add_edge", "members": [0, 8]}],
                [{"op": "add_incidence", "edge": 0, "node": 7}],
            ],
        )
        out = run(capsys, "update", mtx, "--ops", ops, "-s", "1", "2")
        summary = json.loads(out)
        assert [b["version"] for b in summary["batches"]] == [1, 2]
        for batch in summary["batches"]:
            assert set(batch["linegraphs"]) == {"1", "2"}
            assert set(batch["linegraphs"].values()) <= {"patch", "rebuild"}

    def test_inapplicable_batch_exits(self, mtx, tmp_path):
        ops = self._ops_file(tmp_path, [{"op": "remove_edge", "edge": 99}])
        with pytest.raises(SystemExit, match="batch 0"):
            main(["update", mtx, "--ops", ops])

    def test_bad_ops_file(self, mtx, tmp_path):
        bad = tmp_path / "ops.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read ops file"):
            main(["update", mtx, "--ops", str(bad)])

    def test_empty_ops_rejected(self, mtx, tmp_path):
        ops = self._ops_file(tmp_path, [])
        with pytest.raises(SystemExit, match="non-empty"):
            main(["update", mtx, "--ops", ops])


class TestGenerateAndTable:
    def test_generate_uniform(self, capsys, tmp_path):
        out_path = tmp_path / "gen.mtx"
        out = run(capsys, "generate", "uniform", "-o", str(out_path),
                  "--edges", "20", "--nodes", "30", "--mean-size", "4",
                  "--seed", "1")
        assert "wrote" in out
        el = read_mm(out_path)
        assert el.num_vertices(0) == 20

    def test_generate_standin(self, capsys, tmp_path):
        out_path = tmp_path / "r.hygra"
        run(capsys, "generate", "rand1", "-o", str(out_path))
        assert out_path.exists()

    def test_table1(self, capsys):
        out = run(capsys, "table1")
        assert "rand1" in out and "com-orkut" in out

    def test_trace_export(self, capsys, mtx, tmp_path):
        out_path = tmp_path / "t.json"
        out = run(capsys, "trace", mtx, "-o", str(out_path),
                  "--algorithm", "cc", "--threads", "4")
        assert "wrote" in out
        import json

        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]

    def test_bench_figures(self, capsys):
        out = run(capsys, "bench", "--figure", "7",
                  "--dataset", "orkut-group", "--threads", "1", "4")
        assert "AdjoinCC" in out and "t=4" in out
        out = run(capsys, "bench", "--figure", "9",
                  "--dataset", "rand1", "--threads", "8", "-s", "2")
        assert "Hashmap" in out

    def test_bench_json_surfaces_backend(self, capsys):
        import json

        out = run(capsys, "bench", "--figure", "7",
                  "--dataset", "orkut-group", "--threads", "1", "2",
                  "--backend", "threaded", "--workers", "2", "--json")
        doc = json.loads(out)
        assert doc["backend"] == "threaded" and doc["workers"] == 2
        assert doc["results"][0]["points"][0]["threads"] == 1


class TestJsonOutput:
    """--json must emit valid JSON: no numpy scalars may leak through."""

    def test_stats_json(self, capsys, mtx):
        import json

        doc = json.loads(run(capsys, "stats", mtx, "--json"))
        assert doc["num_edges"] == 4 and doc["num_nodes"] == 9
        assert doc["edge_size_dist"] == {"3": 2, "4": 1, "6": 1}
        assert isinstance(doc["avg_node_degree"], float)

    def test_metrics_json(self, capsys, mtx):
        import json

        doc = json.loads(run(capsys, "metrics", mtx, "-s", "1", "2", "--json"))
        assert set(doc) == {"1", "2"}
        assert doc["1"]["num_edges"] == 6
        assert isinstance(doc["2"]["num_components"], int)


class TestServeAndQuery:
    """`repro serve` + `repro query` round-trip, server run in a thread."""

    @pytest.fixture
    def live_server(self, mtx):
        from repro.service import AnalyticsServer, QueryEngine

        engine = QueryEngine()
        engine.store.register("paper", mtx)
        with AnalyticsServer(engine) as server:
            yield server.address

    def test_query_round_trip(self, capsys, live_server):
        import json

        host, port = live_server
        out = run(capsys, "query", "--connect", f"{host}:{port}",
                  '{"op": "s_distance", "dataset": "paper", '
                  '"s": 2, "src": 0, "dst": 2}')
        assert json.loads(out)["result"] == 2

    def test_query_batch_from_stdin(self, capsys, live_server, monkeypatch):
        import io
        import json

        host, port = live_server
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"op": "datasets"}\n'
                        '{"op": "stats", "dataset": "paper"}\n'),
        )
        out = run(capsys, "query", "--connect", f"{host}:{port}", "--batch")
        lines = [json.loads(ln) for ln in out.splitlines()]
        assert lines[0]["result"] == ["paper"]
        assert lines[1]["result"]["num_edges"] == 4

    def test_failed_query_sets_exit_code(self, capsys, live_server):
        host, port = live_server
        rc = main(["query", "--connect", f"{host}:{port}",
                   '{"op": "frobnicate"}'])
        assert rc == 1
        assert "unknown op" in capsys.readouterr().out

    def test_query_batch_backend(self, capsys, live_server):
        import json

        host, port = live_server
        out = run(capsys, "query", "--connect", f"{host}:{port}", "--batch",
                  "--backend", "threaded", "--workers", "2",
                  '{"op": "stats", "dataset": "paper"}')
        assert json.loads(out)["result"]["num_edges"] == 4

    def test_query_backend_requires_batch(self, live_server):
        host, port = live_server
        with pytest.raises(SystemExit, match="--batch"):
            main(["query", "--connect", f"{host}:{port}",
                  "--backend", "threaded", '{"op": "datasets"}'])

    def test_bad_connect_spec(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["query", "--connect", "nope", '{"op": "datasets"}'])

    def test_bad_query_json(self, live_server):
        host, port = live_server
        with pytest.raises(SystemExit, match="bad query"):
            main(["query", "--connect", f"{host}:{port}", "{not json"])

"""Grand integration: the entire framework story in one test.

The end-to-end narrative of the paper, executed as one pipeline with every
cross-check on: file round-trip → both representations → exact algorithms
(agreeing) → all construction algorithms (agreeing) → s-metrics (matching
networkx) → aggregate report → null-model rewiring → spectral view.
"""

import io

import networkx as nx
import numpy as np

from repro import NWHypergraph, ParallelRuntime
from repro.core.smetrics import s_metrics_report
from repro.core.spectral import hypergraph_laplacian
from repro.io.generators import (
    community_hypergraph,
    configuration_model_hypergraph,
)
from repro.io.hygra import read_hygra, write_hygra
from repro.io.mmio import read_mm, write_mm
from repro.linegraph import ALGORITHMS, to_two_graph
from repro.structures.validate import validate_adjoin, validate_biadjacency


def test_the_whole_story():
    # 1. dataset pipeline produces a community hypergraph
    el = community_hypergraph(80, 120, mean_community_size=6, seed=99)

    # 2. file round-trips through both supported formats
    mm = io.StringIO()
    write_mm(mm, el)
    mm.seek(0)
    el = read_mm(mm)
    hy = io.StringIO()
    write_hygra(hy, el)
    hy.seek(0)
    el = read_hygra(hy)

    hg = NWHypergraph(el.part0, el.part1,
                      num_edges=el.num_vertices(0),
                      num_nodes=el.num_vertices(1))

    # 3. both representations validate and agree on exact analytics
    validate_biadjacency(hg.biadjacency)
    validate_adjoin(hg.adjoin_graph)
    for alg in ("afforest", "label_propagation", "shiloach_vishkin"):
        e1, n1 = hg.connected_components("adjoin", alg)
        e2, n2 = hg.connected_components("bipartite")
        assert np.array_equal(e1, e2) and np.array_equal(n1, n2)
    rt = ParallelRuntime(num_threads=8, partitioner="cyclic",
                         execution_order="shuffled", seed=3)
    d1 = hg.bfs(0, representation="adjoin", runtime=rt)
    d2 = hg.bfs(0, representation="bipartite")
    assert np.array_equal(d1[0], d2[0]) and np.array_equal(d1[1], d2[1])

    # 4. every construction algorithm produces the identical 2-line graph
    results = {
        name: to_two_graph(hg.biadjacency, 2, name)
        for name in sorted(set(ALGORITHMS) - {"naive"})  # naive is O(n_e²)
    }
    reference = results["matrix"]
    for name, got in results.items():
        assert got == reference, name

    # 5. its metrics match networkx on the materialized graph
    lg = hg.s_linegraph(2)
    G = lg.to_networkx()
    bc = lg.s_betweenness_centrality(normalized=True)
    bc_nx = nx.betweenness_centrality(G, normalized=True)
    assert np.allclose(bc, [bc_nx[v] for v in G])
    pr = lg.s_pagerank(tol=1e-12)
    pr_nx = nx.pagerank(G, tol=1e-12, max_iter=1000)
    assert np.allclose(pr, [pr_nx[v] for v in G], atol=1e-8)

    # 6. the aggregate s-report is internally consistent
    reports = s_metrics_report(hg.biadjacency, [1, 2, 3])
    assert reports[1].num_edges >= reports[2].num_edges >= reports[3].num_edges
    assert reports[2].num_edges == lg.num_edges()

    # 7. a degree-preserving null keeps Table-I statistics but not wiring
    null = configuration_model_hypergraph(
        hg.edge_sizes(), hg.degrees(), seed=7
    )
    hg_null = NWHypergraph(null.part0, null.part1,
                           num_edges=null.num_vertices(0),
                           num_nodes=null.num_vertices(1))
    assert np.array_equal(hg_null.edge_sizes(), hg.edge_sizes())
    assert np.array_equal(hg_null.degrees(), hg.degrees())

    # 8. and the spectral view exists for both
    for h in (hg, hg_null):
        lap = hypergraph_laplacian(h.biadjacency)
        assert lap.shape == (h.number_of_nodes(), h.number_of_nodes())


def test_weighted_clique_side_through_public_api():
    """Weighted s-clique graphs work via the dual with carried weights."""
    rng = np.random.default_rng(1)
    rows = [0, 0, 0, 1, 1, 2]
    cols = [0, 1, 2, 1, 2, 2]
    w = rng.uniform(1, 3, 6)
    hg = NWHypergraph(rows, cols, w)
    sc = hg.s_linegraph(1, over_edges=False, weighted=True)
    # node pair (1, 2) co-occurs in e0 and e1: weight = sum of products
    idx = {(a, b): i for i, (a, b) in enumerate(
        zip(sc.edgelist.src.tolist(), sc.edgelist.dst.tolist()))}
    k = idx[(1, 2)]
    incid = {(r, c): wt for r, c, wt in zip(rows, cols, w)}
    expect = incid[(0, 1)] * incid[(0, 2)] + incid[(1, 1)] * incid[(1, 2)]
    assert sc.edgelist.weights[k] == np.float64(expect)

"""Documentation code blocks stay syntactically valid.

Every ```python fence in docs/ and README must at least compile; the
README quickstart additionally executes (tests/test_readme.py).  Catches
the usual drift where an API rename orphans a doc example.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "docs" / "API.md",
    ROOT / "docs" / "TUTORIAL.md",
    ROOT / "docs" / "DEVELOPMENT.md",
]


def blocks(path: Path) -> list[tuple[int, str]]:
    text = path.read_text(encoding="utf-8")
    out = []
    for match in re.finditer(r"```python\n(.*?)```", text, flags=re.S):
        line = text[: match.start()].count("\n") + 2
        out.append((line, match.group(1)))
    return out


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_python_blocks_compile(doc):
    for line, code in blocks(doc):
        compile(code, f"{doc.name}:{line}", "exec")


def test_tutorial_imports_resolve():
    """Every `from repro... import X` in the tutorial must resolve."""
    import importlib

    text = (ROOT / "docs" / "TUTORIAL.md").read_text(encoding="utf-8")
    for match in re.finditer(
        r"^from (repro[\w.]*) import ([\w, ]+)", text, flags=re.M
    ):
        module = importlib.import_module(match.group(1))
        for name in match.group(2).split(","):
            assert hasattr(module, name.strip()), (
                match.group(1), name.strip()
            )


def test_mentioned_cli_commands_exist():
    """CLI subcommands named in the README exist in the parser."""
    from repro.cli import build_parser

    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if a.__class__.__name__ == "_SubParsersAction"
    )
    available = set(sub.choices)
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    match = re.search(r"python -m repro \{([^}]*)\}", readme)
    assert match, "README lost its CLI summary"
    named = {c.strip() for c in match.group(1).replace("\n", " ").split(",")}
    assert named <= available, named - available

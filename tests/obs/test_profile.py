"""Profile workloads and the merged chrome-trace exporter."""

from __future__ import annotations

import json

import pytest

from repro.linegraph import to_two_graph
from repro.obs import MetricsRegistry, Tracer
from repro.obs.profile import PROFILE_WORKLOADS, merged_chrome_trace, run_profile
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.testing import random_hypergraph


def small_h() -> BiAdjacency:
    return BiAdjacency.from_biedgelist(
        random_hypergraph(seed=4, num_edges=24, num_nodes=32)
    )


class TestMergedChromeTrace:
    def test_python_spans_and_runtime_phases_share_one_timeline(self):
        tracer = Tracer()
        rt = ParallelRuntime(num_threads=4, trace=True, tracer=tracer)
        with tracer.span("build"):
            to_two_graph(
                small_h(), s=2, algorithm="hashmap",
                runtime=rt, tracer=tracer, metrics=MetricsRegistry(),
            )
        events = merged_chrome_trace(tracer, {"hashmap": rt.ledger})
        json.dumps(events)  # must be serializable as-is

        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert 0 in pids, "python wall-clock spans missing"
        assert any(p >= 1 for p in pids), "simulated runtime lanes missing"

        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert any("python" in n for n in names)
        assert any("hashmap" in n for n in names)

    def test_no_ledgers_still_valid(self):
        tracer = Tracer()
        with tracer.span("solo"):
            pass
        events = merged_chrome_trace(tracer, None)
        assert [e["name"] for e in events if e["ph"] == "X"] == ["solo"]


class TestRunProfile:
    def test_workload_table_is_complete(self):
        assert set(PROFILE_WORKLOADS) == {"slinegraph", "smetrics", "service"}

    @pytest.mark.parametrize("workload", sorted(PROFILE_WORKLOADS))
    def test_workload_produces_loadable_trace(self, workload, tmp_path):
        out = tmp_path / "trace.json"
        summary = run_profile(workload, dataset="rand1", s=2, out=str(out))

        assert summary["workload"] == workload
        assert summary["num_spans"] > 0
        assert summary["spans"]  # per-name aggregates

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert summary["num_events"] == len(events)
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        pids = {e["pid"] for e in complete}
        assert 0 in pids and any(p >= 1 for p in pids)

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            run_profile("nope", dataset="rand1")

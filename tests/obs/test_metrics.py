"""MetricsRegistry: instrument semantics, labels, thread safety, no-ops."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    as_metrics,
)


class TestCounter:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        c = m.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a", op="q") is m.counter("a", op="q")
        assert m.counter("a", op="q") is not m.counter("a", op="r")

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("thing")
        with pytest.raises(ValueError):
            m.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("bytes")
        g.set(100)
        g.inc(10)
        g.dec(60)
        assert g.value == 50.0


class TestHistogram:
    def test_observation_lands_in_one_raw_bucket(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.03)
        sample = h.sample()
        # cumulative counts: every bound >= 0.03 sees the observation
        buckets = sample["buckets"]
        assert buckets[0.05] == 1
        assert buckets[10.0] == 1
        assert buckets[0.01] == 0
        assert sample["count"] == 1
        assert sample["sum"] == pytest.approx(0.03)

    def test_overflow_goes_to_inf_only(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(99.0)
        sample = h.sample()
        assert sample["count"] == 1
        assert all(n == 0 for n in sample["buckets"].values())

    def test_mean(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.1, 0.3):
            h.observe(v)
        assert h.sample()["mean"] == pytest.approx(0.2)

    def test_custom_bounds_must_be_sorted(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.histogram("bad", bounds=(2.0, 1.0))

    def test_default_buckets_are_prometheus_style(self):
        assert DEFAULT_BUCKETS[0] == 0.005 and DEFAULT_BUCKETS[-1] == 10.0


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) == 0.0

    def test_single_bucket_interpolates_from_zero(self):
        h = MetricsRegistry().histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        # one observation in (0, 1]: the median interpolates inside it
        assert 0.0 < h.quantile(0.5) <= 1.0

    def test_interpolation_between_bounds(self):
        h = MetricsRegistry().histogram("lat", bounds=(1.0, 2.0, 4.0))
        for _ in range(50):
            h.observe(1.5)  # all 50 land in (1, 2]
        # every quantile lives inside the (1, 2] bucket, linearly
        assert 1.0 < h.quantile(0.01) < h.quantile(0.99) <= 2.0
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.51)

    def test_overflow_clamps_to_last_bound(self):
        h = MetricsRegistry().histogram("lat", bounds=(1.0, 2.0))
        h.observe(99.0)  # +Inf bucket only
        assert h.quantile(0.99) == 2.0

    def test_quantiles_are_monotone_in_q(self):
        from repro.obs.metrics import LATENCY_BUCKETS

        h = MetricsRegistry().histogram("lat", bounds=LATENCY_BUCKETS)
        for i in range(1, 1001):
            h.observe(i / 1000.0)  # uniform on (0, 1]
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 0.999)]
        assert qs == sorted(qs)
        # uniform data: the estimator must land near the true quantile
        assert h.quantile(0.5) == pytest.approx(0.5, rel=0.35)
        assert h.quantile(0.99) == pytest.approx(0.99, rel=0.35)

    def test_out_of_range_q_clamps(self):
        h = MetricsRegistry().histogram("lat", bounds=(1.0,))
        h.observe(0.5)
        assert h.quantile(-3) <= h.quantile(0.0) <= h.quantile(2.0)

    def test_latency_buckets_resolve_millisecond_tails(self):
        from repro.obs.metrics import LATENCY_BUCKETS

        # log-spaced from 100us to 10s: a 1ms p99 and a 100ms p99 must
        # be distinguishable (the old linear defaults collapsed both
        # into the first bucket)
        h_fast = MetricsRegistry().histogram("f", bounds=LATENCY_BUCKETS)
        h_slow = MetricsRegistry().histogram("s", bounds=LATENCY_BUCKETS)
        for _ in range(100):
            h_fast.observe(0.001)
            h_slow.observe(0.1)
        assert h_fast.quantile(0.99) < 0.01 < h_slow.quantile(0.99)

    def test_null_instrument_quantile(self):
        assert NULL_METRICS.histogram("x").quantile(0.99) == 0.0


class TestRegistry:
    def test_snapshot_is_json_safe(self):
        import json

        m = MetricsRegistry()
        m.counter("c", op="x").inc()
        m.gauge("g").set(3)
        m.histogram("h").observe(0.2)
        json.dumps(m.snapshot())  # must not raise
        kinds = {r["kind"] for r in m.snapshot()}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_thread_safety_under_contention(self):
        m = MetricsRegistry()
        n_threads, n_iter = 8, 500

        def work():
            for i in range(n_iter):
                m.counter("hits", worker="shared").inc()
                m.histogram("lat", worker="shared").observe(0.01 * (i % 7))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_iter
        assert m.counter("hits", worker="shared").value == total
        assert m.histogram("lat", worker="shared").sample()["count"] == total


class TestNullMetrics:
    def test_as_metrics_resolves_none(self):
        assert as_metrics(None) is NULL_METRICS
        m = MetricsRegistry()
        assert as_metrics(m) is m

    def test_null_instruments_swallow_everything(self):
        c = NULL_METRICS.counter("x", label="y")
        c.inc(5)
        g = NULL_METRICS.gauge("g")
        g.set(1)
        h = NULL_METRICS.histogram("h")
        h.observe(0.5)
        assert NULL_METRICS.snapshot() == []

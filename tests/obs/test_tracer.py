"""Tracer: span nesting, attributes, chrome-trace export, no-op default."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, as_tracer


class TestSpans:
    def test_nested_spans_record_parent_and_depth(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent == outer.name == "outer"
        assert outer.parent is None
        assert (outer.depth, inner.depth) == (0, 1)
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_durations_are_monotone_and_contained(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.spans
        assert 0.0 <= inner.duration_s <= outer.duration_s
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_attrs_at_open_and_via_set(self):
        tr = Tracer()
        with tr.span("work", s=2) as span:
            span.set(emitted=17)
        (span,) = tr.spans
        assert span.attrs == {"s": 2, "emitted": 17}

    def test_span_records_even_when_body_raises(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tr.spans] == ["doomed"]
        assert tr.spans[0].duration_s >= 0.0

    def test_summary_aggregates_per_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("phase"):
                pass
        summary = tr.summary()
        assert summary["phase"]["count"] == 3
        assert summary["phase"]["total_ms"] >= summary["phase"]["max_ms"] >= 0

    def test_clear_resets(self):
        tr = Tracer()
        with tr.span("x"):
            pass
        tr.clear()
        assert tr.spans == []

    def test_threads_get_distinct_tids(self):
        tr = Tracer()
        # Hold every worker at a barrier so all four are alive at once;
        # otherwise the OS may recycle thread idents and tids collide.
        barrier = threading.Barrier(4)

        def work():
            with tr.span("threaded"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work) for _ in range(4)]
        with tr.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tids = {s.tid for s in tr.spans}
        assert len(tr.spans) == 5
        assert len(tids) == 5  # main + 4 workers


class TestChromeTrace:
    def test_events_are_json_safe_and_well_formed(self):
        tr = Tracer()
        with tr.span("outer", s=2):
            with tr.span("inner"):
                pass
        events = tr.chrome_trace_events(pid=0)
        text = json.dumps({"traceEvents": events})  # must not raise
        parsed = json.loads(text)["traceEvents"]
        for e in parsed:
            assert e["ph"] == "X"
            assert e["pid"] == 0
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timestamps_are_relative_to_epoch(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        (event,) = tr.chrome_trace_events()
        # first span starts at (or just after) the tracer's epoch
        assert event["ts"] < 10_000_000  # < 10 s in microseconds


class TestNullTracer:
    def test_as_tracer_resolves_none(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr
        assert isinstance(as_tracer(None), NullTracer)

    def test_null_span_supports_the_full_surface(self):
        with NULL_TRACER.span("anything", s=3) as span:
            span.set(whatever=1)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.chrome_trace_events() == []
        assert NULL_TRACER.summary() == {}

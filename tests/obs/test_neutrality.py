"""Instrumentation must never change results.

Every builder and traversal accepts ``tracer=``/``metrics=``; attaching
live instruments (or none at all) must produce bit-identical outputs.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import NWHypergraph
from repro.linegraph import ALGORITHMS, to_two_graph
from repro.obs import MetricsRegistry, Tracer
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.testing import random_hypergraph

INSTRUMENTED = sorted(set(ALGORITHMS) - {"matrix", "threaded"})


def make_h(seed: int, num_edges: int = 24, num_nodes: int = 32) -> BiAdjacency:
    return BiAdjacency.from_biedgelist(
        random_hypergraph(seed=seed, num_edges=num_edges, num_nodes=num_nodes)
    )


def edge_tuple(g) -> tuple:
    return (
        g.src.tolist(),
        g.dst.tolist(),
        None if g.weights is None else g.weights.tolist(),
    )


class TestBuilderNeutrality:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_live_instruments_do_not_change_output(self, algorithm, s):
        h = make_h(seed=7)
        bare = to_two_graph(h, s=s, algorithm=algorithm)
        tracer, metrics = Tracer(), MetricsRegistry()
        traced = to_two_graph(
            h, s=s, algorithm=algorithm, tracer=tracer, metrics=metrics
        )
        assert edge_tuple(bare) == edge_tuple(traced)

    @pytest.mark.parametrize("algorithm", INSTRUMENTED)
    def test_runtime_plus_instruments_neutral(self, algorithm):
        h = make_h(seed=11)
        bare = to_two_graph(h, s=2, algorithm=algorithm)
        rt = ParallelRuntime(num_threads=4, tracer=Tracer())
        traced = to_two_graph(
            h, s=2, algorithm=algorithm, runtime=rt,
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        assert edge_tuple(bare) == edge_tuple(traced)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        s=st.integers(min_value=1, max_value=4),
    )
    def test_property_hashmap_vs_traced(self, seed, s):
        h = make_h(seed=seed)
        bare = to_two_graph(h, s=s, algorithm="hashmap")
        traced = to_two_graph(
            h, s=s, algorithm="hashmap",
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        assert edge_tuple(bare) == edge_tuple(traced)

    def test_counters_are_consistent(self):
        h = make_h(seed=5)
        metrics = MetricsRegistry()
        to_two_graph(h, s=2, algorithm="hashmap", metrics=metrics)
        values = {
            (inst["name"], dict(inst["labels"])["algorithm"]): inst["value"]
            for inst in metrics.snapshot()
            if "algorithm" in dict(inst["labels"])
        }
        cand = values[("slinegraph_candidate_pairs_total", "hashmap")]
        pruned = values[("slinegraph_pruned_pairs_total", "hashmap")]
        emitted = values[("slinegraph_emitted_pairs_total", "hashmap")]
        assert cand == pruned + emitted
        assert emitted > 0

    def test_uniform_kernel_counters(self):
        """Every build emits the linegraph_kernel_* trio per family used."""
        h = make_h(seed=5)
        metrics = MetricsRegistry()
        to_two_graph(h, s=2, algorithm="hashmap", metrics=metrics)
        by_kernel = {}
        for inst in metrics.snapshot():
            labels = dict(inst["labels"])
            if "kernel" in labels:
                by_kernel.setdefault(labels["kernel"], {})[inst["name"]] = (
                    inst["value"]
                )
        families = set(by_kernel) - {"dispatch"}
        assert families, by_kernel
        for fam in families:
            trio = by_kernel[fam]
            assert trio["linegraph_kernel_tasks_total"] > 0
            assert (
                trio["linegraph_kernel_candidates_total"]
                >= trio["linegraph_kernel_emitted_total"]
            )


class TestTraversalNeutrality:
    @pytest.mark.parametrize("representation", ["adjoin", "bipartite"])
    def test_connected_components(self, representation):
        bel = random_hypergraph(seed=9, num_edges=24, num_nodes=32)
        bare = NWHypergraph(bel.part0, bel.part1).connected_components(
            representation=representation
        )
        traced = NWHypergraph(bel.part0, bel.part1).connected_components(
            representation=representation,
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        for a, b in zip(bare, traced):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("representation", ["adjoin", "bipartite"])
    def test_bfs(self, representation):
        bel = random_hypergraph(seed=9, num_edges=24, num_nodes=32)
        bare = NWHypergraph(bel.part0, bel.part1).bfs(
            0, representation=representation
        )
        traced = NWHypergraph(bel.part0, bel.part1).bfs(
            0, representation=representation,
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        for a, b in zip(bare, traced):
            np.testing.assert_array_equal(a, b)

    def test_traversals_emit_spans_and_counters(self):
        bel = random_hypergraph(seed=9, num_edges=24, num_nodes=32)
        tracer, metrics = Tracer(), MetricsRegistry()
        hg = NWHypergraph(bel.part0, bel.part1)
        hg.connected_components(tracer=tracer, metrics=metrics)
        hg.bfs(0, tracer=tracer, metrics=metrics)
        names = {s.name for s in tracer.spans}
        assert any(n.startswith("cc.") for n in names)
        assert any(n.startswith("bfs.") for n in names)
        counters = {
            inst["name"] for inst in metrics.snapshot()
            if inst["kind"] == "counter"
        }
        assert "traversal_runs_total" in counters


class TestDeprecationShim:
    def test_s_linegraph_edges_kwarg_warns_but_works(self):
        bel = random_hypergraph(seed=2, num_edges=20, num_nodes=24)
        hg = NWHypergraph(bel.part0, bel.part1)
        with pytest.warns(DeprecationWarning, match="edges="):
            old = hg.s_linegraph(2, edges=True)
        new = NWHypergraph(bel.part0, bel.part1).s_linegraph(2, over_edges=True)
        np.testing.assert_array_equal(old.edgelist.src, new.edgelist.src)
        np.testing.assert_array_equal(old.edgelist.dst, new.edgelist.dst)

    def test_s_linegraphs_edges_kwarg_warns(self):
        bel = random_hypergraph(seed=2, num_edges=20, num_nodes=24)
        hg = NWHypergraph(bel.part0, bel.part1)
        with pytest.warns(DeprecationWarning):
            hg.s_linegraphs([1, 2], edges=False)

    def test_over_edges_does_not_warn(self):
        bel = random_hypergraph(seed=2, num_edges=20, num_nodes=24)
        hg = NWHypergraph(bel.part0, bel.part1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            hg.s_linegraph(2, over_edges=True)


class TestNoOpOverhead:
    def test_null_instruments_cost_little(self):
        """Default (null) instruments should not visibly slow builders.

        Deliberately lenient (3x) — this is a smoke test against
        accidental real work on the no-op path, not a benchmark.
        """
        h = make_h(seed=13, num_edges=60, num_nodes=80)
        for _ in range(3):  # warm caches / JIT-ish effects
            to_two_graph(h, s=2, algorithm="hashmap")

        def timed(**kw) -> float:
            best = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                to_two_graph(h, s=2, algorithm="hashmap", **kw)
                best = min(best, time.perf_counter() - t0)
            return best

        bare = timed()
        nulled = timed(tracer=None, metrics=None)
        assert nulled <= bare * 3 + 0.01

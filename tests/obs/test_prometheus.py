"""Prometheus text exposition: format shape and emit → parse round-trip."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse_prometheus_text, prometheus_text


def populated_registry() -> MetricsRegistry:
    m = MetricsRegistry()
    m.counter("requests_total", op="s_distance").inc(7)
    m.counter("requests_total", op="warm").inc(2)
    m.gauge("cache_bytes").set(1024)
    h = m.histogram("request_seconds", op="s_distance")
    for v in (0.003, 0.02, 0.02, 0.4, 99.0):
        h.observe(v)
    return m


class TestExposition:
    def test_type_line_emitted_once_per_name(self):
        text = prometheus_text(populated_registry())
        assert text.count("# TYPE requests_total counter") == 1
        assert "# TYPE cache_bytes gauge" in text
        assert "# TYPE request_seconds histogram" in text

    def test_counter_lines_carry_labels(self):
        text = prometheus_text(populated_registry())
        assert 'requests_total{op="s_distance"} 7' in text
        assert 'requests_total{op="warm"} 2' in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        parsed = parse_prometheus_text(prometheus_text(populated_registry()))

        def bucket(le: str) -> float:
            return parsed[
                ("request_seconds_bucket",
                 (("le", le), ("op", "s_distance")))
            ]

        assert bucket("0.005") == 1
        assert bucket("0.025") == 3
        assert bucket("0.5") == 4
        assert bucket("10") == 4       # 99.0 exceeds the largest bound
        assert bucket("+Inf") == 5     # ... but lands in +Inf
        assert parsed[
            ("request_seconds_count", (("op", "s_distance"),))
        ] == 5
        assert parsed[
            ("request_seconds_sum", (("op", "s_distance"),))
        ] == pytest.approx(0.003 + 0.02 + 0.02 + 0.4 + 99.0)

    def test_label_values_are_escaped(self):
        m = MetricsRegistry()
        m.counter("odd", path='a"b\\c').inc()
        parsed = parse_prometheus_text(prometheus_text(m))
        assert parsed[("odd", (("path", 'a"b\\c'),))] == 1

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestParser:
    def test_round_trip_every_sample(self):
        m = populated_registry()
        parsed = parse_prometheus_text(prometheus_text(m))
        # 2 counters + 1 gauge + (11 bounds + Inf + sum + count) histogram
        assert len(parsed) == 2 + 1 + 14

    def test_inf_values(self):
        assert parse_prometheus_text("x 8\ny +Inf\n") == {
            ("x", ()): 8.0,
            ("y", ()): math.inf,
        }

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is } not a sample\n")

    def test_comments_and_blanks_skipped(self):
        assert parse_prometheus_text("# HELP x y\n\n# TYPE x counter\n") == {}

"""Toplex tests (Algorithm 3 vs the vectorized containment test)."""

import numpy as np
import pytest

from repro.algorithms.toplex import toplexes, toplexes_algorithm3
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

from ..conftest import make_biedgelist, random_biedgelist


def h_of(members, num_nodes=None):
    return BiAdjacency.from_biedgelist(make_biedgelist(members, num_nodes))


class TestKnownCases:
    def test_paper_example(self, paper_h):
        # e0={0,1,2} ⊂ e3={0,1,2,6}: only e1, e2, e3 are maximal
        assert toplexes(paper_h).tolist() == [1, 2, 3]

    def test_nested_chain(self):
        h = h_of([[0], [0, 1], [0, 1, 2]])
        assert toplexes(h).tolist() == [2]

    def test_duplicates_keep_lowest_id(self):
        h = h_of([[0, 1], [0, 1], [2]])
        assert toplexes(h).tolist() == [0, 2]

    def test_all_disjoint(self):
        h = h_of([[0], [1], [2]])
        assert toplexes(h).tolist() == [0, 1, 2]

    def test_partial_overlap_not_containment(self):
        h = h_of([[0, 1], [1, 2]])
        assert toplexes(h).tolist() == [0, 1]

    def test_empty_edges_dominated(self):
        el = BiEdgeList([1, 1], [0, 1], n0=3, n1=2)  # e0, e2 empty
        h = BiAdjacency.from_biedgelist(el)
        assert toplexes(h).tolist() == [1]

    def test_all_empty_edges(self):
        el = BiEdgeList([], [], n0=3, n1=0)
        h = BiAdjacency.from_biedgelist(el)
        assert toplexes(h).tolist() == [0]


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_algorithm3(self, seed):
        h = BiAdjacency.from_biedgelist(
            random_biedgelist(seed=seed, num_edges=30, num_nodes=15,
                              max_size=6)
        )
        assert np.array_equal(toplexes(h), toplexes_algorithm3(h))

    def test_adjoin_representation(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        h = BiAdjacency.from_biedgelist(paper_el)
        assert np.array_equal(toplexes(g), toplexes(h))

    def test_runtime(self, paper_h):
        rt = ParallelRuntime(num_threads=4)
        got = toplexes(paper_h, runtime=rt)
        assert got.tolist() == [1, 2, 3]
        assert rt.makespan > 0

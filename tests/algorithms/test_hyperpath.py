"""Hypertree / hyperpath tests."""

import numpy as np
import pytest

from repro.algorithms.hyperbfs import hyperbfs_top_down
from repro.algorithms.hyperpath import hyperpath, hypertree
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


class TestHypertree:
    def test_root_maps_to_none(self, paper_h):
        tree = hypertree(paper_h, 0)
        assert tree[("node", 0)] is None

    def test_parents_alternate_types(self, paper_h):
        tree = hypertree(paper_h, 0)
        for child, parent in tree.items():
            if parent is None:
                continue
            assert child[0] != parent[0]

    def test_covers_exactly_reachable(self, paper_h):
        edge_dist, node_dist = hyperbfs_top_down(paper_h, 0)
        tree = hypertree(paper_h, 0)
        assert {("edge", e) for e in np.flatnonzero(edge_dist >= 0)} | {
            ("node", v) for v in np.flatnonzero(node_dist >= 0)
        } == set(tree)

    def test_parent_depth_consistent(self):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=3))
        edge_dist, node_dist = hyperbfs_top_down(h, 0)
        tree = hypertree(h, 0)
        depth = {
            **{("edge", e): int(edge_dist[e])
               for e in range(h.num_hyperedges()) if edge_dist[e] >= 0},
            **{("node", v): int(node_dist[v])
               for v in range(h.num_hypernodes()) if node_dist[v] >= 0},
        }
        for child, parent in tree.items():
            if parent is not None:
                assert depth[child] == depth[parent] + 1

    def test_edge_rooted(self, paper_h):
        tree = hypertree(paper_h, 1, source_is_edge=True)
        assert tree[("edge", 1)] is None
        assert ("node", 1) in tree


class TestHyperpath:
    def test_path_structure(self, paper_h):
        path = hyperpath(paper_h, ("node", 0), ("node", 6))
        assert path[0] == ("node", 0)
        assert path[-1] == ("node", 6)
        for a, b in zip(path, path[1:]):
            assert a[0] != b[0]
            # incidence holds at every step
            edge = a if a[0] == "edge" else b
            node = a if a[0] == "node" else b
            assert node[1] in paper_h.members(edge[1])

    def test_shortest_length(self, paper_h):
        edge_dist, node_dist = hyperbfs_top_down(paper_h, 0)
        for v in range(paper_h.num_hypernodes()):
            path = hyperpath(paper_h, ("node", 0), ("node", v))
            if node_dist[v] < 0:
                assert path == []
            else:
                assert len(path) == node_dist[v] + 1

    def test_node_to_edge(self, paper_h):
        path = hyperpath(paper_h, ("node", 0), ("edge", 2))
        assert path[-1] == ("edge", 2)
        assert len(path) % 2 == 0  # alternating, opposite endpoint types

    def test_trivial_path(self, paper_h):
        assert hyperpath(paper_h, ("node", 0), ("node", 0)) == [("node", 0)]

    def test_unreachable(self):
        from repro.structures.edgelist import BiEdgeList

        h = BiAdjacency.from_biedgelist(
            BiEdgeList([0, 1], [0, 1], n0=2, n1=2)
        )
        assert hyperpath(h, ("node", 0), ("node", 1)) == []

    def test_bad_entity_kind(self, paper_h):
        with pytest.raises(ValueError, match="entity kind"):
            hyperpath(paper_h, ("vertex", 0), ("node", 1))

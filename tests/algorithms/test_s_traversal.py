"""Lazy s-line traversal == materialized s-line graph results."""

import numpy as np
import pytest

from repro.algorithms.s_traversal import (
    s_bfs_lazy,
    s_connected_components_lazy,
    s_distance_lazy,
    s_neighbors_lazy,
)
from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


@pytest.fixture(params=[0, 1])
def case(request):
    el = random_biedgelist(seed=request.param, num_edges=30, num_nodes=25,
                           max_size=6)
    h = BiAdjacency.from_biedgelist(el)
    return h, {s: linegraph_csr(slinegraph_matrix(h, s)) for s in (1, 2, 3)}


@pytest.mark.parametrize("s", [1, 2, 3])
def test_neighbors_match_materialized(case, s):
    h, graphs = case
    g = graphs[s]
    for e in range(h.num_hyperedges()):
        lazy = s_neighbors_lazy(h, e, s)
        assert lazy.tolist() == sorted(g[e].tolist())


@pytest.mark.parametrize("s", [1, 2, 3])
def test_bfs_matches_materialized(case, s):
    h, graphs = case
    g = graphs[s]
    for src in range(0, h.num_hyperedges(), 5):
        ref, _ = bfs_top_down(g, src)
        lazy = s_bfs_lazy(h, src, s)
        assert np.array_equal(lazy, ref)


@pytest.mark.parametrize("s", [1, 2, 3])
def test_distance_matches_materialized(case, s):
    h, graphs = case
    g = graphs[s]
    ref, _ = bfs_top_down(g, 0)
    for dest in range(h.num_hyperedges()):
        assert s_distance_lazy(h, 0, dest, s) == ref[dest]


@pytest.mark.parametrize("s", [1, 2, 3])
def test_components_match_materialized(case, s):
    h, graphs = case
    ref = connected_components(graphs[s])
    lazy = s_connected_components_lazy(h, s)
    assert np.array_equal(lazy, ref)


def test_small_source_isolated(paper_h):
    # s above the source's size: source alone
    dist = s_bfs_lazy(paper_h, 0, s=4)
    assert dist[0] == 0 and np.all(dist[1:] == -1)
    assert s_distance_lazy(paper_h, 0, 1, s=4) == -1


def test_distance_to_self(paper_h):
    assert s_distance_lazy(paper_h, 2, 2, s=1) == 0


def test_works_on_adjoin(paper_el, paper_h):
    g = AdjoinGraph.from_biedgelist(paper_el)
    for s in (1, 2, 3):
        assert np.array_equal(
            s_bfs_lazy(g, 0, s), s_bfs_lazy(paper_h, 0, s)
        )


def test_runtime_accounted(paper_h):
    rt = ParallelRuntime(num_threads=2)
    ref = s_bfs_lazy(paper_h, 0, 1)
    got = s_bfs_lazy(paper_h, 0, 1, runtime=rt)
    assert np.array_equal(ref, got)
    assert rt.makespan > 0


def test_invalid_s(paper_h):
    for fn in (
        lambda: s_neighbors_lazy(paper_h, 0, 0),
        lambda: s_bfs_lazy(paper_h, 0, 0),
        lambda: s_distance_lazy(paper_h, 0, 1, 0),
        lambda: s_connected_components_lazy(paper_h, 0),
    ):
        with pytest.raises(ValueError, match="s must be"):
            fn()

"""HyperBFS tests: variants agree, bipartite-hop semantics vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.hyperbfs import (
    hyperbfs,
    hyperbfs_bottom_up,
    hyperbfs_direction_optimizing,
    hyperbfs_top_down,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist

VARIANTS = [hyperbfs_top_down, hyperbfs_bottom_up, hyperbfs_direction_optimizing]


def nx_bipartite(h: BiAdjacency) -> nx.Graph:
    G = nx.Graph()
    G.add_nodes_from(("e", e) for e in range(h.num_hyperedges()))
    G.add_nodes_from(("v", v) for v in range(h.num_hypernodes()))
    for e in range(h.num_hyperedges()):
        for v in h.members(e):
            G.add_edge(("e", e), ("v", int(v)))
    return G


@pytest.mark.parametrize("fn", VARIANTS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_node_source_matches_networkx(fn, seed):
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=seed))
    G = nx_bipartite(h)
    expect = nx.single_source_shortest_path_length(G, ("v", 0))
    edge_dist, node_dist = fn(h, 0)
    for e in range(h.num_hyperedges()):
        assert edge_dist[e] == expect.get(("e", e), -1)
    for v in range(h.num_hypernodes()):
        assert node_dist[v] == expect.get(("v", v), -1)


@pytest.mark.parametrize("fn", VARIANTS)
def test_edge_source(fn, paper_h):
    edge_dist, node_dist = fn(paper_h, 0, source_is_edge=True)
    assert edge_dist[0] == 0
    # members of e0 at distance 1
    assert all(node_dist[v] == 1 for v in [0, 1, 2])
    # every other edge shares a node with e0 -> distance 2
    assert edge_dist.tolist() == [0, 2, 2, 2]


def test_variants_agree(random_h):
    ref = hyperbfs_top_down(random_h, 0)
    for fn in VARIANTS[1:]:
        got = fn(random_h, 0)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])


@pytest.mark.parametrize("fn", VARIANTS)
def test_runtime_same_result(fn, random_h):
    ref = fn(random_h, 0)
    rt = ParallelRuntime(num_threads=4, execution_order="shuffled", seed=3)
    got = fn(random_h, 0, runtime=rt)
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])
    assert rt.makespan > 0


def test_dispatch(paper_h):
    for d in ("top_down", "bottom_up", "direction_optimizing"):
        hyperbfs(paper_h, 0, direction=d)
    with pytest.raises(ValueError, match="direction"):
        hyperbfs(paper_h, 0, direction="diagonal")


def test_alternating_parity(paper_h):
    """Bipartite structure: node distances are even, edge distances odd
    (from a node source)."""
    edge_dist, node_dist = hyperbfs_top_down(paper_h, 0)
    assert all(d % 2 == 1 for d in edge_dist if d >= 0)
    assert all(d % 2 == 0 for d in node_dist if d >= 0)

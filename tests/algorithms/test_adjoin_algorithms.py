"""AdjoinBFS / AdjoinCC: agreement with the bipartite algorithms.

The framework's central invariant (paper §III-B.2): the adjoin graph is the
same hypergraph in a single index space, so range-aware graph algorithms on
it must produce exactly the exact-hypergraph results.
"""

import numpy as np
import pytest

from repro.algorithms.adjoinbfs import adjoinbfs
from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hyperbfs import hyperbfs_top_down
from repro.algorithms.hypercc import hypercc
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


@pytest.fixture(params=[0, 1, 2])
def reps(request):
    el = random_biedgelist(seed=request.param)
    return BiAdjacency.from_biedgelist(el), AdjoinGraph.from_biedgelist(el)


class TestAdjoinBFS:
    def test_matches_hyperbfs_node_source(self, reps):
        h, g = reps
        ref = hyperbfs_top_down(h, 0)
        for do in (True, False):
            got = adjoinbfs(g, 0, direction_optimizing=do)
            assert np.array_equal(got[0], ref[0])
            assert np.array_equal(got[1], ref[1])

    def test_matches_hyperbfs_edge_source(self, reps):
        h, g = reps
        ref = hyperbfs_top_down(h, 1, source_is_edge=True)
        got = adjoinbfs(g, 1, source_is_edge=True)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_runtime(self, reps):
        h, g = reps
        ref = adjoinbfs(g, 0)
        rt = ParallelRuntime(num_threads=4, partitioner="cyclic")
        got = adjoinbfs(g, 0, runtime=rt)
        assert np.array_equal(got[0], ref[0])
        assert rt.makespan > 0


class TestAdjoinCC:
    @pytest.mark.parametrize(
        "alg", ["afforest", "label_propagation", "shiloach_vishkin"]
    )
    def test_matches_hypercc(self, reps, alg):
        h, g = reps
        ref = hypercc(h)
        got = adjoincc(g, alg)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_split_shapes(self, reps):
        _, g = reps
        e_lab, n_lab = adjoincc(g)
        assert e_lab.shape == (g.nrealedges,)
        assert n_lab.shape == (g.nrealnodes,)

    def test_runtime(self, reps):
        _, g = reps
        ref = adjoincc(g)
        rt = ParallelRuntime(num_threads=8)
        got = adjoincc(g, runtime=rt)
        assert np.array_equal(got[0], ref[0])
        assert rt.makespan > 0

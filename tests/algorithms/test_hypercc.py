"""HyperCC tests: label propagation on the bipartite representation."""

import networkx as nx
import numpy as np

from repro.algorithms.hypercc import hypercc
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

from ..conftest import random_biedgelist


def components_via_networkx(h: BiAdjacency) -> set[frozenset]:
    G = nx.Graph()
    G.add_nodes_from(("e", e) for e in range(h.num_hyperedges()))
    G.add_nodes_from(("v", v) for v in range(h.num_hypernodes()))
    for e in range(h.num_hyperedges()):
        for v in h.members(e):
            G.add_edge(("e", e), ("v", int(v)))
    return {frozenset(c) for c in nx.connected_components(G)}


def partition(edge_labels, node_labels) -> set[frozenset]:
    groups: dict[int, set] = {}
    for e, lab in enumerate(edge_labels.tolist()):
        groups.setdefault(lab, set()).add(("e", e))
    for v, lab in enumerate(node_labels.tolist()):
        groups.setdefault(lab, set()).add(("v", v))
    return {frozenset(g) for g in groups.values()}


def test_matches_networkx_components():
    for seed in range(4):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=seed))
        e_lab, n_lab = hypercc(h)
        assert partition(e_lab, n_lab) == components_via_networkx(h)


def test_labels_are_consolidated_min_ids(paper_h):
    e_lab, n_lab = hypercc(paper_h)
    # single component containing hyperedge 0 -> label 0 everywhere
    assert np.all(e_lab == 0)
    assert np.all(n_lab == 0)


def test_isolated_hypernode_keeps_own_label():
    el = BiEdgeList([0, 0], [0, 1], n0=1, n1=3)  # node 2 isolated
    h = BiAdjacency.from_biedgelist(el)
    e_lab, n_lab = hypercc(h)
    assert e_lab.tolist() == [0]
    assert n_lab.tolist() == [0, 0, 1 + 2]  # consolidated ID of node 2


def test_two_components():
    el = BiEdgeList([0, 0, 1, 1], [0, 1, 2, 3], n0=2, n1=4)
    h = BiAdjacency.from_biedgelist(el)
    e_lab, n_lab = hypercc(h)
    assert e_lab.tolist() == [0, 1]
    assert n_lab.tolist() == [0, 0, 1, 1]


def test_runtime_schedule_independent(random_h):
    ref = hypercc(random_h)
    for seed in (0, 1):
        rt = ParallelRuntime(num_threads=6, execution_order="shuffled", seed=seed)
        got = hypercc(random_h, runtime=rt)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

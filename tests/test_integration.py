"""Cross-module integration tests: the framework's workflows end to end.

Each test walks one of the paper's advertised workflows across multiple
subpackages: read/generate → represent (both ways) → compute (exact and
approximate) → compare.
"""

import io

import networkx as nx
import numpy as np

from repro import NWHypergraph, ParallelRuntime
from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hypercc import hypercc
from repro.baselines.hygra import hygra_bfs, hygra_cc
from repro.graph.cc import compress_labels
from repro.io.datasets import load
from repro.io.generators import community_hypergraph
from repro.io.mmio import read_mm, write_mm
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency


def test_mmio_to_metrics_pipeline(tmp_path):
    """File → both representations → CC/BFS → s-line → metrics."""
    el = community_hypergraph(60, 80, mean_community_size=6, seed=12)
    path = tmp_path / "community.mtx"
    write_mm(path, el)
    back = read_mm(path)
    hg = NWHypergraph(back.part0, back.part1,
                      num_edges=back.num_vertices(0),
                      num_nodes=back.num_vertices(1))
    e_lab, n_lab = hg.connected_components()
    assert e_lab.size == 60 and n_lab.size == 80
    lg = hg.s_linegraph(2)
    comps = lg.s_connected_components()
    for comp in comps:
        assert len(comp) > 1
    bc = lg.s_betweenness_centrality()
    assert bc.shape == (60,)


def test_all_three_cc_systems_agree_on_every_dataset():
    """Fig. 7's correctness precondition: AdjoinCC == HyperCC == HygraCC."""
    for name in ("rand1", "orkut-group"):
        el = load(name)
        h = BiAdjacency.from_biedgelist(el)
        g = AdjoinGraph.from_biedgelist(el)
        e1, n1 = hypercc(h)
        e2, n2 = adjoincc(g)
        e3, n3 = hygra_cc(h)
        assert np.array_equal(e1, e2) and np.array_equal(e1, e3)
        assert np.array_equal(n1, n2) and np.array_equal(n1, n3)


def test_all_three_bfs_systems_agree_on_dataset():
    el = load("rand1")
    h = BiAdjacency.from_biedgelist(el)
    hg = NWHypergraph(el.part0, el.part1,
                      num_edges=el.num_vertices(0),
                      num_nodes=el.num_vertices(1))
    src = 5
    ref = hygra_bfs(h, src)
    for rep in ("adjoin", "bipartite"):
        got = hg.bfs(src, representation=rep)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])


def test_sline_cc_equals_networkx_community_structure():
    """Build s-line graph, run OUR graph CC on it, compare to networkx on
    the same materialized graph (the 'use any graph algorithm' workflow)."""
    el = load("orkut-group")
    h = BiAdjacency.from_biedgelist(el)
    lg = slinegraph_matrix(h, 3)
    g = linegraph_csr(lg)
    from repro.graph.cc import connected_components

    labels = compress_labels(connected_components(g))
    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices()))
    G.add_edges_from(zip(lg.src.tolist(), lg.dst.tolist()))
    expect = {frozenset(c) for c in nx.connected_components(G)}
    groups: dict[int, set] = {}
    for v, lab in enumerate(labels.tolist()):
        groups.setdefault(lab, set()).add(v)
    assert {frozenset(s) for s in groups.values()} == expect


def test_simulated_runtime_consistency_across_all_entry_points():
    """One runtime instance drives bipartite, adjoin and line-graph work
    without mixing up results."""
    el = load("rand1")
    hg = NWHypergraph(el.part0, el.part1,
                      num_edges=el.num_vertices(0),
                      num_nodes=el.num_vertices(1))
    rt = ParallelRuntime(num_threads=8, partitioner="cyclic")
    ref_cc = hg.connected_components()
    got_cc = hg.connected_components(runtime=rt)
    assert np.array_equal(ref_cc[0], got_cc[0])
    lg_ref = hg.s_linegraph(2)
    lg_rt = hg.s_linegraph(2, runtime=ParallelRuntime(num_threads=8))
    assert lg_ref.edgelist == lg_rt.edgelist


def test_dual_sline_is_clique_side():
    """H*'s line graph == H's clique side, through the public API."""
    el = load("rand1")
    hg = NWHypergraph(el.part0, el.part1,
                      num_edges=el.num_vertices(0),
                      num_nodes=el.num_vertices(1))
    a = hg.s_linegraph(2, over_edges=False)
    b = hg.dual().s_linegraph(2, over_edges=True)
    assert a.edgelist == b.edgelist


def test_roundtrip_through_stringio_preserves_algorithms():
    el = load("orkut-group")
    buf = io.StringIO()
    write_mm(buf, el)
    buf.seek(0)
    back = read_mm(buf)
    h1 = BiAdjacency.from_biedgelist(el)
    h2 = BiAdjacency.from_biedgelist(back)
    assert slinegraph_matrix(h1, 4) == slinegraph_matrix(h2, 4)

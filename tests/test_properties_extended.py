"""Second wave of property-based tests: I/O roundtrips, lazy≡materialized,
metric monotonicity, and format-fuzz failure injection."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.s_traversal import s_bfs_lazy, s_connected_components_lazy
from repro.algorithms.toplex import toplexes
from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.io.hygra import read_hygra, write_hygra
from repro.io.mmio import read_mm, write_mm
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList
from repro.structures.validate import validate_adjoin, validate_biadjacency
from repro.structures.adjoin import AdjoinGraph

from .test_properties import hypergraphs


# ---- I/O roundtrips ---------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_mmio_roundtrip(el):
    buf = io.StringIO()
    write_mm(buf, el)
    buf.seek(0)
    back = read_mm(buf)
    assert back.vertex_cardinality == el.vertex_cardinality
    assert sorted(back) == sorted(el)


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_hygra_roundtrip(el):
    buf = io.StringIO()
    write_hygra(buf, el)
    buf.seek(0)
    back = read_hygra(buf)
    assert back.vertex_cardinality == el.vertex_cardinality
    assert sorted(back) == sorted(el)


@settings(max_examples=30, deadline=None)
@given(st.text(max_size=200))
def test_mmio_fuzz_raises_cleanly(garbage):
    """Arbitrary text must raise ValueError, never crash differently."""
    try:
        read_mm(io.StringIO(garbage))
    except ValueError:
        pass
    except Exception as exc:  # noqa: BLE001 - the assertion under test
        raise AssertionError(f"unexpected {type(exc).__name__}: {exc}") from exc


@settings(max_examples=30, deadline=None)
@given(st.text(max_size=200))
def test_hygra_fuzz_raises_cleanly(garbage):
    try:
        read_hygra(io.StringIO(garbage))
    except ValueError:
        pass
    except Exception as exc:  # noqa: BLE001
        raise AssertionError(f"unexpected {type(exc).__name__}: {exc}") from exc


# ---- validators accept everything we construct ------------------------------------

@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_constructed_representations_always_valid(el):
    validate_biadjacency(BiAdjacency.from_biedgelist(el))
    validate_adjoin(AdjoinGraph.from_biedgelist(el))


# ---- lazy == materialized --------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(hypergraphs(), st.integers(1, 3))
def test_lazy_bfs_equals_materialized(el, s):
    h = BiAdjacency.from_biedgelist(el)
    g = linegraph_csr(slinegraph_matrix(h, s))
    sizes = h.edge_sizes()
    for src in range(h.num_hyperedges()):
        lazy = s_bfs_lazy(h, src, s)
        if sizes[src] < s:
            assert lazy[src] == 0 and np.all(np.delete(lazy, src) == -1)
            continue
        ref, _ = bfs_top_down(g, src)
        assert np.array_equal(lazy, ref)


@settings(max_examples=30, deadline=None)
@given(hypergraphs(), st.integers(1, 3))
def test_lazy_components_equal_materialized(el, s):
    h = BiAdjacency.from_biedgelist(el)
    g = linegraph_csr(slinegraph_matrix(h, s))
    ref = connected_components(g)
    # lazy skips undersized edges; they are isolated in the materialized
    # graph too, so both are their own canonical label
    assert np.array_equal(s_connected_components_lazy(h, s), ref)


# ---- toplexes and line graphs interplay ----------------------------------------------

@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_duplicate_edges_share_line_neighborhoods(el):
    """If e and f have identical members, their 1-line neighborhoods agree
    (excluding each other)."""
    h = BiAdjacency.from_biedgelist(el)
    g = linegraph_csr(slinegraph_matrix(h, 1))
    members = [tuple(h.members(e).tolist()) for e in range(h.num_hyperedges())]
    seen: dict[tuple, int] = {}
    for e, m in enumerate(members):
        if not m:
            continue
        if m in seen:
            f = seen[m]
            ne = set(g[e].tolist()) - {e, f}
            nf = set(g[f].tolist()) - {e, f}
            assert ne == nf
        else:
            seen[m] = e


@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_toplex_reduction_preserves_node_connectivity(el):
    """Dropping non-toplex hyperedges never disconnects hypernodes: every
    dominated edge's connections are implied by a superset toplex."""
    from repro.algorithms.hypercc import hypercc

    h = BiAdjacency.from_biedgelist(el)
    tops = toplexes(h)
    rows = []
    cols = []
    for new_id, e in enumerate(tops.tolist()):
        for v in h.members(e).tolist():
            rows.append(new_id)
            cols.append(v)
    reduced = BiAdjacency.from_biedgelist(
        BiEdgeList(rows, cols, n0=tops.size, n1=h.num_hypernodes())
    )
    _, full_nodes = hypercc(h)
    _, red_nodes = hypercc(reduced)
    # same node partition (labels differ because edge IDs changed)
    def partition(labels):
        groups = {}
        for v, lab in enumerate(labels.tolist()):
            groups.setdefault(lab, set()).add(v)
        return {frozenset(s) for s in groups.values()}

    assert partition(full_nodes) == partition(red_nodes)

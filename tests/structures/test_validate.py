"""Failure-injection tests for the invariant checkers."""

import numpy as np
import pytest

from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.validate import (
    HypergraphInvariantError,
    validate_adjoin,
    validate_biadjacency,
    validate_csr,
)

from ..conftest import random_biedgelist


class TestValidateCSR:
    def test_valid_passes(self):
        g = CSR.from_coo(np.array([0, 0, 1]), np.array([1, 2, 0]),
                         num_sources=3, num_targets=3)
        validate_csr(g)

    def test_unsorted_row_detected(self):
        g = CSR(np.array([0, 2]), np.array([3, 1]), sorted_rows=True)
        with pytest.raises(HypergraphInvariantError, match="not sorted"):
            validate_csr(g)

    def test_duplicate_neighbor_detected(self):
        g = CSR(np.array([0, 2]), np.array([1, 1]), sorted_rows=True)
        with pytest.raises(HypergraphInvariantError, match="duplicate"):
            validate_csr(g)
        validate_csr(g, require_unique=False)  # opt-out works

    def test_out_of_range_index_detected(self):
        g = CSR(np.array([0, 1]), np.array([5]), num_targets=6)
        g._num_targets = 3  # corrupt after construction
        with pytest.raises(HypergraphInvariantError, match="out of range"):
            validate_csr(g)

    def test_corrupt_indptr_detected(self):
        g = CSR(np.array([0, 1]), np.array([0]))
        g.indptr = np.array([1, 1])
        with pytest.raises(HypergraphInvariantError, match="indptr"):
            validate_csr(g)


class TestValidateBiadjacency:
    def test_valid_passes(self, paper_h):
        validate_biadjacency(paper_h)

    def test_random_valid(self):
        validate_biadjacency(
            BiAdjacency.from_biedgelist(random_biedgelist(seed=4))
        )

    def test_mismatched_halves_detected(self, paper_h):
        """Reassign one incidence on the node side only: counts still
        match, the transpose relation does not."""
        broken = BiAdjacency.__new__(BiAdjacency)
        broken.edges = paper_h.edges
        indices = paper_h.nodes.indices.copy()
        # node 4's only incidence is e2; claim it is e0 instead
        pos = paper_h.nodes.indptr[4]
        indices[pos] = 0
        broken.nodes = CSR(
            paper_h.nodes.indptr.copy(), indices,
            num_targets=paper_h.nodes.num_targets(), sorted_rows=True,
        )
        with pytest.raises(HypergraphInvariantError, match="transpose"):
            validate_biadjacency(broken)


class TestValidateAdjoin:
    def test_valid_passes(self, paper_el):
        validate_adjoin(AdjoinGraph.from_biedgelist(paper_el))

    def test_intra_partition_edge_detected(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        bad_graph = CSR.from_coo(
            np.array([0, 1]), np.array([1, 0]),
            num_sources=g.num_vertices(), num_targets=g.num_vertices(),
        )
        broken = AdjoinGraph(bad_graph, g.nrealedges, g.nrealnodes)
        with pytest.raises(HypergraphInvariantError, match="partition"):
            validate_adjoin(broken)

    def test_asymmetry_detected(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        asym = CSR.from_coo(
            np.array([0]), np.array([g.nrealedges]),
            num_sources=g.num_vertices(), num_targets=g.num_vertices(),
        )
        broken = AdjoinGraph(asym, g.nrealedges, g.nrealnodes)
        with pytest.raises(HypergraphInvariantError, match="symmetric"):
            validate_adjoin(broken)

"""Unit tests for relabel-by-degree and permutation utilities."""

import numpy as np
import pytest

from repro.linegraph import slinegraph_hashmap, slinegraph_matrix
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.relabel import (
    adjoin_safe_permutation,
    degree_permutation,
    inverse_permutation,
    is_permutation,
    relabel_by_degree,
    relabel_hyperedges,
)

from ..conftest import random_biedgelist


class TestDegreePermutation:
    def test_descending_gives_high_degree_small_ids(self):
        perm = degree_permutation(np.array([1, 5, 3]), "descending")
        # vertex 1 (deg 5) -> id 0, vertex 2 (deg 3) -> 1, vertex 0 -> 2
        assert perm.tolist() == [2, 0, 1]

    def test_ascending(self):
        perm = degree_permutation(np.array([1, 5, 3]), "ascending")
        assert perm.tolist() == [0, 2, 1]

    def test_stable_ties(self):
        perm = degree_permutation(np.array([2, 2, 2]), "descending")
        assert perm.tolist() == [0, 1, 2]

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="order"):
            degree_permutation(np.array([1]), "sideways")

    def test_always_a_permutation(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            deg = rng.integers(0, 50, size=rng.integers(1, 40))
            for order in ("ascending", "descending"):
                assert is_permutation(degree_permutation(deg, order))


class TestInverse:
    def test_roundtrip(self):
        perm = np.array([3, 0, 2, 1])
        inv = inverse_permutation(perm)
        assert perm[inv].tolist() == [0, 1, 2, 3]
        assert inv[perm].tolist() == [0, 1, 2, 3]

    def test_is_permutation_rejects(self):
        assert not is_permutation(np.array([0, 0, 1]))
        assert not is_permutation(np.array([0, 5]))
        assert not is_permutation(np.zeros((2, 2)))
        assert is_permutation(np.array([1, 0]))


class TestRelabelByDegree:
    def test_relabeled_graph_has_sorted_degrees(self):
        g = CSR.from_coo(
            np.array([0, 0, 0, 1, 2, 2]), np.array([1, 2, 3, 0, 0, 1]),
            num_sources=4, num_targets=4,
        )
        new, perm = relabel_by_degree(g, "descending")
        deg = new.degrees()
        assert all(deg[i] >= deg[i + 1] for i in range(len(deg) - 1))
        assert is_permutation(perm)

    def test_structure_preserved(self):
        g = CSR.from_coo(np.array([0, 1]), np.array([1, 2]),
                         num_sources=3, num_targets=3)
        new, perm = relabel_by_degree(g)
        assert new.num_edges() == g.num_edges()
        # edge (u, v) exists iff (perm[u], perm[v]) exists in new
        for u in range(3):
            for v in g[u]:
                assert perm[v] in new[perm[u]]


class TestAdjoinSafePermutation:
    def test_blocks_preserved(self):
        deg = np.array([5, 1, 3, 9, 2])  # 2 hyperedges + 3 hypernodes
        perm = adjoin_safe_permutation(deg, nrealedges=2)
        assert is_permutation(perm)
        assert set(perm[:2].tolist()) == {0, 1}
        assert set(perm[2:].tolist()) == {2, 3, 4}

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="nrealedges"):
            adjoin_safe_permutation(np.array([1]), nrealedges=5)


class TestRelabelHyperedges:
    def test_linegraph_invariant_under_relabel(self):
        """Relabeling hyperedges permutes the s-line graph consistently —
        the correctness property behind Fig. 9's relabel sweeps."""
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=3))
        for order in ("ascending", "descending"):
            rh, perm = relabel_hyperedges(h, order)
            assert rh.edge_sizes().sum() == h.edge_sizes().sum()
            ref = slinegraph_matrix(h, 2)
            got = slinegraph_hashmap(rh, 2)
            inv = inverse_permutation(perm)
            mapped = {
                (min(inv[a], inv[b]), max(inv[a], inv[b]))
                for a, b in zip(got.src, got.dst)
            }
            assert mapped == set(zip(ref.src.tolist(), ref.dst.tolist()))

    def test_sizes_follow_permutation(self, paper_h):
        rh, perm = relabel_hyperedges(paper_h, "descending")
        # e2 (size 6) must have new ID 0
        assert perm[2] == 0
        assert rh.edge_sizes()[0] == 6

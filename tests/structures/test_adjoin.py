"""Unit tests for the adjoin (single-index-set) representation."""

import numpy as np
import pytest

from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList
from repro.structures.matrices import adjoin_adjacency_matrix, is_symmetric


class TestConstruction:
    def test_from_biedgelist(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        assert g.nrealedges == 4
        assert g.nrealnodes == 9
        assert g.num_vertices() == 13
        # each incidence contributes 2 directed edges
        assert g.graph.num_edges() == 2 * len(paper_el)

    def test_from_edgelist_symmetrizes(self, paper_el):
        directed = paper_el.to_adjoin_edgelist()
        g = AdjoinGraph.from_edgelist(directed, 4, 9)
        ref = AdjoinGraph.from_biedgelist(paper_el)
        assert g.graph == ref.graph

    def test_size_mismatch_rejected(self):
        graph = CSR.empty(5, num_targets=5)
        with pytest.raises(ValueError, match="nrealedges"):
            AdjoinGraph(graph, 2, 2)

    def test_hyperedge_ids_low_range(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        # neighbors of a hyperedge are all in the hypernode range
        for e in g.edge_range():
            assert all(n >= g.nrealedges for n in g.graph[e])
        for v in g.node_range():
            assert all(n < g.nrealedges for n in g.graph[v])


class TestIdMapping:
    def test_roundtrip(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        assert g.adjoin_edge_id(3) == 3
        assert g.adjoin_node_id(0) == 4
        assert g.edge_id(3) == 3
        assert g.node_id(4) == 0

    def test_out_of_range(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        with pytest.raises(ValueError):
            g.adjoin_edge_id(4)
        with pytest.raises(ValueError):
            g.adjoin_node_id(9)
        with pytest.raises(ValueError):
            g.edge_id(4)
        with pytest.raises(ValueError):
            g.node_id(3)

    def test_is_hyperedge(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        assert g.is_hyperedge(0) and g.is_hyperedge(3)
        assert not g.is_hyperedge(4)
        mask = g.is_hyperedge(np.array([0, 4, 12]))
        assert mask.tolist() == [True, False, False]


class TestSplitResult:
    def test_split(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        res = np.arange(13)
        e, v = g.split_result(res)
        assert e.tolist() == [0, 1, 2, 3]
        assert v.tolist() == list(range(4, 13))

    def test_split_length_checked(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        with pytest.raises(ValueError, match="length"):
            g.split_result(np.arange(5))


class TestMatrixStructure:
    def test_block_structure(self, paper_el):
        """A_G = [[0, B^t], [B, 0]] — Fig. 4's block form."""
        g = AdjoinGraph.from_biedgelist(paper_el)
        h = BiAdjacency.from_biedgelist(paper_el)
        a = adjoin_adjacency_matrix(g).toarray()
        ne = g.nrealedges
        assert np.all(a[:ne, :ne] == 0)
        assert np.all(a[ne:, ne:] == 0)
        upper = a[:ne, ne:]
        bi = h.edges.to_scipy().toarray()
        bi[bi > 0] = 1
        assert np.array_equal(upper, bi)

    def test_symmetric(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        assert is_symmetric(adjoin_adjacency_matrix(g))

    def test_matrix_from_biadjacency_equals_from_adjoin(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        h = BiAdjacency.from_biedgelist(paper_el)
        a1 = adjoin_adjacency_matrix(g).toarray()
        a2 = adjoin_adjacency_matrix(h).toarray()
        assert np.array_equal(a1, a2)


class TestDegrees:
    def test_degrees_split(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        h = BiAdjacency.from_biedgelist(paper_el)
        deg = g.degrees()
        assert deg[: g.nrealedges].tolist() == h.edge_sizes().tolist()
        assert deg[g.nrealedges:].tolist() == h.node_degrees().tolist()

    def test_isolated_nodes_kept(self):
        el = BiEdgeList([0], [0], n0=1, n1=5)
        g = AdjoinGraph.from_biedgelist(el)
        assert g.num_vertices() == 6
        assert g.degrees()[2:].tolist() == [0, 0, 0, 0]

"""CompressedCSR: delta+varint encoding must round-trip bit-exactly.

The compressed column is a transport/persistence format — every path
through it (full decode, per-row decode, adopt over foreign buffers)
must reproduce the source CSR exactly, or the determinism contract
breaks silently downstream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.biadjacency import BiAdjacency
from repro.structures.compressed import (
    CompressedCSR,
    varint_decode,
    varint_encode,
)
from repro.structures.csr import CSR
from repro.testing import random_hypergraph


def make_csr(seed: int = 3, weights: bool = False) -> CSR:
    h = BiAdjacency.from_biedgelist(
        random_hypergraph(seed=seed, num_edges=30, num_nodes=40)
    )
    csr = h.edges
    if weights:
        w = np.arange(csr.indices.size, dtype=np.float64) + 0.5
        csr = CSR.adopt(
            csr.indptr, csr.indices, w,
            num_targets=csr.num_targets(),
            sorted_rows=csr.has_sorted_rows,
        )
    return csr


class TestVarint:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.integers(0, 2**63 - 1), min_size=0, max_size=200
        )
    )
    def test_round_trip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        data = varint_encode(arr)
        out = varint_decode(data, arr.size)
        np.testing.assert_array_equal(out, arr)

    def test_boundary_values(self):
        arr = np.array(
            [0, 1, 127, 128, 16383, 16384, 2**32, 2**63 - 1], dtype=np.int64
        )
        np.testing.assert_array_equal(
            varint_decode(varint_encode(arr), arr.size), arr
        )

    def test_single_byte_density(self):
        """Deltas < 128 (the common CSR case) cost exactly one byte."""
        arr = np.arange(100, dtype=np.int64)
        assert varint_encode(arr).size == 100


class TestCompressedCSR:
    @pytest.mark.parametrize("weights", [False, True])
    def test_round_trip(self, weights):
        csr = make_csr(weights=weights)
        ccsr = CompressedCSR.from_csr(csr)
        back = ccsr.to_csr()
        np.testing.assert_array_equal(back.indptr, csr.indptr)
        np.testing.assert_array_equal(back.indices, csr.indices)
        if weights:
            np.testing.assert_array_equal(back.weights, csr.weights)
        else:
            assert back.weights is None
        assert back.num_targets() == csr.num_targets()
        assert back.has_sorted_rows == csr.has_sorted_rows

    def test_compress_method(self):
        csr = make_csr()
        ccsr = csr.compress()
        assert isinstance(ccsr, CompressedCSR)
        np.testing.assert_array_equal(ccsr.to_csr().indices, csr.indices)

    def test_decode_row_matches(self):
        csr = make_csr()
        ccsr = csr.compress()
        for row in range(csr.num_vertices()):
            lo, hi = csr.indptr[row], csr.indptr[row + 1]
            np.testing.assert_array_equal(
                ccsr.decode_row(row), csr.indices[lo:hi]
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), frac=st.floats(0.0, 1.0))
    def test_decode_rows_subset(self, seed, frac):
        csr = make_csr(seed=seed % 7)
        ccsr = csr.compress()
        rng = np.random.default_rng(seed)
        n = csr.num_vertices()
        ids = np.sort(
            rng.choice(n, size=max(0, int(n * frac)), replace=False)
        ).astype(np.int64)
        indices, counts = ccsr.decode_rows(ids)
        expected = np.concatenate(
            [csr.indices[csr.indptr[i]:csr.indptr[i + 1]] for i in ids]
        ) if ids.size else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(indices, expected)
        np.testing.assert_array_equal(
            counts, csr.indptr[ids + 1] - csr.indptr[ids]
        )

    def test_adopt_round_trip(self):
        csr = make_csr()
        ccsr = csr.compress()
        adopted = CompressedCSR.adopt(
            ccsr.indptr.copy(),
            ccsr.offsets.copy(),
            ccsr.data.copy(),
            None,
            num_targets=ccsr.num_targets(),
            sorted_rows=ccsr.has_sorted_rows,
        )
        np.testing.assert_array_equal(adopted.to_csr().indices, csr.indices)

    def test_unsorted_rows_rejected(self):
        indptr = np.array([0, 3], dtype=np.int64)
        indices = np.array([5, 2, 9], dtype=np.int64)
        csr = CSR.adopt(indptr, indices, num_targets=10, sorted_rows=False)
        with pytest.raises(ValueError, match="sorted"):
            CompressedCSR.from_csr(csr)

    def test_empty(self):
        csr = CSR.adopt(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_targets=0,
        )
        back = csr.compress().to_csr()
        assert back.num_vertices() == 0 and back.num_edges() == 0

    def test_empty_rows_interleaved(self):
        indptr = np.array([0, 0, 2, 2, 5], dtype=np.int64)
        indices = np.array([1, 7, 0, 3, 8], dtype=np.int64)
        csr = CSR.adopt(indptr, indices, num_targets=9)
        back = csr.compress().to_csr()
        np.testing.assert_array_equal(back.indptr, indptr)
        np.testing.assert_array_equal(back.indices, indices)

    def test_compression_shrinks_sorted_adjacency(self):
        csr = make_csr()
        ccsr = csr.compress()
        # delta+varint over sorted small-universe rows: ≤ ~2 bytes/index
        # vs 8 for int64 — the ratio is the reason the format exists
        assert ccsr.nbytes() < csr.indices.nbytes + csr.indptr.nbytes
        assert 0.0 < ccsr.ratio() < 1.0

    def test_degrees_and_dims_without_decode(self):
        csr = make_csr()
        ccsr = csr.compress()
        np.testing.assert_array_equal(ccsr.degrees(), np.diff(csr.indptr))
        assert ccsr.num_vertices() == csr.num_vertices()
        assert ccsr.num_targets() == csr.num_targets()
        assert ccsr.num_edges() == csr.num_edges()

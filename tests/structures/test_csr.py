"""Unit tests for the CSR structure (range-of-ranges semantics)."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.structures.csr import CSR
from repro.structures.edgelist import EdgeList


def small() -> CSR:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {}
    return CSR.from_coo(np.array([0, 0, 1]), np.array([1, 2, 2]),
                        num_sources=3, num_targets=3)


class TestConstruction:
    def test_from_coo_counting_sort(self):
        g = small()
        assert g.num_vertices() == 3
        assert g.num_edges() == 3
        assert g[0].tolist() == [1, 2]
        assert g[1].tolist() == [2]
        assert g[2].tolist() == []

    def test_from_coo_rows_sorted(self):
        g = CSR.from_coo(np.array([0, 0, 0]), np.array([5, 1, 3]))
        assert g[0].tolist() == [1, 3, 5]
        assert g.has_sorted_rows

    def test_weights_follow_sort(self):
        g = CSR.from_coo(
            np.array([0, 0]), np.array([5, 1]), weights=np.array([9.0, 2.0])
        )
        assert g[0].tolist() == [1, 5]
        assert g.row_weights(0).tolist() == [2.0, 9.0]

    def test_indptr_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            CSR(np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSR(np.array([0, 2, 1, 2]), np.array([0, 1]))

    def test_num_targets_validation(self):
        with pytest.raises(ValueError, match="num_targets"):
            CSR.from_coo(np.array([0]), np.array([5]), num_targets=3)

    def test_rectangular_supported(self):
        g = CSR.from_coo(np.array([0]), np.array([7]), num_sources=2,
                         num_targets=10)
        assert g.num_vertices() == 2
        assert g.num_targets() == 10

    def test_empty(self):
        g = CSR.empty(4, num_targets=6)
        assert g.num_vertices() == 4
        assert g.num_edges() == 0
        assert all(len(row) == 0 for row in g)

    def test_scipy_roundtrip(self):
        g = small()
        back = CSR.from_scipy(g.to_scipy())
        assert back == g

    def test_from_scipy_dedup(self):
        m = sp.coo_matrix(
            (np.ones(3), (np.array([0, 0, 0]), np.array([1, 1, 2]))),
            shape=(2, 3),
        )
        g = CSR.from_scipy(m)
        assert g[0].tolist() == [1, 2]
        assert g.weights[0] == 2.0  # summed duplicates


class TestRangeOfRanges:
    def test_getitem_is_view(self):
        g = small()
        row = g[0]
        assert row.base is g.indices or row.base is not None

    def test_iteration_matches_indexing(self):
        g = small()
        assert [r.tolist() for r in g] == [g[i].tolist() for i in range(3)]

    def test_len(self):
        assert len(small()) == 3


class TestDegreesAndTransforms:
    def test_degrees(self):
        g = small()
        assert g.degrees().tolist() == [2, 1, 0]
        assert g.degree(0) == 2

    def test_transpose_involution(self):
        g = small()
        t = g.transpose()
        assert t.num_vertices() == 3
        assert t[2].tolist() == [0, 1]
        assert t.transpose() == g

    def test_transpose_rectangular(self):
        g = CSR.from_coo(np.array([0, 1]), np.array([4, 4]), num_sources=2,
                         num_targets=5)
        t = g.transpose()
        assert t.num_vertices() == 5
        assert t.num_targets() == 2
        assert t[4].tolist() == [0, 1]

    def test_sort_rows_noop_when_sorted(self):
        g = small()
        assert g.sort_rows() is g

    def test_sort_rows(self):
        g = CSR(np.array([0, 2]), np.array([3, 1]), sorted_rows=False)
        assert g.sort_rows()[0].tolist() == [1, 3]

    def test_sorted_detection(self):
        assert CSR(np.array([0, 2]), np.array([1, 3]))._check_sorted()
        assert not CSR(np.array([0, 2]), np.array([3, 1]))._check_sorted()
        # row boundary decrease is fine
        assert CSR(np.array([0, 1, 2]), np.array([5, 0]))._check_sorted()

    def test_permuted_square_only(self):
        g = CSR.from_coo(np.array([0]), np.array([1]), num_sources=2,
                         num_targets=5)
        with pytest.raises(ValueError, match="square"):
            g.permuted(np.array([0, 1]))

    def test_permuted_relabels_both_sides(self):
        g = small()
        perm = np.array([2, 0, 1])  # old->new
        p = g.permuted(perm)
        # edge (0,1) -> (2,0); (0,2) -> (2,1); (1,2) -> (0,1)
        assert p[2].tolist() == [0, 1]
        assert p[0].tolist() == [1]

    def test_to_edgelist_roundtrip(self):
        g = small()
        el = g.to_edgelist()
        assert isinstance(el, EdgeList)
        back = CSR.from_coo(el.src, el.dst, num_sources=3, num_targets=3)
        assert back == g

    def test_neighborhood_pairs(self):
        src, dst = small().neighborhood_pairs()
        assert src.tolist() == [0, 0, 1]
        assert dst.tolist() == [1, 2, 2]

"""Unit tests for the two-index-set (bi-adjacency) representation."""

import numpy as np
import pytest

from repro.structures.biadjacency import BiAdjacency, biadjacency
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList

from ..conftest import PAPER_MEMBERS, make_biedgelist


class TestConstruction:
    def test_from_biedgelist_mutual_indexing(self, paper_el):
        h = BiAdjacency.from_biedgelist(paper_el)
        assert h.vertex_cardinality == (4, 9)
        assert h.members(0).tolist() == [0, 1, 2]
        assert h.memberships(2).tolist() == [0, 1, 2, 3]
        assert h.num_incidences() == sum(len(m) for m in PAPER_MEMBERS)

    def test_nodes_derived_by_transpose(self):
        edges = CSR.from_coo(np.array([0, 0, 1]), np.array([0, 1, 1]),
                             num_sources=2, num_targets=2)
        h = BiAdjacency(edges)
        assert h.memberships(1).tolist() == [0, 1]

    def test_incidence_count_mismatch_rejected(self):
        edges = CSR.from_coo(np.array([0]), np.array([0]))
        nodes = CSR.from_coo(np.array([0, 0]), np.array([0, 0]))
        with pytest.raises(ValueError, match="disagree"):
            BiAdjacency(edges, nodes)

    def test_node_csr_too_small_rejected(self):
        edges = CSR.from_coo(np.array([0]), np.array([5]))
        nodes = CSR.from_coo(np.array([0]), np.array([0]))
        with pytest.raises(ValueError, match="too small"):
            BiAdjacency(edges, nodes)

    def test_from_arrays(self):
        h = BiAdjacency.from_arrays([0, 0, 1], [0, 1, 1])
        assert h.vertex_cardinality == (2, 2)

    def test_from_hyperedge_lists(self):
        h = BiAdjacency.from_hyperedge_lists([[0, 1], [1, 2]])
        assert h.vertex_cardinality == (2, 3)
        assert h.members(1).tolist() == [1, 2]


class TestQueries:
    def test_degrees(self, paper_h):
        assert paper_h.edge_sizes().tolist() == [3, 3, 6, 4]
        # hand-derived node degrees for the running example
        assert paper_h.node_degrees().tolist() == [2, 3, 4, 2, 1, 1, 1, 1, 1]

    def test_iteration_is_over_hyperedges(self, paper_h):
        rows = [r.tolist() for r in paper_h]
        assert rows[0] == [0, 1, 2]
        assert len(rows) == 4

    def test_dual_swaps_roles(self, paper_h):
        d = paper_h.dual()
        assert d.vertex_cardinality == (9, 4)
        assert d.members(2).tolist() == [0, 1, 2, 3]
        # dual of dual is the original
        dd = d.dual()
        assert dd.edges == paper_h.edges

    def test_neighbors_of_edge(self, paper_h):
        # e0 overlaps e1, e2, e3 (≥1); with min_overlap=2 only e1, e3;
        # with 3 only e3 — hand-derived
        assert paper_h.neighbors_of_edge(0).tolist() == [1, 2, 3]
        assert paper_h.neighbors_of_edge(0, min_overlap=2).tolist() == [1, 3]
        assert paper_h.neighbors_of_edge(0, min_overlap=3).tolist() == [3]

    def test_neighbors_of_empty_edge(self):
        h = BiAdjacency.from_biedgelist(BiEdgeList([1], [0], n0=2, n1=1))
        assert paper_len(h.neighbors_of_edge(0)) == 0


def paper_len(a: np.ndarray) -> int:
    return int(a.size)


class TestListing2Constructor:
    def test_biadjacency_part0_part1(self, paper_el):
        edges = biadjacency(paper_el, 0)
        nodes = biadjacency(paper_el, 1)
        assert edges.num_vertices() == 4
        assert nodes.num_vertices() == 9
        assert edges.transpose() == nodes

    def test_bad_part(self, paper_el):
        with pytest.raises(ValueError, match="part"):
            biadjacency(paper_el, 2)


class TestConsistency:
    def test_edges_nodes_are_transposes(self, paper_h):
        assert paper_h.edges.transpose() == paper_h.nodes
        assert paper_h.nodes.transpose() == paper_h.edges

    def test_incidences_conserved(self, random_h):
        assert random_h.edges.num_edges() == random_h.nodes.num_edges()
        assert (
            random_h.edge_sizes().sum() == random_h.node_degrees().sum()
        )

    def test_hyperedge_lists_roundtrip(self, paper_h):
        members = [paper_h.members(e).tolist() for e in range(4)]
        h2 = BiAdjacency.from_hyperedge_lists(members, num_nodes=9)
        assert h2.edges == paper_h.edges

"""Unit tests for EdgeList / BiEdgeList."""

import numpy as np
import pytest

from repro.structures.edgelist import BiEdgeList, EdgeList


class TestEdgeList:
    def test_basic_construction(self):
        el = EdgeList([0, 1, 2], [1, 2, 0])
        assert len(el) == 3
        assert el.num_vertices() == 3
        assert el.num_edges() == 3
        assert list(el) == [(0, 1), (1, 2), (2, 0)]

    def test_empty(self):
        el = EdgeList()
        assert len(el) == 0
        assert el.num_vertices() == 0

    def test_explicit_num_vertices(self):
        el = EdgeList([0], [1], num_vertices=10)
        assert el.num_vertices() == 10

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            EdgeList([0, 5], [1, 2], num_vertices=3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            EdgeList([0, 1], [1])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EdgeList([-1], [0])

    def test_weights_length_checked(self):
        with pytest.raises(ValueError, match="weights"):
            EdgeList([0], [1], weights=[1.0, 2.0])

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            EdgeList(np.zeros((2, 2), dtype=np.int64), [0, 1])

    def test_symmetrize_doubles_edges(self):
        el = EdgeList([0, 1], [1, 2], weights=[3.0, 4.0]).symmetrize()
        assert len(el) == 4
        assert set(el) == {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert el.weights is not None and el.weights.sum() == 14.0

    def test_deduplicate_keeps_first_weight(self):
        el = EdgeList([0, 0, 1], [1, 1, 2], weights=[5.0, 9.0, 1.0])
        dd = el.deduplicate()
        assert len(dd) == 2
        assert dd.weights.tolist() == [5.0, 1.0]

    def test_deduplicate_empty(self):
        assert len(EdgeList(num_vertices=4).deduplicate()) == 0

    def test_relabeled_roundtrip(self):
        el = EdgeList([0, 1, 2], [1, 2, 0])
        perm = np.array([2, 0, 1])
        rl = el.relabeled(perm)
        assert set(rl) == {(2, 0), (0, 1), (1, 2)}
        inv = np.empty(3, dtype=np.int64)
        inv[perm] = np.arange(3)
        assert set(rl.relabeled(inv)) == set(el)

    def test_relabeled_size_check(self):
        with pytest.raises(ValueError, match="permutation"):
            EdgeList([0], [1]).relabeled(np.array([0]))

    def test_sorted_by(self):
        el = EdgeList([2, 0, 1], [0, 1, 2])
        s = el.sorted_by(np.argsort(el.src))
        assert s.src.tolist() == [0, 1, 2]

    def test_equality_semantics(self):
        a = EdgeList([0, 1], [1, 0])
        b = EdgeList([0, 1], [1, 0])
        c = EdgeList([0, 1], [1, 0], weights=[1.0, 1.0])
        assert a == b
        assert a != c
        assert (a == 42) is False or a.__eq__(42) is NotImplemented


class TestBiEdgeList:
    def test_cardinalities_inferred(self):
        el = BiEdgeList([0, 1, 2], [5, 6, 7])
        assert el.vertex_cardinality == (3, 8)
        assert el.num_vertices(0) == 3
        assert el.num_vertices(1) == 8
        assert el.num_vertices() == 11

    def test_bad_part_rejected(self):
        with pytest.raises(ValueError, match="part"):
            BiEdgeList([0], [0]).num_vertices(2)

    def test_declared_cardinality_checked(self):
        with pytest.raises(ValueError, match="cardinality"):
            BiEdgeList([0, 5], [0, 0], n0=2)

    def test_swapped_is_dual(self):
        el = BiEdgeList([0, 0, 1], [1, 2, 2], n0=2, n1=3)
        dual = el.swapped()
        assert dual.vertex_cardinality == (3, 2)
        assert set(dual) == {(1, 0), (2, 0), (2, 1)}

    def test_swapped_involution(self):
        el = BiEdgeList([0, 1], [1, 0], n0=2, n1=2)
        back = el.swapped().swapped()
        assert set(back) == set(el)
        assert back.vertex_cardinality == el.vertex_cardinality

    def test_to_adjoin_shifts_part1(self):
        el = BiEdgeList([0, 1], [0, 1], n0=2, n1=3)
        adj = el.to_adjoin_edgelist()
        assert adj.num_vertices() == 5
        assert set(adj) == {(0, 2), (1, 3)}

    def test_deduplicate(self):
        el = BiEdgeList([0, 0, 0], [1, 1, 2])
        assert len(el.deduplicate()) == 2

    def test_iteration(self):
        el = BiEdgeList([3], [4])
        assert list(el) == [(3, 4)]

"""Unit tests for matrix views (incidence, dual, overlap, adjoin)."""

import numpy as np

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList
from repro.structures.matrices import (
    biadjacency_matrix,
    dual_incidence_matrix,
    incidence_matrix,
    is_symmetric,
    overlap_matrix,
)

from ..conftest import PAPER_MEMBERS, PAPER_OVERLAPS


def test_incidence_shape_and_entries(paper_h):
    b = incidence_matrix(paper_h)
    assert b.shape == (9, 4)  # hypernodes × hyperedges (Eq. 4)
    for e, members in enumerate(PAPER_MEMBERS):
        col = b.getcol(e).toarray().ravel()
        assert set(np.flatnonzero(col)) == set(members)
        assert np.all(col[col > 0] == 1)


def test_incidence_weighted(paper_el):
    el = BiEdgeList(
        paper_el.part0, paper_el.part1,
        weights=np.arange(1, len(paper_el) + 1, dtype=float),
        n0=4, n1=9,
    )
    h = BiAdjacency.from_biedgelist(el)
    b = incidence_matrix(h, weighted=True)
    assert b.data.max() > 1.0


def test_dual_is_transpose(paper_h):
    b = incidence_matrix(paper_h)
    bd = dual_incidence_matrix(paper_h)
    assert bd.shape == (4, 9)
    assert np.array_equal(bd.toarray(), b.toarray().T)


def test_biadjacency_matrix_orientation(paper_h):
    m = biadjacency_matrix(paper_h)
    assert m.shape == (4, 9)  # hyperedges × hypernodes
    assert np.array_equal(m.toarray(), incidence_matrix(paper_h).toarray().T)


def test_overlap_matrix_matches_hand_counts(paper_h):
    ov = overlap_matrix(paper_h).toarray()
    assert is_symmetric(overlap_matrix(paper_h))
    # diagonal holds edge sizes
    assert np.array_equal(np.diag(ov), [3, 3, 6, 4])
    for e, f, c in PAPER_OVERLAPS:
        assert ov[e, f] == c, (e, f)


def test_overlap_matrix_dual_counts_shared_edges(paper_h):
    ov = overlap_matrix(paper_h, dual=True).toarray()
    assert ov.shape == (9, 9)
    # nodes 1 and 2 share e0, e1, e3 -> 3
    assert ov[1, 2] == 3
    # node degrees on the diagonal
    assert np.array_equal(np.diag(ov), paper_h.node_degrees())


def test_is_symmetric_tolerance():
    from scipy import sparse as sp

    m = sp.csr_matrix(np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]]))
    assert not is_symmetric(m)
    assert is_symmetric(m, tol=1e-9)

"""The running example, end to end, with hand-derived ground truth.

Mirrors the paper's Figures 1–5 narrative: one hypergraph taken through
every representation and algorithm, with expectations computed BY HAND (not
by any code in this repository):

    e0 = {0, 1, 2}
    e1 = {1, 2, 3}
    e2 = {2, 3, 4, 5, 7, 8}
    e3 = {0, 1, 2, 6}

Overlaps: |e0∩e1|=2, |e0∩e2|=1, |e0∩e3|=3, |e1∩e2|=2, |e1∩e3|=2,
|e2∩e3|=1.  (The paper's figure example is not fully recoverable from the
text; this is an analogous 4-edge/9-node instance — see DESIGN.md.)
"""

import numpy as np

from repro import NWHypergraph
from repro.structures.adjoin import AdjoinGraph
from repro.structures.matrices import (
    adjoin_adjacency_matrix,
    incidence_matrix,
)

from .conftest import PAPER_MEMBERS


def hg() -> NWHypergraph:
    return NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)


def test_fig1_incidence_matrix():
    """Figure 1/2: the incidence structure, hand-transcribed."""
    b = incidence_matrix(hg().biadjacency).toarray().astype(int)
    expect = np.zeros((9, 4), dtype=int)
    for e, mem in enumerate(PAPER_MEMBERS):
        for v in mem:
            expect[v, e] = 1
    assert np.array_equal(b, expect)
    # dual (§II-C): transpose
    from repro.structures.matrices import dual_incidence_matrix

    assert np.array_equal(
        dual_incidence_matrix(hg().biadjacency).toarray().astype(int),
        expect.T,
    )


def test_fig3_adjoin_single_index_set():
    """Figure 3: hyperedges keep IDs 0–3, hypernodes become 4–12."""
    h = hg()
    g = h.adjoin_graph
    assert g.nrealedges == 4
    assert g.nrealnodes == 9
    assert list(g.edge_range()) == [0, 1, 2, 3]
    assert list(g.node_range()) == list(range(4, 13))
    # e0 = {0,1,2} -> adjoin neighbors {4,5,6}
    assert g.graph[0].tolist() == [4, 5, 6]


def test_fig4_adjoin_block_matrix():
    """Figure 4: A_G = [[0, Bᵗ], [B, 0]], symmetric and sparse."""
    h = hg()
    a = adjoin_adjacency_matrix(h.adjoin_graph).toarray().astype(int)
    assert np.array_equal(a, a.T)
    assert np.all(a[:4, :4] == 0)
    assert np.all(a[4:, 4:] == 0)
    b = incidence_matrix(h.biadjacency).toarray().astype(int)
    assert np.array_equal(a[4:, :4], b)


def test_fig5_three_s_line_graphs():
    """Figure 5: the s = 1, 2, 3 line graphs, with edge strengths."""
    h = hg()
    s1 = h.s_linegraph(1)
    assert set(zip(s1.edgelist.src.tolist(), s1.edgelist.dst.tolist())) == {
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
    }
    weights = {
        (a, b): int(w)
        for a, b, w in zip(
            s1.edgelist.src.tolist(),
            s1.edgelist.dst.tolist(),
            s1.edgelist.weights,
        )
    }
    assert weights == {
        (0, 1): 2, (0, 2): 1, (0, 3): 3, (1, 2): 2, (1, 3): 2, (2, 3): 1
    }
    s2 = h.s_linegraph(2)
    assert set(zip(s2.edgelist.src.tolist(), s2.edgelist.dst.tolist())) == {
        (0, 1), (0, 3), (1, 2), (1, 3)
    }
    s3 = h.s_linegraph(3)
    assert set(zip(s3.edgelist.src.tolist(), s3.edgelist.dst.tolist())) == {
        (0, 3)
    }


def test_exact_cc_single_component():
    e_lab, n_lab = hg().connected_components()
    assert e_lab.tolist() == [0, 0, 0, 0]
    assert n_lab.tolist() == [0] * 9


def test_exact_bfs_from_node2():
    """Hand-traced: node 2 belongs to every hyperedge."""
    edge_dist, node_dist = hg().bfs(2)
    assert edge_dist.tolist() == [1, 1, 1, 1]
    assert node_dist.tolist() == [2, 2, 0, 2, 2, 2, 2, 2, 2]


def test_toplexes_e0_subsumed():
    """e0 ⊂ e3, everything else maximal."""
    assert hg().toplexes().tolist() == [1, 2, 3]


def test_s2_metrics_hand_traced():
    """s=2 line graph is the path-ish graph 2–1–0–3 plus edge 1–3:
    vertices {0,1,3} form a triangle, 2 hangs off 1."""
    lg = hg().s_linegraph(2)
    assert lg.s_degree(1) == 3
    assert lg.s_distance(2, 3) == 2
    assert lg.s_path(2, 0) in ([2, 1, 0],)
    # betweenness (unnormalized, undirected): only vertex 1 is on shortest
    # paths (2->0 via 1, 2->3 via 1) -> bc(1) = 2
    bc = lg.s_betweenness_centrality(normalized=False)
    assert bc.tolist() == [0.0, 2.0, 0.0, 0.0]
    # eccentricities: 0:2, 1:1, 2:2, 3:2
    assert lg.s_eccentricity().tolist() == [2.0, 1.0, 2.0, 2.0]


def test_adjoin_and_bipartite_agree_everywhere():
    h = hg()
    for src in range(9):
        a = h.bfs(src, representation="adjoin")
        b = h.bfs(src, representation="bipartite")
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

"""Smoke-run every example script (keeps docs/examples executable)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "spectral_cut.py",
    "author_paper_network.py",
    "representations_tour.py",
    "datasets_table.py",
    "snap_pipeline.py",
    "iteration_styles.py",
    "service_session.py",
]


@pytest.mark.parametrize("script", FAST)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_scaling_study_runs_on_small_dataset(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["scaling_study.py", "orkut-group"])
    runpy.run_path(str(EXAMPLES / "scaling_study.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Figure 7" in out and "Figure 9" in out
    assert "AdjoinCC" in out and "Hashmap" in out


def test_lazy_queries_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["lazy_queries.py"])
    runpy.run_path(str(EXAMPLES / "lazy_queries.py"), run_name="__main__")
    assert "lazy" in capsys.readouterr().out


def test_s_measure_sweep_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["s_measure_sweep.py", "orkut-group"])
    runpy.run_path(str(EXAMPLES / "s_measure_sweep.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "edges" in out and "clust" in out


def test_schedule_trace_runs(capsys, monkeypatch, tmp_path):
    monkeypatch.setattr(sys, "argv", ["schedule_trace.py", str(tmp_path)])
    runpy.run_path(str(EXAMPLES / "schedule_trace.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "static_blocked" in out
    assert (tmp_path / "trace_stealing_cyclic.json").exists()


def test_every_example_has_a_smoke_test():
    """New example scripts must be added to this module."""
    covered = set(FAST) | {
        "scaling_study.py", "lazy_queries.py", "s_measure_sweep.py",
        "schedule_trace.py",
    }
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == covered, on_disk.symmetric_difference(covered)

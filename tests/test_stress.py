"""Stress tests — large inputs that catch vectorization regressions.

Everything here must stay comfortably fast (a few seconds): these sizes
only work because the hot paths are O(incidences) NumPy kernels.  A
per-element Python loop sneaking into a kernel makes these time out long
before CI does.
"""

import numpy as np

from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hypercc import hypercc
from repro.graph.bfs import bfs_direction_optimizing
from repro.io.generators import uniform_random_hypergraph
from repro.linegraph import linegraph_csr, slinegraph_hashmap, slinegraph_matrix
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

N_EDGES = 50_000
EDGE_SIZE = 10


def big() -> BiAdjacency:
    el = uniform_random_hypergraph(
        num_edges=N_EDGES, num_nodes=N_EDGES, edge_size=EDGE_SIZE, seed=77
    )
    return BiAdjacency.from_biedgelist(el), el


def test_large_construction_agrees_with_oracle():
    h, _ = big()
    assert h.num_incidences() == N_EDGES * EDGE_SIZE
    got = slinegraph_hashmap(h, 2)
    ref = slinegraph_matrix(h, 2)
    assert got == ref


def test_large_cc_both_representations():
    h, el = big()
    g = AdjoinGraph.from_biedgelist(el)
    e1, n1 = hypercc(h)
    e2, n2 = adjoincc(g)
    assert np.array_equal(e1, e2)
    assert np.array_equal(n1, n2)
    # Rand1-style density -> one giant component
    assert np.all(e1 == 0)


def test_large_bfs_covers_giant_component():
    h, el = big()
    g = AdjoinGraph.from_biedgelist(el)
    dist, _ = bfs_direction_optimizing(g.graph, g.adjoin_node_id(0))
    assert (dist >= 0).mean() > 0.99


def test_large_linegraph_metrics_run():
    h, _ = big()
    lg = linegraph_csr(slinegraph_hashmap(h, 3))
    from repro.graph.cc import connected_components

    labels = connected_components(lg)
    assert labels.size == N_EDGES

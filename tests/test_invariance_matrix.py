"""Execution-configuration invariance matrix.

The contract of the simulated runtime (DESIGN.md §5): *computed values*
never depend on thread count, scheduler, partitioner, grain, or body
execution order — only the simulated timings do.  This module sweeps the
full configuration cross-product over each algorithm family and asserts
byte-identical results.
"""

import numpy as np
import pytest

from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hyperbfs import hyperbfs_direction_optimizing
from repro.algorithms.hypercc import hypercc
from repro.algorithms.toplex import toplexes
from repro.baselines.hygra import hygra_cc
from repro.linegraph import slinegraph_queue_hashmap, slinegraph_queue_intersection
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from .conftest import random_biedgelist

CONFIGS = [
    dict(num_threads=1, scheduler="static", partitioner="blocked", grain=1),
    dict(num_threads=3, scheduler="static", partitioner="cyclic", grain=2),
    dict(num_threads=7, scheduler="work_stealing", partitioner="blocked",
         grain=4),
    dict(num_threads=16, scheduler="work_stealing", partitioner="cyclic",
         grain=8, execution_order="shuffled", seed=11),
    dict(num_threads=16, scheduler="work_stealing", partitioner="cyclic",
         grain=8, execution_order="shuffled", seed=99),
]


@pytest.fixture(scope="module")
def inputs():
    el = random_biedgelist(seed=13, num_edges=50, num_nodes=70, max_size=6)
    return BiAdjacency.from_biedgelist(el), AdjoinGraph.from_biedgelist(el)


def _runs(fn):
    """Run fn under every config; return list of results."""
    return [fn(ParallelRuntime(**cfg)) for cfg in CONFIGS]


def _all_equal_pairs(results):
    first = results[0]
    for other in results[1:]:
        assert np.array_equal(first[0], other[0])
        assert np.array_equal(first[1], other[1])


def test_hypercc_invariant(inputs):
    h, _ = inputs
    _all_equal_pairs(_runs(lambda rt: hypercc(h, runtime=rt)))


def test_adjoincc_invariant(inputs):
    _, g = inputs
    for alg in ("afforest", "label_propagation"):
        _all_equal_pairs(_runs(lambda rt: adjoincc(g, alg, runtime=rt)))


def test_hygracc_invariant(inputs):
    h, _ = inputs
    _all_equal_pairs(_runs(lambda rt: hygra_cc(h, runtime=rt)))


def test_bfs_distances_invariant(inputs):
    h, _ = inputs
    results = _runs(
        lambda rt: hyperbfs_direction_optimizing(h, 0, runtime=rt)
    )
    # distances are schedule-invariant (parents may legitimately differ)
    first = results[0]
    for other in results[1:]:
        assert np.array_equal(first[0], other[0])
        assert np.array_equal(first[1], other[1])


def test_queue_constructions_invariant(inputs):
    h, g = inputs
    for fn in (slinegraph_queue_hashmap, slinegraph_queue_intersection):
        for rep in (h, g):
            results = [
                fn(rep, 2, runtime=ParallelRuntime(**cfg)) for cfg in CONFIGS
            ]
            assert all(r == results[0] for r in results[1:])


def test_toplexes_invariant(inputs):
    h, _ = inputs
    results = _runs(lambda rt: toplexes(h, runtime=rt))
    assert all(np.array_equal(results[0], r) for r in results[1:])


def test_timings_are_deterministic_per_config(inputs):
    """Same config, same input -> identical simulated makespan."""
    h, _ = inputs
    for cfg in CONFIGS:
        spans = []
        for _ in range(2):
            rt = ParallelRuntime(**cfg)
            rt.new_run()
            hypercc(h, runtime=rt)
            spans.append(rt.makespan)
        assert spans[0] == spans[1]

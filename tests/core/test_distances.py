"""NWHypergraph distance conveniences (edge/node distance, diameter)."""

import networkx as nx
import pytest

from repro import NWHypergraph

from ..conftest import PAPER_MEMBERS


@pytest.fixture
def hg():
    return NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)


class TestEdgeDistance:
    def test_matches_slinegraph(self, hg):
        for s in (1, 2, 3):
            lg = hg.s_linegraph(s)
            for src in range(4):
                for dest in range(4):
                    assert hg.edge_distance(src, dest, s) == lg.s_distance(
                        src, dest
                    )

    def test_self(self, hg):
        assert hg.edge_distance(2, 2) == 0


class TestNodeDistance:
    def test_adjacent_nodes(self, hg):
        # nodes 0 and 1 share e0 -> distance 1
        assert hg.node_distance(0, 1) == 1
        # nodes 0 and 4: 0 in {e0,e3}, 4 in {e2}; via node 2/3 -> 2
        assert hg.node_distance(0, 4) == 2

    def test_matches_clique_expansion(self, hg):
        ce = hg.clique_expansion()
        G = ce.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(G))
        for u in range(9):
            for v in range(9):
                expect = lengths[u].get(v, -1)
                assert hg.node_distance(u, v) == expect

    def test_high_s_disconnects(self, hg):
        # nodes 0, 3 share no pair of >= 3 common hyperedges
        assert hg.node_distance(0, 3, s=3) == -1


class TestDiameter:
    def test_node_diameter(self, hg):
        ce = hg.clique_expansion()
        G = ce.to_networkx()
        expect = max(
            max(nx.eccentricity(G.subgraph(c)).values())
            for c in nx.connected_components(G)
        )
        assert hg.diameter("node") == expect

    def test_edge_diameter(self, hg):
        lg = hg.s_linegraph(1)
        assert hg.diameter("edge") == lg.s_diameter()
        assert hg.diameter("edge", s=2) == hg.s_linegraph(2).s_diameter()

    def test_bad_kind(self, hg):
        with pytest.raises(ValueError, match="kind"):
            hg.diameter("hyperloop")

    def test_disconnected_singletons(self):
        h = NWHypergraph.from_hyperedge_lists([[0], [1]])
        assert h.diameter("edge") == 0
        assert h.diameter("node") == 0

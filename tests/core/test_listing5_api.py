"""The paper's Listing 5, executed verbatim against our API."""

import numpy as np
import pytest

from repro import NWHypergraph


@pytest.fixture
def listing5():
    col = np.array([0, 0, 0, 1, 1, 1])
    row = np.array([0, 1, 2, 0, 1, 2])
    weight = np.array([1, 1, 1, 1, 1, 1])
    return NWHypergraph(row, col, weight)


def test_construction(listing5):
    # three hyperedges each containing hypernodes {0, 1}
    assert listing5.number_of_edges() == 3
    assert listing5.number_of_nodes() == 2
    assert listing5.edge_incidence(0).tolist() == [0, 1]


def test_s_linegraph_queries(listing5):
    s2lg = listing5.s_linegraph(s=2, over_edges=True)
    # every pair of hyperedges shares both nodes -> triangle
    assert s2lg.num_edges() == 3
    assert s2lg.is_s_connected() is True
    assert sorted(s2lg.s_neighbors(0).tolist()) == [1, 2]
    assert s2lg.s_degree(0) == 2
    scc = s2lg.s_connected_components()
    assert len(scc) == 1 and scc[0].tolist() == [0, 1, 2]
    assert s2lg.s_distance(src=0, dest=1) == 1
    assert s2lg.s_path(src=0, dest=1) == [0, 1]
    sbc = s2lg.s_betweenness_centrality(normalized=True)
    assert np.allclose(sbc, 0.0)  # triangle: no one is between
    assert np.allclose(s2lg.s_closeness_centrality(v=None), 1.0)
    assert np.allclose(s2lg.s_harmonic_closeness_centrality(v=None), 1.0)
    assert np.allclose(s2lg.s_eccentricity(v=None), 1.0)


def test_scalar_query_forms(listing5):
    s2lg = listing5.s_linegraph(s=2)
    assert s2lg.s_closeness_centrality(v=0) == pytest.approx(1.0)
    assert s2lg.s_harmonic_closeness_centrality(v=0) == pytest.approx(1.0)
    assert s2lg.s_eccentricity(v=0) == pytest.approx(1.0)


def test_s3_linegraph_empty(listing5):
    # hyperedges only have 2 members; s=3 graph has no edges
    s3 = listing5.s_linegraph(s=3)
    assert s3.num_edges() == 0
    assert s3.is_s_connected() is False
    assert s3.s_connected_components() == []
    assert s3.s_connected_components(return_singletons=True) != []
    assert s3.s_distance(0, 1) == -1
    assert s3.s_path(0, 1) == []


def test_distance_vertex_range_checked(listing5):
    lg = listing5.s_linegraph(2)
    with pytest.raises(ValueError, match="out of range"):
        lg.s_distance(0, 99)
    with pytest.raises(ValueError, match="out of range"):
        lg.s_path(-1, 0)


def test_weight_default_is_ones():
    col = np.array([0, 1])
    row = np.array([0, 0])
    hg = NWHypergraph(row, col)
    assert hg.weights is None or np.all(hg.weights == 1)

"""NWHypergraph unit tests (construction, degrees, dual, collapse, exact)."""

import numpy as np
import pytest

from repro import NWHypergraph

from ..conftest import PAPER_MEMBERS


@pytest.fixture
def hg():
    return NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)


class TestConstruction:
    def test_duplicate_incidences_dropped(self):
        h = NWHypergraph([0, 0, 0], [1, 1, 2])
        assert h.size(0) == 2

    def test_from_biadjacency_roundtrip(self, hg):
        h2 = NWHypergraph.from_biadjacency(hg.biadjacency)
        assert h2.number_of_edges() == hg.number_of_edges()
        assert np.array_equal(h2.row, hg.row)

    def test_explicit_cardinalities(self):
        h = NWHypergraph([0], [0], num_edges=5, num_nodes=7)
        assert h.number_of_edges() == 5
        assert h.number_of_nodes() == 7

    def test_row_col_properties(self, hg):
        assert hg.row.size == hg.col.size == sum(len(m) for m in PAPER_MEMBERS)


class TestDegreesAndSizes:
    def test_size_and_dim(self, hg):
        assert hg.size(2) == 6
        assert hg.dim(2) == 5

    def test_degree(self, hg):
        assert hg.degree(2) == 4

    def test_distributions(self, hg):
        assert hg.edge_size_dist() == {3: 2, 4: 1, 6: 1}
        dist = hg.node_degree_dist()
        assert dist[1] == 5 and dist[4] == 1

    def test_incidence_queries(self, hg):
        assert hg.edge_incidence(0).tolist() == [0, 1, 2]
        assert hg.node_incidence(3).tolist() == [1, 2]

    def test_neighbors(self, hg):
        # node 0 is in e0={0,1,2} and e3={0,1,2,6}
        assert hg.neighbors(0).tolist() == [1, 2, 6]

    def test_neighbors_isolated(self):
        h = NWHypergraph([0], [0], num_nodes=2)
        assert h.neighbors(1).size == 0


class TestSingletons:
    def test_detected(self):
        h = NWHypergraph([0, 1, 1, 2], [0, 1, 2, 2])
        # e0={0} with node 0 only in e0 -> singleton;
        # e2={2} but node 2 also in e1 -> not a singleton
        assert h.singletons().tolist() == [0]

    def test_none(self, hg):
        assert hg.singletons().size == 0


class TestDualAndCollapse:
    def test_dual_swaps(self, hg):
        d = hg.dual()
        assert d.number_of_edges() == 9
        assert d.number_of_nodes() == 4
        assert d.dual().edge_size_dist() == hg.edge_size_dist()

    def test_collapse_edges(self):
        h = NWHypergraph.from_hyperedge_lists([[0, 1], [2], [0, 1]])
        collapsed, classes = h.collapse_edges()
        assert collapsed.number_of_edges() == 2
        assert classes == {0: [0, 2], 1: [1]}

    def test_collapse_nodes(self):
        # nodes 0 and 1 belong to exactly the same edges
        h = NWHypergraph.from_hyperedge_lists([[0, 1, 2], [0, 1]])
        collapsed, classes = h.collapse_nodes()
        assert collapsed.number_of_nodes() == 2
        assert classes[0] == [0, 1]

    def test_collapse_nodes_and_edges(self):
        # nodes 0,1,2 share memberships {e0, e1}; edges 0,1 are duplicates
        h = NWHypergraph.from_hyperedge_lists([[0, 1, 2], [0, 1, 2], [3]])
        collapsed, edge_classes, node_classes = h.collapse_nodes_and_edges()
        assert node_classes[0] == [0, 1, 2]
        assert node_classes[1] == [3]
        assert edge_classes[0] == [0, 1]
        assert collapsed.number_of_edges() == 2
        assert collapsed.number_of_nodes() == 2

    def test_collapse_identity_when_unique(self, hg):
        collapsed, classes = hg.collapse_edges()
        assert collapsed.number_of_edges() == 4
        assert all(len(v) == 1 for v in classes.values())


class TestExactAlgorithms:
    def test_toplexes(self, hg):
        assert hg.toplexes().tolist() == [1, 2, 3]

    def test_cc_representations_agree(self, hg):
        for alg in ("afforest", "label_propagation"):
            e1, n1 = hg.connected_components("adjoin", alg)
            e2, n2 = hg.connected_components("bipartite")
            assert np.array_equal(e1, e2)
            assert np.array_equal(n1, n2)

    def test_bfs_representations_agree(self, hg):
        for src, is_edge in ((0, False), (2, True)):
            d1 = hg.bfs(src, is_edge, "adjoin")
            d2 = hg.bfs(src, is_edge, "bipartite")
            assert np.array_equal(d1[0], d2[0])
            assert np.array_equal(d1[1], d2[1])

    def test_bfs_source_range_checked(self, hg):
        with pytest.raises(ValueError, match="hypernode source"):
            hg.bfs(99)
        with pytest.raises(ValueError, match="hyperedge source"):
            hg.bfs(4, source_is_edge=True)

    def test_bad_representation(self, hg):
        with pytest.raises(ValueError):
            hg.connected_components("holographic")
        with pytest.raises(ValueError):
            hg.bfs(0, representation="holographic")


class TestApproximations:
    def test_s_linegraphs_ensemble(self, hg):
        graphs = hg.s_linegraphs([1, 2, 3])
        for s, lg in graphs.items():
            single = hg.s_linegraph(s)
            assert lg.edgelist == single.edgelist
            assert lg.s == s

    def test_edges_false_is_clique_side(self, hg):
        sc = hg.s_linegraph(1, over_edges=False)
        assert sc.num_vertices() == hg.number_of_nodes()
        assert sc.over_edges is False

    def test_clique_expansion_shortcut(self, hg):
        assert (
            hg.clique_expansion().edgelist
            == hg.s_linegraph(1, over_edges=False).edgelist
        )

    def test_algorithm_selection(self, hg):
        for alg in ("hashmap", "queue_hashmap", "matrix", "naive"):
            lg = hg.s_linegraph(2, algorithm=alg)
            assert lg.num_edges() == 4

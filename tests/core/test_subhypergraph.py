"""Subhypergraph operations, filtered degree, and networkx export."""

import networkx as nx
import numpy as np
import pytest

from repro import NWHypergraph

from ..conftest import PAPER_MEMBERS


@pytest.fixture
def hg():
    return NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)


class TestFilteredDegree:
    def test_unfiltered(self, hg):
        assert hg.degree(2) == 4

    def test_min_size(self, hg):
        # node 2 is in e0(3), e1(3), e2(6), e3(4)
        assert hg.degree(2, min_size=4) == 2
        assert hg.degree(2, min_size=7) == 0

    def test_max_size(self, hg):
        assert hg.degree(2, max_size=3) == 2

    def test_band(self, hg):
        assert hg.degree(2, min_size=4, max_size=4) == 1


class TestRestrictToEdges:
    def test_renumbers_edges(self, hg):
        sub = hg.restrict_to_edges([1, 3])
        assert sub.number_of_edges() == 2
        assert sub.edge_incidence(0).tolist() == sorted(PAPER_MEMBERS[1])
        assert sub.edge_incidence(1).tolist() == sorted(PAPER_MEMBERS[3])

    def test_preserves_node_space(self, hg):
        sub = hg.restrict_to_edges([0])
        assert sub.number_of_nodes() == 9
        assert sub.degree(8) == 0

    def test_empty_selection(self, hg):
        sub = hg.restrict_to_edges([])
        assert sub.number_of_edges() == 0
        assert sub.number_of_nodes() == 9

    def test_out_of_range(self, hg):
        with pytest.raises(ValueError, match="edge id"):
            hg.restrict_to_edges([9])


class TestRestrictToNodes:
    def test_drops_incidences(self, hg):
        sub = hg.restrict_to_nodes([0, 1, 2])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 4  # edge space preserved
        # e2 = {2,3,4,5,7,8} -> only node 2 survives (new id 2)
        assert sub.edge_incidence(2).tolist() == [2]

    def test_renumbering(self, hg):
        sub = hg.restrict_to_nodes([6, 2])
        # node 6 -> 0, node 2 -> 1 (order given)
        assert sub.edge_incidence(3).tolist() == [0, 1]

    def test_out_of_range(self, hg):
        with pytest.raises(ValueError, match="node id"):
            hg.restrict_to_nodes([100])


class TestToplexReduction:
    def test_drops_dominated(self, hg):
        reduced, tops = hg.toplex_reduction()
        assert tops.tolist() == [1, 2, 3]
        assert reduced.number_of_edges() == 3
        # reduced edge 2 is original e3
        assert reduced.edge_incidence(2).tolist() == sorted(PAPER_MEMBERS[3])

    def test_preserves_node_components(self, hg):
        reduced, _ = hg.toplex_reduction()
        _, full = hg.connected_components()
        _, red = reduced.connected_components()

        def partition(labels):
            groups = {}
            for v, lab in enumerate(labels.tolist()):
                groups.setdefault(lab, set()).add(v)
            return {frozenset(s) for s in groups.values()}

        assert partition(full) == partition(red)

    def test_idempotent(self, hg):
        reduced, _ = hg.toplex_reduction()
        again, tops2 = reduced.toplex_reduction()
        assert again.number_of_edges() == reduced.number_of_edges()
        assert tops2.tolist() == list(range(reduced.number_of_edges()))


class TestWeightedPublicAPI:
    def test_weighted_s_linegraph(self):
        rng = np.random.default_rng(0)
        rows = [0, 0, 1, 1, 2, 2]
        cols = [0, 1, 0, 2, 1, 2]
        w = rng.uniform(1, 3, 6)
        hg = NWHypergraph(rows, cols, w)
        lg_h = hg.s_linegraph(1, weighted=True, algorithm="hashmap")
        lg_m = hg.s_linegraph(1, weighted=True, algorithm="matrix")
        assert np.allclose(lg_h.edgelist.weights, lg_m.edgelist.weights)
        # weighted graphs differ from plain counts
        plain = hg.s_linegraph(1)
        assert not np.allclose(lg_h.edgelist.weights, plain.edgelist.weights)

    def test_requires_weights(self, hg):
        with pytest.raises(ValueError, match="incidence weights"):
            hg.s_linegraph(1, weighted=True)

    def test_unsupported_algorithm(self):
        h = NWHypergraph([0, 1], [0, 0], [1.0, 1.0])
        with pytest.raises(ValueError, match="weighted construction"):
            h.s_linegraph(1, weighted=True, algorithm="naive")


class TestAdjacencyMatrix:
    def test_symmetric_and_weighted(self, hg):
        lg = hg.s_linegraph(1)
        m = lg.s_adjacency_matrix()
        assert (m != m.T).nnz == 0
        assert m[0, 3] == 3.0  # |e0 ∩ e3|
        pattern = lg.s_adjacency_matrix(weighted=False)
        assert pattern.data.max() == 1.0
        assert pattern.nnz == m.nnz


class TestToNetworkx:
    def test_structure_and_weights(self, hg):
        lg = hg.s_linegraph(1)
        G = lg.to_networkx()
        assert G.number_of_nodes() == 4
        assert G.number_of_edges() == lg.num_edges()
        assert G[0][3]["weight"] == 3.0  # |e0 ∩ e3|

    def test_metrics_agree_via_export(self, hg):
        lg = hg.s_linegraph(2)
        G = lg.to_networkx()
        bc_nx = nx.betweenness_centrality(G, normalized=False)
        bc = lg.s_betweenness_centrality(normalized=False)
        assert np.allclose(bc, [bc_nx[v] for v in range(4)])

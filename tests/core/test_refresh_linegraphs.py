"""NWHypergraph.refresh_linegraphs: delta-aware memo refresh."""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.structures.edgelist import BiEdgeList

from ..conftest import PAPER_MEMBERS


def _swap_incidence(hg, new_members, num_nodes):
    """Emulate an in-place mutation: replace the incidence list."""
    row = [e for e, mem in enumerate(new_members) for _ in mem]
    col = [v for mem in new_members for v in mem]
    hg._el = BiEdgeList(
        row, col, n0=len(new_members), n1=num_nodes
    ).deduplicate()


def _mutated(members):
    out = [list(m) for m in members]
    removed = out[1]
    out[1] = []  # tombstone
    out.append([0, 8])  # append keeps IDs stable
    return out, {1, len(out) - 1}, set(removed) | {0, 8}


@pytest.fixture
def random_members():
    rng = np.random.default_rng(17)
    return [
        sorted(set(rng.integers(0, 80, size=rng.integers(2, 6)).tolist()))
        for _ in range(100)
    ]


class TestRefresh:
    def test_small_delta_patches_memo_entries(self, random_members):
        hg = NWHypergraph.from_hyperedge_lists(random_members, num_nodes=80)
        for s in (1, 2):
            hg.s_linegraph(s)
        hg.s_linegraph(1, over_edges=False)
        new_members, dirty_e, dirty_n = _mutated(random_members)
        _swap_incidence(hg, new_members, 80)
        out = hg.refresh_linegraphs(dirty_e, dirty_n)
        assert set(out.values()) == {"patch"}
        ref = NWHypergraph.from_hyperedge_lists(new_members, num_nodes=80)
        for (s, over_edges, algorithm, _w), how in out.items():
            got = hg.s_linegraph(
                s, over_edges=over_edges, algorithm=algorithm
            ).edgelist
            want = ref.s_linegraph(s, over_edges=over_edges).edgelist
            assert np.array_equal(got.src, want.src), (s, over_edges, how)
            assert np.array_equal(got.dst, want.dst)
            assert np.array_equal(got.weights, want.weights)

    def test_large_delta_rebuilds(self):
        hg = NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)
        hg.s_linegraph(1)
        new_members, dirty_e, dirty_n = _mutated(PAPER_MEMBERS)
        _swap_incidence(hg, new_members, 9)
        # 2 of 5 edges dirty: way past the default 10% threshold
        out = hg.refresh_linegraphs(dirty_e, dirty_n)
        assert out == {(1, True, "hashmap", False): "rebuild"}
        assert not hg._slg_memo  # dropped; rebuilt lazily on next access
        ref = NWHypergraph.from_hyperedge_lists(new_members, num_nodes=9)
        got = hg.s_linegraph(1).edgelist
        want = ref.s_linegraph(1).edgelist
        assert np.array_equal(got.src, want.src)

    def test_threshold_override_forces_patch(self):
        hg = NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)
        hg.s_linegraph(2)
        new_members, dirty_e, dirty_n = _mutated(PAPER_MEMBERS)
        _swap_incidence(hg, new_members, 9)
        out = hg.refresh_linegraphs(dirty_e, dirty_n, threshold=1.0)
        assert out == {(2, True, "hashmap", False): "patch"}
        ref = NWHypergraph.from_hyperedge_lists(new_members, num_nodes=9)
        got = hg.s_linegraph(2).edgelist
        want = ref.s_linegraph(2).edgelist
        assert np.array_equal(got.src, want.src)
        assert np.array_equal(got.weights, want.weights)

    def test_representations_are_rebuilt(self, random_members):
        hg = NWHypergraph.from_hyperedge_lists(random_members, num_nodes=80)
        hg.s_linegraph(1)
        stale_bi = hg.biadjacency
        new_members, dirty_e, dirty_n = _mutated(random_members)
        _swap_incidence(hg, new_members, 80)
        hg.refresh_linegraphs(dirty_e, dirty_n)
        assert hg.biadjacency is not stale_bi
        assert hg.biadjacency.num_hyperedges() == len(new_members)

    def test_empty_memo_is_a_noop(self):
        hg = NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        assert hg.refresh_linegraphs({0}) == {}

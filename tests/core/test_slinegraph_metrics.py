"""SLineGraph metric queries cross-checked against networkx.

The s-line graph is materialized, loaded into networkx, and every s_*
metric is compared against networkx's answer on the same graph.
"""

import networkx as nx
import numpy as np
import pytest

from repro import NWHypergraph

from ..conftest import random_biedgelist


@pytest.fixture(params=[0, 1])
def case(request):
    el = random_biedgelist(seed=request.param, num_edges=30, num_nodes=40,
                           max_size=6)
    hg = NWHypergraph(el.part0, el.part1, num_edges=30, num_nodes=40)
    lg = hg.s_linegraph(2)
    G = nx.Graph()
    G.add_nodes_from(range(lg.num_vertices()))
    G.add_edges_from(zip(lg.edgelist.src.tolist(), lg.edgelist.dst.tolist()))
    return lg, G


def test_components(case):
    lg, G = case
    got = {frozenset(c.tolist()) for c in lg.s_connected_components()}
    expect = {
        frozenset(c) for c in nx.connected_components(G) if len(c) > 1
    }
    assert got == expect


def test_components_with_singletons(case):
    lg, G = case
    got = {frozenset(c.tolist()) for c in
           lg.s_connected_components(return_singletons=True)}
    assert got == {frozenset(c) for c in nx.connected_components(G)}


def test_is_s_connected(case):
    lg, G = case
    live = [v for v in G if G.degree(v) > 0]
    expect = bool(live) and nx.is_connected(G.subgraph(live))
    assert lg.is_s_connected() == expect


def test_distances(case):
    lg, G = case
    lengths = dict(nx.all_pairs_shortest_path_length(G))
    n = lg.num_vertices()
    for src in range(0, n, 7):
        for dst in range(0, n, 5):
            assert lg.s_distance(src, dst) == lengths[src].get(dst, -1)


def test_paths_are_valid(case):
    lg, G = case
    lengths = dict(nx.all_pairs_shortest_path_length(G))
    for src in range(0, lg.num_vertices(), 9):
        for dst in range(0, lg.num_vertices(), 6):
            path = lg.s_path(src, dst)
            expect_len = lengths[src].get(dst, None)
            if expect_len is None:
                assert path == []
            else:
                assert len(path) == expect_len + 1
                assert path[0] == src and path[-1] == dst
                for a, b in zip(path, path[1:]):
                    assert G.has_edge(a, b)


def test_betweenness(case):
    lg, G = case
    expect = nx.betweenness_centrality(G, normalized=True)
    got = lg.s_betweenness_centrality(normalized=True)
    assert np.allclose(got, [expect[v] for v in range(lg.num_vertices())])


def test_closeness(case):
    lg, G = case
    expect = nx.closeness_centrality(G)
    got = lg.s_closeness_centrality()
    assert np.allclose(got, [expect[v] for v in range(lg.num_vertices())])


def test_harmonic(case):
    lg, G = case
    expect = nx.harmonic_centrality(G)
    got = lg.s_harmonic_closeness_centrality(normalized=False)
    assert np.allclose(got, [expect[v] for v in range(lg.num_vertices())])


def test_eccentricity(case):
    lg, G = case
    got = lg.s_eccentricity()
    for comp in nx.connected_components(G):
        expect = nx.eccentricity(G.subgraph(comp))
        for v in comp:
            assert got[v] == expect[v]


def test_eccentricity_vector_arg(case):
    lg, _ = case
    sub = lg.s_eccentricity(np.array([0, 1]))
    full = lg.s_eccentricity()
    assert sub.tolist() == [full[0], full[1]]


def test_s_diameter(case):
    lg, G = case
    live = [v for v in G if G.degree(v) > 0]
    if not live:
        assert lg.s_diameter() == 0
        return
    expect = max(
        max(nx.eccentricity(G.subgraph(c)).values())
        for c in nx.connected_components(G.subgraph(live))
    )
    assert lg.s_diameter() == expect


def test_neighbors_and_degree(case):
    lg, G = case
    for v in range(0, lg.num_vertices(), 3):
        assert sorted(lg.s_neighbors(v).tolist()) == sorted(G.neighbors(v))
        assert lg.s_degree(v) == G.degree(v)

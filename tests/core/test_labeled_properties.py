"""Property-based tests for LabeledHypergraph (hypothesis over label dicts)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeled import LabeledHypergraph

labels = st.one_of(
    st.text(min_size=1, max_size=6),
    st.integers(-100, 100),
    st.tuples(st.integers(0, 9), st.text(max_size=3)),
)


@st.composite
def labeled_dicts(draw):
    names = draw(st.lists(labels, min_size=1, max_size=8, unique=True))
    universe = draw(st.lists(labels, min_size=1, max_size=10, unique=True))
    return {
        name: draw(
            st.lists(st.sampled_from(universe), max_size=6, unique=True)
        )
        for name in names
    }


@settings(max_examples=50, deadline=None)
@given(labeled_dicts())
def test_dict_roundtrip(edges):
    lh = LabeledHypergraph.from_dict(edges)
    back = lh.to_dict()
    assert set(back) == set(edges)
    for name in edges:
        assert sorted(map(repr, back[name])) == sorted(map(repr, edges[name]))


@settings(max_examples=50, deadline=None)
@given(labeled_dicts())
def test_memberships_invert_members(edges):
    lh = LabeledHypergraph.from_dict(edges)
    for name, members in edges.items():
        for node in members:
            assert name in lh.memberships(node)
    for node in lh.node_labels:
        for name in lh.memberships(node):
            assert node in lh.members(name)


@settings(max_examples=50, deadline=None)
@given(labeled_dicts())
def test_degree_size_consistent(edges):
    lh = LabeledHypergraph.from_dict(edges)
    total_by_edges = sum(lh.size(name) for name in edges)
    total_by_nodes = sum(lh.degree(v) for v in lh.node_labels)
    assert total_by_edges == total_by_nodes


@settings(max_examples=30, deadline=None)
@given(labeled_dicts())
def test_components_cover_all_edges(edges):
    lh = LabeledHypergraph.from_dict(edges)
    comps = lh.connected_components()
    seen = [e for comp in comps for e in comp["edges"]]
    assert sorted(map(repr, seen)) == sorted(map(repr, edges))

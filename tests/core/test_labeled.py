"""LabeledHypergraph tests (named entities over the integer core)."""

import pytest

from repro.core.labeled import LabeledHypergraph

PAPERS = {
    "nwhy": ["liu", "firoz", "gebremedhin", "lumsdaine"],
    "hiPC21": ["liu", "firoz", "lumsdaine"],
    "aksoy20": ["aksoy", "joslyn", "praggastis"],
    "hygra": ["shun"],
    "dup-nwhy": ["liu", "firoz", "gebremedhin", "lumsdaine"],
}


@pytest.fixture
def lh():
    return LabeledHypergraph.from_dict(PAPERS)


class TestConstruction:
    def test_roundtrip_dict(self, lh):
        back = lh.to_dict()
        assert set(back) == set(PAPERS)
        for name, members in PAPERS.items():
            assert sorted(back[name]) == sorted(members)

    def test_label_order_deterministic(self, lh):
        assert lh.edge_labels[0] == "nwhy"
        assert lh.node_labels[0] == "liu"

    def test_ids_dense(self, lh):
        assert lh.edge_id("nwhy") == 0
        assert lh.node_id("shun") == lh.hypergraph.number_of_nodes() - 1

    def test_unknown_label(self, lh):
        with pytest.raises(KeyError, match="unknown label"):
            lh.edge_id("nonexistent")
        with pytest.raises(KeyError, match="unknown label"):
            lh.members("nonexistent")

    def test_nonstring_labels(self):
        lh = LabeledHypergraph.from_dict({(2020, "a"): [1.5, 2.5], 7: [1.5]})
        assert lh.size((2020, "a")) == 2
        assert lh.memberships(1.5) == [(2020, "a"), 7]


class TestQueries:
    def test_members_and_memberships(self, lh):
        assert sorted(lh.members("aksoy20")) == [
            "aksoy", "joslyn", "praggastis"
        ]
        assert lh.memberships("liu") == ["nwhy", "hiPC21", "dup-nwhy"]

    def test_degree_and_size(self, lh):
        assert lh.degree("liu") == 3
        assert lh.degree("liu", min_size=4) == 2  # nwhy + dup-nwhy
        assert lh.size("hygra") == 1

    def test_neighbors(self, lh):
        assert "firoz" in lh.neighbors("gebremedhin")
        assert "shun" not in lh.neighbors("liu")

    def test_toplexes(self, lh):
        tops = lh.toplexes()
        # hiPC21 ⊂ nwhy; dup-nwhy duplicates nwhy (first kept)
        assert set(tops) == {"nwhy", "aksoy20", "hygra"}


class TestSAnalytics:
    def test_s_neighbors(self, lh):
        assert set(lh.s_neighbors("nwhy", s=3)) == {"hiPC21", "dup-nwhy"}
        assert lh.s_neighbors("hygra", s=1) == []

    def test_s_distance(self, lh):
        assert lh.s_distance("nwhy", "dup-nwhy", s=4) == 1
        assert lh.s_distance("nwhy", "aksoy20", s=1) == -1
        assert lh.s_distance("nwhy", "nwhy", s=1) == 0

    def test_s_components(self, lh):
        comps = lh.s_connected_components(s=3)
        assert [sorted(c) for c in comps] == [
            sorted(["nwhy", "hiPC21", "dup-nwhy"])
        ]

    def test_s_betweenness(self, lh):
        bc = lh.s_betweenness_centrality(s=1, normalized=False)
        assert set(bc) == set(PAPERS)
        assert bc["hygra"] == 0.0

    def test_exact_components(self, lh):
        comps = lh.connected_components()
        assert len(comps) == 3
        by_edges = {frozenset(c["edges"]) for c in comps}
        assert frozenset(["nwhy", "hiPC21", "dup-nwhy"]) in by_edges
        assert frozenset(["hygra"]) in by_edges

"""s-metrics report tests (cross-checked against networkx on L_s)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.smetrics import (
    SMetricsReport,
    report_from_linegraph,
    s_metrics_report,
)
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


@pytest.fixture
def case():
    el = random_biedgelist(seed=5, num_edges=30, num_nodes=25, max_size=6)
    h = BiAdjacency.from_biedgelist(el)
    lg = slinegraph_matrix(h, 2)
    G = nx.Graph()
    G.add_nodes_from(range(lg.num_vertices()))
    G.add_edges_from(zip(lg.src.tolist(), lg.dst.tolist()))
    return h, linegraph_csr(lg), G


def test_component_fields(case):
    h, g, G = case
    rep = report_from_linegraph(g, 2)
    live_comps = [c for c in nx.connected_components(G) if len(c) > 1]
    assert rep.num_components == len(live_comps)
    assert rep.largest_component == max(
        (len(c) for c in live_comps), default=0
    )
    assert rep.num_isolated == sum(1 for v in G if G.degree(v) == 0)
    assert sorted(rep.component_sizes, reverse=True) == sorted(
        (len(c) for c in live_comps), reverse=True
    )


def test_distance_fields_exact_small(case):
    h, g, G = case
    rep = report_from_linegraph(g, 2)
    live_comps = [c for c in nx.connected_components(G) if len(c) > 1]
    if not live_comps:
        pytest.skip("no non-trivial component in this instance")
    big = max(live_comps, key=len)
    sub = G.subgraph(big)
    assert rep.diameter_largest == nx.diameter(sub)
    expect_avg = nx.average_shortest_path_length(sub)
    assert rep.avg_distance_largest == pytest.approx(expect_avg)


def test_density_and_degree(case):
    h, g, G = case
    rep = report_from_linegraph(g, 2)
    live = [v for v in G if G.degree(v) > 0]
    possible = len(live) * (len(live) - 1) / 2
    assert rep.density == pytest.approx(
        G.number_of_edges() / possible if possible else 0.0
    )
    assert rep.mean_s_degree == pytest.approx(
        np.mean([G.degree(v) for v in live]) if live else 0.0
    )


def test_clustering_field(case):
    h, g, G = case
    rep = report_from_linegraph(g, 2)
    live = [v for v in G if G.degree(v) > 0]
    expect = np.mean([nx.clustering(G, v) for v in live]) if live else 0.0
    assert rep.mean_clustering == pytest.approx(expect)


def test_report_dict_via_ensemble(case):
    h, _, _ = case
    reports = s_metrics_report(h, [1, 2, 3])
    assert sorted(reports) == [1, 2, 3]
    for s, rep in reports.items():
        assert isinstance(rep, SMetricsReport)
        assert rep.s == s
        assert rep.num_vertices == h.num_hyperedges()
    # monotonic: edges can only disappear as s grows
    assert (
        reports[1].num_edges >= reports[2].num_edges >= reports[3].num_edges
    )


def test_report_on_adjoin(case):
    h, _, _ = case
    src = np.repeat(np.arange(h.num_hyperedges()), h.edge_sizes())
    from repro.structures.edgelist import BiEdgeList

    el = BiEdgeList(src, h.edges.indices, n0=h.num_hyperedges(),
                    n1=h.num_hypernodes())
    g = AdjoinGraph.from_biedgelist(el)
    a = s_metrics_report(g, [2])[2]
    b = s_metrics_report(h, [2])[2]
    assert a == b


def test_empty_linegraph_report():
    from repro.structures.csr import CSR

    rep = report_from_linegraph(CSR.empty(5, num_targets=5), 3)
    assert rep.num_components == 0
    assert rep.largest_component == 0
    assert rep.num_isolated == 5
    assert rep.density == 0.0
    assert rep.diameter_largest == 0
    assert "s=3" in rep.summary()


def test_sampled_distances_reasonable():
    """Above the exact cap the diameter estimate is a lower bound and the
    average is close to the truth (star graph: diameter 2)."""
    from repro.core import smetrics
    from repro.structures.csr import CSR

    n = smetrics._EXACT_DISTANCE_CAP * 2
    src = np.concatenate([np.zeros(n - 1, dtype=np.int64),
                          np.arange(1, n, dtype=np.int64)])
    dst = np.concatenate([np.arange(1, n, dtype=np.int64),
                          np.zeros(n - 1, dtype=np.int64)])
    g = CSR.from_coo(src, dst, num_sources=n, num_targets=n)
    rep = report_from_linegraph(g, 1)
    assert rep.largest_component == n
    assert rep.diameter_largest == 2

"""Spectral partitioning tests (Zhou Laplacian, Fiedler cut)."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.spectral import (
    fiedler_vector,
    hypergraph_laplacian,
    spectral_bipartition,
)
from repro.structures.biadjacency import BiAdjacency

from ..conftest import make_biedgelist


def two_cluster_hypergraph(k: int = 8, bridge: bool = True):
    """Two groups of nodes, each covered by several size-3 hyperedges."""
    members = []
    for base in (0, k):
        for i in range(k - 2):
            members.append([base + i, base + i + 1, base + i + 2])
    if bridge:
        members.append([k - 1, k])  # one weak link between the clusters
    return BiAdjacency.from_biedgelist(make_biedgelist(members,
                                                       num_nodes=2 * k))


class TestLaplacian:
    def test_symmetric_psd(self):
        h = two_cluster_hypergraph()
        lap = hypergraph_laplacian(h)
        dense = lap.toarray()
        assert np.allclose(dense, dense.T)
        vals = np.linalg.eigvalsh(dense)
        assert vals.min() > -1e-9

    def test_connected_null_space_dim_one(self):
        h = two_cluster_hypergraph(bridge=True)
        vals = np.linalg.eigvalsh(hypergraph_laplacian(h).toarray())
        assert (np.abs(vals) < 1e-9).sum() == 1

    def test_disconnected_null_space_dim_two(self):
        h = two_cluster_hypergraph(bridge=False)
        vals = np.linalg.eigvalsh(hypergraph_laplacian(h).toarray())
        assert (np.abs(vals) < 1e-9).sum() == 2

    def test_edge_weights_shape_checked(self):
        h = two_cluster_hypergraph()
        with pytest.raises(ValueError, match="edge_weights"):
            hypergraph_laplacian(h, np.ones(3))

    def test_isolated_node_row_is_identity(self):
        h = BiAdjacency.from_biedgelist(
            make_biedgelist([[0, 1]], num_nodes=3)
        )
        lap = hypergraph_laplacian(h).toarray()
        assert lap[2, 2] == 1.0
        assert np.allclose(lap[2, :2], 0)


class TestFiedler:
    def test_algebraic_connectivity_positive_iff_connected(self):
        lam_conn, _ = fiedler_vector(
            hypergraph_laplacian(two_cluster_hypergraph(bridge=True))
        )
        lam_disc, _ = fiedler_vector(
            hypergraph_laplacian(two_cluster_hypergraph(bridge=False))
        )
        assert lam_conn > 1e-8
        assert abs(lam_disc) < 1e-8

    def test_deterministic(self):
        lap = hypergraph_laplacian(two_cluster_hypergraph())
        _, a = fiedler_vector(lap, seed=1)
        _, b = fiedler_vector(lap, seed=1)
        assert np.allclose(a, b)

    def test_small_graph_rejected(self):
        with pytest.raises(ValueError, match="at least 3"):
            fiedler_vector(sp.identity(2, format="csr"))


class TestBipartition:
    def test_recovers_planted_clusters(self):
        k = 10
        h = two_cluster_hypergraph(k=k, bridge=True)
        labels = spectral_bipartition(h)
        left = labels[:k]
        right = labels[k:]
        # each planted cluster lands (almost) entirely on one side
        assert min(
            (left == left[0]).mean(), (right == right[0]).mean()
        ) > 0.85
        assert left[0] != right[-1]

    def test_two_sides_nonempty(self):
        h = two_cluster_hypergraph()
        labels = spectral_bipartition(h)
        assert set(labels.tolist()) == {0, 1}

    def test_clique_expansion_equivalence_spirit(self):
        """The cut groups strongly co-occurring nodes together: nodes of
        one hyperedge rarely straddle the cut in the planted instance."""
        h = two_cluster_hypergraph(k=10)
        labels = spectral_bipartition(h)
        straddling = 0
        for e in range(h.num_hyperedges()):
            mem = h.members(e)
            if np.unique(labels[mem]).size > 1:
                straddling += 1
        assert straddling <= 3  # only the bridge edge + slack

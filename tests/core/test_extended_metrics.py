"""Extended s-metrics (PageRank, k-core, MIS, SSSP) on SLineGraph."""

import networkx as nx
import numpy as np
import pytest

from repro import NWHypergraph

from ..conftest import random_biedgelist


@pytest.fixture
def case():
    el = random_biedgelist(seed=3, num_edges=30, num_nodes=40, max_size=6)
    hg = NWHypergraph(el.part0, el.part1, num_edges=30, num_nodes=40)
    lg = hg.s_linegraph(2)
    G = nx.Graph()
    G.add_nodes_from(range(lg.num_vertices()))
    G.add_edges_from(zip(lg.edgelist.src.tolist(), lg.edgelist.dst.tolist()))
    return lg, G


def test_s_pagerank(case):
    lg, G = case
    pr = lg.s_pagerank(tol=1e-12)
    expect = nx.pagerank(G, tol=1e-12)
    assert np.allclose(pr, [expect[v] for v in range(lg.num_vertices())],
                       atol=1e-8)


def test_s_core_number(case):
    lg, G = case
    cores = lg.s_core_number()
    expect = nx.core_number(G)
    assert cores.tolist() == [expect[v] for v in range(lg.num_vertices())]


def test_s_mis(case):
    lg, G = case
    mis = set(lg.s_maximal_independent_set(seed=0).tolist())
    for u, v in G.edges():
        assert not (u in mis and v in mis)
    for v in G:
        if v not in mis:
            assert any(n in mis for n in G.neighbors(v))


def test_s_sssp_unweighted_matches_distance(case):
    lg, _ = case
    d = lg.s_sssp(0, weighted=False)
    for t in range(lg.num_vertices()):
        assert d[t] == lg.s_distance(0, t)


def test_s_sssp_weighted_uses_inverse_overlap(case):
    lg, G = case
    d = lg.s_sssp(0, weighted=True)
    # weighted graph in networkx with 1/overlap lengths
    Gw = nx.Graph()
    Gw.add_nodes_from(range(lg.num_vertices()))
    for a, b, w in zip(
        lg.edgelist.src.tolist(), lg.edgelist.dst.tolist(), lg.edgelist.weights
    ):
        Gw.add_edge(a, b, weight=1.0 / w)
    expect = nx.single_source_dijkstra_path_length(Gw, 0)
    for t in range(lg.num_vertices()):
        e = expect.get(t, np.inf)
        if np.isinf(e):
            assert np.isinf(d[t])
        else:
            assert d[t] == pytest.approx(e)


def test_weighted_sssp_prefers_strong_overlaps():
    """Two routes to the same target: one weak (overlap 1) direct edge vs
    two strong (overlap 3) hops — weighted SSSP prefers the strong path."""
    members = [
        [0, 1, 2],      # e0
        [0, 1, 2, 9],   # e1: overlap 3 with e0
        [2, 9, 5, 6],   # e2: overlap 2 with e1, 1 with e0
    ]
    hg = NWHypergraph.from_hyperedge_lists(members)
    lg = hg.s_linegraph(1)
    dw = lg.s_sssp(0, weighted=True)
    # direct e0-e2 edge costs 1/1 = 1.0; via e1: 1/3 + 1/2 < 1
    assert dw[2] == pytest.approx(1 / 3 + 1 / 2)


def test_weighted_s_betweenness_matches_networkx(case):
    lg, _ = case
    Gw = nx.Graph()
    Gw.add_nodes_from(range(lg.num_vertices()))
    for a, b, w in zip(
        lg.edgelist.src.tolist(), lg.edgelist.dst.tolist(), lg.edgelist.weights
    ):
        Gw.add_edge(a, b, weight=1.0 / w)
    expect = nx.betweenness_centrality(Gw, normalized=True, weight="weight")
    got = lg.s_betweenness_centrality(normalized=True, weighted=True)
    assert np.allclose(got, [expect[v] for v in range(lg.num_vertices())])

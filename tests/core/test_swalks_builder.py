"""Tests for s-walks and the incremental builder."""

import numpy as np
import pytest

from repro.core.builder import HypergraphBuilder
from repro.core.swalks import (
    is_s_walk,
    random_s_walk,
    s_walk_visit_distribution,
)
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_MEMBERS, make_biedgelist, random_biedgelist


class TestIsSWalk:
    def test_paper_example_walks(self, paper_h):
        # overlaps: (0,1)=2 (0,3)=3 (1,2)=2 — so [2,1,0,3] is a 2-walk
        assert is_s_walk(paper_h, [2, 1, 0, 3], s=2)
        # but not a 3-walk (|e2∩e1| = 2 < 3)
        assert not is_s_walk(paper_h, [2, 1, 0, 3], s=3)
        assert is_s_walk(paper_h, [0, 3], s=3)

    def test_single_edge(self, paper_h):
        assert is_s_walk(paper_h, [0], s=3)  # |e0| = 3
        assert not is_s_walk(paper_h, [0], s=4)

    def test_empty_and_repeat(self, paper_h):
        assert not is_s_walk(paper_h, [], s=1)
        assert not is_s_walk(paper_h, [0, 0], s=1)

    def test_out_of_range(self, paper_h):
        with pytest.raises(ValueError, match="out-of-range"):
            is_s_walk(paper_h, [99], s=1)

    def test_invalid_s(self, paper_h):
        with pytest.raises(ValueError, match="s must be"):
            is_s_walk(paper_h, [0], s=0)


class TestRandomSWalk:
    def test_walks_are_valid(self, paper_h):
        for seed in range(5):
            walk = random_s_walk(paper_h, 0, 8, s=2, seed=seed)
            assert walk[0] == 0
            assert is_s_walk(paper_h, walk, s=2)

    def test_deterministic(self, random_h):
        a = random_s_walk(random_h, 0, 10, s=1, seed=3)
        b = random_s_walk(random_h, 0, 10, s=1, seed=3)
        assert np.array_equal(a, b)

    def test_stops_at_dead_end(self, paper_h):
        # s=3: only edge pair (0, 3); from 0 the walk ping-pongs 0-3
        walk = random_s_walk(paper_h, 1, 5, s=3, seed=0)
        # e1 has no 3-neighbors -> walk is just [1]
        assert walk.tolist() == [1]

    def test_length_zero(self, paper_h):
        assert random_s_walk(paper_h, 2, 0, s=1).tolist() == [2]

    def test_negative_length(self, paper_h):
        with pytest.raises(ValueError, match="length"):
            random_s_walk(paper_h, 0, -1)


class TestVisitDistribution:
    def test_converges_to_degree_proportional(self):
        """On a connected non-bipartite s-line graph, visit frequencies
        approach degree/(2m)."""
        h = BiAdjacency.from_biedgelist(
            make_biedgelist([[0, 1], [1, 2], [2, 0], [0, 1, 2]])
        )
        g = linegraph_csr(slinegraph_matrix(h, 1))
        deg = g.degrees().astype(float)
        stationary = deg / deg.sum()
        freq = s_walk_visit_distribution(
            h, 0, s=1, num_walks=200, length=50, seed=1
        )
        assert np.abs(freq - stationary).max() < 0.05

    def test_normalized(self, paper_h):
        freq = s_walk_visit_distribution(paper_h, 0, s=2, num_walks=10,
                                         length=10)
        assert freq.sum() == pytest.approx(1.0)


class TestBuilder:
    def test_incremental_matches_bulk(self):
        b = HypergraphBuilder()
        for mem in PAPER_MEMBERS:
            b.add_edge(mem)
        hg = b.freeze()
        assert hg.number_of_edges() == 4
        assert hg.number_of_nodes() == 9
        assert hg.edge_incidence(2).tolist() == sorted(PAPER_MEMBERS[2])
        assert hg.toplexes().tolist() == [1, 2, 3]

    def test_chaining_and_extend(self):
        b = (HypergraphBuilder()
             .add_incidence(0, 0)
             .add_incidence(0, 1)
             .extend([1, 1], [1, 2]))
        hg = b.freeze()
        assert hg.number_of_edges() == 2
        assert hg.size(1) == 2

    def test_explicit_ids_and_reservations(self):
        b = HypergraphBuilder()
        assert b.add_edge([0], edge=5) == 5
        assert b.add_node(8) == 8
        hg = b.freeze()
        assert hg.number_of_edges() == 6
        assert hg.number_of_nodes() == 9

    def test_empty_edge_reserved(self):
        b = HypergraphBuilder()
        b.add_edge([])
        assert b.num_edges == 1
        hg = b.freeze()
        assert hg.size(0) == 0

    def test_weights_carried(self):
        b = HypergraphBuilder().add_incidence(0, 0, weight=2.5)
        hg = b.freeze()
        assert hg.weights is not None and hg.weights[0] == 2.5

    def test_unweighted_stays_unweighted(self):
        hg = HypergraphBuilder().add_incidence(0, 0).freeze()
        assert hg.weights is None

    def test_duplicates_dropped_at_freeze(self):
        b = HypergraphBuilder()
        b.add_incidence(0, 1)
        b.add_incidence(0, 1)
        assert b.num_incidences == 2
        assert b.freeze().size(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            HypergraphBuilder().add_incidence(-1, 0)

    def test_builder_reusable_after_freeze(self):
        b = HypergraphBuilder()
        b.add_edge([0, 1])
        h1 = b.freeze()
        b.add_edge([1, 2])
        h2 = b.freeze()
        assert h1.number_of_edges() == 1
        assert h2.number_of_edges() == 2


class TestNbytes:
    def test_footprints_positive_and_consistent(self):
        el = random_biedgelist(seed=2)
        h = BiAdjacency.from_biedgelist(el)
        from repro.structures.adjoin import AdjoinGraph

        g = AdjoinGraph.from_biedgelist(el)
        assert el.nbytes() > 0
        assert h.nbytes() == h.edges.nbytes() + h.nodes.nbytes()
        # adjoin stores the same incidences once, symmetrized
        assert 0.5 < g.nbytes() / h.nbytes() < 1.5

    def test_csr_nbytes_counts_weights(self):
        from repro.structures.csr import CSR

        a = CSR.from_coo(np.array([0]), np.array([1]))
        b = CSR.from_coo(np.array([0]), np.array([1]),
                         weights=np.array([1.0]))
        assert b.nbytes() > a.nbytes()

"""Second independent oracle: scipy.sparse.csgraph.

networkx already cross-checks the graph substrate; csgraph is a third
implementation with different internals (compiled Dijkstra/CC/BFS order),
cheap to run at larger sizes.
"""

import numpy as np
import pytest
from scipy.sparse import csgraph

from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.graph.sssp import delta_stepping, dijkstra
from repro.linegraph import linegraph_csr, slinegraph_hashmap
from repro.structures.biadjacency import BiAdjacency
from repro.testing import random_hypergraph


@pytest.fixture(scope="module")
def lg():
    h = BiAdjacency.from_biedgelist(
        random_hypergraph(seed=21, num_edges=300, num_nodes=200, max_size=5)
    )
    return linegraph_csr(slinegraph_hashmap(h, 2))


def test_cc_matches_csgraph(lg):
    m = lg.to_scipy()
    n_ref, labels_ref = csgraph.connected_components(m, directed=False)
    ours = connected_components(lg)
    # compare as partitions (label values differ)
    pairs = set(zip(labels_ref.tolist(), ours.tolist()))
    assert len({a for a, _ in pairs}) == len(pairs) == len(
        {b for _, b in pairs}
    )
    assert len({a for a, _ in pairs}) == n_ref


def test_hop_distances_match_csgraph(lg):
    m = lg.to_scipy()
    m.data[:] = 1.0
    ref = csgraph.shortest_path(m, method="D", unweighted=True, indices=0)
    dist, _ = bfs_top_down(lg, 0)
    ours = np.where(dist < 0, np.inf, dist.astype(float))
    assert np.array_equal(np.isinf(ours), np.isinf(ref))
    finite = ~np.isinf(ref)
    assert np.array_equal(ours[finite], ref[finite])


def test_weighted_sssp_matches_csgraph(lg):
    m = lg.to_scipy()  # weights = overlap sizes
    ref = csgraph.dijkstra(m, directed=False, indices=0)
    for engine in (dijkstra, delta_stepping):
        dist, _ = engine(lg, 0)
        finite = ~np.isinf(ref)
        assert np.allclose(dist[finite], ref[finite])
        assert np.all(np.isinf(dist[~finite]))


def test_overlap_matrix_matches_csgraph_pipeline():
    """The whole construction, cross-checked through scipy end to end."""
    h = BiAdjacency.from_biedgelist(
        random_hypergraph(seed=5, num_edges=80, num_nodes=50)
    )
    lg = linegraph_csr(slinegraph_hashmap(h, 1))
    b = h.nodes.to_scipy()
    b.data[:] = 1.0
    prod = (b.T @ b).toarray()
    np.fill_diagonal(prod, 0)
    ours = lg.to_scipy().toarray()
    assert np.array_equal(ours, prod)

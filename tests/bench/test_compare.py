"""Benchmark-dump comparison tests."""

import json

import pytest

from repro.bench.compare import diff_results, load_results, main


def dump(path, entries):
    path.write_text(json.dumps(entries), encoding="utf-8")
    return str(path)


def test_load(tmp_path):
    p = dump(tmp_path / "r.json", [{"title": "A", "text": "1\n2"}])
    assert load_results(p) == {"A": "1\n2"}


def test_load_validation(tmp_path):
    p = dump(tmp_path / "bad.json", {"not": "a list"})
    with pytest.raises(ValueError, match="list"):
        load_results(p)
    p = dump(tmp_path / "bad2.json", [{"text": "x"}])
    with pytest.raises(ValueError, match="title"):
        load_results(p)


def test_diff_identical():
    lines, changed = diff_results({"A": "x"}, {"A": "x"})
    assert not changed
    assert lines == ["no differences"]


def test_diff_added_removed_changed():
    before = {"A": "same", "B": "old value", "C": "gone"}
    after = {"A": "same", "B": "new value", "D": "fresh"}
    lines, changed = diff_results(before, after)
    assert changed
    text = "\n".join(lines)
    assert "- removed: C" in text
    assert "+ added:   D" in text
    assert "~ changed: B" in text
    assert "-old value" in text and "+new value" in text


def test_main_exit_codes(tmp_path, capsys):
    a = dump(tmp_path / "a.json", [{"title": "T", "text": "1"}])
    b = dump(tmp_path / "b.json", [{"title": "T", "text": "2"}])
    assert main([a, a]) == 0
    assert main([a, b]) == 1
    assert main([a]) == 2
    out = capsys.readouterr().out
    assert "usage:" in out

"""Load harness: determinism, traces, CO-correct loops, SLO gates."""

from __future__ import annotations

import json
import time
from collections import Counter

import pytest

from repro.bench.load import (
    DEFAULT_MIX,
    OP_KINDS,
    LoadReport,
    OpResult,
    SLOGate,
    TenantSpec,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfKeys,
    read_trace,
    run_workload,
    write_trace,
)
from repro.bench.load.runner import RunResult
from repro.service import AsyncAnalyticsServer, QueryEngine


def _spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        tenants=(
            TenantSpec("alpha", rps=120.0),
            TenantSpec("beta", rps=60.0, mix={"s_degree": 1.0}),
        ),
        duration_s=1.0,
        seed=42,
        num_keys=32,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestWorkloadGenerator:
    def test_schedule_is_deterministic(self):
        ops1 = WorkloadGenerator(_spec()).schedule()
        ops2 = WorkloadGenerator(_spec()).schedule()
        assert [(o.t, o.tenant, o.payload) for o in ops1] == [
            (o.t, o.tenant, o.payload) for o in ops2
        ]
        assert len(ops1) > 50  # ~180 rps over 1s

    def test_different_seeds_differ(self):
        ops1 = WorkloadGenerator(_spec(seed=1)).schedule()
        ops2 = WorkloadGenerator(_spec(seed=2)).schedule()
        assert [o.payload for o in ops1] != [o.payload for o in ops2]

    def test_adding_a_tenant_never_perturbs_another(self):
        solo = WorkloadGenerator(
            _spec(tenants=(TenantSpec("alpha", rps=120.0),))
        ).schedule()
        both = WorkloadGenerator(_spec()).schedule()
        alpha_solo = [(o.t, o.payload) for o in solo]
        alpha_both = [
            (o.t, o.payload) for o in both if o.tenant == "alpha"
        ]
        assert alpha_solo == alpha_both

    def test_schedule_is_time_sorted_within_duration(self):
        ops = WorkloadGenerator(_spec()).schedule()
        times = [o.t for o in ops]
        assert times == sorted(times)
        assert 0.0 < times[0] and times[-1] < 1.0

    def test_payloads_are_well_formed(self):
        spec = _spec()
        ops = WorkloadGenerator(spec).schedule()
        kinds = Counter()
        for op in ops:
            payload = op.payload
            kinds[payload["op"]] += 1
            assert payload["op"] in OP_KINDS
            assert payload["tenant"] == op.tenant
            assert payload["dataset"] == "load"
            if payload["op"] in ("s_degree", "s_neighbors"):
                assert 0 <= payload["v"] < spec.num_keys
            elif payload["op"] == "s_distance":
                assert payload["src"] != payload["dst"]
            elif payload["op"] == "update":
                for rec in payload["ops"]:
                    assert rec["op"] == "add_edge"
                    assert len(rec["members"]) >= 2
        # the default mix actually emits the read-mostly spread
        assert kinds["s_degree"] > kinds["s_connected_components"]

    def test_stream_is_infinite_and_salted(self):
        spec = _spec()
        gen = WorkloadGenerator(spec)
        tenant = spec.tenants[0]
        first = [next(gen.stream(tenant, salt=0)) for _ in range(20)]
        again = [next(gen.stream(tenant, salt=0)) for _ in range(20)]
        other = [next(gen.stream(tenant, salt=1)) for _ in range(20)]
        assert first == again
        assert first != other

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(tenants=())
        with pytest.raises(ValueError):
            _spec(tenants=(TenantSpec("a"), TenantSpec("a")))
        with pytest.raises(ValueError):
            TenantSpec("a", rps=0)
        with pytest.raises(ValueError):
            TenantSpec("a", mix={"not_an_op": 1.0})
        with pytest.raises(ValueError):
            _spec(duration_s=0)

    def test_default_mix_is_normalized(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)


class TestZipfKeys:
    def test_skew_concentrates_on_low_ranks(self):
        import numpy as np

        rng = np.random.default_rng(0)
        keys = ZipfKeys(100, theta=1.2)
        draws = Counter(keys.draw(rng) for _ in range(5000))
        # rank 0 must dominate and the tail must still be reachable
        assert draws[0] > draws.get(50, 0) * 5
        assert max(draws) < 100

    def test_theta_zero_is_uniform(self):
        import numpy as np

        rng = np.random.default_rng(0)
        keys = ZipfKeys(10, theta=0.0)
        draws = Counter(keys.draw(rng) for _ in range(10000))
        assert min(draws.values()) > 700  # ~1000 each, generous margin


class TestTraceFiles:
    def test_roundtrip_and_byte_determinism(self, tmp_path):
        spec = _spec()
        ops = WorkloadGenerator(spec).schedule()
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert write_trace(p1, ops, spec) == len(ops)
        write_trace(p2, WorkloadGenerator(spec).schedule(), spec)
        assert p1.read_bytes() == p2.read_bytes()
        header, back = read_trace(p1)
        assert header["ops"] == len(ops)
        assert header["spec"]["seed"] == spec.seed
        assert [(o.t, o.tenant, o.payload) for o in back] == [
            (o.t, o.tenant, o.payload) for o in ops
        ]

    def test_read_rejects_non_trace(self, tmp_path):
        bogus = tmp_path / "x.jsonl"
        bogus.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a"):
            read_trace(bogus)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(empty)


def _result(tenant="t", kind="s_degree", ok=True, code=None,
            latency_s=0.001) -> OpResult:
    return OpResult(
        tenant=tenant, kind=kind, ok=ok, code=code,
        latency_s=latency_s, service_s=latency_s, intended_t=0.0,
    )


def _run_result(rows, duration_s=1.0) -> RunResult:
    return RunResult(mode="open", duration_s=duration_s, results=rows)


class TestSLOGates:
    def test_max_and_min_bounds(self):
        rows = [_result(latency_s=0.005) for _ in range(100)]
        report = LoadReport(_run_result(rows))
        assert report.passes([SLOGate("p99_ms", max=50.0)])
        assert not report.passes([SLOGate("p99_ms", max=0.001)])
        assert report.passes([SLOGate("rps", min=50.0)])
        assert not report.passes([SLOGate("rps", min=1000.0)])

    def test_tenant_scoped_gate(self):
        rows = [_result(tenant="quiet", latency_s=0.001)] * 10 + [
            _result(tenant="noisy", latency_s=0.5)
        ] * 10
        report = LoadReport(_run_result(rows))
        gates = [SLOGate("p99_ms", max=10.0, tenant="quiet")]
        results = report.evaluate(gates)
        assert results[0].ok
        assert not report.passes([SLOGate("p99_ms", max=10.0)])
        assert "quiet.p99_ms" in results[0].describe()

    def test_shed_separate_from_errors(self):
        rows = (
            [_result()] * 6
            + [_result(ok=False, code="quota_exceeded")] * 3
            + [_result(ok=False, code="invalid_argument")]
        )
        panel = LoadReport(_run_result(rows)).panel()
        assert panel["shed"] == 3
        assert panel["errors"] == 1
        assert panel["shed_rate"] == pytest.approx(0.3)
        assert panel["error_rate"] == pytest.approx(0.1)
        assert panel["goodput_rps"] == pytest.approx(6.0)

    def test_gate_validation_and_dict_roundtrip(self):
        with pytest.raises(ValueError):
            SLOGate("not_a_metric", max=1)
        with pytest.raises(ValueError):
            SLOGate("p99_ms")  # no bound at all
        gate = SLOGate.from_dict(
            {"metric": "error_rate", "max": 0, "tenant": "a"}
        )
        assert gate.as_dict() == {
            "metric": "error_rate", "max": 0, "tenant": "a"
        }

    def test_report_as_dict_is_json_safe(self):
        rows = [_result(), _result(tenant="u", ok=False, code="overloaded")]
        doc = LoadReport(_run_result(rows)).as_dict(
            [{"metric": "p50_ms", "max": 100}]
        )
        json.dumps(doc)
        assert set(doc["tenants"]) == {"t", "u"}
        assert doc["gates"][0]["ok"] is True
        assert doc["gates_ok"] is True


@pytest.fixture()
def load_engine():
    # s-metric keys are hyperedge ids, so the resident graph needs at
    # least num_keys hyperedges (the paper fixture has only 4)
    from repro.io.generators import uniform_random_hypergraph

    engine = QueryEngine()
    engine.store.register(
        "load", uniform_random_hypergraph(64, 48, 3, seed=1)
    )
    yield engine
    engine.close()


def _slow_engine(engine: QueryEngine, delay_s: float) -> QueryEngine:
    real_execute = engine.execute

    def slow_execute(payload):
        time.sleep(delay_s)
        return real_execute(payload)

    engine.execute = slow_execute  # type: ignore[method-assign]
    return engine


class TestLoopModes:
    """Open loop counts stalls against the server; closed loop cannot."""

    DELAY_S = 0.03

    def _spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            tenants=(
                TenantSpec(
                    "t", rps=60.0, connections=1, mix={"s_degree": 1.0},
                    datasets=("load",),
                ),
            ),
            duration_s=0.8,
            seed=3,
            num_keys=8,
        )

    def test_open_loop_sees_coordinated_omission(self, load_engine):
        # one worker, 30ms service, 60 rps offered: the queue grows, and
        # intended-start latencies must absorb the backlog the server
        # actually caused
        engine = _slow_engine(load_engine, self.DELAY_S)
        with AsyncAnalyticsServer(engine, max_inflight=1) as server:
            run = run_workload(server.address, self._spec(), mode="open")
        assert not run.transport_errors
        assert len(run.results) > 10
        tail = max(r.latency_s for r in run.results)
        # the last intended arrival waited for most of the backlog;
        # service time alone never explains it
        assert tail > 4 * self.DELAY_S
        mean_gap = sum(
            r.latency_s - r.service_s for r in run.results
        ) / len(run.results)
        assert mean_gap > 0.0

    def test_closed_loop_latency_stays_near_service_time(self, load_engine):
        engine = _slow_engine(load_engine, self.DELAY_S)
        with AsyncAnalyticsServer(engine, max_inflight=1) as server:
            run = run_workload(server.address, self._spec(), mode="closed")
        assert not run.transport_errors
        assert len(run.results) > 5
        # send-wait-send: the one worker never queues behind itself, so
        # every latency is about one service time
        assert max(r.latency_s for r in run.results) < 4 * self.DELAY_S
        for r in run.results:
            assert r.latency_s == r.service_s

    def test_unknown_mode_rejected(self, load_engine):
        with AsyncAnalyticsServer(load_engine) as server:
            with pytest.raises(ValueError, match="unknown mode"):
                run_workload(server.address, self._spec(), mode="sideways")


class TestNoisyNeighbor:
    def test_quiet_tenant_never_shed_beside_bursty(self, load_engine):
        # quiet offers well under its means; bursty offers ~10x its
        # quota: isolation means every quiet op is admitted while the
        # bursty overflow is shed at the door
        spec = WorkloadSpec(
            tenants=(
                TenantSpec("quiet", rps=40.0, mix={"s_degree": 1.0},
                           datasets=("load",)),
                TenantSpec("bursty", rps=300.0, connections=2,
                           mix={"s_degree": 1.0}, datasets=("load",)),
            ),
            duration_s=0.8,
            seed=13,
            num_keys=16,
        )
        quotas = {"bursty": {"rate": 25.0, "burst": 25.0}}
        with AsyncAnalyticsServer(load_engine, quotas=quotas) as server:
            run = run_workload(server.address, spec, mode="open")
        report = LoadReport(run)
        quiet, bursty = report.panel("quiet"), report.panel("bursty")
        assert quiet["shed"] == 0 and quiet["errors"] == 0
        assert bursty["shed"] > 0
        gates = [
            SLOGate("shed_rate", max=0.0, tenant="quiet"),
            SLOGate("shed_rate", min=0.3, tenant="bursty"),
        ]
        assert report.passes(gates)
        counters = report.server_panel()["counters"]
        assert "service_async_tenant_shed_total{tenant=quiet}" not in counters
        assert counters[
            "service_async_tenant_shed_total{tenant=bursty}"
        ] == bursty["shed"]


class TestEndToEndPanels:
    def test_server_panel_reports_quota_sheds(self, load_engine):
        spec = WorkloadSpec(
            tenants=(
                TenantSpec("bursty", rps=150.0, mix={"s_degree": 1.0},
                           datasets=("load",)),
            ),
            duration_s=0.6,
            seed=5,
            num_keys=8,
        )
        quotas = {"bursty": {"rate": 10.0, "burst": 5.0}}
        with AsyncAnalyticsServer(load_engine, quotas=quotas) as server:
            run = run_workload(server.address, spec, mode="open")
        report = LoadReport(run)
        panel = report.panel("bursty")
        assert panel["shed"] > 0
        assert panel["errors"] == 0
        server_panel = report.server_panel()
        sheds = server_panel["counters"].get(
            "service_async_tenant_shed_total{tenant=bursty}"
        )
        assert sheds == panel["shed"]  # client and server books agree
        assert "cache" in server_panel
        text = report.format_text()
        assert "bursty" in text and "p99_ms" in text


class TestSessionLifecycle:
    """Regression: every exit path of the runners releases its sockets."""

    @staticmethod
    def _fake_session(created, closed, fail_on=None):
        class FakeSession:
            def __init__(self, *args, **kwargs):
                if fail_on is not None and len(created) == fail_on:
                    raise OSError("connection refused")
                created.append(self)

            def send(self, payload):
                raise OSError("broken pipe")

            def recv(self):
                raise OSError("broken pipe")

            def request(self, payload):
                raise OSError("broken pipe")

            def close(self):
                closed.append(self)

        return FakeSession

    def test_partial_pool_construction_closes_on_failure(self, monkeypatch):
        from repro.bench.load import runner

        created, closed = [], []
        monkeypatch.setattr(
            runner,
            "SocketSession",
            self._fake_session(created, closed, fail_on=2),
        )
        with pytest.raises(OSError):
            runner._open_sessions(["a", "b", "c"], ("host", 1), 1.0)
        assert len(created) == 2
        assert set(map(id, closed)) == set(map(id, created))

    def test_open_loop_closes_sessions_on_transport_failure(
        self, monkeypatch
    ):
        from repro.bench.load import runner
        from repro.bench.load.workload import TraceOp

        created, closed = [], []
        monkeypatch.setattr(
            runner, "SocketSession", self._fake_session(created, closed)
        )
        trace = [TraceOp(t=0.0, tenant="t", payload={"op": "stats"})]
        result = runner.run_open_loop(
            ("host", 1), trace, collect_metrics=False, timeout=1.0
        )
        assert result.transport_errors
        assert created
        assert set(map(id, created)) <= set(map(id, closed))

    def test_closed_loop_closes_sessions_on_transport_failure(
        self, monkeypatch
    ):
        from repro.bench.load import runner

        created, closed = [], []
        monkeypatch.setattr(
            runner, "SocketSession", self._fake_session(created, closed)
        )
        spec = _spec(
            tenants=(TenantSpec("alpha", rps=5.0, connections=2),),
            duration_s=0.2,
        )
        result = runner.run_closed_loop(
            ("host", 1), spec, collect_metrics=False, timeout=1.0
        )
        assert result.transport_errors
        assert len(created) == 2
        assert set(map(id, created)) == set(map(id, closed))

"""Cache-line traffic estimator tests."""

import numpy as np

from repro.bench.locality import chunk_lines_touched, traversal_line_traffic
from repro.structures.csr import CSR


def test_empty_chunk():
    g = CSR.from_coo(np.array([0]), np.array([1]))
    assert chunk_lines_touched(g, np.array([], dtype=np.int64)) == 0


def test_counts_three_access_streams():
    # one vertex, neighbors spread across distinct lines
    n = 100
    src = np.zeros(12, dtype=np.int64)
    dst = np.arange(12, dtype=np.int64) * 8  # one line each
    g = CSR.from_coo(src, dst, num_sources=1, num_targets=n * 8)
    lines = chunk_lines_touched(g, np.array([0]))
    # 1 indptr line + ceil(12/8)=2 indices lines + 12 target lines
    assert lines == 1 + 2 + 12


def test_compact_targets_touch_fewer_lines():
    src = np.zeros(12, dtype=np.int64)
    spread = np.arange(12, dtype=np.int64) * 8
    compact = np.arange(12, dtype=np.int64)
    g_spread = CSR.from_coo(src, spread, num_sources=1, num_targets=96)
    g_compact = CSR.from_coo(src, compact, num_sources=1, num_targets=96)
    assert chunk_lines_touched(
        g_compact, np.array([0])
    ) < chunk_lines_touched(g_spread, np.array([0]))


def test_traffic_sums_chunks():
    g = CSR.from_coo(
        np.array([0, 1, 2]), np.array([3, 4, 5]),
        num_sources=3, num_targets=6,
    )
    chunks = [np.array([0]), np.array([1, 2])]
    total, per_chunk = traversal_line_traffic(g, chunks)
    assert total == per_chunk.sum()
    assert per_chunk.size == 2
    assert np.all(per_chunk > 0)


def test_deterministic():
    rng = np.random.default_rng(0)
    src = rng.integers(0, 50, 300)
    dst = rng.integers(0, 50, 300)
    g = CSR.from_coo(src, dst, num_sources=50, num_targets=50)
    ids = np.arange(50, dtype=np.int64)
    assert chunk_lines_touched(g, ids) == chunk_lines_touched(g, ids)

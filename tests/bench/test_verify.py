"""Self-check (python -m repro verify) tests."""

import pytest

from repro.bench.verify import verify_headline_claims
from repro.cli import main


def test_all_claims_pass():
    lines, ok = verify_headline_claims()
    assert ok
    assert len(lines) == 7
    assert all(line.startswith("[PASS]") for line in lines)


def test_verbose_includes_details():
    lines, ok = verify_headline_claims(verbose=True)
    assert ok
    assert any("x vs" in line for line in lines)  # the Fig. 7 numbers


def test_cli_verify(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "reproduction self-check: OK" in out
    assert out.count("[PASS]") == 7

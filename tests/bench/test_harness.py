"""Harness tests: the figures' qualitative shapes hold on the stand-ins.

These assert the *claims* of the paper's evaluation section (who scales,
who wins, what is comparable) rather than absolute numbers — the
reproduction contract of EXPERIMENTS.md.
"""

import pytest

from repro.bench.harness import (
    bfs_source,
    fig9_slinegraph,
    hygra_runtime,
    nwhy_runtime,
    strong_scaling_bfs,
    strong_scaling_cc,
)
from repro.bench.reporting import (
    format_fig9,
    format_scaling,
    format_table,
    format_table1,
)
from repro.io.datasets import table1

GRID = (1, 4, 16)


class TestRuntimeFactories:
    def test_configs(self):
        nw = nwhy_runtime(8)
        hy = hygra_runtime(8)
        assert nw.scheduler.name == "work_stealing"
        assert nw.partitioner == "cyclic"
        assert hy.scheduler.name == "static"
        assert hy.partitioner == "blocked"


class TestScalingShapes:
    def test_cc_all_algorithms_scale(self):
        series = strong_scaling_cc("rand1", GRID)
        assert {s.algorithm for s in series} == {
            "AdjoinCC", "HyperCC", "HygraCC"
        }
        for s in series:
            # monotone speedup on the uniform dataset
            assert s.speedup_at(1) == 1.0
            assert s.speedup_at(16) > s.speedup_at(4) > 1.5

    def test_bfs_scales_on_uniform(self):
        for s in strong_scaling_bfs("rand1", GRID):
            assert s.speedup_at(16) > 4.0

    def test_nwhy_cc_beats_hygra_on_skewed(self):
        """Fig. 7's qualitative claim: better scalability than Hygra on the
        skewed social inputs."""
        series = {
            s.algorithm: s for s in strong_scaling_cc("com-orkut", GRID)
        }
        assert (
            series["AdjoinCC"].speedup_at(16)
            > series["HygraCC"].speedup_at(16)
        )

    def test_makespan_decreases(self):
        for s in strong_scaling_cc("orkut-group", GRID):
            spans = [p.makespan for p in s.points]
            assert spans[0] > spans[-1]


class TestFig9Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_slinegraph("rand1", s=2, threads=16)

    def test_hashmap_is_baseline(self, rows):
        by = {r.algorithm: r for r in rows}
        assert by["Hashmap"].normalized == 1.0

    def test_queue_similar_to_nonqueue(self, rows):
        """The paper's headline: queue-based ≈ best non-queue counterpart."""
        by = {r.algorithm: r for r in rows}
        assert by["Alg1 (queue hashmap)"].normalized < 1.5
        ratio = (
            by["Alg2 (queue intersect)"].best_makespan
            / by["Intersection"].best_makespan
        )
        assert 0.5 < ratio < 2.0

    def test_all_configs_reported(self, rows):
        assert len(rows) == 4
        for r in rows:
            assert "/" in r.best_config


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, "x"], [22, "yyyy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_table1(self):
        out = format_table1(table1(["rand1"]))
        assert "rand1" in out and "|V|" in out

    def test_format_scaling(self):
        out = format_scaling(strong_scaling_cc("rand1", (1, 2)))
        assert "AdjoinCC" in out and "t=2" in out
        assert format_scaling([]) == "(empty)"

    def test_format_fig9(self):
        out = format_fig9(fig9_slinegraph("rand1", s=2, threads=4,
                                          relabels=("none",)))
        assert "Hashmap" in out
        assert format_fig9([]) == "(empty)"


def test_bfs_source_deterministic():
    from repro.io.datasets import load
    from repro.structures.biadjacency import BiAdjacency

    h = BiAdjacency.from_biedgelist(load("rand1"))
    assert bfs_source(h) == bfs_source(h)

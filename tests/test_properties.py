"""Property-based tests (hypothesis) on core structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linegraph import (
    slinegraph_hashmap,
    slinegraph_matrix,
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.atomics import write_min
from repro.parallel.partition import blocked_range, chunk_ids, cyclic_range
from repro.parallel.scheduler import StaticScheduler, WorkStealingScheduler
from repro.parallel.cost import CostModel
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR
from repro.structures.edgelist import BiEdgeList
from repro.structures.relabel import degree_permutation, inverse_permutation


# ---- strategies -----------------------------------------------------------

@st.composite
def hypergraphs(draw, max_edges=12, max_nodes=10):
    """A random small hypergraph as a BiEdgeList (possibly with empty edges)."""
    n_e = draw(st.integers(1, max_edges))
    n_v = draw(st.integers(1, max_nodes))
    members = draw(
        st.lists(
            st.sets(st.integers(0, n_v - 1), max_size=n_v),
            min_size=n_e,
            max_size=n_e,
        )
    )
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=n_e, n1=n_v)


@st.composite
def coo_graphs(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, 3 * n))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


# ---- CSR properties ----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(coo_graphs())
def test_csr_roundtrip_preserves_multiset(case):
    n, src, dst = case
    g = CSR.from_coo(src, dst, num_sources=n, num_targets=n)
    back_src, back_dst = g.neighborhood_pairs()
    assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
        zip(back_src.tolist(), back_dst.tolist())
    )


@settings(max_examples=60, deadline=None)
@given(coo_graphs())
def test_csr_double_transpose_identity(case):
    n, src, dst = case
    g = CSR.from_coo(src, dst, num_sources=n, num_targets=n)
    assert g.transpose().transpose() == g


@settings(max_examples=60, deadline=None)
@given(coo_graphs())
def test_degrees_sum_to_edges(case):
    n, src, dst = case
    g = CSR.from_coo(src, dst, num_sources=n, num_targets=n)
    assert int(g.degrees().sum()) == g.num_edges()


# ---- partition properties ------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.integers(0, 200), st.integers(1, 17))
def test_partitions_are_exact_covers(n, k):
    for adaptor in (blocked_range, cyclic_range):
        chunks = adaptor(n, k)
        assert sorted(chunk_ids(chunks)) == list(range(n))


# ---- scheduler properties -------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0.0, 100.0), max_size=40),
    st.integers(1, 16),
)
def test_greedy_within_classic_competitive_bound(costs, p):
    """Greedy list scheduling: LB ≤ makespan ≤ 2·LB where LB is the
    max(total/p, max task) lower bound; static obeys only the lower bound."""
    model = CostModel(task_overhead=0.0, steal_cost=0.0)
    ws = WorkStealingScheduler().schedule(costs, p, model)
    static = StaticScheduler().schedule(costs, p, model)
    lb = max(sum(costs) / p, max(costs, default=0.0))
    assert lb - 1e-9 <= ws.makespan <= 2 * lb + 1e-9
    assert static.makespan >= lb - 1e-9


# ---- atomics ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.data())
def test_write_min_is_order_independent(data):
    n = data.draw(st.integers(1, 15))
    k = data.draw(st.integers(0, 40))
    idx = np.array(
        data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k)),
        dtype=np.int64,
    )
    vals = np.array(
        data.draw(st.lists(st.integers(-50, 50), min_size=k, max_size=k)),
        dtype=np.int64,
    )
    a = np.full(n, 100, dtype=np.int64)
    b = a.copy()
    write_min(a, idx, vals)
    order = np.argsort(vals, kind="stable")[::-1]
    write_min(b, idx[order], vals[order])
    assert np.array_equal(a, b)


# ---- permutations -------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=40))
def test_degree_permutation_invertible(degrees):
    deg = np.array(degrees)
    for order in ("ascending", "descending"):
        perm = degree_permutation(deg, order)
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(deg.size))


# ---- s-line construction invariants ----------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(hypergraphs(), st.integers(1, 4))
def test_all_constructions_agree(el, s):
    h = BiAdjacency.from_biedgelist(el)
    ref = slinegraph_matrix(h, s)
    assert slinegraph_hashmap(h, s) == ref
    assert slinegraph_queue_hashmap(h, s) == ref
    assert slinegraph_queue_intersection(h, s) == ref
    g = AdjoinGraph.from_biedgelist(el)
    assert slinegraph_queue_hashmap(g, s) == ref


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_linegraph_weight_bounds(el):
    """1 ≤ overlap ≤ min(|e|, |f|) for every emitted edge."""
    h = BiAdjacency.from_biedgelist(el)
    lg = slinegraph_matrix(h, 1)
    sizes = h.edge_sizes()
    for a, b, w in zip(lg.src.tolist(), lg.dst.tolist(), lg.weights):
        assert 1 <= w <= min(sizes[a], sizes[b])


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_dual_of_dual_identity(el):
    h = BiAdjacency.from_biedgelist(el)
    dd = h.dual().dual()
    assert dd.edges == h.edges
    assert dd.nodes == h.nodes


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_cc_representations_always_agree(el):
    from repro.algorithms.adjoincc import adjoincc
    from repro.algorithms.hypercc import hypercc

    h = BiAdjacency.from_biedgelist(el)
    g = AdjoinGraph.from_biedgelist(el)
    e1, n1 = hypercc(h)
    e2, n2 = adjoincc(g)
    assert np.array_equal(e1, e2)
    assert np.array_equal(n1, n2)


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_toplex_is_antichain_and_covers(el):
    """Toplexes: mutually incomparable, and every edge ⊆ some toplex."""
    from repro.algorithms.toplex import toplexes

    h = BiAdjacency.from_biedgelist(el)
    tops = toplexes(h).tolist()
    members = [set(h.members(e).tolist()) for e in range(h.num_hyperedges())]
    for i in tops:
        for j in tops:
            if i != j:
                assert not (members[i] <= members[j])
    for e in range(h.num_hyperedges()):
        assert any(members[e] <= members[t] for t in tops)

"""Hygra baseline tests: same answers, Hygra-shaped work profile."""

import numpy as np

from repro.algorithms.hyperbfs import hyperbfs_top_down
from repro.algorithms.hypercc import hypercc
from repro.baselines.hygra import hygra_bfs, hygra_cc
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


def test_bfs_same_distances(random_h):
    ref = hyperbfs_top_down(random_h, 0)
    got = hygra_bfs(random_h, 0)
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])


def test_cc_same_labels():
    for seed in range(3):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=seed))
        ref = hypercc(h)
        got = hygra_cc(h)
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])


def test_cc_frontier_shrinks_work():
    """HygraCC's frontier-based rounds touch no more incidences than
    HyperCC's full-sweep rounds (the edgeMap optimization)."""
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=1, num_edges=80,
                                                      num_nodes=120))
    rt_full = ParallelRuntime(num_threads=1)
    hypercc(h, runtime=rt_full)
    rt_front = ParallelRuntime(num_threads=1)
    hygra_cc(h, runtime=rt_front)
    assert rt_front.ledger.total_work <= rt_full.ledger.total_work


def test_cc_runtime_schedule_independent(random_h):
    ref = hygra_cc(random_h)
    rt = ParallelRuntime(num_threads=8, execution_order="shuffled", seed=4)
    got = hygra_cc(random_h, runtime=rt)
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])


def test_edge_source_bfs(paper_h):
    e_ref, n_ref = hyperbfs_top_down(paper_h, 2, source_is_edge=True)
    e_got, n_got = hygra_bfs(paper_h, 2, source_is_edge=True)
    assert np.array_equal(e_ref, e_got)
    assert np.array_equal(n_ref, n_got)

"""Degenerate-input sweep: the whole public API on pathological hypergraphs.

Empty hypergraphs, empty hyperedges, fully isolated node spaces, and
single-entity instances — every query should degrade gracefully (empty
results, identity labels, -1 distances), never crash.
"""

import numpy as np
import pytest

from repro import NWHypergraph
from repro.algorithms.s_traversal import s_connected_components_lazy
from repro.core.smetrics import s_metrics_report
from repro.linegraph import ALGORITHMS, to_two_graph
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

CONSTRUCTIONS = sorted(set(ALGORITHMS) - {"matrix", "threaded"})


@pytest.fixture
def empty():
    """No edges, no nodes."""
    return NWHypergraph([], [], num_edges=0, num_nodes=0)


@pytest.fixture
def hollow():
    """3 hyperedges, all empty; 4 isolated hypernodes."""
    return NWHypergraph([], [], num_edges=3, num_nodes=4)


@pytest.fixture
def singleton():
    """One hyperedge holding one hypernode."""
    return NWHypergraph([0], [0])


class TestEmpty:
    def test_sizes(self, empty):
        assert empty.number_of_edges() == 0
        assert empty.number_of_nodes() == 0
        assert empty.edge_size_dist() == {}

    def test_toplexes(self, empty):
        assert empty.toplexes().size == 0

    def test_cc(self, empty):
        e, n = empty.connected_components()
        assert e.size == 0 and n.size == 0

    def test_linegraphs(self, empty):
        for name in CONSTRUCTIONS:
            el = to_two_graph(empty.biadjacency, 1, name)
            assert el.num_edges() == 0
            assert el.num_vertices() == 0

    def test_smetrics(self, empty):
        rep = s_metrics_report(empty.biadjacency, [1])[1]
        assert rep.num_components == 0
        assert rep.density == 0.0

    def test_diameter(self, empty):
        assert empty.diameter("node") == 0
        assert empty.diameter("edge") == 0


class TestHollow:
    def test_edge_sizes_zero(self, hollow):
        assert hollow.edge_sizes().tolist() == [0, 0, 0]
        assert hollow.degrees().tolist() == [0, 0, 0, 0]

    def test_toplex_duplicate_rule(self, hollow):
        # all-empty edges: exactly the first survives
        assert hollow.toplexes().tolist() == [0]

    def test_cc_everything_isolated(self, hollow):
        e, n = hollow.connected_components()
        assert e.tolist() == [0, 1, 2]
        assert n.tolist() == [3, 4, 5, 6]  # consolidated IDs

    def test_adjoin_roundtrip(self, hollow):
        g = hollow.adjoin_graph
        assert g.num_vertices() == 7
        assert g.graph.num_edges() == 0

    def test_linegraphs_empty(self, hollow):
        for name in CONSTRUCTIONS:
            el = to_two_graph(hollow.biadjacency, 1, name)
            assert el.num_edges() == 0
            assert el.num_vertices() == 3

    def test_lazy_components(self, hollow):
        labels = s_connected_components_lazy(hollow.biadjacency, 1)
        assert labels.tolist() == [0, 1, 2]

    def test_bfs_from_isolated_node(self, hollow):
        e_dist, n_dist = hollow.bfs(2)
        assert n_dist[2] == 0
        assert np.all(e_dist == -1)


class TestSingleton:
    def test_structure(self, singleton):
        assert singleton.size(0) == 1
        assert singleton.degree(0) == 1
        assert singleton.singletons().tolist() == [0]
        assert singleton.toplexes().tolist() == [0]

    def test_linegraph(self, singleton):
        lg = singleton.s_linegraph(1)
        assert lg.num_vertices() == 1
        assert lg.num_edges() == 0
        assert lg.s_connected_components() == []
        assert lg.is_s_connected() is False
        assert lg.s_eccentricity().tolist() == [0.0]

    def test_metrics(self, singleton):
        lg = singleton.s_linegraph(1)
        assert lg.s_betweenness_centrality().tolist() == [0.0]
        assert lg.s_pagerank().tolist() == [1.0]
        assert lg.s_core_number().tolist() == [0]
        assert lg.s_maximal_independent_set().tolist() == [0]

    def test_distances(self, singleton):
        assert singleton.edge_distance(0, 0) == 0
        assert singleton.node_distance(0, 0) == 0
        assert singleton.diameter("node") == 0


class TestDegenerateRepresentations:
    def test_empty_biadjacency_dual(self):
        h = BiAdjacency.from_biedgelist(BiEdgeList(n0=0, n1=0))
        d = h.dual()
        assert d.num_hyperedges() == 0

    def test_adjoin_empty(self):
        g = AdjoinGraph.from_biedgelist(BiEdgeList(n0=0, n1=0))
        assert g.num_vertices() == 0
        e, n = g.split_result(np.empty(0))
        assert e.size == n.size == 0

    def test_collapse_on_hollow(self, hollow):
        collapsed, classes = hollow.collapse_edges()
        # all three empty edges are duplicates of one another
        assert collapsed.number_of_edges() == 1
        assert classes[0] == [0, 1, 2]

"""Shared fixtures: random hypergraph factories and the running example.

The running example mirrors the paper's Figure 1/3/5 setup (4 hyperedges,
9 hypernodes, adjoin IDs 4–12, three non-trivial s-line graphs).  The
figure's exact memberships are not recoverable from the paper text, so the
example here is an analogous instance whose expectations below were derived
BY HAND (see ``tests/test_paper_example.py``), independent of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

# e0={0,1,2}, e1={1,2,3}, e2={2,3,4,5,7,8}, e3={0,1,2,6}
PAPER_MEMBERS = [
    [0, 1, 2],
    [1, 2, 3],
    [2, 3, 4, 5, 7, 8],
    [0, 1, 2, 6],
]

# hand-derived pairwise overlaps (e_i, e_j, |e_i ∩ e_j|), i < j
PAPER_OVERLAPS = [
    (0, 1, 2),
    (0, 2, 1),
    (0, 3, 3),
    (1, 2, 2),
    (1, 3, 2),
    (2, 3, 1),
]


def make_biedgelist(members: list[list[int]], num_nodes: int | None = None) -> BiEdgeList:
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=len(members), n1=num_nodes)


@pytest.fixture
def paper_el() -> BiEdgeList:
    return make_biedgelist(PAPER_MEMBERS, num_nodes=9)


@pytest.fixture
def paper_h(paper_el) -> BiAdjacency:
    return BiAdjacency.from_biedgelist(paper_el)


def random_biedgelist(
    seed: int = 0,
    num_edges: int = 40,
    num_nodes: int = 60,
    max_size: int = 5,
    min_size: int = 1,
) -> BiEdgeList:
    """Seeded random hypergraph with distinct members per hyperedge."""
    rng = np.random.default_rng(seed)
    rows: list[int] = []
    cols: list[int] = []
    for e in range(num_edges):
        size = int(rng.integers(min_size, max_size + 1))
        members = rng.choice(num_nodes, size=min(size, num_nodes), replace=False)
        rows.extend([e] * len(members))
        cols.extend(members.tolist())
    return BiEdgeList(rows, cols, n0=num_edges, n1=num_nodes)


@pytest.fixture
def random_h() -> BiAdjacency:
    return BiAdjacency.from_biedgelist(random_biedgelist(seed=7))

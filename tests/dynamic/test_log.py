"""Mutation records and the append-only log: parsing, validation, dirt."""

import pytest

from repro.dynamic.log import (
    MUTATION_KINDS,
    LogBatch,
    Mutation,
    MutationLog,
    parse_batch,
)


class TestMutation:
    def test_kinds_are_closed(self):
        assert set(MUTATION_KINDS) == {
            "add_edge",
            "remove_edge",
            "add_incidence",
            "remove_incidence",
        }

    def test_add_edge_requires_members(self):
        with pytest.raises(ValueError):
            Mutation("add_edge")

    def test_remove_edge_requires_edge(self):
        with pytest.raises(ValueError):
            Mutation("remove_edge")

    def test_incidence_requires_edge_and_node(self):
        with pytest.raises(ValueError):
            Mutation("add_incidence", edge=1)
        with pytest.raises(ValueError):
            Mutation("remove_incidence", node=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Mutation("rename_edge", edge=0)

    def test_roundtrip_via_dict(self):
        for mut in (
            Mutation("add_edge", members=(3, 1, 2)),
            Mutation("remove_edge", edge=7),
            Mutation("add_incidence", edge=2, node=9),
            Mutation("remove_incidence", edge=2, node=9),
        ):
            assert Mutation.from_dict(mut.to_dict()) == mut

    def test_from_dict_accepts_op_or_kind(self):
        a = Mutation.from_dict({"op": "remove_edge", "edge": 3})
        b = Mutation.from_dict({"kind": "remove_edge", "edge": 3})
        assert a == b

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            Mutation.from_dict({"op": "remove_edge", "edge": 3, "oops": 1})


class TestParseBatch:
    def test_mixed_records_and_dicts(self):
        batch = parse_batch(
            [
                Mutation("remove_edge", edge=1),
                {"op": "add_edge", "members": [0, 1]},
            ]
        )
        assert [m.kind for m in batch] == ["remove_edge", "add_edge"]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            parse_batch([])

    def test_non_record_rejected(self):
        with pytest.raises(ValueError):
            parse_batch(["remove_edge"])


class TestMutationLog:
    def test_accounting_and_dirty_sets(self):
        log = MutationLog()
        assert log.num_batches == 0 and log.num_ops == 0
        log.append(
            LogBatch(
                version=1,
                mutations=(Mutation("remove_edge", edge=2),),
                dirty_edges=frozenset({2}),
                dirty_nodes=frozenset({5, 6}),
            )
        )
        log.append(
            LogBatch(
                version=2,
                mutations=(
                    Mutation("add_incidence", edge=0, node=5),
                    Mutation("add_edge", members=(1,)),
                ),
                dirty_edges=frozenset({0, 3}),
                dirty_nodes=frozenset({1, 5}),
            )
        )
        assert log.num_batches == 2
        assert log.num_ops == 3
        assert log.dirty_edges() == frozenset({0, 2, 3})
        assert log.dirty_nodes() == frozenset({1, 5, 6})
        log.clear()
        assert log.num_batches == 0 and log.dirty_edges() == frozenset()

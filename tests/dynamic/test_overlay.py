"""OverlayState: overlay-first reads, mutation primitives, materialization."""

import numpy as np
import pytest

from repro.dynamic.overlay import OverlayState
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def state():
    el = make_biedgelist(PAPER_MEMBERS, num_nodes=9)
    return OverlayState(BiAdjacency.from_biedgelist(el))


class TestReads:
    def test_untouched_rows_come_from_base(self, state):
        for e, mem in enumerate(PAPER_MEMBERS):
            assert state.members(e).tolist() == sorted(mem)
        assert state.memberships(2).tolist() == [0, 1, 2, 3]

    def test_out_of_range_raises(self, state):
        with pytest.raises(IndexError):
            state.members(99)
        with pytest.raises(IndexError):
            state.memberships(99)


class TestMutations:
    def test_add_edge_appends_and_indexes_both_sides(self, state):
        e = state.add_edge([8, 0, 8])  # duplicates collapse
        assert e == len(PAPER_MEMBERS)
        assert state.num_edges() == e + 1
        assert state.members(e).tolist() == [0, 8]
        assert e in state.memberships(0).tolist()
        assert e in state.memberships(8).tolist()

    def test_add_edge_can_grow_node_space(self, state):
        state.add_edge([20])
        assert state.num_nodes() == 21
        assert state.memberships(15).size == 0  # implicit isolated node

    def test_remove_edge_tombstones(self, state):
        before = state.num_edges()
        removed = state.remove_edge(1)
        assert removed.tolist() == [1, 2, 3]
        assert state.num_edges() == before  # ID space unchanged
        assert state.members(1).size == 0
        assert 1 not in state.memberships(2).tolist()
        with pytest.raises(ValueError):
            state.remove_edge(1)  # already empty

    def test_incidence_add_remove(self, state):
        assert state.add_incidence(0, 8) is True
        assert state.add_incidence(0, 8) is False  # already present
        assert 8 in state.members(0).tolist()
        state.remove_incidence(0, 8)
        assert 8 not in state.members(0).tolist()
        with pytest.raises(ValueError):
            state.remove_incidence(0, 8)

    def test_add_incidence_rejects_unknown_edge(self, state):
        with pytest.raises(ValueError):
            state.add_incidence(99, 0)


class TestDual:
    def test_dual_swaps_roles(self, state):
        dual = state.dual()
        assert dual.num_edges() == state.num_nodes()
        assert dual.members(2).tolist() == state.memberships(2).tolist()
        assert dual.memberships(0).tolist() == state.members(0).tolist()
        assert dual.dual() is state


class TestMaterialization:
    def test_roundtrip_unchanged(self, state):
        row, col = state.incidence_arrays()
        expect = sorted(
            (e, v) for e, mem in enumerate(PAPER_MEMBERS) for v in mem
        )
        assert sorted(zip(row.tolist(), col.tolist())) == expect

    def test_mutations_reflected(self, state):
        state.remove_edge(0)
        state.add_incidence(1, 8)
        e = state.add_edge([4, 5])
        row, col = state.incidence_arrays()
        pairs = set(zip(row.tolist(), col.tolist()))
        assert not any(r == 0 for r, _ in pairs)
        assert (1, 8) in pairs
        assert (e, 4) in pairs and (e, 5) in pairs

    def test_arrays_are_edge_sorted(self, state):
        state.add_edge([0, 1])
        state.remove_edge(2)
        row, col = state.incidence_arrays()
        order = np.lexsort((col, row))
        assert np.array_equal(row, row[order])
        assert np.array_equal(col, col[order])

"""DynamicHypergraph: batched atomic applies, versioning, compaction."""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.dynamic import DynamicHypergraph, Mutation
from repro.obs import MetricsRegistry

from ..conftest import PAPER_MEMBERS


@pytest.fixture
def dyn():
    return DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)


class TestApply:
    def test_apply_returns_delta(self, dyn):
        res = dyn.apply(
            [
                {"op": "add_edge", "members": [0, 8]},
                {"op": "remove_edge", "edge": 1},
            ]
        )
        assert res.version == 1 == dyn.version
        assert res.applied == 2
        assert res.new_edges == (4,)
        assert res.dirty_edges == frozenset({1, 4})
        assert res.dirty_nodes == frozenset({0, 8, 1, 2, 3})
        assert res.ops_by_kind == {"add_edge": 1, "remove_edge": 1}
        assert res.as_dict()["dirty_edges"] == 2  # JSON-safe summary

    def test_noop_add_incidence_is_not_dirty(self, dyn):
        res = dyn.apply([{"op": "add_incidence", "edge": 0, "node": 1}])
        assert res.dirty_edges == frozenset()
        assert res.version == 1  # batch still counts

    def test_malformed_batch_rejected_before_any_state_change(self, dyn):
        with pytest.raises(ValueError):
            dyn.apply(
                [
                    {"op": "add_edge", "members": [0, 1]},
                    {"op": "bad_kind"},
                ]
            )
        assert dyn.version == 0
        assert dyn.number_of_edges() == len(PAPER_MEMBERS)

    def test_inapplicable_record_rolls_the_batch_back(self, dyn):
        # parses fine, fails mid-apply: the earlier add must be undone
        with pytest.raises(ValueError):
            dyn.apply(
                [
                    {"op": "add_edge", "members": [0, 1]},
                    {"op": "remove_edge", "edge": 99},
                ]
            )
        assert dyn.version == 0
        assert dyn.number_of_edges() == len(PAPER_MEMBERS)
        assert dyn.pending_ops() == 0

    def test_convenience_writers(self, dyn):
        dyn.add_edge([0, 5])
        dyn.remove_edge(0)
        dyn.add_incidence(1, 8)
        dyn.remove_incidence(1, 8)
        assert dyn.version == 4
        assert dyn.pending_batches() == 4
        assert dyn.members(0).size == 0


class TestSnapshots:
    def test_version0_snapshot_is_the_base(self, dyn):
        assert dyn.snapshot() is dyn.base

    def test_snapshot_memoized_per_version(self, dyn):
        dyn.add_edge([0, 8])
        first = dyn.snapshot()
        assert dyn.snapshot() is first
        dyn.remove_edge(0)
        assert dyn.snapshot() is not first

    def test_snapshot_matches_reference_construction(self, dyn):
        dyn.apply(
            [
                {"op": "remove_edge", "edge": 2},
                {"op": "add_edge", "members": [6, 7, 8]},
                {"op": "add_incidence", "edge": 0, "node": 4},
            ]
        )
        members = [list(m) for m in PAPER_MEMBERS]
        members[2] = []
        members[0] = sorted(set(members[0]) | {4})
        members.append([6, 7, 8])
        ref = NWHypergraph.from_hyperedge_lists(members, num_nodes=9)
        snap = dyn.snapshot()
        assert np.array_equal(snap.row, ref.row)
        assert np.array_equal(snap.col, ref.col)

    def test_s_linegraph_delegates_to_snapshot(self, dyn):
        dyn.add_edge([1, 2, 3, 4])
        lg = dyn.s_linegraph(2)
        ref = dyn.snapshot().s_linegraph(2)
        assert lg is ref  # memoized on the snapshot


class TestCompaction:
    def test_compact_folds_log_and_keeps_version(self, dyn):
        dyn.add_edge([0, 8])
        dyn.remove_edge(1)
        assert dyn.pending_ops() == 2
        base = dyn.compact()
        assert dyn.pending_ops() == 0
        assert dyn.version == 2  # state identity preserved
        assert dyn.base is base
        assert base.number_of_edges() == len(PAPER_MEMBERS) + 1
        # post-compaction mutations still work
        dyn.add_incidence(0, 7)
        assert dyn.version == 3

    def test_metrics_instrumented(self):
        registry = MetricsRegistry()
        dyn = DynamicHypergraph.from_hyperedge_lists(
            PAPER_MEMBERS, metrics=registry
        )
        dyn.add_edge([0, 1])
        dyn.compact()
        snap = {
            (i["name"], tuple(sorted(i.get("labels", {}).items()))): i["value"]
            for i in registry.snapshot()
        }
        assert snap[("dynamic_batches_total", ())] == 1
        assert snap[("dynamic_compactions_total", ())] == 1
        assert (
            snap[("dynamic_ops_applied_total", (("kind", "add_edge"),))] == 1
        )


class TestValidation:
    def test_base_must_be_nwhypergraph(self):
        with pytest.raises(TypeError):
            DynamicHypergraph([[0, 1]])

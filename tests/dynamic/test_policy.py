"""The shared patch-vs-rebuild heuristic."""

import pytest

from repro.dynamic.policy import (
    DEFAULT_PATCH_THRESHOLD,
    decide_patch_or_rebuild,
    should_patch,
)


def test_empty_delta_is_a_trivial_patch():
    assert decide_patch_or_rebuild(0, 0) == "patch"
    assert decide_patch_or_rebuild(0, 100) == "patch"


def test_empty_graph_rebuilds():
    assert decide_patch_or_rebuild(5, 0) == "rebuild"


def test_threshold_is_inclusive():
    n = 1000
    at = int(n * DEFAULT_PATCH_THRESHOLD)
    assert decide_patch_or_rebuild(at, n) == "patch"
    assert decide_patch_or_rebuild(at + 1, n) == "rebuild"


def test_custom_threshold():
    assert decide_patch_or_rebuild(50, 100, threshold=0.5) == "patch"
    assert decide_patch_or_rebuild(51, 100, threshold=0.5) == "rebuild"
    assert decide_patch_or_rebuild(1, 100, threshold=0.0) == "rebuild"


def test_one_percent_batches_always_patch():
    # the acceptance criterion's operating point, with wide margin
    assert should_patch(50, 5000)
    assert should_patch(1, 100)


def test_negative_dirty_rejected():
    with pytest.raises(ValueError):
        decide_patch_or_rebuild(-1, 10)

"""Incremental s-line-graph maintenance: patched == rebuilt, always."""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.dynamic import (
    DynamicHypergraph,
    IncrementalSLineGraph,
    delta_frontier,
    patch_linegraph,
    patch_with_builder,
)

from ..conftest import PAPER_MEMBERS


def _random_members(rng, n_edges=80, n_nodes=60):
    return [
        sorted(set(rng.integers(0, n_nodes, size=rng.integers(2, 6)).tolist()))
        for _ in range(n_edges)
    ]


def _assert_same_edgelist(a, b, context=""):
    assert np.array_equal(a.src, b.src), context
    assert np.array_equal(a.dst, b.dst), context
    assert np.array_equal(a.weights, b.weights), context


class TestPatchLinegraph:
    @pytest.mark.parametrize("s", [1, 2, 3])
    @pytest.mark.parametrize("over_edges", [True, False])
    def test_patch_equals_rebuild(self, s, over_edges):
        rng = np.random.default_rng(21)
        members = _random_members(rng)
        dyn = DynamicHypergraph.from_hyperedge_lists(members, num_nodes=60)
        old = dyn.snapshot().s_linegraph(s, over_edges=over_edges).edgelist
        res = dyn.apply(
            [
                {"op": "add_edge", "members": [0, 1, 2, 3]},
                {"op": "remove_edge", "edge": 7},
                {"op": "add_incidence", "edge": 11, "node": 59},
                {"op": "remove_incidence", "edge": 3,
                 "node": int(dyn.base.edge_incidence(3)[0])},
            ]
        )
        state = dyn.state if over_edges else dyn.state.dual()
        dirty = res.dirty_edges if over_edges else res.dirty_nodes
        patched = patch_linegraph(old, state, dirty, s)
        ref = dyn.snapshot().s_linegraph(s, over_edges=over_edges).edgelist
        _assert_same_edgelist(patched, ref, f"s={s} over_edges={over_edges}")

    def test_empty_delta_is_identity(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        old = dyn.snapshot().s_linegraph(1).edgelist
        patched = patch_linegraph(old, dyn.state, (), 1)
        _assert_same_edgelist(patched, old)

    def test_requires_weights(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        el = dyn.snapshot().s_linegraph(1).edgelist
        stripped = type(el)(
            el.src, el.dst, None, num_vertices=el.num_vertices()
        )
        with pytest.raises(ValueError, match="weights"):
            patch_linegraph(stripped, dyn.state, {0}, 1)


class TestPatchWithBuilder:
    @pytest.mark.parametrize(
        "algorithm", ["queue_hashmap", "queue_intersection"]
    )
    def test_matches_rebuild_on_frozen_state(self, algorithm):
        rng = np.random.default_rng(5)
        members = _random_members(rng)
        dyn = DynamicHypergraph.from_hyperedge_lists(members, num_nodes=60)
        old = dyn.snapshot().s_linegraph(2).edgelist
        res = dyn.apply(
            [
                {"op": "add_edge", "members": [10, 11, 12]},
                {"op": "remove_edge", "edge": 0},
            ]
        )
        h = dyn.snapshot().biadjacency  # post-mutation frozen CSR
        patched = patch_with_builder(
            h=h, old_el=old, dirty_ids=res.dirty_edges, s=2,
            algorithm=algorithm,
        )
        ref = NWHypergraph.from_biadjacency(h).s_linegraph(2).edgelist
        _assert_same_edgelist(patched, ref, algorithm)

    def test_unknown_algorithm_rejected(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        el = dyn.snapshot().s_linegraph(1).edgelist
        with pytest.raises(ValueError, match="naive"):
            patch_with_builder(
                el, dyn.snapshot().biadjacency, {0}, 1, algorithm="naive"
            )


class TestDeltaFrontier:
    def test_frontier_covers_dirty_and_neighbors(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        frontier = delta_frontier(dyn.state, {0})
        # edge 0 = {0,1,2} shares vertices with edges 1, 2, 3
        assert frontier.tolist() == [0, 1, 2, 3]

    def test_isolated_dirty_edge(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        res = dyn.add_edge([8])  # node 8 only appears in edge 2
        frontier = delta_frontier(dyn.state, res.dirty_edges)
        assert set(frontier.tolist()) == {2, 4}


class TestIncrementalSLineGraph:
    def test_maintenance_across_a_mutation_stream(self):
        rng = np.random.default_rng(33)
        members = _random_members(rng)
        dyn = DynamicHypergraph.from_hyperedge_lists(members, num_nodes=60)
        inc = IncrementalSLineGraph(dyn, threshold=1.0)  # force patching
        for s in (1, 2, 3):
            inc.materialize(s)
        for step in range(10):
            kind = rng.integers(0, 3)
            if kind == 0:
                batch = [
                    {
                        "op": "add_edge",
                        "members": rng.integers(0, 60, size=3).tolist(),
                    }
                ]
            elif kind == 1:
                live = [
                    e
                    for e in range(dyn.number_of_edges())
                    if dyn.members(e).size
                ]
                batch = [{"op": "remove_edge", "edge": int(rng.choice(live))}]
            else:
                batch = [
                    {
                        "op": "add_incidence",
                        "edge": int(rng.integers(0, len(members))),
                        "node": int(rng.integers(0, 60)),
                    }
                ]
            outcomes = inc.update(dyn.apply(batch))
            assert set(outcomes.values()) <= {"patch", "rebuild"}
            for s in (1, 2, 3):
                ref = dyn.snapshot().s_linegraph(s).edgelist
                _assert_same_edgelist(
                    inc.linegraph(s).edgelist, ref, f"step={step} s={s}"
                )

    def test_out_of_order_result_rejected(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        inc = IncrementalSLineGraph(dyn)
        inc.materialize(1)
        res1 = dyn.add_edge([0, 1])
        res2 = dyn.add_edge([2, 3])
        with pytest.raises(RuntimeError):
            inc.update(res2)  # skipped res1
        inc.update(res1)
        inc.update(res2)
        assert inc.version == 2

    def test_materialize_refuses_stale_state(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        inc = IncrementalSLineGraph(dyn)
        dyn.add_edge([0, 1])
        with pytest.raises(RuntimeError):
            inc.materialize(1)

    def test_node_side_maintenance(self):
        dyn = DynamicHypergraph.from_hyperedge_lists(
            PAPER_MEMBERS, num_nodes=9
        )
        inc = IncrementalSLineGraph(dyn, over_edges=False, threshold=1.0)
        inc.materialize(1)
        res = dyn.apply([{"op": "add_edge", "members": [0, 4, 8]}])
        assert inc.update(res) == {1: "patch"}
        ref = dyn.snapshot().s_linegraph(1, over_edges=False).edgelist
        _assert_same_edgelist(inc.linegraph(1).edgelist, ref)

"""Property test (hypothesis): incremental maintenance == from-scratch.

Random 200-op mutation sequences are applied in batches to a
:class:`DynamicHypergraph` while :class:`IncrementalSLineGraph` patches
``L_s`` for s ∈ {1, 2, 3}; after the stream the hypergraph is compacted
and every maintained graph must be bit-identical to a from-scratch
construction on the compacted state — the repo's acceptance property for
the dynamic subsystem.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import NWHypergraph
from repro.dynamic import DynamicHypergraph, IncrementalSLineGraph

N_OPS = 200
MAX_NODES = 24


@st.composite
def initial_members(draw):
    n_e = draw(st.integers(3, 10))
    return draw(
        st.lists(
            st.lists(
                st.integers(0, MAX_NODES - 1),
                min_size=1,
                max_size=5,
                unique=True,
            ),
            min_size=n_e,
            max_size=n_e,
        )
    )


#: abstract op descriptors; interpreted against the evolving state so the
#: sequence is always applicable (hypothesis shrinks stay meaningful)
op_descriptors = st.lists(
    st.tuples(
        st.integers(0, 3),  # kind
        st.integers(0, 10_000),  # edge selector
        st.integers(0, 10_000),  # node selector
        st.lists(
            st.integers(0, MAX_NODES - 1), min_size=1, max_size=4, unique=True
        ),  # members for add_edge
    ),
    min_size=N_OPS,
    max_size=N_OPS,
)


def _interpret(dyn, kind, a, b, members):
    """Turn one abstract descriptor into an applicable wire record."""
    if kind == 0:
        return {"op": "add_edge", "members": members}
    if kind == 1:
        live = [
            e for e in range(dyn.number_of_edges()) if dyn.members(e).size
        ]
        if not live:
            return {"op": "add_edge", "members": members}
        return {"op": "remove_edge", "edge": live[a % len(live)]}
    if kind == 2:
        return {
            "op": "add_incidence",
            "edge": a % dyn.number_of_edges(),
            "node": b % MAX_NODES,
        }
    # remove_incidence: pick an existing membership
    populated = [
        e for e in range(dyn.number_of_edges()) if dyn.members(e).size
    ]
    if not populated:
        return {"op": "add_edge", "members": members}
    e = populated[a % len(populated)]
    mem = dyn.members(e)
    return {"op": "remove_incidence", "edge": e, "node": int(mem[b % mem.size])}


@settings(max_examples=10, deadline=None)
@given(initial_members(), op_descriptors)
def test_incremental_equals_rebuild_after_200_ops(members, descriptors):
    dyn = DynamicHypergraph.from_hyperedge_lists(members, num_nodes=MAX_NODES)
    # threshold=1.0 forces the patch path — the interesting one; the
    # rebuild path is trivially equivalent by construction
    inc = IncrementalSLineGraph(dyn, threshold=1.0)
    for s in (1, 2, 3):
        inc.materialize(s)
    patched = 0
    # records are interpreted against the state they will apply to, so
    # the stream goes through single-op batches
    for kind, a, b, mem in descriptors:
        record = _interpret(dyn, kind, a, b, mem)
        outcomes = inc.update(dyn.apply([record]))
        patched += sum(1 for how in outcomes.values() if how == "patch")
    assert patched > 0  # the property must not pass vacuously

    # compact, then compare against from-scratch construction
    compacted = dyn.compact()
    assert dyn.pending_ops() == 0
    for s in (1, 2, 3):
        ref = NWHypergraph(
            compacted.row,
            compacted.col,
            num_edges=compacted.number_of_edges(),
            num_nodes=compacted.number_of_nodes(),
        ).s_linegraph(s).edgelist
        got = inc.linegraph(s).edgelist
        assert np.array_equal(got.src, ref.src), s
        assert np.array_equal(got.dst, ref.dst), s
        assert np.array_equal(got.weights, ref.weights), s


@settings(max_examples=6, deadline=None)
@given(initial_members(), op_descriptors)
def test_node_side_incremental_equals_rebuild(members, descriptors):
    dyn = DynamicHypergraph.from_hyperedge_lists(members, num_nodes=MAX_NODES)
    inc = IncrementalSLineGraph(dyn, over_edges=False, threshold=1.0)
    inc.materialize(1)
    inc.materialize(2)
    for kind, a, b, mem in descriptors[:60]:
        record = _interpret(dyn, kind, a, b, mem)
        inc.update(dyn.apply([record]))
    compacted = dyn.compact()
    for s in (1, 2):
        ref = NWHypergraph(
            compacted.row,
            compacted.col,
            num_edges=compacted.number_of_edges(),
            num_nodes=compacted.number_of_nodes(),
        ).s_linegraph(s, over_edges=False).edgelist
        got = inc.linegraph(s).edgelist
        assert np.array_equal(got.src, ref.src), s
        assert np.array_equal(got.dst, ref.dst), s
        assert np.array_equal(got.weights, ref.weights), s

"""Packaging hygiene: version consistency, metadata files, public exports."""

import re
from pathlib import Path

import repro

ROOT = Path(__file__).resolve().parent.parent


def test_version_matches_pyproject():
    pyproject = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r'^version = "([^"]+)"', pyproject, flags=re.M)
    assert match
    assert repro.__version__ == match.group(1)


def test_release_artifacts_exist():
    for name in ("LICENSE", "CITATION.cff", "README.md", "DESIGN.md",
                 "EXPERIMENTS.md"):
        assert (ROOT / name).is_file(), name


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_alls_resolve():
    import importlib

    for sub in ("structures", "parallel", "graph", "algorithms",
                "linegraph", "core", "baselines", "io", "bench"):
        mod = importlib.import_module(f"repro.{sub}")
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), (sub, name)


def test_every_module_has_docstring():
    import ast

    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path} is missing a module docstring"

"""Approximation theory checks: s-line metrics vs exact hypergraph metrics.

The identity that anchors the paper's approximation story: for s = 1, the
line-graph distance between two hyperedges is *exactly* half their
bipartite-expansion distance — no information loss at s = 1 for
edge-to-edge reachability.  For s > 1, line distances can only grow
(edges drop out), and components can only split.
"""

import numpy as np
import pytest

from repro.algorithms.hyperbfs import hyperbfs_top_down
from repro.graph.bfs import bfs_top_down
from repro.linegraph import linegraph_csr, slinegraph_matrix
from repro.structures.biadjacency import BiAdjacency

from .conftest import random_biedgelist


@pytest.fixture(params=[0, 1, 2])
def h(request):
    return BiAdjacency.from_biedgelist(
        random_biedgelist(seed=request.param, num_edges=30, num_nodes=25,
                          max_size=5)
    )


def test_1_line_distance_is_half_bipartite_distance(h):
    g1 = linegraph_csr(slinegraph_matrix(h, 1))
    for src in range(0, h.num_hyperedges(), 4):
        line_dist, _ = bfs_top_down(g1, src)
        edge_dist, _ = hyperbfs_top_down(h, src, source_is_edge=True)
        for f in range(h.num_hyperedges()):
            if edge_dist[f] < 0:
                assert line_dist[f] == -1
            else:
                assert line_dist[f] * 2 == edge_dist[f], (src, f)


def test_s_distances_monotone_in_s(h):
    graphs = {
        s: linegraph_csr(slinegraph_matrix(h, s)) for s in (1, 2, 3)
    }
    for src in range(0, h.num_hyperedges(), 5):
        dists = {s: bfs_top_down(g, src)[0] for s, g in graphs.items()}
        for f in range(h.num_hyperedges()):
            d1, d2, d3 = dists[1][f], dists[2][f], dists[3][f]
            # unreachable (-1) is "infinite": encode as a large value
            inf = 10**9
            v1 = d1 if d1 >= 0 else inf
            v2 = d2 if d2 >= 0 else inf
            v3 = d3 if d3 >= 0 else inf
            assert v1 <= v2 <= v3


def test_components_refine_as_s_grows(h):
    from repro.graph.cc import connected_components

    prev_partition = None
    for s in (1, 2, 3):
        g = linegraph_csr(slinegraph_matrix(h, s))
        labels = connected_components(g)
        groups: dict[int, set] = {}
        for v, lab in enumerate(labels.tolist()):
            groups.setdefault(lab, set()).add(v)
        partition = {frozenset(grp) for grp in groups.values()}
        if prev_partition is not None:
            # every s-component is contained in some (s-1)-component
            for comp in partition:
                assert any(comp <= big for big in prev_partition)
        prev_partition = partition


def test_1_line_components_match_exact_hypergraph_components(h):
    """Zero information loss for connectivity at s = 1: the 1-line
    components are exactly the hyperedge sides of the exact components."""
    from repro.algorithms.hypercc import hypercc
    from repro.graph.cc import connected_components

    e_lab, _ = hypercc(h)
    g1 = linegraph_csr(slinegraph_matrix(h, 1))
    line_lab = connected_components(g1)

    def partition(labels):
        groups: dict[int, set] = {}
        for v, lab in enumerate(np.asarray(labels).tolist()):
            groups.setdefault(lab, set()).add(v)
        return {frozenset(grp) for grp in groups.values()}

    # exclude empty hyperedges (isolated in both views by convention)
    assert partition(e_lab) == partition(line_lab)

"""Tests for the public repro.testing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.testing import (
    assert_valid_hypergraph,
    hypergraphs,
    random_hypergraph,
)


class TestRandomHypergraph:
    def test_deterministic(self):
        a = random_hypergraph(seed=4)
        b = random_hypergraph(seed=4)
        assert np.array_equal(a.part0, b.part0)
        assert np.array_equal(a.part1, b.part1)

    def test_shape_params(self):
        el = random_hypergraph(num_edges=10, num_nodes=8, max_size=3,
                               min_size=3)
        h = assert_valid_hypergraph(el)
        assert h.num_hyperedges() == 10
        assert np.all(h.edge_sizes() == 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="min_size"):
            random_hypergraph(min_size=0)
        with pytest.raises(ValueError, match="min_size"):
            random_hypergraph(min_size=5, max_size=3)


class TestAssertValid:
    def test_returns_biadjacency(self):
        h = assert_valid_hypergraph(random_hypergraph(seed=1))
        assert h.num_hyperedges() == 40


@settings(max_examples=25, deadline=None)
@given(hypergraphs())
def test_strategy_outputs_are_valid(el):
    h = assert_valid_hypergraph(el)
    assert h.num_hyperedges() >= 1

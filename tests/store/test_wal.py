"""WAL framing: append/read round trip and every torn-tail class."""

import pytest

from repro.store import (
    StoreCorruptError,
    WAL_MAGIC,
    WriteAheadLog,
    read_wal,
)
from repro.dynamic.log import parse_batch

BATCHES = [
    [{"op": "add_edge", "members": [0, 1, 2]}],
    [{"op": "remove_edge", "edge": 0}, {"op": "add_edge", "members": [3]}],
    [{"op": "add_incidence", "edge": 1, "node": 5}],
]


def _fill(path):
    wal = WriteAheadLog(path)
    for i, batch in enumerate(BATCHES):
        wal.append(i + 1, parse_batch(batch))
    wal.close()
    return path


def test_append_read_round_trip(tmp_path):
    path = _fill(tmp_path / "wal.log")
    records, tail = read_wal(path)
    assert not tail.torn
    assert [r.version for r in records] == [1, 2, 3]
    assert [len(r.mutations) for r in records] == [1, 2, 1]
    got = [m.to_dict() for m in records[1].mutations]
    assert got == BATCHES[1]


def test_missing_file(tmp_path):
    records, tail = read_wal(tmp_path / "absent.log")
    assert records == [] and not tail.torn
    assert tail.reason == "missing"


def test_wrong_magic_is_corrupt(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"NOTAWAL!" + b"\x00" * 32)
    with pytest.raises(StoreCorruptError):
        read_wal(path)


@pytest.mark.parametrize("keep", [0, 4])  # empty file, partial magic
def test_short_magic_is_torn(tmp_path, keep):
    path = _fill(tmp_path / "wal.log")
    path.write_bytes(path.read_bytes()[:keep])
    records, tail = read_wal(path)
    assert records == []
    assert tail.torn and tail.committed_bytes == 0


def test_truncation_at_every_byte_keeps_committed_prefix(tmp_path):
    path = _fill(tmp_path / "wal.log")
    raw = path.read_bytes()
    # committed byte boundaries after each full record
    clean, _ = read_wal(path)
    assert len(clean) == len(BATCHES)
    for cut in range(len(WAL_MAGIC), len(raw)):
        path.write_bytes(raw[:cut])
        records, tail = read_wal(path)
        # recovery yields exactly the records wholly contained in the cut
        assert [r.version for r in records] == [
            r.version for r in clean[: len(records)]
        ]
        if cut == tail.committed_bytes:
            assert not tail.torn
        else:
            assert tail.torn
            assert tail.torn_bytes == cut - tail.committed_bytes


def test_crc_mismatch_is_torn_tail(tmp_path):
    path = _fill(tmp_path / "wal.log")
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip a payload byte of the final record
    path.write_bytes(bytes(raw))
    records, tail = read_wal(path)
    assert [r.version for r in records] == [1, 2]
    assert tail.torn and tail.reason == "crc mismatch"


def test_writer_truncates_torn_tail_on_open(tmp_path):
    path = _fill(tmp_path / "wal.log")
    raw = path.read_bytes()
    path.write_bytes(raw[:-3])
    wal = WriteAheadLog(path)  # opening repairs the tail
    assert wal.recovered_tail.torn
    wal.append(4, parse_batch([{"op": "add_edge", "members": [9]}]))
    wal.close()
    records, tail = read_wal(path)
    assert not tail.torn
    assert [r.version for r in records] == [1, 2, 4]


def test_reset_empties_the_log(tmp_path):
    path = _fill(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.reset()
    wal.close()
    assert path.read_bytes() == WAL_MAGIC
    records, tail = read_wal(path)
    assert records == [] and not tail.torn

"""Manifest round trip, store-dir sniffing, and corruption gates."""

import json

import pytest

from repro.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    SlabEntry,
    StoreCorruptError,
    StoreError,
    is_store_dir,
    load_manifest,
    save_manifest,
)


def _manifest() -> Manifest:
    return Manifest(
        name="toy",
        base_version=3,
        num_edges=4,
        num_nodes=9,
        num_incidences=13,
        arrays={
            "incidence.part0": SlabEntry(
                name="incidence.part0",
                offset=0,
                nbytes=104,
                shape=(13,),
                dtype="<i8",
                crc32=123,
            )
        },
        csrs={"incidence": {"part0": "incidence.part0"}},
        hot=[{"s": 2, "over_edges": True}],
        slab="data-3.slab",
    )


def test_round_trip(tmp_path):
    save_manifest(tmp_path, _manifest())
    loaded = load_manifest(tmp_path)
    assert loaded == _manifest()
    assert loaded.format_version == FORMAT_VERSION
    assert loaded.arrays["incidence.part0"].shape == (13,)


def test_is_store_dir(tmp_path):
    assert not is_store_dir(tmp_path)
    assert not is_store_dir(tmp_path / "missing")
    save_manifest(tmp_path, _manifest())
    assert is_store_dir(tmp_path)


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(StoreError, match="manifest"):
        load_manifest(tmp_path)


def test_unparseable_manifest_is_corrupt(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(StoreCorruptError):
        load_manifest(tmp_path)


def test_future_format_version_refused(tmp_path):
    save_manifest(tmp_path, _manifest())
    doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
    doc["format_version"] = FORMAT_VERSION + 1
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
    with pytest.raises(StoreError, match="format"):
        load_manifest(tmp_path)


def test_bad_entry_is_corrupt(tmp_path):
    save_manifest(tmp_path, _manifest())
    doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
    doc["arrays"]["incidence.part0"] = {"nonsense": True}
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
    with pytest.raises(StoreCorruptError):
        load_manifest(tmp_path)


def test_save_replaces_atomically(tmp_path):
    save_manifest(tmp_path, _manifest())
    second = Manifest.from_dict({**_manifest().to_dict(), "base_version": 9})
    save_manifest(tmp_path, second)
    assert load_manifest(tmp_path).base_version == 9
    # no leftover temp files from the atomic-replace protocol
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != MANIFEST_NAME]
    assert leftovers == []

"""Serving over a store: warm restart, durable updates, hydration."""

import numpy as np
import pytest

from repro.service import QueryEngine
from repro.store import build_store, open_store
from tests.conftest import random_biedgelist


@pytest.fixture
def store_dir(tmp_path):
    el = random_biedgelist(seed=7, num_edges=20, num_nodes=30)
    build_store(tmp_path / "store", el, name="svc", warm_s=(1, 2))
    return tmp_path / "store"


def test_register_store_hydrates_cache(store_dir):
    eng = QueryEngine()
    try:
        info = eng.register_store("svc", store_dir)
        assert info["version"] == 0
        assert {(h["s"], h["over_edges"]) for h in info["hydrated"]} == {
            (1, True),
            (2, True),
        }
        # the first query for a hydrated s is a cache hit, not a build
        resp = eng.execute({"op": "warm", "dataset": "svc", "s_values": [1, 2]})
        assert resp["result"] == {1: "hit", 2: "hit"}
    finally:
        eng.close()


def test_register_op_accepts_store_directory(store_dir):
    eng = QueryEngine()
    try:
        resp = eng.execute(
            {"op": "register", "name": "svc", "source": str(store_dir)}
        )
        assert resp["ok"] if "ok" in resp else True
        result = resp["result"]
        assert result["num_edges"] == 20
        assert result["recovery"]["replayed_batches"] == 0
        stats = eng.execute({"op": "stats", "dataset": "svc"})["result"]
        assert stats["durable"] is True
    finally:
        eng.close()


def test_updates_survive_engine_restart(store_dir):
    eng = QueryEngine()
    eng.register_store("svc", store_dir)
    for i in range(3):
        resp = eng.execute(
            {
                "op": "update",
                "dataset": "svc",
                "ops": [{"op": "add_edge", "members": [i, i + 1]}],
            }
        )
        assert resp["result"]["version"] == i + 1
    state = eng.store.get("svc")
    eng.close()

    # a brand-new engine (fresh process, morally) recovers the updates
    eng2 = QueryEngine()
    try:
        info = eng2.register_store("svc", store_dir)
        assert info["version"] == 3
        assert info["recovery"]["replayed_batches"] == 3
        assert info["hydrated"] == []  # replayed tail -> hot set is stale
        got = eng2.store.get("svc")
        assert np.array_equal(got._el.part0, state._el.part0)
        assert np.array_equal(got._el.part1, state._el.part1)
    finally:
        eng2.close()


def test_update_with_compact_checkpoints_durably(store_dir):
    eng = QueryEngine()
    eng.register_store("svc", store_dir)
    resp = eng.execute(
        {
            "op": "update",
            "dataset": "svc",
            "ops": [{"op": "add_edge", "members": [0, 1, 2]}],
            "compact": True,
        }
    )
    assert resp["result"]["compacted"] is True
    eng.close()

    # the checkpoint moved the snapshot forward: nothing left to replay
    handle = open_store(store_dir)
    try:
        assert handle.manifest.base_version == 1
        assert handle.recovery.replayed_batches == 0
        # and the hot set was recomputed over the new state
        assert set(handle.hot_linegraphs()) == {(1, True), (2, True)}
    finally:
        handle.close()


def test_unregister_and_close_release_handles(store_dir):
    eng = QueryEngine()
    eng.register_store("svc", store_dir)
    assert eng.store.store_handle("svc") is not None
    eng.store.unregister("svc")
    assert "svc" not in eng.store
    # double-close is fine
    eng.close()
    eng.close()


def test_replace_swaps_the_store_handle(store_dir, tmp_path):
    el = random_biedgelist(seed=9, num_edges=5, num_nodes=10)
    build_store(tmp_path / "other", el, name="other")
    eng = QueryEngine()
    try:
        eng.register_store("svc", store_dir)
        with pytest.raises(ValueError, match="already registered"):
            eng.register_store("svc", tmp_path / "other")
        eng.register_store("svc", tmp_path / "other", replace=True)
        assert eng.store.get("svc").number_of_edges() == 5
    finally:
        eng.close()

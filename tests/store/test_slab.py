"""Slab writer/reader: alignment, checksums, mmap handles, pickling."""

import pickle

import numpy as np
import pytest

from repro.store import PAGE_SIZE, MappedArray, SlabFile, SlabWriter
from repro.store.slab import csr_handle_of, handle_of
from repro.structures.csr import CSR


def _write(tmp_path, arrays):
    path = tmp_path / "data-0.slab"
    writer = SlabWriter(path)
    for name, arr in arrays.items():
        writer.add(name, arr)
    return path, writer.finish()


def test_round_trip_and_alignment(tmp_path):
    arrays = {
        "a": np.arange(7, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 3),
        "c": np.array([], dtype=np.int64),
        "d": np.arange(PAGE_SIZE, dtype=np.uint8),
    }
    path, entries = _write(tmp_path, arrays)
    for entry in entries.values():
        assert entry.offset % PAGE_SIZE == 0
    slab = SlabFile(path, entries)
    try:
        for name, arr in arrays.items():
            got = slab.array(name)
            assert got.dtype == arr.dtype
            assert np.array_equal(got, arr)
            if got.size:  # views are read-only: the slab is immutable
                with pytest.raises(ValueError):
                    got[0] = 0
        assert slab.verify() == []
    finally:
        slab.close()


def test_verify_flags_corruption(tmp_path):
    path, entries = _write(tmp_path, {"a": np.arange(16, dtype=np.int64)})
    raw = bytearray(path.read_bytes())
    raw[entries["a"].offset] ^= 0xFF
    path.write_bytes(bytes(raw))
    slab = SlabFile(path, entries)
    try:
        assert slab.verify() == ["a"]
    finally:
        slab.close()


def test_truncated_slab_is_corrupt(tmp_path):
    from repro.store import StoreCorruptError

    path, entries = _write(tmp_path, {"a": np.arange(16, dtype=np.int64)})
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(StoreCorruptError):
        SlabFile(path, entries)


def test_handle_of_registered_views(tmp_path):
    path, entries = _write(
        tmp_path,
        {
            "x": np.arange(32, dtype=np.int64),
            "y": np.arange(5, dtype=np.float64),
        },
    )
    slab = SlabFile(path, entries)
    try:
        x = slab.array("x")
        handle = handle_of(x)
        assert isinstance(handle, MappedArray)
        # the handle reopens the same bytes through its own mapping
        reopened = handle.open()
        assert np.array_equal(reopened, x)
        handle.close()
        # a sliced view inside the mapping still resolves
        assert handle_of(x[4:20]) is not None
        # plain heap arrays don't
        assert handle_of(np.arange(32, dtype=np.int64)) is None
    finally:
        slab.close()
    # after close the registry forgets the range
    assert handle_of(np.arange(3)) is None


def test_mapped_array_pickles(tmp_path):
    path, entries = _write(tmp_path, {"x": np.arange(1000, dtype=np.int64)})
    slab = SlabFile(path, entries)
    try:
        handle = handle_of(slab.array("x"))
        clone = pickle.loads(pickle.dumps(handle))
        arr = clone.open()
        assert np.array_equal(arr, np.arange(1000))
        assert not arr.flags.writeable
        clone.close()
    finally:
        slab.close()


def test_csr_handle_round_trip(tmp_path):
    csr = CSR.from_coo(
        [0, 0, 1, 2],
        [1, 2, 0, 2],
        weights=np.array([1.0, 2.0, 3.0, 4.0]),
        num_sources=3,
    )
    path, entries = _write(
        tmp_path, {"p": csr.indptr, "i": csr.indices, "w": csr.weights}
    )
    slab = SlabFile(path, entries)
    try:
        mapped = CSR.adopt(
            slab.array("p"),
            slab.array("i"),
            slab.array("w"),
            num_targets=csr.num_targets(),
        )
        handle = csr_handle_of(mapped)
        assert handle is not None
        clone = pickle.loads(pickle.dumps(handle))
        reopened = clone.open()
        assert np.array_equal(reopened.indptr, csr.indptr)
        assert np.array_equal(reopened.indices, csr.indices)
        assert np.array_equal(reopened.weights, csr.weights)
        assert reopened.num_targets() == csr.num_targets()
        clone.release()
        # a CSR with any heap-resident buffer is not fully mapped
        heap = CSR.from_coo([0], [0], num_sources=1)
        assert csr_handle_of(heap) is None
    finally:
        slab.close()

"""Crash recovery: WAL replay, checkpoints, and the torn-tail property.

The subsystem's acceptance property (hypothesis): for any mutation
history and ANY byte-level truncation of the WAL — the on-disk state a
``kill -9`` can leave behind — reopening the store recovers exactly the
state reached by replaying the committed prefix of batches, and a
subsequent snapshot is bit-identical to one built from scratch over that
prefix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import NWHypergraph
from repro.dynamic.hypergraph import DynamicHypergraph
from repro.store import (
    StoreError,
    build_store,
    open_store,
)
from repro.store.wal import WAL_MAGIC, read_wal
from tests.conftest import random_biedgelist

MAX_NODES = 16


def _build(tmp_path, seed=3):
    el = random_biedgelist(
        seed=seed, num_edges=8, num_nodes=MAX_NODES, max_size=4
    )
    build_store(tmp_path, el, name="rec", warm_s=(1,))
    return el


def _burst(i):
    """A deterministic little mutation batch, varied by index."""
    return [
        {"op": "add_edge", "members": [i % MAX_NODES, (i + 1) % MAX_NODES]},
        {"op": "add_incidence", "edge": i % 4, "node": (i * 3) % MAX_NODES},
    ]


def test_reopen_replays_the_tail(tmp_path):
    _build(tmp_path)
    h1 = open_store(tmp_path)
    for i in range(4):
        h1.dynamic.apply(_burst(i))
    state = h1.hypergraph()
    h1.close()

    h2 = open_store(tmp_path)
    try:
        assert h2.recovery.replayed_batches == 4
        assert h2.recovery.replayed_ops == 8
        assert h2.version == 4
        got = h2.hypergraph()
        assert np.array_equal(got._el.part0, state._el.part0)
        assert np.array_equal(got._el.part1, state._el.part1)
        # replayed state invalidates persisted hot entries
        assert h2.hot_linegraphs() == {}
    finally:
        h2.close()


def test_checkpoint_folds_and_resets(tmp_path):
    _build(tmp_path)
    h1 = open_store(tmp_path)
    for i in range(3):
        h1.dynamic.apply(_burst(i))
    h1.checkpoint()
    assert h1.manifest.base_version == 3
    assert h1.manifest.slab == "data-3.slab"
    state = h1.hypergraph()
    h1.close()
    # the old slab was cleaned up, the WAL is empty
    assert not (tmp_path / "data-0.slab").exists()
    assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC

    h2 = open_store(tmp_path)
    try:
        assert h2.version == 3
        assert h2.recovery.replayed_batches == 0
        assert np.array_equal(
            h2.hypergraph()._el.part0, state._el.part0
        )
        # hot entries were recomputed by the checkpoint and are current
        hot = h2.hot_linegraphs()
        assert set(hot) == {(1, True)}
        want = h2.hypergraph().s_linegraph(1).edgelist
        assert np.array_equal(hot[(1, True)].edgelist.src, want.src)
        assert np.array_equal(hot[(1, True)].edgelist.dst, want.dst)
    finally:
        h2.close()


def test_stale_wal_records_after_checkpoint_crash(tmp_path):
    """A checkpoint that crashed before resetting the WAL is harmless."""
    _build(tmp_path)
    h1 = open_store(tmp_path)
    for i in range(3):
        h1.dynamic.apply(_burst(i))
    wal_bytes = (tmp_path / "wal.log").read_bytes()
    h1.checkpoint()
    h1.close()
    # simulate the crash window: manifest committed, WAL reset lost
    (tmp_path / "wal.log").write_bytes(wal_bytes)

    h2 = open_store(tmp_path)
    try:
        assert h2.recovery.skipped_records == 3
        assert h2.recovery.replayed_batches == 0
        assert h2.version == 3
    finally:
        h2.close()


def test_wal_append_failure_poisons_the_handle(tmp_path):
    _build(tmp_path)
    h = open_store(tmp_path)
    try:
        h.dynamic.apply(_burst(0))
        h.dynamic._wal._fh.close()  # simulate the disk going away
        with pytest.raises(StoreError, match="WAL append"):
            h.dynamic.apply(_burst(1))
        # memory was rolled forward but durability failed: read-only now
        with pytest.raises(StoreError, match="read-only"):
            h.dynamic.apply(_burst(2))
    finally:
        h.slab.close()


def _committed_prefix_state(el, wal_path):
    """Reference: replay the recoverable records onto a fresh dynamic."""
    records, _ = read_wal(wal_path)
    ref = DynamicHypergraph(
        NWHypergraph(
            el.part0,
            el.part1,
            el.weights,
            num_edges=el.num_vertices(0),
            num_nodes=el.num_vertices(1),
        )
    )
    for record in records:
        ref.apply(list(record.mutations))
    return ref.snapshot(), len(records)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 5),
    n_batches=st.integers(1, 6),
    cut_fraction=st.floats(0.0, 1.0),
)
def test_any_truncation_recovers_committed_prefix(
    tmp_path_factory, seed, n_batches, cut_fraction
):
    tmp_path = tmp_path_factory.mktemp("crash")
    el = _build(tmp_path, seed=seed)
    h = open_store(tmp_path)
    for i in range(n_batches):
        h.dynamic.apply(_burst(i + seed))
    h.close()

    # kill -9 at an arbitrary byte: truncate the WAL mid-write
    wal_path = tmp_path / "wal.log"
    raw = wal_path.read_bytes()
    cut = len(WAL_MAGIC) + int(cut_fraction * (len(raw) - len(WAL_MAGIC)))
    wal_path.write_bytes(raw[:cut])

    want, committed = _committed_prefix_state(el, wal_path)
    h2 = open_store(tmp_path)
    try:
        assert h2.recovery.replayed_batches == committed
        assert h2.version == committed
        got = h2.hypergraph()
        assert np.array_equal(got._el.part0, want._el.part0)
        assert np.array_equal(got._el.part1, want._el.part1)
        # and the recovered state checkpoint is bit-identical to a
        # snapshot written from the reference replay
        h2.checkpoint(recompute_hot=False)
        slab_a = (tmp_path / h2.manifest.slab).read_bytes()
    finally:
        h2.close()

    from repro.store import write_snapshot

    ref_dir = tmp_path_factory.mktemp("ref")
    manifest = write_snapshot(ref_dir, want, "rec", base_version=committed)
    slab_b = (ref_dir / manifest.slab).read_bytes()
    assert slab_a == slab_b


def test_failed_open_releases_slab_and_wal(tmp_path):
    """A WAL gap aborts open_store without leaking the mmap or the WAL
    append handle (regression: both used to stay open until GC)."""
    from repro.dynamic.log import Mutation
    from repro.store import StoreCorruptError
    from repro.store.slab import _OPEN_SLABS
    from repro.store.wal import WriteAheadLog

    _build(tmp_path)
    wal = WriteAheadLog(tmp_path / "wal.log")
    # gap: base_version is 0, so replay expects version 1, not 5
    wal.append(5, [Mutation.from_dict(m) for m in _burst(0)])
    wal.close()

    before = set(_OPEN_SLABS)
    with pytest.raises(StoreCorruptError, match="WAL gap"):
        open_store(tmp_path)
    assert set(_OPEN_SLABS) == before  # the mmap was released

    # the failed open truncated nothing and closed its WAL handle: once
    # the gap is cleared the store opens normally
    (tmp_path / "wal.log").write_bytes(WAL_MAGIC)
    handle = open_store(tmp_path)
    try:
        assert handle.version == 0
    finally:
        handle.close()

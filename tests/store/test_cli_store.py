"""`repro store` CLI and the kill -9 crash test over `repro serve --store`.

The crash test is the ISSUE's acceptance scenario end to end: build a
store, serve it, fire a mutation burst over TCP, SIGKILL the server
mid-flight, restart on the same directory, and require the recovered
s-line-graph answers to be bit-identical to a cold rebuild from the
recovered incidence state.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import main
from repro.io.mmio import write_mm
from repro.store import open_store
from tests.conftest import random_biedgelist


@pytest.fixture
def mtx(tmp_path):
    path = tmp_path / "toy.mtx"
    write_mm(path, random_biedgelist(seed=5, num_edges=12, num_nodes=18))
    return str(path)


def run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestStoreCommands:
    def test_build_inspect(self, capsys, mtx, tmp_path):
        d = str(tmp_path / "store")
        out = run(capsys, "store", "build", mtx, d, "--warm-s", "1", "2")
        assert "dataset 'toy'" in out
        out = run(capsys, "store", "inspect", d)
        assert "version   0" in out
        assert "s=1 (edges), s=2 (edges)" in out
        doc = json.loads(run(capsys, "store", "inspect", d, "--json"))
        assert doc["name"] == "toy"
        assert doc["hot"] == 2

    def test_verify_detects_corruption(self, capsys, mtx, tmp_path):
        d = tmp_path / "store"
        run(capsys, "store", "build", mtx, str(d))
        assert main(["store", "inspect", str(d), "--verify"]) == 0
        capsys.readouterr()
        slab = next(d.glob("data-*.slab"))
        raw = bytearray(slab.read_bytes())
        raw[0] ^= 0xFF
        slab.write_bytes(bytes(raw))
        assert main(["store", "inspect", str(d), "--verify"]) == 1

    def test_compact(self, capsys, mtx, tmp_path):
        d = str(tmp_path / "store")
        run(capsys, "store", "build", mtx, d)
        h = open_store(d)
        h.dynamic.apply([{"op": "add_edge", "members": [0, 1]}])
        h.close()
        out = run(capsys, "store", "compact", d)
        assert "base version 0 -> 1" in out
        out = run(capsys, "store", "inspect", d)
        assert "version   1 (snapshot at 1" in out

    def test_build_from_standin_name(self, capsys, tmp_path):
        d = str(tmp_path / "store")
        out = run(capsys, "store", "build", "rand1", d, "--no-adjoin")
        assert "dataset 'rand1'" in out

    def test_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="store error"):
            main(["store", "inspect", str(tmp_path)])


def _serve(directory, *extra):
    """Spawn `repro serve --store` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", str(directory), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    port = None
    deadline = time.monotonic() + 30
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        m = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"server never bound: {''.join(lines)}")
    return proc, port


def _request(port, query):
    from repro.service import SocketSession

    with SocketSession("127.0.0.1", port, strict=False) as client:
        return client.request(query)


def test_kill9_recovers_to_committed_state(tmp_path):
    el = random_biedgelist(seed=13, num_edges=15, num_nodes=20)
    directory = tmp_path / "store"
    write_mm(tmp_path / "crash.mtx", el)
    assert main([
        "store", "build", str(tmp_path / "crash.mtx"), str(directory),
        "--warm-s", "1",
    ]) == 0

    proc, port = _serve(directory)
    try:
        # mutation burst: every acknowledged batch must survive the kill
        acked = 0
        for i in range(6):
            resp = _request(port, {
                "op": "update",
                "dataset": "store",
                "ops": [{"op": "add_edge", "members": [i, (i + 2) % 20]}],
            })
            assert resp["ok"], resp
            acked = resp["result"]["version"]
        assert acked == 6
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    # cold reference: rebuild from the recovered incidence state
    h = open_store(directory)
    try:
        assert h.version == acked
        assert h.recovery.replayed_batches == acked
        recovered = h.hypergraph()
        warm = {
            s: recovered.s_linegraph(s).edgelist for s in (1, 2)
        }
    finally:
        h.close()

    # warm restart the server and compare the served answers
    proc2, port2 = _serve(directory)
    try:
        from repro.core.hypergraph import NWHypergraph

        cold = NWHypergraph(
            recovered._el.part0.copy(),
            recovered._el.part1.copy(),
            num_edges=recovered.number_of_edges(),
            num_nodes=recovered.number_of_nodes(),
        )
        for s in (1, 2):
            resp = _request(port2, {
                "op": "s_connected_components", "dataset": "store", "s": s,
            })
            assert resp["ok"], resp
            want = cold.s_linegraph(s).edgelist
            assert np.array_equal(warm[s].src, want.src)
            assert np.array_equal(warm[s].dst, want.dst)
    finally:
        os.kill(proc2.pid, signal.SIGKILL)
        proc2.wait(timeout=10)

"""Compressed snapshots: varint-encoded CSR columns round-trip exactly.

``build_store(compress=True)`` persists the bi-adjacency and adjoin
adjacency columns delta+varint encoded.  Opening such a store must
reproduce the exact graphs a plain store yields, checkpoints must keep
the encoding, and the slab must actually get smaller.
"""

import numpy as np
import pytest

from repro.store import build_store, open_store
from tests.conftest import random_biedgelist


@pytest.fixture(scope="module")
def el():
    return random_biedgelist(seed=23, num_edges=35, num_nodes=45)


@pytest.fixture(scope="module")
def dirs(el, tmp_path_factory):
    plain = tmp_path_factory.mktemp("plain")
    packed = tmp_path_factory.mktemp("packed")
    m1 = build_store(plain, el, name="d", warm_s=(2,))
    m2 = build_store(packed, el, name="d", warm_s=(2,), compress=True)
    return plain, packed, m1, m2


def test_compressed_slab_is_smaller(dirs):
    _, _, m1, m2 = dirs
    assert m2.slab_bytes() < m1.slab_bytes()
    for key, spec in m2.csrs.items():
        if key == "incidence":
            continue
        assert spec["encoding"] == "varint", key
        assert "offsets" in spec and "data" in spec


def test_open_decodes_to_identical_graphs(dirs):
    plain, packed, *_ = dirs
    a = open_store(plain)
    b = open_store(packed)
    try:
        ha, hb = a.hypergraph(), b.hypergraph()
        for attr in ("edges", "nodes"):
            ca = getattr(ha.biadjacency, attr)
            cb = getattr(hb.biadjacency, attr)
            np.testing.assert_array_equal(ca.indptr, cb.indptr)
            np.testing.assert_array_equal(ca.indices, cb.indices)
        np.testing.assert_array_equal(
            ha.adjoin_graph.graph.indices, hb.adjoin_graph.graph.indices
        )
        for s in (1, 2, 3):
            ga = ha.s_linegraph(s, over_edges=True).edgelist
            gb = hb.s_linegraph(s, over_edges=True).edgelist
            np.testing.assert_array_equal(ga.src, gb.src)
            np.testing.assert_array_equal(ga.dst, gb.dst)
            np.testing.assert_array_equal(ga.weights, gb.weights)
    finally:
        a.close()
        b.close()


def test_checkpoint_preserves_encoding(el, tmp_path):
    build_store(tmp_path, el, name="d", compress=True)
    handle = open_store(tmp_path)
    try:
        handle.dynamic.apply([{"op": "add_edge", "members": [0, 1, 2]}])
        handle.checkpoint()
        assert all(
            spec.get("encoding") == "varint"
            for key, spec in handle.manifest.csrs.items()
            if key != "incidence"
        )
    finally:
        handle.close()
    reopened = open_store(tmp_path)
    try:
        assert reopened.version == 1
        hg = reopened.hypergraph()
        assert hg.number_of_edges() == el.num_vertices(0) + 1
    finally:
        reopened.close()


def test_unsorted_rows_fall_back_to_plain(monkeypatch, el, tmp_path):
    """A CSR that can't delta-encode is stored plain, not dropped."""
    from repro.structures.csr import CSR

    monkeypatch.setattr(CSR, "has_sorted_rows", False)
    build_store(tmp_path, el, name="d", compress=True)
    handle = open_store(tmp_path)
    try:
        assert all(
            "encoding" not in spec
            for key, spec in handle.manifest.csrs.items()
            if key != "incidence"
        )
    finally:
        handle.close()

"""Store round trip: mmap-adopted graphs ≡ in-memory construction.

The acceptance property of the slab format: every algorithm the library
runs over an :class:`NWHypergraph` must produce bit-identical results
whether the underlying buffers are heap arrays (cold parse) or read-only
mmap views adopted from a store (warm open).
"""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.io.loader import read_any
from repro.store import build_store, open_store, read_store
from tests.conftest import random_biedgelist

ALGORITHMS = [
    "naive",
    "intersection",
    "hashmap",
    "queue_hashmap",
    "queue_intersection",
]


@pytest.fixture(scope="module")
def el():
    return random_biedgelist(seed=11, num_edges=30, num_nodes=40)


@pytest.fixture(scope="module")
def store_dir(el, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store")
    build_store(directory, el, name="roundtrip", warm_s=(1, 2))
    return directory


def _reference(el) -> NWHypergraph:
    return NWHypergraph(
        el.part0,
        el.part1,
        el.weights,
        num_edges=el.num_vertices(0),
        num_nodes=el.num_vertices(1),
    )


def test_open_is_zero_copy_mmap(el, store_dir):
    handle = open_store(store_dir)
    try:
        hg = handle.hypergraph()
        # the incidence buffers are read-only views into the slab mapping
        assert not hg._el.part0.flags.writeable
        assert not hg.biadjacency.edges.indptr.flags.writeable
        assert np.array_equal(hg._el.part0, _reference(el)._el.part0)
        assert np.array_equal(hg._el.part1, _reference(el)._el.part1)
    finally:
        handle.close()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("over_edges", [True, False])
def test_slinegraph_equivalence_all_builders(
    el, store_dir, algorithm, over_edges
):
    ref = _reference(el)
    handle = open_store(store_dir)
    try:
        hg = handle.hypergraph()
        for s in (1, 2, 3):
            want = ref.s_linegraph(
                s, over_edges=over_edges, algorithm=algorithm
            ).edgelist
            got = hg.s_linegraph(
                s, over_edges=over_edges, algorithm=algorithm
            ).edgelist
            assert np.array_equal(got.src, want.src), (algorithm, s)
            assert np.array_equal(got.dst, want.dst), (algorithm, s)
            assert np.array_equal(got.weights, want.weights), (algorithm, s)
    finally:
        handle.close()


def test_adjoin_bfs_and_components_equivalence(el, store_dir):
    from repro.algorithms.adjoinbfs import adjoinbfs
    from repro.algorithms.adjoincc import adjoincc

    ref = _reference(el)
    handle = open_store(store_dir)
    try:
        hg = handle.hypergraph()
        for got, want in zip(
            adjoincc(hg.adjoin_graph), adjoincc(ref.adjoin_graph)
        ):
            assert np.array_equal(got, want)
        for got, want in zip(
            adjoinbfs(hg.adjoin_graph, 0), adjoinbfs(ref.adjoin_graph, 0)
        ):
            assert np.array_equal(got, want)
    finally:
        handle.close()


def test_hot_rehydration_matches_fresh_build(el, store_dir):
    ref = _reference(el)
    handle = open_store(store_dir)
    try:
        hot = handle.hot_linegraphs()
        assert set(hot) == {(1, True), (2, True)}
        for (s, over_edges), lg in hot.items():
            want = ref.s_linegraph(s, over_edges=over_edges).edgelist
            assert np.array_equal(lg.edgelist.src, want.src)
            assert np.array_equal(lg.edgelist.dst, want.dst)
    finally:
        handle.close()


def test_read_store_and_read_any(el, store_dir):
    for got in (read_store(store_dir), read_any(store_dir)):
        assert np.array_equal(got.part0, _reference(el)._el.part0)
        assert np.array_equal(got.part1, _reference(el)._el.part1)
        assert got.part0.flags.writeable  # copies, not mapping views


def test_read_any_rejects_non_store_directory(tmp_path):
    with pytest.raises(ValueError, match="manifest"):
        read_any(tmp_path)

"""NWHypergraph.s_linegraph instance memo + invalidate() escape hatch."""

import pytest

from repro.core.hypergraph import NWHypergraph
from repro.parallel.runtime import ParallelRuntime

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def hg():
    el = make_biedgelist(PAPER_MEMBERS, num_nodes=9)
    return NWHypergraph(el.part0, el.part1, num_edges=4, num_nodes=9)


class TestInstanceMemo:
    def test_repeat_calls_return_same_object(self, hg):
        assert hg.s_linegraph(2) is hg.s_linegraph(2)

    def test_distinct_parameters_get_distinct_entries(self, hg):
        lg_s2 = hg.s_linegraph(2)
        assert hg.s_linegraph(3) is not lg_s2
        assert hg.s_linegraph(2, over_edges=False) is not lg_s2
        assert hg.s_linegraph(2, algorithm="intersection") is not lg_s2
        assert hg.s_linegraph(2) is lg_s2  # originals still resident

    def test_runtime_calls_bypass_the_memo(self, hg):
        memoized = hg.s_linegraph(2)
        rt = ParallelRuntime(num_threads=2)
        timed = hg.s_linegraph(2, runtime=rt)
        assert timed is not memoized
        assert timed.edgelist == memoized.edgelist
        # and the bypass did not clobber the memo
        assert hg.s_linegraph(2) is memoized

    def test_invalidate_clears_the_memo(self, hg):
        before = hg.s_linegraph(2)
        hg.invalidate()
        after = hg.s_linegraph(2)
        assert after is not before
        assert after.edgelist == before.edgelist

    def test_dual_has_its_own_memo(self, hg):
        d = hg.dual()
        lg = d.s_linegraph(1)
        assert d.s_linegraph(1) is lg
        assert hg.s_linegraph(1) is not lg

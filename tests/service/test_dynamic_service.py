"""The v1.1 ``update`` op: dynamic datasets, cache patching, versioned keys."""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.dynamic import DynamicHypergraph
from repro.service import QueryEngine

from ..conftest import PAPER_MEMBERS


def _random_members(seed, n_edges=120, n_nodes=90):
    rng = np.random.default_rng(seed)
    return [
        sorted(set(rng.integers(0, n_nodes, size=rng.integers(2, 6)).tolist()))
        for _ in range(n_edges)
    ]


@pytest.fixture
def engine():
    eng = QueryEngine(num_threads=1)
    eng.store.register(
        "paper", NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9)
    )
    return eng


class TestUpdateOp:
    def test_update_promotes_and_reports_delta(self, engine):
        resp = engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [{"op": "add_edge", "members": [0, 8]}],
            }
        )
        assert resp["ok"] is True
        body = resp["result"]
        assert body["version"] == 1
        assert body["new_edges"] == [4]
        assert engine.store.is_dynamic("paper")
        assert engine.store.versioned_name("paper") == "paper@v1"

    def test_reads_see_the_new_state(self, engine):
        engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [{"op": "add_edge", "members": [6, 8]}],
            }
        )
        stats = engine.execute({"op": "stats", "dataset": "paper"})
        assert stats["result"]["num_edges"] == len(PAPER_MEMBERS) + 1
        assert stats["result"]["version"] == 1
        # new edge 4 = {6,8} shares nothing with edge 0 = {0,1,2} but
        # reaches it through edge 3 = {0,1,2,6}
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 1,
             "src": 4, "dst": 0}
        )
        assert resp["result"] == 2

    def test_invalid_mutation_is_structured_and_atomic(self, engine):
        resp = engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [
                    {"op": "add_edge", "members": [0, 1]},
                    {"op": "remove_edge", "edge": 99},
                ],
            }
        )
        assert resp["ok"] is False
        assert resp["error"]["code"] == "invalid_mutation"
        assert engine.store.version("paper") == 0
        assert engine.store.get("paper").number_of_edges() == len(
            PAPER_MEMBERS
        )

    def test_ops_must_be_a_nonempty_list(self, engine):
        for bad in ([], "add_edge", None):
            resp = engine.execute(
                {"op": "update", "dataset": "paper", "ops": bad}
            )
            assert resp["ok"] is False

    def test_unknown_dataset(self, engine):
        resp = engine.execute(
            {"op": "update", "dataset": "nope",
             "ops": [{"op": "remove_edge", "edge": 0}]}
        )
        assert resp["error"]["code"] == "unknown_dataset"

    def test_compact_flag(self, engine):
        resp = engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "compact": True,
                "ops": [{"op": "remove_edge", "edge": 0}],
            }
        )
        assert resp["result"]["compacted"] is True
        dyn = engine.store.get_dynamic("paper")
        assert dyn.pending_ops() == 0
        assert dyn.version == 1

    def test_register_dynamic_source(self, engine):
        dyn = DynamicHypergraph.from_hyperedge_lists(PAPER_MEMBERS)
        engine.store.register("dyn", dyn)
        assert engine.store.is_dynamic("dyn")
        res = engine.execute(
            {"op": "update", "dataset": "dyn",
             "ops": [{"op": "add_edge", "members": [1, 2]}]}
        )
        assert res["ok"] and dyn.version == 1


class TestCachePatching:
    def test_small_delta_patches_live_entries(self):
        eng = QueryEngine(num_threads=1)
        eng.store.register(
            "rnd",
            NWHypergraph.from_hyperedge_lists(
                _random_members(3), num_nodes=90
            ),
        )
        eng.execute({"op": "warm", "dataset": "rnd", "s_values": [1, 2]})
        eng.execute(
            {"op": "warm", "dataset": "rnd", "s_values": [1],
             "over_edges": False}
        )
        resp = eng.execute(
            {
                "op": "update",
                "dataset": "rnd",
                "ops": [
                    {"op": "add_edge", "members": [0, 1, 2]},
                    {"op": "remove_edge", "edge": 4},
                ],
            }
        )
        outcomes = resp["result"]["cache"]
        assert set(outcomes) == {"s=1,edges", "s=2,edges", "s=1,nodes"}
        assert all(v.startswith("patched") for v in outcomes.values())
        # old-key entries are gone; new-key entries answer and are exact
        assert eng.cache.entries_for("rnd") == []
        entries = eng.cache.entries_for("rnd@v1")
        assert len(entries) == 3
        ref_hg = eng.store.get("rnd")
        for s, over_edges, lg in entries:
            ref = NWHypergraph(
                ref_hg.row,
                ref_hg.col,
                num_edges=ref_hg.number_of_edges(),
                num_nodes=ref_hg.number_of_nodes(),
            ).s_linegraph(s, over_edges=over_edges).edgelist
            got = lg.edgelist
            assert np.array_equal(got.src, ref.src)
            assert np.array_equal(got.dst, ref.dst)
            assert np.array_equal(got.weights, ref.weights)
        hit = eng.execute(
            {"op": "s_distance", "dataset": "rnd", "s": 1,
             "src": 0, "dst": 1}
        )
        assert hit["via"] == "cache:hit"

    def test_large_delta_drops_entries(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        # 2 of 4 hyperedges dirty — way past the 10% patch threshold
        resp = engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [
                    {"op": "remove_edge", "edge": 0},
                    {"op": "remove_edge", "edge": 1},
                ],
            }
        )
        assert resp["result"]["cache"]["s=1,edges"] == "dropped"
        assert engine.cache.entries_for("paper") == []
        assert engine.cache.entries_for("paper@v1") == []
        # next query rebuilds under the versioned key
        rebuilt = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 1,
             "src": 2, "dst": 3}
        )
        assert rebuilt["via"] == "cache:miss"
        assert engine.cache.entries_for("paper@v1") != []

    def test_patch_metrics_emitted(self):
        eng = QueryEngine(num_threads=1)
        eng.store.register(
            "rnd",
            NWHypergraph.from_hyperedge_lists(
                _random_members(9), num_nodes=90
            ),
        )
        eng.execute({"op": "warm", "dataset": "rnd", "s_values": [1]})
        eng.execute(
            {"op": "update", "dataset": "rnd",
             "ops": [{"op": "add_edge", "members": [3, 4]}]}
        )
        snap = {
            (i["name"], tuple(sorted(i.get("labels", {}).items())))
            for i in eng.obs_metrics.snapshot()
        }
        assert (
            "dynamic_cache_patches_total",
            (("outcome", "patched"),),
        ) in snap
        assert any(n == "dynamic_patched_pairs_total" for n, _ in snap)


class TestVersionedKeys:
    def test_static_dataset_keys_under_bare_name(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        assert engine.cache.entries_for("paper") != []

    def test_promotion_at_v0_keeps_bare_key(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        engine.store.get_dynamic("paper")  # promote without updating
        assert engine.store.versioned_name("paper") == "paper"
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 1,
             "src": 0, "dst": 2}
        )
        assert resp["via"] == "cache:hit"  # pre-promotion entry reachable

    def test_invalidate_covers_bare_and_versioned_keys(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        engine.execute(
            {"op": "update", "dataset": "paper",
             "ops": [{"op": "add_incidence", "edge": 0, "node": 8}]}
        )
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [2]})
        assert engine.cache.entries_for("paper@v1") != []
        resp = engine.execute({"op": "invalidate", "dataset": "paper"})
        assert resp["ok"] is True
        assert engine.cache.entries_for("paper") == []
        assert engine.cache.entries_for("paper@v1") == []

"""Property: the sharded engine answers bit-identically to the single engine.

The acceptance bar for sharded serving (docs/SHARDING.md): shard count
is a deployment knob, not a semantic one.  Hypothesis drives random
hypergraphs and random shard counts through both engines and compares
entire response envelopes (minus wall-clock and cache provenance) for
every s-metric op, plus the canonical cache-built edge lists array for
array.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import QueryEngine, ShardedEngine
from repro.structures.edgelist import BiEdgeList


@st.composite
def hypergraphs(draw, max_edges=12, max_nodes=10):
    n_e = draw(st.integers(1, max_edges))
    n_v = draw(st.integers(1, max_nodes))
    members = draw(
        st.lists(
            st.sets(st.integers(0, n_v - 1), max_size=n_v),
            min_size=n_e,
            max_size=n_e,
        )
    )
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=n_e, n1=n_v)


def queries_for(el: BiEdgeList, s: int) -> list[dict]:
    n_e, n_v = el.num_vertices(0), el.num_vertices(1)
    qs = [
        {"op": "s_connected_components", "dataset": "d", "s": s},
        {"op": "s_connected_components", "dataset": "d", "s": s,
         "return_singletons": True},
        {"op": "is_s_connected", "dataset": "d", "s": s},
        {"op": "s_degree", "dataset": "d", "s": s, "v": 0},
        {"op": "s_neighbors", "dataset": "d", "s": s, "v": n_e - 1},
        {"op": "s_distance", "dataset": "d", "s": s, "src": 0,
         "dst": n_e - 1},
        {"op": "s_diameter", "dataset": "d", "s": s},
        {"op": "s_info", "dataset": "d", "s": s},
        {"op": "s_pagerank", "dataset": "d", "s": s},
        {"op": "s_core_number", "dataset": "d", "s": s},
    ]
    if n_v > 1:
        qs.append({"op": "s_degree", "dataset": "d", "s": s, "v": 0,
                   "over_edges": False})
    return qs


def canon(resp: dict) -> str:
    return json.dumps(
        {k: v for k, v in resp.items() if k not in ("ms", "via")},
        sort_keys=True,
    )


@settings(max_examples=25, deadline=None)
@given(el=hypergraphs(), s=st.integers(1, 3), shards=st.integers(1, 5))
def test_every_op_bit_identical(el, s, shards):
    single = QueryEngine()
    sharded = ShardedEngine(num_shards=shards)
    try:
        for eng in (single, sharded):
            eng.store.register("d", el)
        for q in queries_for(el, s):
            a = single.execute(dict(q))
            b = sharded.execute(dict(q))
            assert canon(a) == canon(b), q
    finally:
        single.close()
        sharded.close()


@settings(max_examples=15, deadline=None)
@given(
    el=hypergraphs(),
    s=st.integers(1, 3),
    shards=st.integers(1, 4),
    kernel=st.sampled_from(("auto", "naive", "hashmap", "intersection",
                            "bitset")),
)
def test_forced_kernels_bit_identical_across_shards(el, s, shards, kernel):
    """Kernel choice × shard count never changes a response envelope."""
    single = QueryEngine()
    sharded = ShardedEngine(num_shards=shards, kernel=kernel)
    try:
        for eng in (single, sharded):
            eng.store.register("d", el)
        for q in queries_for(el, s)[:4]:
            a = single.execute(dict(q))
            b = sharded.execute(dict(q))
            assert canon(a) == canon(b), (kernel, q)
    finally:
        single.close()
        sharded.close()


@settings(max_examples=15, deadline=None)
@given(el=hypergraphs(), s=st.integers(1, 3), shards=st.integers(2, 4))
def test_cache_built_linegraphs_bit_identical(el, s, shards):
    """The assembled L_s arrays — not just query answers — are identical."""
    single = QueryEngine()
    sharded = ShardedEngine(num_shards=shards)
    try:
        for eng in (single, sharded):
            eng.store.register("d", el)
            eng.execute({"op": "warm", "dataset": "d", "s_values": [s]})
        key = single.store.versioned_name("d")
        a, _ = single.cache.get_or_build(key, s, single.store.get("d"), True)
        b, _ = sharded.cache.get_or_build(key, s, sharded.store.get("d"), True)
        np.testing.assert_array_equal(a.edgelist.src, b.edgelist.src)
        np.testing.assert_array_equal(a.edgelist.dst, b.edgelist.dst)
        np.testing.assert_array_equal(a.edgelist.weights, b.edgelist.weights)
    finally:
        single.close()
        sharded.close()


@settings(max_examples=10, deadline=None)
@given(el=hypergraphs(max_edges=10, max_nodes=8), s=st.integers(1, 2))
def test_fast_paths_and_cached_paths_agree(el, s):
    """shard:route / shard:merge answers equal the same engine's cached
    answers — the fast path is an optimization, never a fork."""
    sharded = ShardedEngine(num_shards=3)
    try:
        sharded.store.register("d", el)
        cold = [
            sharded.execute(
                {"op": "s_degree", "dataset": "d", "s": s, "v": 0}
            ),
            sharded.execute(
                {"op": "s_connected_components", "dataset": "d", "s": s}
            ),
        ]
        sharded.execute({"op": "warm", "dataset": "d", "s_values": [s]})
        warm = [
            sharded.execute(
                {"op": "s_degree", "dataset": "d", "s": s, "v": 0}
            ),
            sharded.execute(
                {"op": "s_connected_components", "dataset": "d", "s": s}
            ),
        ]
        for c, w in zip(cold, warm):
            assert canon(c) == canon(w)
        assert warm[0]["via"] == "cache:hit"
    finally:
        sharded.close()


@pytest.mark.parametrize("backend", ["threaded", "process"])
def test_sharded_over_real_backends(backend):
    """Scatter-gather over the PR 5 zero-copy backends stays exact."""
    rng = np.random.default_rng(7)
    members = [
        sorted(set(rng.integers(0, 25, size=rng.integers(2, 6)).tolist()))
        for _ in range(30)
    ]
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    el = BiEdgeList(rows, cols, n0=30, n1=25)
    single = QueryEngine()
    sharded = ShardedEngine(num_shards=3, backend=backend, workers=2)
    try:
        for eng in (single, sharded):
            eng.store.register("d", el)
        for q in queries_for(el, 2):
            a = single.execute(dict(q))
            b = sharded.execute(dict(q))
            assert canon(a) == canon(b), q
    finally:
        single.close()
        sharded.close()

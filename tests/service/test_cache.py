"""SLineGraphCache: byte-budgeted LRU + s-monotone derivation."""

import numpy as np
import pytest

from repro.core.hypergraph import NWHypergraph
from repro.linegraph import slinegraph_hashmap
from repro.linegraph.common import filter_overlaps
from repro.service.cache import SLineGraphCache, estimate_linegraph_bytes
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_MEMBERS, make_biedgelist, random_biedgelist


def hg_from(el) -> NWHypergraph:
    return NWHypergraph(
        el.part0, el.part1, el.weights,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


@pytest.fixture
def paper_hg():
    return hg_from(make_biedgelist(PAPER_MEMBERS, num_nodes=9))


def random_hg(seed: int, **kw) -> NWHypergraph:
    return hg_from(random_biedgelist(seed=seed, **kw))


class TestHitMissDerive:
    def test_cold_build_is_a_miss_then_hit(self, paper_hg):
        cache = SLineGraphCache()
        lg, how = cache.get_or_build("paper", 2, paper_hg)
        assert how == "miss"
        again, how2 = cache.get_or_build("paper", 2, paper_hg)
        assert how2 == "hit"
        assert again is lg
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_higher_s_derives_from_cached_lower_s(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        lg2, how = cache.get_or_build("paper", 2, paper_hg)
        assert how == "derive"
        assert cache.stats.derives == 1
        direct = slinegraph_hashmap(paper_hg.biadjacency, 2)
        assert lg2.edgelist == direct

    def test_derive_prefers_largest_cached_lower_s(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        cache.get_or_build("paper", 2, paper_hg)
        assert cache._derivable_key("paper", 3, True) == ("paper", 2, True)

    def test_lower_s_never_derives_from_higher(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 3, paper_hg)
        _, how = cache.get_or_build("paper", 1, paper_hg)
        assert how == "miss"

    def test_sides_are_distinct_keys(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg, over_edges=True)
        _, how = cache.get_or_build("paper", 1, paper_hg, over_edges=False)
        assert how == "miss"
        assert len(cache) == 2

    def test_lookup_is_a_pure_peek(self, paper_hg):
        cache = SLineGraphCache()
        assert cache.lookup("paper", 1) is None
        cache.get_or_build("paper", 1, paper_hg)
        assert cache.lookup("paper", 1) == "hit"
        assert cache.lookup("paper", 4) == "derive"
        assert cache.stats.hits == 0 and cache.stats.derives == 0

    def test_rejects_invalid_s(self, paper_hg):
        cache = SLineGraphCache()
        with pytest.raises(ValueError, match="s must be"):
            cache.get_or_build("paper", 0, paper_hg)


class TestDeriveEquivalence:
    """derive(L_s from L_{s'}) must equal a cold hashmap build of L_s."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("s", [2, 3])
    def test_random_hypergraphs(self, seed, s):
        hg = random_hg(seed, num_edges=30, num_nodes=25, max_size=8)
        cache = SLineGraphCache()
        cache.get_or_build(f"r{seed}", 1, hg)
        derived, how = cache.get_or_build(f"r{seed}", s, hg)
        assert how == "derive"
        direct = slinegraph_hashmap(hg.biadjacency, s)
        assert derived.edgelist == direct
        # the full metric surface sits on the same CSR
        assert derived.num_edges() == hg.s_linegraph(s).num_edges()

    @pytest.mark.parametrize("seed", [5, 6])
    def test_filter_overlaps_matches_every_s(self, seed):
        h = BiAdjacency.from_biedgelist(
            random_biedgelist(seed=seed, num_edges=25, num_nodes=20, max_size=6)
        )
        base = slinegraph_hashmap(h, 1)
        for s in range(1, 6):
            assert filter_overlaps(base, s) == slinegraph_hashmap(h, s)

    def test_filter_overlaps_requires_weights(self):
        from repro.structures.edgelist import EdgeList

        el = EdgeList([0], [1], None, num_vertices=2)
        with pytest.raises(ValueError, match="overlap counts"):
            filter_overlaps(el, 2)


class TestByteBudgetLRU:
    def entry_size(self, hg, s=1):
        cache = SLineGraphCache(budget_bytes=None)
        lg, _ = cache.get_or_build("probe", s, hg)
        return SLineGraphCache.entry_bytes(lg)

    def test_eviction_under_byte_budget(self):
        hgs = {f"d{i}": random_hg(10 + i, num_edges=20, num_nodes=15) for i in range(3)}
        sizes = {n: self.entry_size(h) for n, h in hgs.items()}
        budget = sizes["d0"] + sizes["d1"] + sizes["d2"] - 1  # two fit, three don't
        cache = SLineGraphCache(budget_bytes=budget)
        cache.get_or_build("d0", 1, hgs["d0"])
        cache.get_or_build("d1", 1, hgs["d1"])
        cache.get_or_build("d0", 1, hgs["d0"])  # refresh d0 -> d1 becomes LRU
        cache.get_or_build("d2", 1, hgs["d2"])  # must evict d1
        assert cache.stats.evictions == 1
        keys = {k[0] for k in cache.keys()}
        assert keys == {"d0", "d2"}
        assert cache.current_bytes <= budget

    def test_current_bytes_tracks_admitted_entries(self, paper_hg):
        cache = SLineGraphCache()
        lg, _ = cache.get_or_build("paper", 1, paper_hg)
        assert cache.current_bytes == SLineGraphCache.entry_bytes(lg)
        cache.invalidate()
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_oversized_entry_bypasses_admission(self, paper_hg):
        cache = SLineGraphCache(budget_bytes=8)
        lg, how = cache.get_or_build("paper", 1, paper_hg)
        assert how == "bypass"
        assert lg.num_edges() > 0  # still served
        assert len(cache) == 0
        assert cache.stats.bypasses == 1

    def test_unbounded_cache_never_evicts(self):
        cache = SLineGraphCache(budget_bytes=None)
        for i in range(6):
            cache.get_or_build(f"d{i}", 1, random_hg(20 + i, num_edges=15, num_nodes=12))
        assert len(cache) == 6
        assert cache.stats.evictions == 0
        assert cache.remaining_bytes() is None

    def test_invalidate_single_dataset(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("a", 1, paper_hg)
        cache.get_or_build("a", 2, paper_hg)
        cache.get_or_build("b", 1, paper_hg)
        assert cache.invalidate("a") == 2
        assert {k[0] for k in cache.keys()} == {"b"}

    def test_invalidate_clears_owning_hypergraph_memo(self, paper_hg):
        # the hypergraph memoizes its own s-line graphs; an invalidate
        # that only dropped the cache's copies would still serve stale
        # graphs through the library path
        cache = SLineGraphCache()
        cache.get_or_build("a", 1, paper_hg)
        paper_hg.s_linegraph(1)  # populate the instance memo too
        assert paper_hg._slg_memo
        cache.invalidate("a")
        assert not paper_hg._slg_memo
        assert paper_hg._bi is None  # full invalidate(), not just the memo

    def test_invalidate_all_clears_every_owner_memo(self, paper_hg):
        other = hg_from(make_biedgelist(PAPER_MEMBERS, num_nodes=9))
        cache = SLineGraphCache()
        cache.get_or_build("a", 1, paper_hg)
        cache.get_or_build("b", 1, other)
        paper_hg.s_linegraph(1)
        other.s_linegraph(1)
        cache.invalidate()
        assert not paper_hg._slg_memo and not other._slg_memo

    def test_put_replaces_and_accounts_bytes(self, paper_hg):
        cache = SLineGraphCache()
        lg, _ = cache.get_or_build("a", 1, paper_hg)
        before = cache.current_bytes
        assert cache.put("a", 1, True, lg) is True
        assert cache.current_bytes == before  # replaced, not doubled
        assert cache.entries_for("a") == [(1, True, lg)]


class TestEstimate:
    def test_estimate_upper_bounds_actual_footprint(self):
        for seed in range(3):
            hg = random_hg(30 + seed, num_edges=25, num_nodes=20, max_size=6)
            est = estimate_linegraph_bytes(hg, 1)
            cache = SLineGraphCache(budget_bytes=None)
            lg, _ = cache.get_or_build("x", 1, hg)
            assert est >= SLineGraphCache.entry_bytes(lg)

    def test_estimate_uses_dual_side_degrees(self):
        hg = random_hg(40, num_edges=10, num_nodes=50, max_size=4)
        assert estimate_linegraph_bytes(hg, 1, over_edges=True) != \
            estimate_linegraph_bytes(hg, 1, over_edges=False)

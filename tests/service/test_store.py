"""HypergraphStore: registration sources, residency, introspection."""

import pytest

from repro.core.hypergraph import NWHypergraph
from repro.io.mmio import write_mm
from repro.service.store import HypergraphStore

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def el():
    return make_biedgelist(PAPER_MEMBERS, num_nodes=9)


class TestRegister:
    def test_register_biedgelist(self, el):
        store = HypergraphStore()
        hg = store.register("paper", el)
        assert store.get("paper") is hg
        assert hg.number_of_edges() == 4 and hg.number_of_nodes() == 9

    def test_register_existing_hypergraph_is_adopted(self, el):
        hg = NWHypergraph(el.part0, el.part1, num_edges=4, num_nodes=9)
        store = HypergraphStore()
        assert store.register("paper", hg) is hg

    def test_register_from_path(self, el, tmp_path):
        path = tmp_path / "paper.mtx"
        write_mm(path, el)
        store = HypergraphStore()
        hg = store.register("paper", str(path))
        assert hg.number_of_edges() == 4

    def test_register_table1_name(self):
        store = HypergraphStore()
        hg = store.register("r", "rand1")
        assert hg.number_of_edges() == 5000

    def test_duplicate_name_rejected_unless_replace(self, el):
        store = HypergraphStore()
        first = store.register("paper", el)
        with pytest.raises(ValueError, match="already registered"):
            store.register("paper", el)
        second = store.register("paper", el, replace=True)
        assert store.get("paper") is second is not first

    def test_empty_name_rejected(self, el):
        with pytest.raises(ValueError, match="non-empty"):
            HypergraphStore().register("", el)


class TestLookup:
    def test_residency_across_gets(self, el):
        store = HypergraphStore()
        store.register("paper", el)
        assert store.get("paper") is store.get("paper")

    def test_unknown_name_lists_registered(self, el):
        store = HypergraphStore()
        store.register("paper", el)
        with pytest.raises(KeyError, match="registered: \\['paper'\\]"):
            store.get("nope")

    def test_names_contains_len_unregister(self, el):
        store = HypergraphStore()
        store.register("b", el)
        store.register("a", el)
        assert store.names() == ["a", "b"]
        assert "a" in store and len(store) == 2
        store.unregister("a")
        assert "a" not in store and len(store) == 1

    def test_stats_card(self, el):
        store = HypergraphStore()
        store.register("paper", el)
        card = store.stats("paper")
        assert card["num_edges"] == 4
        assert card["num_nodes"] == 9
        assert card["num_incidences"] == 16
        assert card["max_edge_size"] == 6
        assert card["incidence_bytes"] > 0


class TestDynamicEntries:
    def test_static_by_default(self, el):
        store = HypergraphStore()
        store.register("paper", el)
        assert not store.is_dynamic("paper")
        assert store.version("paper") == 0
        assert store.versioned_name("paper") == "paper"

    def test_register_dynamic_flag(self, el):
        store = HypergraphStore()
        store.register("paper", el, dynamic=True)
        assert store.is_dynamic("paper")
        assert store.version("paper") == 0

    def test_get_returns_current_snapshot(self, el):
        store = HypergraphStore()
        store.register("paper", el, dynamic=True)
        before = store.get("paper")
        store.get_dynamic("paper").add_edge([0, 8])
        after = store.get("paper")
        assert after is not before
        assert after.number_of_edges() == before.number_of_edges() + 1
        assert store.get("paper") is after  # memoized per version

    def test_promotion_in_place(self, el):
        store = HypergraphStore()
        frozen = store.register("paper", el)
        dyn = store.get_dynamic("paper")
        assert store.is_dynamic("paper")
        assert dyn.base is frozen  # the frozen instance is the v0 base
        assert store.get_dynamic("paper") is dyn  # stable handle

    def test_versioned_name_tracks_updates(self, el):
        store = HypergraphStore()
        store.register("paper", el)
        dyn = store.get_dynamic("paper")
        assert store.versioned_name("paper") == "paper"  # v0 keeps bare key
        dyn.add_edge([1, 2])
        assert store.versioned_name("paper") == "paper@v1"
        dyn.remove_edge(0)
        assert store.versioned_name("paper") == "paper@v2"

    def test_stats_reports_dynamic_fields(self, el):
        store = HypergraphStore()
        store.register("paper", el, dynamic=True)
        store.get_dynamic("paper").add_edge([0, 1])
        card = store.stats("paper")
        assert card["dynamic"] is True
        assert card["version"] == 1
        assert card["pending_ops"] == 1

    def test_unregister_drops_dynamic_handle(self, el):
        store = HypergraphStore()
        store.register("paper", el, dynamic=True)
        store.unregister("paper")
        store.register("paper", el)
        assert not store.is_dynamic("paper")

    def test_unknown_names_raise(self):
        store = HypergraphStore()
        with pytest.raises(KeyError):
            store.get_dynamic("nope")
        with pytest.raises(KeyError):
            store.version("nope")
        with pytest.raises(KeyError):
            store.versioned_name("nope")

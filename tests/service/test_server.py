"""AnalyticsServer + SocketSession: live socket round-trips."""

import json
import socket
import threading
import time

import pytest

from repro.service import (
    AnalyticsServer,
    InProcessSession,
    QueryEngine,
    SocketSession,
)

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def engine():
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


@pytest.fixture
def server(engine):
    with AnalyticsServer(engine) as srv:  # port=0 -> ephemeral
        yield srv


class TestSocketRoundTrip:
    def test_single_query(self, server):
        host, port = server.address
        assert port != 0
        with SocketSession(host, port) as session:
            resp = session.query(
                "s_distance", dataset="paper", s=2, src=0, dst=2
            )
        assert resp["ok"] and resp["result"] == 2
        assert resp["via"] in ("cache:miss", "cache:hit", "cache:derive")
        assert resp["ms"] >= 0

    def test_pipelined_queries_one_connection(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            warm = session.query("warm", dataset="paper", s_values=[1, 2, 3])
            assert warm["result"] == {"1": "miss", "2": "derive", "3": "derive"}
            for s in (1, 2, 3):
                resp = session.query("s_info", dataset="paper", s=s)
                assert resp["ok"] and resp["via"] == "cache:hit"
            metrics = session.metrics()["result"]
        assert metrics["cache"]["derives"] == 2
        assert metrics["cache"]["hits"] >= 3

    def test_batch_over_socket(self, server):
        host, port = server.address
        queries = [
            {"op": "s_degree", "dataset": "paper", "s": 1, "v": v}
            for v in range(4)
        ]
        with SocketSession(host, port) as session:
            out = session.batch(queries)
        assert [r["result"] for r in out] == [3, 3, 3, 3]

    def test_malformed_line_gets_error_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        resp = json.loads(line)
        assert not resp["ok"] and "bad request line" in resp["error"]["message"]
        assert resp["error"]["code"] == "bad_json"

    def test_blank_lines_are_skipped(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"\n\n" + json.dumps({"op": "datasets"}).encode() + b"\n")
            resp = json.loads(sock.makefile("rb").readline())
        assert resp["ok"] and resp["result"] == ["paper"]

    def test_concurrent_clients_share_session_state(self, server):
        host, port = server.address
        errors: list = []

        def worker():
            try:
                with SocketSession(host, port) as session:
                    for s in (1, 2, 3):
                        resp = session.query("s_info", dataset="paper", s=s)
                        assert resp["ok"], resp
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = server.engine.cache.stats
        # 18 requests, 3 distinct graphs: everything beyond the first
        # build per s was a hit or derive
        assert stats.hits + stats.derives + stats.misses + stats.bypasses == 18
        assert stats.misses <= 3

    def test_register_over_the_wire(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            resp = session.query("register", name="r", source="rand1")
            assert resp["ok"] and resp["result"]["num_edges"] == 5000
            assert "r" in session.query("datasets")["result"]


class TestServerLifecycle:
    def test_stop_is_idempotent(self, engine):
        srv = AnalyticsServer(engine).start()
        srv.stop()
        srv.stop()

    def test_double_start_rejected(self, engine):
        srv = AnalyticsServer(engine)
        try:
            srv.start()
            with pytest.raises(RuntimeError, match="already started"):
                srv.start()
        finally:
            srv.stop()

    def test_stop_drains_inflight_request(self, engine):
        """A request mid-execution finishes its response during stop()."""
        release = threading.Event()
        entered = threading.Event()
        real_execute = engine.execute

        def slow_execute(query):
            entered.set()
            release.wait(timeout=10)
            return real_execute(query)

        engine.execute = slow_execute
        srv = AnalyticsServer(engine).start()
        host, port = srv.address
        session = SocketSession(host, port)
        try:
            session.send({"op": "datasets"})
            assert entered.wait(timeout=10)
            assert srv.inflight() == 1
            stopper = threading.Thread(target=srv.stop)
            stopper.start()
            time.sleep(0.1)  # let stop() reach the drain wait
            release.set()
            stopper.join(timeout=10)
            assert not stopper.is_alive()
            resp = session.recv()
            assert resp["ok"] and resp["result"] == ["paper"]
            assert srv.inflight() == 0
        finally:
            release.set()
            session.close()

    def test_wait_idle_times_out(self, engine):
        srv = AnalyticsServer(engine)
        try:
            srv._begin_request()
            assert srv.wait_idle(timeout=0.05) is False
            srv._end_request()
            assert srv.wait_idle(timeout=1) is True
        finally:
            srv.server_close()


class TestInProcessSession:
    def test_same_surface_without_sockets(self, engine):
        with InProcessSession(engine) as session:
            resp = session.query("s_distance", dataset="paper", s=2, src=0, dst=2)
            assert resp["ok"] and resp["result"] == 2
            out = session.batch([{"op": "datasets"}])
            assert out[0]["result"] == ["paper"]
            assert session.metrics()["ok"]

    def test_request_dispatches_batch_payloads(self, engine):
        session = InProcessSession(engine)
        out = session.request({"batch": [{"op": "datasets"}]})
        assert isinstance(out, list) and out[0]["ok"]

    def test_default_engine(self):
        with InProcessSession() as session:
            resp = session.query("datasets")
            assert resp["ok"] and resp["result"] == []

"""Sharded engine: planning, routing, merging, introspection."""

import numpy as np
import pytest

from repro.service import QueryEngine, ShardedEngine, plan_shards
from repro.service.shard import (
    ShardPairsKernel,
    _group_components,
    _union_find_labels,
)

from ..conftest import PAPER_MEMBERS, make_biedgelist, random_biedgelist


@pytest.fixture
def paper_pair():
    """(unsharded, sharded) engines over the same registered dataset."""
    single = QueryEngine()
    sharded = ShardedEngine(num_shards=3)
    for eng in (single, sharded):
        eng.store.register(
            "paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9)
        )
    yield single, sharded
    single.close()
    sharded.close()


def strip(resp):
    return {k: v for k, v in resp.items() if k not in ("ms", "via")}


class TestPlanning:
    def test_parts_partition_the_id_space(self):
        el = random_biedgelist(seed=3, num_edges=30, num_nodes=40)
        eng = QueryEngine()
        eng.store.register("d", el)
        plan = plan_shards(eng.store.get("d"), 4)
        all_ids = np.sort(np.concatenate(plan.parts))
        np.testing.assert_array_equal(all_ids, np.arange(30))
        # owner is consistent with parts
        for i, part in enumerate(plan.parts):
            assert (plan.owner[part] == i).all()
        eng.close()

    def test_loads_roughly_balanced(self):
        el = random_biedgelist(seed=4, num_edges=64, num_nodes=40)
        eng = QueryEngine()
        eng.store.register("d", el)
        plan = plan_shards(eng.store.get("d"), 4)
        loads = [card["load"] for card in plan.summary()]
        assert max(loads) <= 2.5 * max(min(loads), 1.0)
        eng.close()

    def test_more_shards_than_edges(self):
        eng = ShardedEngine(num_shards=8)
        eng.store.register("tiny", make_biedgelist([[0, 1], [1, 2]], 3))
        resp = eng.execute({"op": "s_degree", "dataset": "tiny", "s": 1, "v": 0})
        assert resp["ok"] and resp["result"] == 1
        eng.close()

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngine(num_shards=0)
        eng = QueryEngine()
        eng.store.register("p", make_biedgelist(PAPER_MEMBERS, 9))
        with pytest.raises(ValueError):
            plan_shards(eng.store.get("p"), 0)
        eng.close()


class TestUnionFindMerge:
    def test_labels_match_pair_reachability(self):
        partials = [
            (np.array([0, 1]), np.array([1, 2]), np.array([1, 1])),
            (np.array([4]), np.array([5]), np.array([2])),
        ]
        labels = _union_find_labels(6, partials)
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert labels[3] not in (labels[0], labels[4])

    def test_group_components_semantics(self):
        labels = np.array([0, 0, 2, 0, 4])
        comps = _group_components(labels, return_singletons=False)
        assert [c.tolist() for c in comps] == [[0, 1, 3]]
        comps = _group_components(labels, return_singletons=True)
        assert [c.tolist() for c in comps] == [[0, 1, 3], [2], [4]]


class TestRoutedOps:
    def test_miss_routes_to_owner_shard(self, paper_pair):
        single, sharded = paper_pair
        q = {"op": "s_neighbors", "dataset": "paper", "s": 1, "v": 0}
        a, b = single.execute(dict(q)), sharded.execute(dict(q))
        assert b["via"] == "shard:route"
        assert strip(a) == strip(b)

    def test_hit_falls_through_to_cache(self, paper_pair):
        _, sharded = paper_pair
        sharded.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        resp = sharded.execute(
            {"op": "s_degree", "dataset": "paper", "s": 1, "v": 0}
        )
        assert resp["via"] == "cache:hit"

    def test_materialize_always_falls_through(self, paper_pair):
        _, sharded = paper_pair
        resp = sharded.execute(
            {"op": "s_degree", "dataset": "paper", "s": 1, "v": 0,
             "materialize": "always"}
        )
        assert resp["via"] != "shard:route"
        assert resp["ok"]

    def test_out_of_range_vertex_same_error(self, paper_pair):
        # s_distance checks vertex bounds; the sharded engine must give
        # the byte-identical invalid_argument response, not a crash
        single, sharded = paper_pair
        q = {"op": "s_distance", "dataset": "paper", "s": 1,
             "src": 99, "dst": 0}
        a, b = single.execute(dict(q)), sharded.execute(dict(q))
        assert a["ok"] is False
        assert a["error"]["code"] == "invalid_argument"
        assert strip(a) == strip(b)


class TestMergedOps:
    def test_components_via_merge(self, paper_pair):
        single, sharded = paper_pair
        q = {"op": "s_connected_components", "dataset": "paper", "s": 2}
        a, b = single.execute(dict(q)), sharded.execute(dict(q))
        assert b["via"] == "shard:merge"
        assert strip(a) == strip(b)

    def test_disconnected_distance_short_circuits(self):
        # two cliques sharing nothing: DSU proves -1 without any BFS
        members = [[0, 1], [0, 1], [2, 3], [2, 3]]
        sharded = ShardedEngine(num_shards=2)
        sharded.store.register("two", make_biedgelist(members, 4))
        resp = sharded.execute(
            {"op": "s_distance", "dataset": "two", "s": 1, "src": 0, "dst": 2}
        )
        assert resp["result"] == -1 and resp["via"] == "shard:merge"
        sharded.close()

    def test_empty_graph_not_connected(self):
        sharded = ShardedEngine(num_shards=2)
        sharded.store.register("p", make_biedgelist(PAPER_MEMBERS, 9))
        resp = sharded.execute(
            {"op": "is_s_connected", "dataset": "p", "s": 99}
        )
        assert resp["result"] is False and resp["via"] == "shard:merge"
        sharded.close()


class TestKernel:
    def test_kernel_emits_both_directions(self, paper_h):
        bi = paper_h
        kernel = ShardPairsKernel(bi.edges, bi.nodes, s=1)
        out = kernel(np.arange(bi.num_hyperedges(), dtype=np.int64))
        src, dst, cnt, _ = out.value
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)
        assert all(a != b for a, b in pairs)
        assert (cnt >= 1).all()


class TestIntrospection:
    def test_shards_op(self, paper_pair):
        _, sharded = paper_pair
        resp = sharded.execute({"op": "shards", "dataset": "paper"})
        assert resp["ok"]
        card = resp["result"]
        assert card["num_shards"] == 3
        assert sum(c["vertices"] for c in card["shards"]) == len(PAPER_MEMBERS)

    def test_shards_op_gated_from_v1(self, paper_pair):
        _, sharded = paper_pair
        resp = sharded.execute(
            {"op": "shards", "dataset": "paper", "version": 1}
        )
        assert resp["error"]["code"] == "unknown_op"

    def test_shards_op_unknown_on_unsharded_engine(self, paper_pair):
        single, _ = paper_pair
        resp = single.execute({"op": "shards", "dataset": "paper"})
        assert resp["error"]["code"] == "unknown_op"

    def test_metrics_report_sharding(self, paper_pair):
        _, sharded = paper_pair
        sharded.execute({"op": "s_degree", "dataset": "paper", "s": 1, "v": 0})
        m = sharded.metrics()
        assert m["sharding"] == {"num_shards": 3}

    def test_cache_builds_count_as_scatters(self, paper_pair):
        _, sharded = paper_pair
        sharded.execute({"op": "s_info", "dataset": "paper", "s": 1})
        snap = sharded.obs_metrics.snapshot()
        scatters = [
            s for s in snap if s["name"] == "service_shard_scatters_total"
        ]
        assert scatters and sum(s["value"] for s in scatters) >= 1

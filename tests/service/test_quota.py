"""Per-tenant quotas: refill math, extraction, ledger, both front doors."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.service import (
    AnalyticsServer,
    AsyncAnalyticsServer,
    QueryEngine,
    ServiceError,
    SocketSession,
    TenantQuotas,
    TokenBucket,
)
from repro.service.quota import ShedLedger, extract_tenant
from tests.conftest import PAPER_MEMBERS, make_biedgelist


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_is_rate_times_elapsed(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=5, clock=clock)
        for _ in range(5):
            assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.25)  # 10 tokens/s * 0.25s = 2.5 tokens
        assert bucket.available == pytest.approx(2.5)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()  # 0.5 left, can't cover 1.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100, burst=4, clock=clock)
        clock.advance(1000.0)
        assert bucket.available == 4.0

    def test_burst_defaults_to_rate(self):
        bucket = TokenBucket(rate=7, clock=FakeClock())
        assert bucket.burst == 7.0
        assert bucket.spec() == {"rate": 7.0, "burst": 7.0}

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=0.5)


class TestTenantQuotas:
    def test_named_tenant_gets_its_bucket(self):
        clock = FakeClock()
        quotas = TenantQuotas({"a": {"rate": 10, "burst": 2}}, clock=clock)
        assert quotas.admit("a") and quotas.admit("a")
        assert not quotas.admit("a")

    def test_unnamed_tenant_and_anonymous_admitted(self):
        quotas = TenantQuotas(
            {"a": {"rate": 10, "burst": 1}}, clock=FakeClock()
        )
        assert quotas.admit(None)
        for _ in range(50):
            assert quotas.admit("someone-else")

    def test_default_spec_creates_per_tenant_buckets(self):
        clock = FakeClock()
        quotas = TenantQuotas({"*": {"rate": 5, "burst": 1}}, clock=clock)
        # each unlisted tenant gets its OWN bucket from the "*" shape
        assert quotas.admit("x") and quotas.admit("y")
        assert not quotas.admit("x") and not quotas.admit("y")
        assert quotas.admit(None)  # anonymous stays unquota'd

    def test_coerce(self):
        quotas = TenantQuotas({"a": {"rate": 1}})
        assert TenantQuotas.coerce(quotas) is quotas
        assert TenantQuotas.coerce(None) is None
        assert isinstance(
            TenantQuotas.coerce({"a": {"rate": 1}}), TenantQuotas
        )

    def test_spec_roundtrip(self):
        quotas = TenantQuotas(
            {"a": {"rate": 2, "burst": 8}, "*": {"rate": 1}},
            clock=FakeClock(),
        )
        spec = quotas.spec()
        assert spec["a"] == {"rate": 2.0, "burst": 8.0}
        assert spec["*"]["rate"] == 1


class TestExtractTenant:
    def test_plain_envelope(self):
        raw = b'{"op": "s_degree", "tenant": "alpha", "v": 3}'
        assert extract_tenant(raw) == "alpha"

    def test_no_tenant(self):
        assert extract_tenant(b'{"op": "s_degree", "v": 3}') is None

    def test_escaped_value_falls_back_to_json(self):
        raw = json.dumps({"op": "x", "tenant": 'we"ird'}).encode()
        assert extract_tenant(raw) == 'we"ird'

    def test_garbage_never_raises(self):
        assert extract_tenant(b'{"tenant": not-json') is None
        assert extract_tenant(b'"tenant" \xff\xfe') is None

    def test_non_string_tenant_stringified(self):
        assert extract_tenant(b'{"tenant": 7}') == "7"


class TestShedLedger:
    def test_lines_are_cached_and_structured(self):
        ledger = ShedLedger(MetricsRegistry(), "service_async")
        line1 = ledger.quota_line("a")
        line2 = ledger.quota_line("a")
        assert line1 is line2  # pre-encoded once, reused forever
        doc = json.loads(line1)
        assert doc["ok"] is False
        assert doc["error"]["code"] == "quota_exceeded"
        assert "'a'" in doc["error"]["message"]

    def test_counters_move_per_reason_and_tenant(self):
        metrics = MetricsRegistry()
        ledger = ShedLedger(metrics, "service")
        ledger.shed("quota", "a")
        ledger.shed("quota", "a")
        ledger.shed("overloaded", None)
        ledger.admitted("a")
        ledger.admitted(None)  # anonymous: no tenant counter
        assert metrics.counter(
            "service_shed_total", reason="quota"
        ).value == 2
        assert metrics.counter(
            "service_shed_total", reason="overloaded"
        ).value == 1
        assert metrics.counter(
            "service_tenant_shed_total", tenant="a"
        ).value == 2
        assert metrics.counter(
            "service_tenant_requests_total", tenant="a"
        ).value == 1


@pytest.fixture()
def engine():
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS))
    yield eng
    eng.close()


def _drain_until_shed(address, tenant: str, tries: int = 50) -> dict:
    """Fire point queries until the tenant's bucket runs dry."""
    with SocketSession(*address, strict=False) as session:
        for _ in range(tries):
            resp = session.request(
                {"op": "s_degree", "dataset": "paper", "s": 1, "v": 1,
                 "tenant": tenant}
            )
            if resp.get("ok") is False:
                return resp
    raise AssertionError(f"tenant {tenant!r} was never shed")


class TestQuotasOverSockets:
    """Both front doors shed the same way on the wire."""

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_quota_shed_is_structured_and_counted(self, engine, frontend):
        quotas = {"bursty": {"rate": 0.001, "burst": 3}}
        if frontend == "async":
            server_cm = AsyncAnalyticsServer(engine, quotas=quotas)
            prefix = "service_async"
        else:
            server_cm = AnalyticsServer(engine, quotas=quotas)
            prefix = "service"
        with server_cm as server:
            resp = _drain_until_shed(server.address, "bursty")
            assert resp["error"]["code"] == "quota_exceeded"
            # an unquota'd tenant on the same server is untouched
            with SocketSession(*server.address, strict=False) as session:
                ok = session.request(
                    {"op": "s_degree", "dataset": "paper", "s": 1, "v": 1,
                     "tenant": "quiet"}
                )
                assert ok.get("ok") is True
        registry = engine.obs_metrics
        assert registry.counter(
            f"{prefix}_shed_total", reason="quota"
        ).value >= 1
        assert registry.counter(
            f"{prefix}_tenant_shed_total", tenant="bursty"
        ).value >= 1
        assert registry.counter(
            f"{prefix}_tenant_requests_total", tenant="bursty"
        ).value == 3  # the burst that was admitted
        assert registry.counter(
            f"{prefix}_tenant_requests_total", tenant="quiet"
        ).value == 1

    def test_strict_session_raises_service_error(self, engine):
        quotas = {"t": {"rate": 0.001, "burst": 1}}
        with AsyncAnalyticsServer(engine, quotas=quotas) as server:
            with SocketSession(*server.address) as session:
                query = {"op": "s_degree", "dataset": "paper", "s": 1,
                         "v": 1, "tenant": "t"}
                session.request(query)  # burst token
                with pytest.raises(ServiceError) as exc_info:
                    session.query(**{"op": "s_degree", "dataset": "paper",
                                     "s": 1, "v": 1, "tenant": "t"})
                assert exc_info.value.code == "quota_exceeded"

    def test_anonymous_requests_never_quota_shed(self, engine):
        quotas = {"*": {"rate": 0.001, "burst": 1}}
        with AnalyticsServer(engine, quotas=quotas) as server:
            with SocketSession(*server.address, strict=False) as session:
                for _ in range(10):
                    resp = session.request(
                        {"op": "s_degree", "dataset": "paper",
                         "s": 1, "v": 1}
                    )
                    assert resp.get("ok") is True

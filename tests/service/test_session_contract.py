"""One Session contract, every transport — plus v1-client compatibility.

The same behavioral assertions run against ``InProcessSession``, a
``SocketSession`` into the threaded server, and a ``SocketSession`` into
the asyncio front door: the transport is an implementation detail of the
surface.  A second suite pins ``version=1`` on a session to impersonate
a v1 client against the v2 server, and the deprecated aliases are held
to their legacy (non-strict, warning) behavior.
"""

import warnings

import pytest

from repro.service import (
    AnalyticsServer,
    AsyncAnalyticsServer,
    InProcessClient,
    InProcessSession,
    PROTOCOL_VERSION,
    QueryEngine,
    ServiceClient,
    ServiceError,
    Session,
    SocketSession,
)

from ..conftest import PAPER_MEMBERS, make_biedgelist


def make_engine() -> QueryEngine:
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


@pytest.fixture(params=["inprocess", "threaded", "async"])
def session(request):
    """The Session surface over each transport, torn down in order."""
    engine = make_engine()
    if request.param == "inprocess":
        with InProcessSession(engine) as s:
            yield s
        engine.close()
        return
    server_cls = (
        AnalyticsServer if request.param == "threaded"
        else AsyncAnalyticsServer
    )
    with server_cls(engine) as srv:
        host, port = srv.address
        with SocketSession(host, port) as s:
            yield s
    engine.close()


class TestSessionContract:
    def test_is_a_session(self, session):
        assert isinstance(session, Session)

    def test_query_success_envelope(self, session):
        resp = session.query("s_distance", dataset="paper", s=2, src=0, dst=2)
        assert resp["ok"] is True
        assert resp["result"] == 2
        assert resp["v"] == PROTOCOL_VERSION

    def test_strict_failure_raises_typed_error(self, session):
        with pytest.raises(ServiceError) as exc:
            session.query("s_distance", dataset="nope", s=1, src=0, dst=1)
        err = exc.value
        assert err.code == "unknown_dataset"
        assert "nope" in err.message
        assert err.response["error"]["code"] == "unknown_dataset"

    def test_batch_preserves_order_and_partial_failures(self, session):
        out = session.batch([
            {"op": "s_degree", "dataset": "paper", "s": 1, "v": 0},
            {"op": "s_degree", "dataset": "nope", "s": 1, "v": 0},
            {"op": "datasets"},
        ])
        assert len(out) == 3
        assert out[0]["ok"] and out[0]["result"] == 3
        # per-item failure is data, not an exception, even when strict
        assert out[1]["ok"] is False
        assert out[1]["error"]["code"] == "unknown_dataset"
        assert out[2]["result"] == ["paper"]

    def test_batch_envelope_failure_raises_when_strict(self, session):
        with pytest.raises(ServiceError) as exc:
            session.batch([{"op": "datasets"}], backend="quantum")
        assert exc.value.code == "invalid_argument"

    def test_update_convenience(self, session):
        resp = session.query("register", name="dyn", source="rand1")
        assert resp["ok"]
        out = session.update(
            "dyn", [{"kind": "add_edge", "members": [0, 1, 2]}]
        )
        assert out["ok"], out

    def test_metrics_and_prometheus(self, session):
        session.query("datasets")
        assert session.metrics()["result"]["ops"]
        assert "service_requests_total" in session.prometheus()

    def test_version_op_negotiation(self, session):
        resp = session.query("version")
        assert resp["result"]["protocol"] == PROTOCOL_VERSION


class TestV1Compatibility:
    """A v1-pinned session is a stand-in for a real v1 client binary."""

    @pytest.fixture(params=["threaded", "async"])
    def v1_session(self, request):
        engine = make_engine()
        server_cls = (
            AnalyticsServer if request.param == "threaded"
            else AsyncAnalyticsServer
        )
        with server_cls(engine) as srv:
            host, port = srv.address
            with SocketSession(host, port, strict=False, version=1) as s:
                yield s
        engine.close()

    def test_v1_queries_still_served(self, v1_session):
        resp = v1_session.query(
            "s_distance", dataset="paper", s=2, src=0, dst=2
        )
        assert resp["ok"] and resp["result"] == 2
        # the response is served *at* the pinned version
        assert resp["v"] == 1

    def test_v1_batch_pins_envelope(self, v1_session):
        out = v1_session.batch([{"op": "datasets"}])
        assert out[0]["ok"] and out[0]["v"] == 1

    def test_post_v1_ops_hidden_from_v1(self, v1_session):
        resp = v1_session.query("version")
        assert resp["ok"] is False
        assert resp["error"]["code"] == "unknown_op"
        assert "requires protocol" in resp["error"]["message"]


class TestDeprecatedAliases:
    def test_inprocess_client_warns_and_stays_lenient(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="InProcessClient"):
            client = InProcessClient(engine)
        # legacy behavior: failures come back as dicts, never raises
        resp = client.query("s_degree", dataset="nope", s=1, v=0)
        assert resp["ok"] is False
        # legacy close never touched the engine
        client.close()
        assert engine.execute({"op": "datasets"})["ok"]
        engine.close()

    def test_service_client_warns_and_stays_lenient(self):
        engine = make_engine()
        with AnalyticsServer(engine) as srv:
            host, port = srv.address
            with pytest.warns(DeprecationWarning, match="ServiceClient"):
                client = ServiceClient(host, port)
            resp = client.query("s_degree", dataset="nope", s=1, v=0)
            assert resp["ok"] is False
            client.close()
        engine.close()

    def test_aliases_are_sessions(self):
        # code migrating incrementally can type-check against Session
        assert issubclass(ServiceClient, SocketSession)
        assert issubclass(InProcessClient, InProcessSession)

"""Service-layer backend selection: engine config, env, wire envelope."""

import json

import pytest

from repro.service import InProcessSession, QueryEngine

from ..conftest import PAPER_MEMBERS, make_biedgelist

QUERIES = [
    {"op": "s_connected_components", "dataset": "paper", "s": 2},
    {"op": "s_degree", "dataset": "paper", "s": 1, "v": 0},
    {"op": "s_diameter", "dataset": "paper", "s": 2},
]


def make_engine(**kwargs) -> QueryEngine:
    eng = QueryEngine(**kwargs)
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


def strip_ms(responses):
    """Drop wall-clock and cache-provenance; results must be identical."""
    return [
        json.dumps(
            {k: v for k, v in r.items() if k not in ("ms", "via")},
            sort_keys=True,
        )
        for r in responses
    ]


class TestEngineBackend:
    def test_default_is_simulated(self):
        eng = make_engine()
        assert eng.backend.name == "simulated"
        eng.close()

    def test_constructor_backend(self):
        eng = make_engine(backend="threaded", workers=2)
        try:
            assert eng.backend.name == "threaded"
            assert eng.backend.workers == 2
            out = eng.execute_batch(QUERIES)
            assert all(r["ok"] for r in out)
        finally:
            eng.close()

    def test_env_configures_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        eng = make_engine()
        try:
            assert eng.backend.name == "threaded"
            assert eng.backend.workers == 3
        finally:
            eng.close()

    def test_results_identical_across_backends(self):
        base_eng = make_engine()
        base = strip_ms(base_eng.execute_batch(QUERIES))
        base_eng.close()
        for backend in ("threaded", "process"):
            eng = make_engine(backend=backend, workers=2)
            try:
                got = strip_ms(eng.execute_batch(QUERIES))
            finally:
                eng.close()
            assert got == base, backend

    def test_per_batch_override(self):
        eng = make_engine()  # engine default: simulated
        try:
            base = strip_ms(eng.execute_batch(QUERIES))
            got = strip_ms(
                eng.execute_batch(QUERIES, backend="threaded", workers=2)
            )
            assert got == base
        finally:
            eng.close()

    def test_metrics_report_backend(self):
        eng = make_engine(backend="threaded", workers=2)
        try:
            info = eng.metrics()["backend"]
            assert info["name"] == "threaded"
            assert info["workers"] == 2
            assert info["fallback_tasks"] == 0
        finally:
            eng.close()


class TestWireEnvelope:
    def test_batch_backend_selection(self):
        with InProcessSession(make_engine()) as session:
            out = session.batch(QUERIES, backend="threaded", workers=2)
            assert all(r["ok"] for r in out)
            session.engine.close()

    def test_unknown_backend_rejected(self):
        with InProcessSession(make_engine()) as session:
            resp = session.request({"batch": QUERIES, "backend": "gpu"})
            assert not resp["ok"]
            assert resp["error"]["code"] == "invalid_argument"
            session.engine.close()

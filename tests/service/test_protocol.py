"""Wire protocol v2: version pinning, response envelope, structured errors."""

import pytest

from repro.obs.prometheus import parse_prometheus_text
from repro.service import (
    LEGACY_VERSIONS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    InProcessSession,
    QueryEngine,
)
from repro.service.protocol import dispatch

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def engine():
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


class TestEnvelope:
    def test_success_carries_ok_and_version(self, engine):
        resp = engine.execute({"op": "datasets"})
        assert resp["ok"] is True
        assert resp["v"] == PROTOCOL_VERSION == 2

    def test_failure_carries_structured_error_only(self, engine):
        resp = engine.execute({"op": "no_such_op"})
        assert resp["ok"] is False
        assert resp["v"] == PROTOCOL_VERSION
        assert resp["error"]["code"] == "unknown_op"
        assert "no_such_op" in resp["error"]["message"]
        # the pre-v1 free-form string is gone in v2
        assert "error_str" not in resp


class TestVersionPinning:
    def test_version_field_accepted(self, engine):
        resp = engine.execute({"op": "datasets", "version": 1})
        assert resp["ok"] is True

    def test_v_field_accepted_on_non_vertex_ops(self, engine):
        resp = engine.execute({"op": "datasets", "v": 1})
        assert resp["ok"] is True

    def test_unsupported_version_rejected(self, engine):
        resp = engine.execute({"op": "datasets", "version": 99})
        assert resp["ok"] is False
        assert resp["error"]["code"] == "unsupported_version"

    def test_supported_versions_accepted_and_echoed(self, engine):
        assert SUPPORTED_VERSIONS == frozenset({1, 2})
        for v in sorted(SUPPORTED_VERSIONS):
            resp = engine.execute({"op": "datasets", "version": v})
            assert resp["ok"] is True
            # the response echoes the version it was served at
            assert resp["v"] == v

    def test_legacy_v11_accepted_and_echoed(self, engine):
        assert LEGACY_VERSIONS == frozenset({1.1})
        resp = engine.execute({"op": "update", "version": 1.1,
                               "dataset": "paper", "ops": []})
        # 1.1 clients get the full post-v1 surface, echoed at 1.1
        assert resp["v"] == 1.1
        if not resp["ok"]:
            assert resp["error"]["code"] != "unknown_op"

    def test_v1_client_sees_post_v1_ops_as_unknown(self, engine):
        # a v1-pinned client must get the same failure shape a real v1
        # engine would have produced — never a crash
        for op in ("update", "version", "shards"):
            resp = engine.execute({"op": op, "version": 1, "dataset": "paper"})
            assert resp["ok"] is False
            assert resp["v"] == 1
            assert resp["error"]["code"] == "unknown_op"

    def test_version_op_reports_negotiation(self, engine):
        resp = engine.execute({"op": "version"})
        assert resp["ok"] is True
        assert resp["result"]["protocol"] == PROTOCOL_VERSION
        assert resp["result"]["supported"] == sorted(SUPPORTED_VERSIONS)
        assert resp["result"]["legacy"] == sorted(LEGACY_VERSIONS)
        assert "update" in resp["result"]["gated_ops"]

    def test_error_echoes_pinned_version(self, engine):
        resp = engine.execute({"op": "no_such_op", "version": 1})
        assert resp["v"] == 1

    def test_v_still_means_vertex_on_vertex_ops(self, engine):
        # "v" predates the protocol version on these ops and stays a vertex id
        resp = engine.execute(
            {"op": "s_neighbors", "dataset": "paper", "s": 1, "v": 0}
        )
        assert resp["ok"] is True
        # pinning them requires the long-form field
        resp = engine.execute(
            {"op": "s_neighbors", "dataset": "paper", "s": 1, "v": 0,
             "version": 99}
        )
        assert resp["error"]["code"] == "unsupported_version"


class TestErrorCodes:
    def test_missing_field(self, engine):
        resp = engine.execute({"op": "s_neighbors", "dataset": "paper"})
        assert resp["error"]["code"] == "missing_field"

    def test_unknown_dataset(self, engine):
        resp = engine.execute(
            {"op": "s_distance", "dataset": "nope", "s": 1, "src": 0, "dst": 1}
        )
        assert resp["error"]["code"] == "unknown_dataset"

    def test_invalid_argument(self, engine):
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 0, "src": 0,
             "dst": 1}
        )
        assert resp["error"]["code"] == "invalid_argument"

    def test_non_object_query(self, engine):
        resp = engine.execute([1, 2, 3])
        assert resp["ok"] is False
        assert resp["error"]["code"] == "bad_request"


class TestBatchEnvelope:
    def test_batch_with_version(self, engine):
        out = dispatch(
            engine,
            {"batch": [{"op": "datasets"}] * 2, "v": 1},
        )
        assert isinstance(out, list) and len(out) == 2
        assert all(r["ok"] for r in out)

    def test_batch_with_bad_version(self, engine):
        out = dispatch(engine, {"batch": [{"op": "datasets"}], "v": 5})
        assert out["ok"] is False
        assert out["error"]["code"] == "unsupported_version"

    def test_batch_version_alias_removed(self, engine):
        # v2 cleanup: the envelope takes "v" only; a stray "version" key
        # is no longer read as a pin (queries still pin individually)
        out = dispatch(
            engine, {"batch": [{"op": "datasets"}], "version": 99}
        )
        assert isinstance(out, list) and out[0]["ok"] is True

    def test_batch_accepts_legacy_v11(self, engine):
        out = dispatch(engine, {"batch": [{"op": "version"}], "v": 1.1})
        assert isinstance(out, list) and out[0]["ok"] is True

    def test_batch_backend_validated_against_registry(self, engine):
        out = dispatch(
            engine, {"batch": [{"op": "datasets"}], "backend": "quantum"}
        )
        assert out["ok"] is False
        assert out["error"]["code"] == "invalid_argument"
        # the message names the real registry so the caller can fix it
        assert "simulated" in out["error"]["message"]


class TestPrometheusOp:
    def test_exposition_reflects_served_traffic(self, engine):
        session = InProcessSession(engine)
        session.query("datasets")
        session.query(
            "s_distance", dataset="paper", s=2, src=0, dst=2
        )
        text = session.prometheus()
        parsed = parse_prometheus_text(text)
        assert parsed[
            ("service_requests_total", (("op", "s_distance"),))
        ] >= 1
        assert parsed[
            ("service_request_seconds_count", (("op", "s_distance"),))
        ] >= 1

    def test_prometheus_via_wire_op(self, engine):
        engine.execute({"op": "datasets"})  # request counters lag by one op
        resp = engine.execute({"op": "prometheus"})
        assert resp["ok"] is True
        assert "# TYPE service_requests_total counter" in resp["result"]

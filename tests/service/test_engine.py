"""QueryEngine: op dispatch, batches on the runtime, lazy fallbacks."""

import numpy as np
import pytest

from repro.parallel.runtime import ParallelRuntime
from repro.service import QueryEngine, SLineGraphCache
from repro.service.store import HypergraphStore

from ..conftest import PAPER_MEMBERS, PAPER_OVERLAPS, make_biedgelist, random_biedgelist


@pytest.fixture
def engine():
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


def ok(resp):
    assert resp["ok"], resp
    return resp["result"]


class TestSMetricOps:
    def test_s_neighbors_match_hand_derived_overlaps(self, engine):
        for s in (1, 2, 3):
            expect = sorted(
                {j for i, j, ov in PAPER_OVERLAPS if i == 0 and ov >= s}
                | {i for i, j, ov in PAPER_OVERLAPS if j == 0 and ov >= s}
            )
            got = ok(engine.execute(
                {"op": "s_neighbors", "dataset": "paper", "s": s, "v": 0}
            ))
            assert got == expect

    def test_s_distance_and_path(self, engine):
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 2, "src": 0, "dst": 2}
        )
        assert ok(resp) == 2  # 0-1-2 via overlaps >= 2
        path = ok(engine.execute(
            {"op": "s_path", "dataset": "paper", "s": 2, "src": 0, "dst": 2}
        ))
        assert path[0] == 0 and path[-1] == 2 and len(path) == 3

    def test_component_ops(self, engine):
        comps = ok(engine.execute(
            {"op": "s_connected_components", "dataset": "paper", "s": 3}
        ))
        assert comps == [[0, 3]]
        assert ok(engine.execute(
            {"op": "is_s_connected", "dataset": "paper", "s": 1}
        )) is True
        assert ok(engine.execute(
            {"op": "s_diameter", "dataset": "paper", "s": 2}
        )) == 2

    def test_vector_valued_ops_are_json_lists(self, engine):
        for op in ("s_betweenness_centrality", "s_pagerank", "s_core_number",
                   "s_eccentricity"):
            result = ok(engine.execute({"op": op, "dataset": "paper", "s": 1}))
            assert isinstance(result, list) and len(result) == 4
            assert all(not isinstance(x, np.generic) for x in result)

    def test_scalar_centrality_query(self, engine):
        v0 = ok(engine.execute(
            {"op": "s_closeness_centrality", "dataset": "paper", "s": 1, "v": 0}
        ))
        assert isinstance(v0, float)

    def test_s_sssp_and_mis(self, engine):
        dist = ok(engine.execute(
            {"op": "s_sssp", "dataset": "paper", "s": 1, "src": 0}
        ))
        assert dist == [0, 1, 1, 1]
        mis = ok(engine.execute(
            {"op": "s_maximal_independent_set", "dataset": "paper", "s": 3}
        ))
        assert len(mis) >= 1

    def test_s_info_reports_structure(self, engine):
        info = ok(engine.execute({"op": "s_info", "dataset": "paper", "s": 3}))
        assert info["num_vertices"] == 4
        assert info["num_edges"] == 1
        assert info["num_isolated"] == 2
        assert info["bytes"] > 0

    def test_clique_side_via_over_edges_false(self, engine):
        info = ok(engine.execute(
            {"op": "s_info", "dataset": "paper", "s": 1, "over_edges": False}
        ))
        assert info["num_vertices"] == 9  # hypernode space


class TestHypergraphOps:
    def test_stats(self, engine):
        card = ok(engine.execute({"op": "stats", "dataset": "paper"}))
        assert card["num_edges"] == 4
        assert card["edge_size_dist"] == {3: 2, 4: 1, 6: 1}

    def test_toplexes(self, engine):
        tops = ok(engine.execute({"op": "toplexes", "dataset": "paper"}))
        assert tops == [1, 2, 3]

    def test_s_metrics_report(self, engine):
        reports = ok(engine.execute(
            {"op": "s_metrics", "dataset": "paper", "s_values": [1, 2]}
        ))
        assert set(reports) == {1, 2}
        assert reports[1]["num_edges"] == 6


class TestSessionOps:
    def test_register_datasets_invalidate_metrics(self, engine):
        got = ok(engine.execute(
            {"op": "register", "name": "r", "source": "rand1"}
        ))
        assert got["num_edges"] == 5000
        assert ok(engine.execute({"op": "datasets"})) == ["paper", "r"]
        engine.execute({"op": "s_info", "dataset": "paper", "s": 1})
        dropped = ok(engine.execute({"op": "invalidate"}))
        assert dropped["dropped"] >= 1
        metrics = ok(engine.execute({"op": "metrics"}))
        assert metrics["cache"]["entries"] == 0
        assert metrics["ops"]["s_info"]["count"] == 1
        assert metrics["ops"]["s_info"]["mean_ms"] >= 0.0

    def test_warm_rides_the_derive_path(self, engine):
        served = ok(engine.execute(
            {"op": "warm", "dataset": "paper", "s_values": [3, 1, 2]}
        ))
        assert served == {1: "miss", 2: "derive", 3: "derive"}


class TestErrors:
    def test_unknown_op(self, engine):
        resp = engine.execute({"op": "frobnicate"})
        assert not resp["ok"] and "unknown op" in resp["error"]["message"]
        assert resp["error"]["code"] == "unknown_op"
        # the pre-v1 free-form compat string is gone in v2
        assert "error_str" not in resp

    def test_missing_field(self, engine):
        resp = engine.execute({"op": "s_distance", "dataset": "paper", "src": 0})
        assert not resp["ok"] and "'dst'" in resp["error"]["message"]
        assert resp["error"]["code"] == "missing_field"

    def test_unknown_dataset(self, engine):
        resp = engine.execute({"op": "stats", "dataset": "nope"})
        assert not resp["ok"] and "registered" in resp["error"]["message"]
        assert resp["error"]["code"] == "unknown_dataset"

    def test_non_dict_query(self, engine):
        resp = engine.execute("not a dict")
        assert not resp["ok"]

    def test_missing_op_field(self, engine):
        resp = engine.execute({"dataset": "paper"})
        assert not resp["ok"] and "op" in resp["error"]["message"]

    def test_out_of_range_vertex(self, engine):
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "src": 0, "dst": 99}
        )
        assert not resp["ok"] and "out of range" in resp["error"]["message"]
        assert resp["error"]["code"] == "invalid_argument"

    def test_errors_counted_in_metrics(self, engine):
        engine.execute({"op": "frobnicate"})
        assert engine.metrics()["ops"]["frobnicate"]["errors"] == 1


class TestBatches:
    def queries(self):
        qs = [
            {"op": "s_distance", "dataset": "paper", "s": s, "src": 0, "dst": d}
            for s in (1, 2, 3)
            for d in (1, 2, 3)
        ]
        qs.append({"op": "bogus"})
        qs.append({"op": "s_diameter", "dataset": "paper", "s": 2})
        return qs

    def test_batch_preserves_input_order(self, engine):
        qs = self.queries()
        out = engine.execute_batch(qs)
        assert len(out) == len(qs)
        serial = [engine.execute(q) for q in qs]
        for got, want in zip(out, serial):
            assert got.get("result") == want.get("result")
            assert got["ok"] == want["ok"]

    def test_batch_results_independent_of_execution_order(self, engine):
        qs = self.queries()
        baseline = [r.get("result") for r in engine.execute_batch(qs)]
        for seed in (1, 2):
            rt = ParallelRuntime(
                num_threads=4, partitioner="cyclic",
                execution_order="shuffled", seed=seed,
            )
            shuffled = engine.execute_batch(qs, runtime=rt)
            assert [r.get("result") for r in shuffled] == baseline

    def test_batch_runs_on_the_runtime_ledger(self, engine):
        rt = ParallelRuntime(num_threads=4, partitioner="cyclic")
        engine.execute_batch(self.queries(), runtime=rt)
        assert rt.ledger.total_work >= len(self.queries())

    def test_empty_batch(self, engine):
        assert engine.execute_batch([]) == []

    def test_concurrent_batches_from_threads(self, engine):
        import threading

        results: dict[int, list] = {}

        def worker(tid):
            results[tid] = engine.execute_batch(self.queries())

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        baseline = [r.get("result") for r in engine.execute_batch(self.queries())]
        for tid in range(4):
            assert [r.get("result") for r in results[tid]] == baseline


class TestLazyFallback:
    """With zero budget the traversal ops answer lazily, same results."""

    def two_engines(self):
        el = random_biedgelist(seed=11, num_edges=25, num_nodes=20, max_size=6)
        rich = QueryEngine(cache=SLineGraphCache(budget_bytes=None))
        rich.store.register("d", el)
        tight = QueryEngine(cache=SLineGraphCache(budget_bytes=0))
        tight.store.register("d", el)
        return rich, tight

    @pytest.mark.parametrize("query", [
        {"op": "s_distance", "s": 2, "src": 0, "dst": 5},
        {"op": "s_neighbors", "s": 2, "v": 3},
        {"op": "s_degree", "s": 1, "v": 7},
        {"op": "s_connected_components", "s": 2},
        {"op": "is_s_connected", "s": 1},
    ])
    def test_lazy_equals_materialized(self, query):
        rich, tight = self.two_engines()
        q = dict(query, dataset="d")
        full = rich.execute(q)
        lazy = tight.execute(q)
        assert lazy["via"] == "lazy"
        assert full["via"].startswith("cache:")
        assert lazy["result"] == full["result"]
        assert tight.cache.stats.misses == 0  # nothing was built

    def test_materialize_never_forces_lazy(self, engine):
        resp = engine.execute(
            {"op": "s_distance", "dataset": "paper", "s": 2,
             "src": 0, "dst": 2, "materialize": "never"}
        )
        assert resp["via"] == "lazy" and resp["result"] == 2

    def test_materialize_always_overrides_tight_budget(self):
        _, tight = self.two_engines()
        resp = tight.execute(
            {"op": "s_distance", "dataset": "d", "s": 2,
             "src": 0, "dst": 5, "materialize": "always"}
        )
        assert resp["via"] == "cache:bypass"

    def test_cached_graph_preferred_over_lazy(self):
        rich, tight = self.two_engines()
        del rich
        # warm s=1 into... budget 0 admits nothing, so seed a budgetless one
        eng = QueryEngine(cache=SLineGraphCache(budget_bytes=None))
        eng.store.register("d", random_biedgelist(seed=11, num_edges=25,
                                                  num_nodes=20, max_size=6))
        eng.execute({"op": "warm", "dataset": "d", "s_values": [1]})
        resp = eng.execute(
            {"op": "s_distance", "dataset": "d", "s": 1, "src": 0, "dst": 5}
        )
        assert resp["via"] == "cache:hit"

"""AsyncAnalyticsServer: pipelining, admission control, graceful drain."""

import json
import socket
import threading
import time

import pytest

from repro.service import (
    AsyncAnalyticsServer,
    QueryEngine,
    ServiceError,
    SocketSession,
)

from ..conftest import PAPER_MEMBERS, make_biedgelist


@pytest.fixture
def engine():
    eng = QueryEngine()
    eng.store.register("paper", make_biedgelist(PAPER_MEMBERS, num_nodes=9))
    return eng


@pytest.fixture
def server(engine):
    with AsyncAnalyticsServer(engine) as srv:  # port=0 -> ephemeral
        yield srv


class TestRoundTrip:
    def test_single_query(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            resp = session.query(
                "s_distance", dataset="paper", s=2, src=0, dst=2
            )
        assert resp["ok"] and resp["result"] == 2

    def test_batch(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            out = session.batch(
                [{"op": "s_degree", "dataset": "paper", "s": 1, "v": v}
                 for v in range(4)]
            )
        assert [r["result"] for r in out] == [3, 3, 3, 3]

    def test_malformed_line_gets_error_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            resp = json.loads(sock.makefile("rb").readline())
        assert not resp["ok"] and resp["error"]["code"] == "bad_json"

    def test_strict_session_raises_typed_error(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            with pytest.raises(ServiceError) as exc:
                session.query("s_degree", dataset="nope", s=1, v=0)
        assert exc.value.code == "unknown_dataset"


class TestPipelining:
    def test_deep_pipeline_responses_in_order(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            expected = []
            for v in range(40):
                session.send(
                    {"op": "s_degree", "dataset": "paper", "s": 1,
                     "v": v % 4}
                )
                expected.append(v % 4)
            got = [session.recv() for _ in range(40)]
        # responses arrive in request order even though work overlaps
        reference = {}
        for want_v, resp in zip(expected, got):
            assert resp["ok"]
            reference.setdefault(want_v, resp["result"])
            assert resp["result"] == reference[want_v]

    def test_sixtyfour_concurrent_connections(self, server):
        host, port = server.address
        errors: list = []

        def worker(i):
            try:
                with SocketSession(host, port) as session:
                    for _ in range(3):
                        resp = session.query(
                            "s_degree", dataset="paper", s=1, v=i % 4
                        )
                        assert resp["ok"]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((i, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(64)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestAdmissionControl:
    def test_overload_sheds_with_structured_error(self, engine):
        srv = AsyncAnalyticsServer(
            engine, max_inflight=1, max_pending=2, max_queue=8
        )
        with srv:
            host, port = srv.address
            with SocketSession(host, port, strict=False) as session:
                n = 80
                for i in range(n):
                    session.send(
                        {"op": "s_connected_components", "dataset": "paper",
                         "s": (i % 3) + 1, "materialize": "never"}
                    )
                responses = [session.recv() for _ in range(n)]
        shed = [
            r for r in responses
            if not r.get("ok", True)
            and r["error"]["code"] == "overloaded"
        ]
        served = [r for r in responses if r.get("ok")]
        assert shed, "tiny max_pending must shed under an 80-deep pipeline"
        assert served, "admitted requests still get real answers"
        snap = engine.obs_metrics.snapshot()
        overloaded = [
            s["value"] for s in snap
            if s["name"] == "service_async_overloaded_total"
        ]
        assert overloaded and overloaded[0] == len(shed)

    def test_bad_bounds_rejected(self, engine):
        with pytest.raises(ValueError):
            AsyncAnalyticsServer(engine, max_inflight=0)


class TestLifecycle:
    def test_address_before_start_raises(self, engine):
        srv = AsyncAnalyticsServer(engine)
        with pytest.raises(RuntimeError, match="not started"):
            srv.address

    def test_double_start_rejected(self, engine):
        srv = AsyncAnalyticsServer(engine).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                srv.start()
        finally:
            srv.stop()

    def test_stop_is_idempotent(self, engine):
        srv = AsyncAnalyticsServer(engine).start()
        srv.stop()
        srv.stop()

    def test_stop_drains_inflight_request(self, engine):
        """A pipelined request mid-execution still gets its response."""
        release = threading.Event()
        entered = threading.Event()
        real_execute = engine.execute

        def slow_execute(query):
            entered.set()
            release.wait(timeout=10)
            return real_execute(query)

        engine.execute = slow_execute
        srv = AsyncAnalyticsServer(engine, drain_timeout=10).start()
        host, port = srv.address
        session = SocketSession(host, port)
        try:
            session.send({"op": "datasets"})
            assert entered.wait(timeout=10)
            stopper = threading.Thread(target=srv.stop)
            stopper.start()
            time.sleep(0.1)  # let stop() reach the drain wait
            release.set()
            stopper.join(timeout=15)
            assert not stopper.is_alive()
            resp = session.recv()
            assert resp["ok"] and resp["result"] == ["paper"]
        finally:
            release.set()
            session.close()

    def test_connection_gauge_returns_to_zero(self, server):
        host, port = server.address
        with SocketSession(host, port) as session:
            session.query("datasets")
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            snap = server.engine.obs_metrics.snapshot()
            conns = [
                s["value"] for s in snap
                if s["name"] == "service_async_connections"
            ]
            if conns and conns[0] == 0:
                return
            time.sleep(0.05)
        pytest.fail("connection gauge never returned to 0")

    def test_abrupt_disconnect_is_not_a_server_error(self, server, caplog):
        """A client slamming the door (RST) mid-pipeline is routine.

        Load generators and flaky clients vanish with responses still in
        flight; the reader's ConnectionResetError must be swallowed by
        the connection teardown, not logged by asyncio as an unhandled
        client_connected_cb exception.
        """
        import logging
        import struct

        host, port = server.address
        line = json.dumps(
            {"op": "s_degree", "dataset": "paper", "s": 1, "v": 0}
        ).encode() + b"\n"
        with caplog.at_level(logging.ERROR, logger="asyncio"):
            for _ in range(3):
                sock = socket.create_connection((host, port), timeout=10)
                # SO_LINGER(onoff=1, linger=0) turns close() into a RST
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.sendall(line * 100)
                sock.close()
            time.sleep(0.3)  # let the teardown (and any logging) happen
        assert not [
            r for r in caplog.records if "client_connected_cb" in r.message
        ]
        # and the server still serves
        with SocketSession(host, port) as session:
            resp = session.query("s_degree", dataset="paper", s=1, v=0)
        assert resp["ok"]


class TestExecutorTeardown:
    def test_stop_joins_executor_off_the_loop(self, engine):
        """Regression: the dispatch executor used to be shut down with
        ``wait=True`` inside the teardown coroutine, joining worker
        threads *on* the event loop.  It now happens on the loop thread
        after ``asyncio.run`` returns — ``stop()`` must come back with
        the executor fully shut down and every worker joined."""
        srv = AsyncAnalyticsServer(engine).start()
        host, port = srv.address
        with SocketSession(host, port) as session:
            assert session.query("datasets")["ok"]
        srv.stop()
        assert srv._pool is not None and srv._pool._shutdown
        assert not any(
            t.name.startswith("repro-aserve") and t.is_alive()
            for t in threading.enumerate()
        )

"""Schedule tracing / Chrome-trace export tests."""

import io
import json

import numpy as np
import pytest

from repro.parallel.cost import CostModel
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.parallel.trace import chrome_trace_events, export_chrome_trace


def traced_runtime(**kw) -> ParallelRuntime:
    return ParallelRuntime(
        cost_model=CostModel(task_overhead=0.0, steal_cost=0.0),
        trace=True,
        **kw,
    )


class TestEventRecording:
    def test_events_cover_every_task(self):
        rt = traced_runtime(num_threads=3)
        chunks = rt.partition(24)
        rt.parallel_for(chunks, lambda c: None)
        phase = rt.ledger.phases[0]
        assert phase.events is not None
        assert len(phase.events) == len(chunks)
        ids = sorted(e[0] for e in phase.events)
        assert ids == list(range(len(chunks)))

    def test_no_events_without_trace(self):
        rt = ParallelRuntime(num_threads=2)
        rt.parallel_for(rt.partition(8), lambda c: None)
        assert rt.ledger.phases[0].events is None

    def test_events_non_overlapping_per_thread(self):
        rt = traced_runtime(num_threads=4, scheduler="work_stealing")
        rt.parallel_for(
            rt.partition(40),
            lambda c: TaskResult(None, float(c.sum() % 17 + 1)),
        )
        for phase in rt.ledger.phases:
            per_thread: dict[int, list[tuple[float, float]]] = {}
            for _, t, start, end in phase.events:
                per_thread.setdefault(t, []).append((start, end))
            for spans in per_thread.values():
                spans.sort()
                for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                    assert e1 <= s2 + 1e-9

    def test_event_ends_match_thread_time(self):
        for scheduler in ("static", "work_stealing"):
            rt = traced_runtime(num_threads=3, scheduler=scheduler)
            rt.parallel_for(rt.partition(17), lambda c: None)
            phase = rt.ledger.phases[0]
            for t in range(3):
                ends = [e for (_, th, _, e) in phase.events if th == t]
                if ends:
                    assert max(ends) == pytest.approx(phase.thread_time[t])


class TestChromeExport:
    def test_export_structure(self):
        rt = traced_runtime(num_threads=2)
        rt.parallel_for(rt.partition(6), lambda c: None, phase="alpha")
        rt.serial_phase(5.0, phase="merge")
        buf = io.StringIO()
        count = export_chrome_trace(rt.ledger, buf)
        doc = json.loads(buf.getvalue())
        assert len(doc["traceEvents"]) == count
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(n.startswith("alpha[") for n in names)
        assert "merge (serial)" in names
        for e in doc["traceEvents"]:
            assert e["ph"] == "X"
            assert e["dur"] >= 0

    def test_phases_offset_sequentially(self):
        rt = traced_runtime(num_threads=2)
        rt.parallel_for(rt.partition(4), lambda c: None, phase="p1")
        rt.parallel_for(rt.partition(4), lambda c: None, phase="p2")
        events = chrome_trace_events(rt.ledger)
        p1_end = max(e["ts"] + e["dur"] for e in events if e["cat"] == "p1")
        p2_start = min(e["ts"] for e in events if e["cat"] == "p2")
        assert p2_start >= p1_end - 1e-9

    def test_file_export(self, tmp_path):
        rt = traced_runtime(num_threads=2)
        rt.parallel_for(rt.partition(4), lambda c: None)
        p = tmp_path / "trace.json"
        export_chrome_trace(rt.ledger, p)
        assert json.loads(p.read_text())["traceEvents"]


def test_algorithm_trace_end_to_end(paper_h):
    """Tracing a real algorithm run produces a renderable timeline."""
    from repro.algorithms.hypercc import hypercc

    rt = ParallelRuntime(num_threads=4, trace=True)
    hypercc(paper_h, runtime=rt)
    events = chrome_trace_events(rt.ledger)
    assert events
    assert {e["tid"] for e in events} <= set(range(4))

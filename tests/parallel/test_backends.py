"""Execution backends: shared-memory transport, pools, runtime routing."""

import pickle

import numpy as np
import pytest

from repro.parallel import (
    BACKEND_NAMES,
    ProcessBackend,
    SharedArray,
    SharedCSR,
    SimulatedBackend,
    ThreadedBackend,
    default_workers,
    make_backend,
    open_handles,
    shared_debug_verify,
    shared_stats,
)
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.csr import CSR


class SquareKernel:
    """Module-level (picklable) body: chunk of ints -> their squares."""

    def __call__(self, chunk):
        return np.asarray(chunk, dtype=np.int64) ** 2


class GatherKernel:
    """Picklable body closing over a (possibly shared) data array."""

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data

    def __call__(self, chunk):
        with open_handles(self.data) as (data,):
            return np.asarray(data)[np.asarray(chunk)].copy()


class CostedKernel:
    """Returns a TaskResult charging twice the chunk size as work."""

    def __call__(self, chunk):
        chunk = np.asarray(chunk, dtype=np.int64)
        return TaskResult(chunk * 10, float(2 * chunk.size))


def small_csr() -> CSR:
    src = np.array([0, 0, 1, 1, 2], dtype=np.int64)
    dst = np.array([1, 2, 0, 2, 1], dtype=np.int64)
    return CSR.from_coo(src, dst, num_sources=3, num_targets=3)


class RecordingMonitor:
    """Stand-in race detector recording task bracket calls."""

    def __init__(self):
        self.begun: list[int] = []
        self.ended = 0

    def begin_task(self, task_id):
        self.begun.append(int(task_id))

    def end_task(self):
        self.ended += 1


# ---- factory ----------------------------------------------------------------


class TestMakeBackend:
    def test_names(self):
        for name in BACKEND_NAMES:
            assert make_backend(name).name == name

    def test_none_is_simulated(self):
        assert make_backend(None).name == "simulated"

    def test_instance_passthrough(self):
        be = ThreadedBackend(2)
        assert make_backend(be) is be
        be.close()

    def test_workers_conflict_rejected(self):
        be = ThreadedBackend(2)
        with pytest.raises(ValueError, match="workers"):
            make_backend(be, workers=4)
        be.close()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_default_workers_bounded(self):
        assert 1 <= default_workers() <= 32
        assert default_workers(bound=2) <= 2


# ---- execution order and monitor brackets -----------------------------------


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_submission_order(name):
    chunks = [np.array([i, i + 1], dtype=np.int64) for i in range(9)]
    with make_backend(name, workers=2) as be:
        outs = be.map(SquareKernel(), chunks)
    for chunk, out in zip(chunks, outs):
        np.testing.assert_array_equal(out, chunk**2)


@pytest.mark.parametrize("name", ["simulated", "threaded"])
def test_in_process_monitor_brackets(name):
    mon = RecordingMonitor()
    chunks = [np.array([i], dtype=np.int64) for i in range(6)]
    with make_backend(name, workers=2) as be:
        assert be.in_process
        be.map(SquareKernel(), chunks, monitor=mon)
    assert sorted(mon.begun) == list(range(6))
    assert mon.ended == 6


def test_empty_chunks():
    for name in BACKEND_NAMES:
        with make_backend(name, workers=2) as be:
            assert be.map(SquareKernel(), []) == []


def test_threaded_close_idempotent():
    be = ThreadedBackend(2)
    be.map(SquareKernel(), [np.arange(3)])
    be.close()
    be.close()
    # the pool is lazily recreated after close
    out = be.map(SquareKernel(), [np.arange(3), np.arange(3)])
    assert len(out) == 2
    be.close()


# ---- process backend --------------------------------------------------------


class TestProcessBackend:
    def test_runs_picklable_kernels(self):
        chunks = [np.array([i, i + 3], dtype=np.int64) for i in range(4)]
        with ProcessBackend(2) as be:
            outs = be.map(SquareKernel(), chunks)
            assert be.fallback_tasks == 0
        for chunk, out in zip(chunks, outs):
            np.testing.assert_array_equal(out, chunk**2)

    def test_unpicklable_body_falls_back(self):
        seen = []

        def closure_body(chunk):  # closes over a local -> not picklable
            seen.append(1)
            return int(np.asarray(chunk).sum())

        chunks = [np.array([i], dtype=np.int64) for i in range(5)]
        with ProcessBackend(2) as be:
            outs = be.map(closure_body, chunks)
            assert be.fallback_tasks == 5
        assert outs == [0, 1, 2, 3, 4]
        assert len(seen) == 5  # ran in this process, not a worker

    def test_share_exports_and_releases(self):
        before = shared_stats()
        g = small_csr()
        arr = np.arange(7, dtype=np.int64)
        with ProcessBackend(2) as be:
            with be.share(g, arr, 42, None) as (sg, sa, scalar, none):
                assert isinstance(sg, SharedCSR)
                assert isinstance(sa, SharedArray)
                assert scalar == 42 and none is None
                assert shared_stats()["active"] == before["active"] + 3
        after = shared_stats()
        assert after["active"] == before["active"]
        assert after["released"] >= before["released"] + 3

    def test_share_dedups_identical_objects(self):
        # the adjoin representation passes the SAME CSR as both incidence
        # roles; it must map to one set of shm blocks, not two
        g = small_csr()
        with ProcessBackend(2) as be:
            with be.share(g, g) as (a, b):
                assert a is b

    def test_shared_gather_through_pool(self):
        data = np.arange(100, dtype=np.int64) * 3
        chunks = [np.arange(i * 10, (i + 1) * 10) for i in range(10)]
        with ProcessBackend(2) as be:
            with be.share(data) as (handle,):
                outs = be.map(GatherKernel(handle), chunks)
        got = np.concatenate(outs)
        np.testing.assert_array_equal(got, data)


# ---- shared-memory handles --------------------------------------------------


class TestSharedArray:
    def test_roundtrip_and_readonly_view(self):
        arr = np.arange(11, dtype=np.float64)
        handle = SharedArray.create(arr)
        try:
            worker = pickle.loads(pickle.dumps(handle))
            assert len(pickle.dumps(handle)) < 500  # handle, not data
            view = worker.open()
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
            worker.close()
        finally:
            handle.release()

    def test_zero_size_array(self):
        handle = SharedArray.create(np.empty(0, dtype=np.int64))
        try:
            assert handle.open().size == 0
        finally:
            handle.release()

    def test_double_release_is_legal(self):
        handle = SharedArray.create(np.ones(3))
        handle.release()
        handle.release()

    def test_debug_verify_flags_leaks(self):
        handle = SharedArray.create(np.ones(4))
        with pytest.raises(AssertionError, match="never released"):
            shared_debug_verify()
        handle.release()
        shared_debug_verify()


class TestSharedCSR:
    def test_roundtrip(self):
        g = small_csr()
        handle = SharedCSR.create(g)
        try:
            worker = pickle.loads(pickle.dumps(handle))
            rebuilt = worker.open()
            np.testing.assert_array_equal(rebuilt.indptr, g.indptr)
            np.testing.assert_array_equal(rebuilt.indices, g.indices)
            assert rebuilt.num_targets() == g.num_targets()
            assert rebuilt.has_sorted_rows == g.has_sorted_rows
            worker.close()
        finally:
            handle.release()

    def test_open_handles_passthrough(self):
        g = small_csr()
        arr = np.arange(3)
        with open_handles(g, arr, None) as (a, b, c):
            assert a is g and b is arr and c is None


# ---- runtime routing --------------------------------------------------------


class TestRuntimeBackendRouting:
    def ledger_for(self, backend):
        with ParallelRuntime(
            num_threads=4, partitioner="cyclic", backend=backend, workers=2
        ) as rt:
            chunks = rt.partition(np.arange(64, dtype=np.int64))
            values = rt.parallel_for(chunks, CostedKernel(), pure=True)
            got = np.concatenate([np.sort(v) for v in values])
            return rt.makespan, np.sort(got)

    def test_ledger_and_values_identical_across_backends(self):
        spans = {}
        vals = {}
        for name in BACKEND_NAMES:
            spans[name], vals[name] = self.ledger_for(name)
        assert spans["threaded"] == spans["simulated"]
        assert spans["process"] == spans["simulated"]
        np.testing.assert_array_equal(vals["threaded"], vals["simulated"])
        np.testing.assert_array_equal(vals["process"], vals["simulated"])

    def test_impure_phases_stay_serial(self):
        hits = []

        def impure(chunk):
            hits.append(len(chunk))
            return len(chunk)

        with ParallelRuntime(backend="threaded", workers=2) as rt:
            rt.parallel_for([np.arange(2)] * 4, impure)  # pure not declared
            assert rt.backend._pool is None  # never spun up

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        with ParallelRuntime() as rt:
            assert rt.backend.name == "threaded"

    def test_caller_owned_backend_survives_close(self):
        be = ThreadedBackend(2)
        with ParallelRuntime(backend=be) as rt:
            rt.parallel_for(
                [np.arange(3)] * 3, SquareKernel(), pure=True
            )
        assert be._pool is not None  # runtime.close() left it running
        be.close()

    def test_metrics_record_backend(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        with ParallelRuntime(
            backend="threaded", workers=2, metrics=registry
        ) as rt:
            rt.parallel_for([np.arange(2)] * 4, SquareKernel(), pure=True)
        counter = registry.counter("runtime.backend.tasks", backend="threaded")
        assert counter.value == 4

    def test_race_detector_attaches_under_threaded_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        with ParallelRuntime(
            num_threads=2, backend="threaded", workers=2
        ) as rt:
            det = rt.monitor
            assert det is not None
            out = det.wrap(np.zeros(4, dtype=np.int64), "out")

            def racy(chunk):
                out[0] = int(np.asarray(chunk)[0])
                return None

            rt.parallel_for(
                rt.partition(np.arange(8)), racy, phase="racy", pure=True
            )
            assert any(f.rule == "D001" for f in det.findings)

    def test_process_backend_skips_monitor_brackets(self, monkeypatch):
        # worker processes can't observe the parent's CheckedArrays; the
        # phase must still complete and produce correct values
        monkeypatch.setenv("REPRO_CHECK", "1")
        chunks = [np.array([i], dtype=np.int64) for i in range(4)]
        with ParallelRuntime(backend="process", workers=2) as rt:
            assert rt.monitor is not None
            outs = rt.parallel_for(chunks, SquareKernel(), pure=True)
        np.testing.assert_array_equal(outs[3], np.array([9]))

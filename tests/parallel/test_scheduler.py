"""Unit tests for the static and work-stealing schedulers."""

import numpy as np
import pytest

from repro.parallel.cost import CostModel
from repro.parallel.scheduler import (
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)

MODEL = CostModel(task_overhead=0.0, steal_cost=0.0)


class TestStatic:
    def test_round_robin(self):
        ledger = StaticScheduler().schedule([10, 20, 30, 40], 2, MODEL)
        assert ledger.thread_time.tolist() == [40.0, 60.0]
        assert ledger.num_steals == 0
        assert ledger.makespan == 60.0

    def test_one_thread(self):
        ledger = StaticScheduler().schedule([5, 5, 5], 1, MODEL)
        assert ledger.makespan == 15.0
        assert ledger.load_imbalance == 1.0


class TestWorkStealing:
    def test_greedy_balances_skew(self):
        # one huge task + many small: greedy puts small ones elsewhere
        costs = [100] + [1] * 50
        ws = WorkStealingScheduler().schedule(costs, 4, MODEL)
        st = StaticScheduler().schedule(costs, 4, MODEL)
        assert ws.makespan <= st.makespan
        assert ws.makespan == 100.0  # the big task bounds the makespan

    def test_deterministic(self):
        costs = list(np.random.default_rng(3).integers(1, 100, 40))
        a = WorkStealingScheduler().schedule(costs, 8, MODEL)
        b = WorkStealingScheduler().schedule(costs, 8, MODEL)
        assert np.array_equal(a.thread_time, b.thread_time)
        assert a.num_steals == b.num_steals

    def test_counts_steals(self):
        model = CostModel(task_overhead=0.0, steal_cost=2.0)
        # task 2 round-robins to thread 0, but thread 1 is free after its
        # short task 1 while thread 0 is stuck on task 0 -> a steal
        ledger = WorkStealingScheduler().schedule([100, 1, 1], 2, model)
        assert ledger.num_steals >= 1
        # ...and the steal cost was charged
        assert ledger.thread_time[1] == 1 + 1 + 2.0

    def test_total_work_conserved_modulo_overheads(self):
        costs = [3.0, 7.0, 11.0]
        ledger = WorkStealingScheduler().schedule(costs, 2, MODEL)
        assert ledger.total_work == pytest.approx(21.0)

    def test_makespan_lower_bound(self):
        """Greedy is never better than max(total/p, max task)."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            costs = rng.integers(1, 50, size=rng.integers(1, 60)).astype(float)
            p = int(rng.integers(1, 16))
            ledger = WorkStealingScheduler().schedule(costs, p, MODEL)
            lower = max(costs.sum() / p, costs.max())
            assert ledger.makespan >= lower - 1e-9
            # and within the classic greedy 2x bound
            assert ledger.makespan <= 2 * lower + 1e-9


class TestFactory:
    def test_lookup(self):
        assert isinstance(make_scheduler("static"), StaticScheduler)
        assert isinstance(make_scheduler("work_stealing"), WorkStealingScheduler)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("magic")


class TestCostModel:
    def test_task_overhead_added(self):
        model = CostModel(task_overhead=1.5)
        ledger = StaticScheduler().schedule([10.0], 1, model)
        assert ledger.makespan == 11.5

    def test_serial_cost_charged_per_phase(self):
        model = CostModel(task_overhead=0.0, serial_cost_per_phase=5.0)
        ledger = StaticScheduler().schedule([10.0], 4, model)
        assert ledger.makespan == 15.0

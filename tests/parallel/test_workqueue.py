"""Unit tests for ThreadLocalQueues / WorkQueue."""

import numpy as np
import pytest

from repro.parallel.workqueue import ThreadLocalQueues, WorkQueue


class TestThreadLocalQueues:
    def test_push_merge_order(self):
        q = ThreadLocalQueues(2, width=1)
        q.push(1, np.array([5, 6]))
        q.push(0, np.array([1, 2]))
        q.push(0, np.array([3]))
        assert q.merge().tolist() == [1, 2, 3, 5, 6]

    def test_width2_pairs(self):
        q = ThreadLocalQueues(1, width=2)
        q.push(0, np.array([[0, 1], [2, 3]]))
        merged = q.merge()
        assert merged.shape == (2, 2)
        assert merged[1].tolist() == [2, 3]

    def test_width1_accepts_flat(self):
        q = ThreadLocalQueues(1, width=1)
        q.push(0, np.array([7]))
        assert q.merge().tolist() == [7]

    def test_shape_validation(self):
        q = ThreadLocalQueues(1, width=2)
        with pytest.raises(ValueError, match="shape"):
            q.push(0, np.array([1, 2, 3]))

    def test_empty_merge(self):
        assert ThreadLocalQueues(3, width=1).merge().size == 0
        assert ThreadLocalQueues(3, width=2).merge().shape == (0, 2)

    def test_sizes(self):
        q = ThreadLocalQueues(3, width=1)
        q.push(0, np.array([1, 2]))
        q.push(2, np.array([3]))
        assert q.sizes().tolist() == [2, 0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadLocalQueues(0)
        with pytest.raises(ValueError):
            ThreadLocalQueues(1, width=0)

    def test_empty_push_ignored(self):
        q = ThreadLocalQueues(1, width=1)
        q.push(0, np.array([], dtype=np.int64))
        assert q.sizes().tolist() == [0]


class TestWorkQueue:
    def test_drain_all(self):
        q = WorkQueue(np.array([4, 5, 6]))
        assert len(q) == 3
        assert q.drain().tolist() == [4, 5, 6]
        assert q.empty()

    def test_drain_chunked(self):
        q = WorkQueue(np.arange(10))
        assert q.drain(4).tolist() == [0, 1, 2, 3]
        assert q.drain(4).tolist() == [4, 5, 6, 7]
        assert q.drain(4).tolist() == [8, 9]
        assert q.drain(4).size == 0

    def test_noncontiguous_ids_supported(self):
        """The whole point of the queue: arbitrary, permuted IDs."""
        ids = np.array([42, 7, 1000, 3])
        q = WorkQueue(ids)
        assert q.drain().tolist() == ids.tolist()

    def test_items_view(self):
        q = WorkQueue(np.arange(5))
        q.drain(2)
        assert q.items.tolist() == [2, 3, 4]

    def test_2d_rows(self):
        q = WorkQueue(np.array([[1, 2], [3, 4], [5, 6]]))
        first = q.drain(1)
        assert first.tolist() == [[1, 2]]
        assert len(q) == 2

"""Real thread-pool executor tests."""

import numpy as np
import pytest

from repro.parallel.threads import ThreadedMap, thread_map


class TestThreadedMap:
    def test_results_in_order(self):
        chunks = [np.arange(i, i + 3) for i in range(10)]
        out = ThreadedMap(4).map(lambda c: int(c.sum()), chunks)
        assert out == [int(c.sum()) for c in chunks]

    def test_single_chunk_no_pool(self):
        assert ThreadedMap(4).map(lambda c: c * 2, [21]) == [42]

    def test_single_worker(self):
        assert ThreadedMap(1).map(lambda c: c + 1, [1, 2, 3]) == [2, 3, 4]

    def test_empty(self):
        assert ThreadedMap(2).map(lambda c: c, []) == []

    def test_exception_propagates(self):
        def bad(c):
            if c == 3:
                raise RuntimeError("boom")
            return c

        with pytest.raises(RuntimeError, match="boom"):
            ThreadedMap(2).map(bad, list(range(8)))

    def test_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            ThreadedMap(0)

    def test_convenience_wrapper(self):
        assert thread_map(lambda x: -x, [1, 2], num_workers=2) == [-1, -2]


class TestThreadedConstruction:
    def test_matches_serial_constructions(self):
        from repro.linegraph import slinegraph_matrix, slinegraph_threaded
        from repro.structures.biadjacency import BiAdjacency

        from ..conftest import random_biedgelist

        for seed in range(3):
            h = BiAdjacency.from_biedgelist(random_biedgelist(seed=seed))
            for s in (1, 2, 3):
                assert slinegraph_threaded(h, s, num_workers=4) == (
                    slinegraph_matrix(h, s)
                )

    def test_adjoin_input(self, paper_el, paper_h):
        from repro.linegraph import slinegraph_matrix, slinegraph_threaded
        from repro.structures.adjoin import AdjoinGraph

        g = AdjoinGraph.from_biedgelist(paper_el)
        assert slinegraph_threaded(g, 2) == slinegraph_matrix(paper_h, 2)

    def test_empty_eligible(self, paper_h):
        from repro.linegraph import slinegraph_threaded

        el = slinegraph_threaded(paper_h, 100)
        assert el.num_edges() == 0

    def test_invalid_s(self, paper_h):
        from repro.linegraph import slinegraph_threaded

        with pytest.raises(ValueError, match="s must be"):
            slinegraph_threaded(paper_h, 0)

    def test_auto_dispatch(self, paper_el, paper_h):
        from repro.linegraph import slinegraph_matrix, to_two_graph
        from repro.structures.adjoin import AdjoinGraph

        ref = slinegraph_matrix(paper_h, 2)
        assert to_two_graph(paper_h, 2, "auto") == ref
        assert to_two_graph(
            AdjoinGraph.from_biedgelist(paper_el), 2, "auto"
        ) == ref
        assert to_two_graph(paper_h, 2, "threaded") == ref

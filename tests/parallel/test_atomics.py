"""Unit tests for the atomic-idiom helpers (order-independence)."""

import numpy as np

from repro.parallel.atomics import compare_and_swap, fetch_or, write_max, write_min


class TestWriteMin:
    def test_basic(self):
        a = np.array([5, 5, 5])
        changed = write_min(a, np.array([0, 2]), np.array([3, 9]))
        assert a.tolist() == [3, 5, 5]
        assert changed == 1

    def test_duplicate_indices_combined(self):
        a = np.array([10])
        write_min(a, np.array([0, 0, 0]), np.array([7, 3, 5]))
        assert a[0] == 3

    def test_order_independent(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 20, 100)
        vals = rng.integers(0, 100, 100)
        a = np.full(20, 1000)
        b = a.copy()
        write_min(a, idx, vals)
        perm = rng.permutation(100)
        write_min(b, idx[perm], vals[perm])
        assert np.array_equal(a, b)

    def test_no_change_returns_zero(self):
        a = np.array([1, 1])
        assert write_min(a, np.array([0, 1]), np.array([5, 5])) == 0


class TestWriteMax:
    def test_basic(self):
        a = np.array([1, 1])
        changed = write_max(a, np.array([0, 1]), np.array([5, 0]))
        assert a.tolist() == [5, 1]
        assert changed == 1


class TestCompareAndSwap:
    def test_first_wins_on_duplicates(self):
        a = np.array([-1, -1])
        won = compare_and_swap(
            a, np.array([0, 0, 1]), -1, np.array([10, 20, 30])
        )
        assert a.tolist() == [10, 30]
        assert won.tolist() == [True, False, True]

    def test_failed_cas(self):
        a = np.array([7])
        won = compare_and_swap(a, np.array([0]), -1, np.array([99]))
        assert a[0] == 7
        assert not won[0]

    def test_scalar_desired(self):
        a = np.array([0, 0])
        compare_and_swap(a, np.array([1]), 0, np.array(5))
        assert a.tolist() == [0, 5]


class TestFetchOr:
    def test_exactly_one_winner_per_bit(self):
        a = np.zeros(3, dtype=bool)
        won = fetch_or(a, np.array([1, 1, 2]))
        assert won.tolist() == [True, False, True]
        assert a.tolist() == [False, True, True]

    def test_already_set_loses(self):
        a = np.array([True])
        assert fetch_or(a, np.array([0])).tolist() == [False]

"""Unit tests for ParallelRuntime (simulated parallel_for / ledgers)."""

import numpy as np
import pytest

from repro.parallel.cost import CostModel
from repro.parallel.runtime import ParallelRuntime, TaskResult


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelRuntime(num_threads=0)
        with pytest.raises(ValueError):
            ParallelRuntime(partitioner="hexagonal")
        with pytest.raises(ValueError):
            ParallelRuntime(execution_order="reverse")
        with pytest.raises(ValueError):
            ParallelRuntime(grain=0)


class TestParallelFor:
    def test_values_in_submission_order(self):
        rt = ParallelRuntime(num_threads=4)
        chunks = rt.partition(20)
        vals = rt.parallel_for(chunks, lambda c: c.sum())
        assert vals == [c.sum() for c in chunks]

    def test_shuffled_execution_same_values(self):
        rt = ParallelRuntime(num_threads=4, execution_order="shuffled", seed=9)
        chunks = rt.partition(20)
        vals = rt.parallel_for(chunks, lambda c: int(c.sum()))
        assert vals == [int(c.sum()) for c in chunks]

    def test_default_cost_is_chunk_size(self):
        model = CostModel(task_overhead=0.0)
        rt = ParallelRuntime(num_threads=1, cost_model=model)
        rt.parallel_for([np.arange(7)], lambda c: None)
        assert rt.makespan == 7.0

    def test_task_result_cost_used(self):
        model = CostModel(task_overhead=0.0)
        rt = ParallelRuntime(num_threads=1, cost_model=model)
        rt.parallel_for([np.arange(7)], lambda c: TaskResult("x", 99.0))
        assert rt.makespan == 99.0

    def test_ledger_accumulates_phases(self):
        rt = ParallelRuntime(num_threads=2)
        rt.parallel_for([np.arange(4)], lambda c: None, phase="a")
        rt.parallel_for([np.arange(4)], lambda c: None, phase="b")
        assert len(rt.ledger.phases) == 2
        assert rt.ledger.phases[0].name == "a"
        assert rt.makespan == sum(p.makespan for p in rt.ledger.phases)

    def test_new_run_resets(self):
        rt = ParallelRuntime(num_threads=2)
        rt.parallel_for([np.arange(4)], lambda c: None)
        rt.new_run()
        assert rt.makespan == 0.0

    def test_tuple_chunk_cost(self):
        model = CostModel(task_overhead=0.0)
        rt = ParallelRuntime(num_threads=1, cost_model=model)
        rt.parallel_for([(np.arange(3), ["a", "b", "c"])], lambda c: None)
        assert rt.makespan == 3.0


class TestPartition:
    def test_blocked_default(self):
        rt = ParallelRuntime(num_threads=2, grain=2, partitioner="blocked")
        chunks = rt.partition(8)
        assert len(chunks) == 4
        assert chunks[0].tolist() == [0, 1]

    def test_cyclic(self):
        rt = ParallelRuntime(num_threads=2, grain=2, partitioner="cyclic")
        chunks = rt.partition(8)
        assert chunks[0].tolist() == [0, 4]


class TestReduceAndSerial:
    def test_parallel_reduce(self):
        rt = ParallelRuntime(num_threads=3)
        total = rt.parallel_reduce(
            rt.partition(10), lambda c: int(c.sum()), lambda a, b: a + b, 0
        )
        assert total == 45

    def test_serial_phase_adds_makespan(self):
        model = CostModel(task_overhead=0.0, serial_cost_per_phase=0.0)
        rt = ParallelRuntime(num_threads=8, cost_model=model)
        rt.serial_phase(42.0)
        assert rt.makespan == 42.0


class TestScalingBehaviour:
    def test_balanced_work_scales_linearly(self):
        model = CostModel(task_overhead=0.0)
        spans = {}
        for p in (1, 2, 4, 8):
            rt = ParallelRuntime(num_threads=p, grain=4, cost_model=model)
            rt.parallel_for(rt.partition(1 << 12), lambda c: None)
            spans[p] = rt.makespan
        for p in (2, 4, 8):
            assert spans[1] / spans[p] == pytest.approx(p, rel=0.05)

    def test_serial_fraction_caps_speedup(self):
        """Amdahl: with a serial fraction, speedup saturates."""
        model = CostModel(task_overhead=0.0, serial_cost_per_phase=500.0)
        spans = {}
        for p in (1, 64):
            rt = ParallelRuntime(num_threads=p, cost_model=model)
            rt.parallel_for(rt.partition(1000), lambda c: None)
            spans[p] = rt.makespan
        assert spans[1] / spans[64] < 3.0

"""Unit tests for the range adaptors (blocked / cyclic / cyclic-neighbor)."""

import numpy as np
import pytest

from repro.parallel.partition import (
    blocked_range,
    chunk_ids,
    cyclic_neighbor_range,
    cyclic_range,
)
from repro.structures.csr import CSR


class TestBlockedRange:
    def test_covers_all_ids_once(self):
        chunks = blocked_range(10, 3)
        assert sorted(chunk_ids(chunks)) == list(range(10))

    def test_contiguous(self):
        for chunk in blocked_range(100, 7):
            assert np.array_equal(chunk, np.arange(chunk[0], chunk[-1] + 1))

    def test_respects_chunk_count(self):
        assert len(blocked_range(100, 7)) == 7
        assert len(blocked_range(3, 10)) == 3  # never more chunks than ids

    def test_accepts_explicit_ids(self):
        ids = np.array([5, 9, 2, 7])
        chunks = blocked_range(ids, 2)
        assert sorted(chunk_ids(chunks)) == [2, 5, 7, 9]
        # explicit order preserved within blocks
        assert chunks[0].tolist() == [5, 9]

    def test_empty(self):
        assert blocked_range(0, 4) == []

    def test_invalid_num_chunks(self):
        with pytest.raises(ValueError, match="num_chunks"):
            blocked_range(10, 0)


class TestCyclicRange:
    def test_strided_assignment(self):
        chunks = cyclic_range(10, 4)
        assert chunks[0].tolist() == [0, 4, 8]
        assert chunks[1].tolist() == [1, 5, 9]
        assert chunks[3].tolist() == [3, 7]

    def test_covers_all_ids_once(self):
        assert sorted(chunk_ids(cyclic_range(37, 5))) == list(range(37))

    def test_balances_sorted_skew(self):
        """The paper's motivation: under degree-sorted skew, cyclic chunks
        carry near-equal total cost while blocked chunks do not."""
        costs = np.arange(100, 0, -1, dtype=float)  # descending "degrees"
        blocked = [costs[c].sum() for c in blocked_range(100, 4)]
        cyclic = [costs[c].sum() for c in cyclic_range(100, 4)]
        assert max(blocked) / min(blocked) > 2.0
        assert max(cyclic) / min(cyclic) < 1.1

    def test_invalid_stride(self):
        with pytest.raises(ValueError, match="stride"):
            cyclic_range(10, 0)


class TestCyclicNeighborRange:
    def test_pairs_ids_with_neighborhoods(self):
        g = CSR.from_coo(np.array([0, 0, 1]), np.array([1, 2, 0]),
                         num_sources=3, num_targets=3)
        chunks = cyclic_neighbor_range(g, 2)
        ids0, hoods0 = chunks[0]
        assert ids0.tolist() == [0, 2]
        assert hoods0[0].tolist() == [1, 2]
        assert hoods0[1].tolist() == []

    def test_explicit_ids(self):
        g = CSR.from_coo(np.array([0, 1]), np.array([1, 0]))
        chunks = cyclic_neighbor_range(g, 1, ids=np.array([1]))
        assert chunks[0][0].tolist() == [1]
        assert chunks[0][1][0].tolist() == [0]

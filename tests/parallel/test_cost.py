"""Unit tests for the cost model / ledgers."""

import numpy as np
import pytest

from repro.parallel.cost import CostModel, PhaseLedger, RunLedger


def phase(times, name="p", serial=0.0, tasks=None):
    arr = np.asarray(times, dtype=float)
    return PhaseLedger(
        name=name,
        num_threads=arr.size,
        thread_time=arr,
        num_tasks=tasks if tasks is not None else arr.size,
        serial_time=serial,
    )


class TestPhaseLedger:
    def test_makespan_is_max_plus_serial(self):
        p = phase([3.0, 9.0, 1.0], serial=2.0)
        assert p.makespan == 11.0
        assert p.total_work == 15.0

    def test_load_imbalance(self):
        assert phase([2.0, 2.0]).load_imbalance == 1.0
        assert phase([4.0, 0.0]).load_imbalance == 2.0

    def test_empty_phase(self):
        p = phase([])
        assert p.makespan == 0.0
        assert p.load_imbalance == 1.0


class TestRunLedger:
    def test_phases_are_barriers(self):
        run = RunLedger(num_threads=2)
        run.add(phase([5.0, 1.0]))
        run.add(phase([2.0, 2.0]))
        assert run.makespan == 7.0
        assert run.total_work == 10.0
        assert run.num_tasks == 4

    def test_speedup(self):
        base = RunLedger(num_threads=1)
        base.add(phase([100.0]))
        fast = RunLedger(num_threads=4)
        fast.add(phase([25.0, 25.0, 25.0, 25.0]))
        assert fast.speedup_vs(base) == pytest.approx(4.0)

    def test_zero_makespan_speedup(self):
        empty = RunLedger(num_threads=1)
        base = RunLedger(num_threads=1)
        base.add(phase([10.0]))
        assert empty.speedup_vs(base) == float("inf")
        assert empty.speedup_vs(RunLedger(num_threads=1)) == 1.0


class TestTimeline:
    def test_timeline_sums_to_makespan(self):
        run = RunLedger(num_threads=2)
        run.add(phase([5.0, 1.0], name="a"))
        run.add(phase([2.0, 2.0], name="b", serial=1.0))
        tl = run.timeline()
        assert [t[0] for t in tl] == ["a", "b"]
        assert sum(t[1] for t in tl) == run.makespan

    def test_dominant_phase(self):
        run = RunLedger(num_threads=1)
        assert run.dominant_phase() is None
        run.add(phase([1.0], name="small"))
        run.add(phase([9.0], name="big"))
        assert run.dominant_phase() == "big"


class TestCostModel:
    def test_task_cost(self):
        assert CostModel(task_overhead=2.0).task_cost(3.0) == 5.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().task_overhead = 5.0

"""Triangle counting / clustering coefficient tests vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.triangles import (
    clustering_coefficient,
    triangle_count,
    triangles_per_vertex,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_per_vertex_matches_networkx(seed):
    G = nx.gnm_random_graph(50, 160, seed=seed)
    tri = triangles_per_vertex(to_csr(G, 50))
    expect = nx.triangles(G)
    assert tri.tolist() == [expect[v] for v in range(50)]


def test_total_count_complete_graph():
    G = nx.complete_graph(7)
    assert triangle_count(to_csr(G, 7)) == 7 * 6 * 5 // 6


def test_triangle_free():
    G = nx.cycle_graph(10)
    assert triangle_count(to_csr(G, 10)) == 0


@pytest.mark.parametrize("seed", [0, 1])
def test_clustering_matches_networkx(seed):
    G = nx.gnm_random_graph(40, 120, seed=seed)
    cc = clustering_coefficient(to_csr(G, 40))
    expect = nx.clustering(G)
    assert np.allclose(cc, [expect[v] for v in range(40)])


def test_clustering_degree_lt_2_is_zero():
    G = nx.path_graph(3)  # endpoints have degree 1
    cc = clustering_coefficient(to_csr(G, 3))
    assert cc[0] == 0.0 and cc[2] == 0.0


def test_runtime_identical():
    G = nx.gnm_random_graph(30, 90, seed=4)
    g = to_csr(G, 30)
    ref = triangles_per_vertex(g)
    rt = ParallelRuntime(num_threads=4)
    got = triangles_per_vertex(g, runtime=rt)
    assert np.array_equal(ref, got)
    assert rt.makespan > 0


def test_empty():
    assert triangle_count(CSR.empty(0)) == 0
    assert triangles_per_vertex(CSR.empty(5, num_targets=5)).tolist() == [0] * 5

"""BFS tests: all variants against networkx and each other."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.bfs import bfs_bottom_up, bfs_direction_optimizing, bfs_top_down
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR

ALL_BFS = [bfs_top_down, bfs_bottom_up, bfs_direction_optimizing]


def to_csr(G: nx.Graph, n: int) -> CSR:
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@pytest.fixture(params=[0, 1, 2])
def case(request):
    seed = request.param
    G = nx.gnm_random_graph(80, 160, seed=seed)
    return G, to_csr(G, 80)


@pytest.mark.parametrize("fn", ALL_BFS)
def test_distances_match_networkx(case, fn):
    G, g = case
    expect = nx.single_source_shortest_path_length(G, 0)
    dist, parent = fn(g, 0)
    got = {v: int(d) for v, d in enumerate(dist) if d >= 0}
    assert got == expect
    # parents form a valid BFS tree
    for v, d in got.items():
        if v == 0:
            assert parent[v] == 0
        else:
            p = int(parent[v])
            assert dist[p] == d - 1
            assert v in g[p]


@pytest.mark.parametrize("fn", ALL_BFS)
def test_unreachable_marked(fn):
    # two disconnected edges
    g = CSR.from_coo(np.array([0, 1, 2, 3]), np.array([1, 0, 3, 2]))
    dist, parent = fn(g, 0)
    assert dist.tolist() == [0, 1, -1, -1]
    assert parent[2] == -1


@pytest.mark.parametrize("fn", ALL_BFS)
def test_single_vertex(fn):
    g = CSR.empty(1, num_targets=1)
    dist, _ = fn(g, 0)
    assert dist.tolist() == [0]


@pytest.mark.parametrize("fn", ALL_BFS)
def test_with_runtime_same_distances(case, fn):
    G, g = case
    ref, _ = fn(g, 0)
    for order in ("submission", "shuffled"):
        rt = ParallelRuntime(num_threads=4, execution_order=order, seed=5)
        dist, _ = fn(g, 0, runtime=rt)
        assert np.array_equal(dist, ref)
        assert rt.makespan > 0


def test_direction_optimizer_switches_on_dense_graph():
    """On a dense small-diameter graph the optimizer must take a bottom-up
    step (we detect it via phase names in the ledger)."""
    G = nx.complete_graph(64)
    g = to_csr(G, 64)
    rt = ParallelRuntime(num_threads=2)
    bfs_direction_optimizing(g, 0, runtime=rt)
    names = [p.name for p in rt.ledger.phases]
    assert any("bu" in n for n in names), names


def test_star_graph_levels():
    g = CSR.from_coo(
        np.concatenate([np.zeros(5, dtype=np.int64), np.arange(1, 6)]),
        np.concatenate([np.arange(1, 6), np.zeros(5, dtype=np.int64)]),
    )
    for fn in ALL_BFS:
        dist, _ = fn(g, 0)
        assert dist.tolist() == [0, 1, 1, 1, 1, 1]

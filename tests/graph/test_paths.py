"""Distance-metric tests (eccentricity / closeness / harmonic) vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.paths import (
    all_pairs_hop_distance,
    closeness_centrality,
    diameter,
    eccentricity,
    harmonic_closeness_centrality,
)
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@pytest.fixture(params=[0, 1])
def case(request):
    G = nx.gnm_random_graph(50, 70, seed=request.param)  # disconnected
    return G, to_csr(G, 50)


def test_all_pairs_matches_bfs(case):
    G, g = case
    d = all_pairs_hop_distance(g)
    lengths = dict(nx.all_pairs_shortest_path_length(G))
    for u in range(50):
        for v in range(50):
            expect = lengths[u].get(v, -1)
            assert d[u, v] == expect


def test_eccentricity_per_component(case):
    G, g = case
    ecc = eccentricity(g)
    for comp in nx.connected_components(G):
        expect = nx.eccentricity(G.subgraph(comp))
        for v in comp:
            assert ecc[v] == expect[v]


def test_closeness_matches_networkx(case):
    G, g = case
    cl = closeness_centrality(g)
    expect = nx.closeness_centrality(G, wf_improved=True)
    assert np.allclose(cl, [expect[v] for v in range(50)])


def test_harmonic_matches_networkx(case):
    G, g = case
    hc = harmonic_closeness_centrality(g, normalized=False)
    expect = nx.harmonic_centrality(G)
    assert np.allclose(hc, [expect[v] for v in range(50)])


def test_harmonic_normalization_star():
    G = nx.star_graph(9)
    hc = harmonic_closeness_centrality(to_csr(G, 10), normalized=True)
    assert hc[0] == pytest.approx(1.0)


def test_isolated_vertices():
    g = CSR.empty(3, num_targets=3)
    assert eccentricity(g).tolist() == [0, 0, 0]
    assert closeness_centrality(g).tolist() == [0, 0, 0]
    assert harmonic_closeness_centrality(g).tolist() == [0, 0, 0]


def test_diameter():
    G = nx.path_graph(6)
    assert diameter(to_csr(G, 6)) == 5
    assert diameter(CSR.empty(0)) == 0


def test_vertex_subset():
    G = nx.path_graph(5)
    g = to_csr(G, 5)
    sub = eccentricity(g, vertices=np.array([0, 2]))
    assert sub.tolist() == [4.0, 2.0]

"""PageRank tests vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.pagerank import pagerank
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@pytest.mark.parametrize("seed", [0, 1])
def test_matches_networkx(seed):
    G = nx.gnm_random_graph(60, 150, seed=seed)
    pr = pagerank(to_csr(G, 60), tol=1e-12)
    expect = nx.pagerank(G, tol=1e-12, max_iter=1000)
    assert np.allclose(pr, [expect[v] for v in range(60)], atol=1e-8)


def test_dangling_vertices_handled():
    # directed-ish: isolated vertices are dangling
    G = nx.path_graph(4)
    G.add_node(4)  # isolated
    pr = pagerank(to_csr(G, 5), tol=1e-12)
    expect = nx.pagerank(G, tol=1e-12, max_iter=1000)
    assert np.allclose(pr, [expect[v] for v in range(5)], atol=1e-8)
    assert pr.sum() == pytest.approx(1.0)


def test_personalization():
    G = nx.path_graph(5)
    p = np.array([1.0, 0, 0, 0, 0])
    pr = pagerank(to_csr(G, 5), personalization=p, tol=1e-12)
    expect = nx.pagerank(G, personalization={0: 1.0}, tol=1e-12, max_iter=1000)
    assert np.allclose(pr, [expect[v] for v in range(5)], atol=1e-8)
    assert pr[0] > pr[4]


def test_sums_to_one_and_positive():
    G = nx.gnm_random_graph(50, 80, seed=2)
    pr = pagerank(to_csr(G, 50))
    assert pr.sum() == pytest.approx(1.0)
    assert np.all(pr > 0)


def test_validation():
    g = CSR.empty(2, num_targets=2)
    with pytest.raises(ValueError, match="damping"):
        pagerank(g, damping=1.5)
    with pytest.raises(ValueError, match="personalization"):
        pagerank(g, personalization=np.array([1.0]))
    with pytest.raises(RuntimeError, match="converge"):
        pagerank(to_csr(nx.path_graph(10), 10), max_iter=1, tol=1e-15)


def test_empty_graph():
    assert pagerank(CSR.empty(0)).size == 0


def test_runtime_accounted():
    G = nx.cycle_graph(20)
    rt = ParallelRuntime(num_threads=4)
    pr = pagerank(to_csr(G, 20), runtime=rt)
    assert rt.makespan > 0
    assert np.allclose(pr, 1 / 20)

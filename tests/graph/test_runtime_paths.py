"""Runtime-accounted execution of the distance metrics (coverage of the
chunked `_per_vertex` paths that the plain calls bypass)."""

import networkx as nx
import numpy as np

from repro.graph.paths import (
    closeness_centrality,
    eccentricity,
    harmonic_closeness_centrality,
)
from repro.graph.sssp import delta_stepping
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


def test_metrics_identical_under_runtime():
    G = nx.gnm_random_graph(40, 90, seed=6)
    g = to_csr(G, 40)
    for fn in (eccentricity, closeness_centrality,
               harmonic_closeness_centrality):
        plain = fn(g)
        rt = ParallelRuntime(num_threads=4, execution_order="shuffled",
                             seed=2)
        accounted = fn(g, runtime=rt)
        assert np.allclose(plain, accounted), fn.__name__
        assert rt.makespan > 0


def test_delta_stepping_runtime_phases():
    G = nx.gnm_random_graph(40, 90, seed=7)
    g = to_csr(G, 40)
    ref, _ = delta_stepping(g, 0)
    rt = ParallelRuntime(num_threads=4)
    got, _ = delta_stepping(g, 0, runtime=rt)
    finite = np.isfinite(ref)
    assert np.allclose(got[finite], ref[finite])
    assert any("delta_relax" in p.name for p in rt.ledger.phases)


def test_vertex_subset_with_runtime():
    G = nx.path_graph(10)
    g = to_csr(G, 10)
    rt = ParallelRuntime(num_threads=2)
    sub = eccentricity(g, vertices=np.array([0, 5, 9]), runtime=rt)
    assert sub.tolist() == [9.0, 5.0, 9.0]

"""SSSP tests: Dijkstra and delta-stepping vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.sssp import delta_stepping, dijkstra, shortest_path, sssp
from repro.structures.csr import CSR


def weighted_case(seed: int, n: int = 80, m: int = 160):
    rng = np.random.default_rng(seed)
    G = nx.gnm_random_graph(n, m, seed=seed)
    w = rng.uniform(0.5, 5.0, G.number_of_edges())
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    ww = np.concatenate([w, w])
    g = CSR.from_coo(src, dst, ww, num_sources=n, num_targets=n)
    Gw = nx.Graph()
    Gw.add_nodes_from(range(n))
    for (u, v), wt in zip(G.edges(), w):
        Gw.add_edge(u, v, weight=float(wt))
    return Gw, g


@pytest.mark.parametrize("engine", [dijkstra, delta_stepping])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_matches_networkx(engine, seed):
    Gw, g = weighted_case(seed)
    expect = nx.single_source_dijkstra_path_length(Gw, 0)
    dist, parent = engine(g, 0)
    for v in range(g.num_vertices()):
        e = expect.get(v)
        if e is None:
            assert np.isinf(dist[v])
        else:
            assert dist[v] == pytest.approx(e)
    # parent pointers are consistent with distances
    for v in range(g.num_vertices()):
        if np.isfinite(dist[v]) and v != 0:
            p = int(parent[v])
            assert p >= 0
            assert dist[v] >= dist[p]


@pytest.mark.parametrize("engine", [dijkstra, delta_stepping])
def test_unweighted_defaults_to_hops(engine):
    g = CSR.from_coo(np.array([0, 1, 1, 2]), np.array([1, 0, 2, 1]))
    dist, _ = engine(g, 0)
    assert dist.tolist() == [0.0, 1.0, 2.0]


@pytest.mark.parametrize("delta", [0.5, 1.0, 3.0, 100.0])
def test_delta_insensitive_to_bucket_width(delta):
    Gw, g = weighted_case(5)
    ref, _ = dijkstra(g, 0)
    got, _ = delta_stepping(g, 0, delta=delta)
    finite = np.isfinite(ref)
    assert np.allclose(got[finite], ref[finite])
    assert np.all(np.isinf(got[~finite]))


def test_shortest_path_reconstruction():
    g = CSR.from_coo(
        np.array([0, 1, 2, 1, 0, 3]),
        np.array([1, 2, 3, 0, 3, 0]),
        np.array([1.0, 1.0, 1.0, 1.0, 10.0, 10.0]),
    )
    assert shortest_path(g, 0, 3) == [0, 1, 2, 3]


def test_shortest_path_unreachable():
    g = CSR.from_coo(np.array([0]), np.array([1]), num_sources=3,
                     num_targets=3)
    assert shortest_path(g, 0, 2) == []


def test_sssp_dispatch():
    g = CSR.from_coo(np.array([0, 1]), np.array([1, 0]))
    d1, _ = sssp(g, 0, "dijkstra")
    d2, _ = sssp(g, 0, "delta_stepping")
    assert np.array_equal(d1, d2)
    with pytest.raises(ValueError, match="unknown SSSP"):
        sssp(g, 0, "astar")

"""LPA community detection tests."""

import networkx as nx
import numpy as np

from repro.graph.communities import label_propagation_communities
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


def partition(labels: np.ndarray) -> set[frozenset]:
    groups: dict[int, set] = {}
    for v, lab in enumerate(labels.tolist()):
        groups.setdefault(lab, set()).add(v)
    return {frozenset(g) for g in groups.values()}


def test_recovers_disjoint_cliques():
    G = nx.disjoint_union_all([nx.complete_graph(5) for _ in range(4)])
    labels = label_propagation_communities(to_csr(G, 20), seed=0)
    assert partition(labels) == {
        frozenset(range(i * 5, (i + 1) * 5)) for i in range(4)
    }


def test_recovers_caveman_communities():
    G = nx.connected_caveman_graph(8, 6)
    labels = label_propagation_communities(to_csr(G, 48), seed=1)
    parts = partition(labels)
    # cliques are dense; LPA should find ~8 communities of ~6
    assert 4 <= len(parts) <= 12
    assert max(len(p) for p in parts) <= 14


def test_deterministic_given_seed():
    G = nx.gnm_random_graph(60, 150, seed=2)
    g = to_csr(G, 60)
    a = label_propagation_communities(g, seed=7)
    b = label_propagation_communities(g, seed=7)
    assert np.array_equal(a, b)


def test_communities_are_connected():
    """Every LPA community must induce a connected subgraph."""
    G = nx.gnm_random_graph(50, 120, seed=3)
    labels = label_propagation_communities(to_csr(G, 50), seed=3)
    for comm in partition(labels):
        if len(comm) > 1:
            assert nx.is_connected(G.subgraph(comm))


def test_isolated_vertices_singletons():
    g = CSR.empty(3, num_targets=3)
    assert label_propagation_communities(g).tolist() == [0, 1, 2]


def test_labels_are_member_ids():
    G = nx.complete_graph(4)
    labels = label_propagation_communities(to_csr(G, 4), seed=0)
    assert set(np.unique(labels)) <= set(range(4))

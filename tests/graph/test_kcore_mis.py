"""k-core and MIS tests."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.kcore import core_number, k_core_subgraph
from repro.graph.mis import maximal_independent_set
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


class TestCoreNumber:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        G = nx.gnm_random_graph(60, 140, seed=seed)
        cores = core_number(to_csr(G, 60))
        expect = nx.core_number(G)
        assert cores.tolist() == [expect[v] for v in range(60)]

    def test_clique_core(self):
        G = nx.complete_graph(6)
        assert np.all(core_number(to_csr(G, 6)) == 5)

    def test_isolated_zero(self):
        g = CSR.empty(3, num_targets=3)
        assert core_number(g).tolist() == [0, 0, 0]

    def test_k_core_subgraph(self):
        # a triangle plus a pendant
        G = nx.Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert k_core_subgraph(to_csr(G, 4), 2).tolist() == [0, 1, 2]

    def test_runtime(self):
        G = nx.gnm_random_graph(40, 80, seed=3)
        g = to_csr(G, 40)
        ref = core_number(g)
        rt = ParallelRuntime(num_threads=4)
        got = core_number(g, runtime=rt)
        assert np.array_equal(ref, got)
        assert rt.makespan > 0


class TestMIS:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_independent_and_maximal(self, seed):
        G = nx.gnm_random_graph(50, 120, seed=seed)
        g = to_csr(G, 50)
        mis = set(maximal_independent_set(g, seed=seed).tolist())
        # independent
        for u, v in G.edges():
            assert not (u in mis and v in mis)
        # maximal: every vertex outside has a neighbor inside
        for v in range(50):
            if v not in mis:
                assert any(n in mis for n in G.neighbors(v)), v

    def test_deterministic(self):
        G = nx.gnm_random_graph(40, 90, seed=5)
        g = to_csr(G, 40)
        a = maximal_independent_set(g, seed=1)
        b = maximal_independent_set(g, seed=1)
        assert np.array_equal(a, b)

    def test_isolated_vertices_always_in(self):
        g = CSR.empty(4, num_targets=4)
        assert maximal_independent_set(g).tolist() == [0, 1, 2, 3]

    def test_runtime(self):
        G = nx.cycle_graph(30)
        g = to_csr(G, 30)
        rt = ParallelRuntime(num_threads=2)
        mis = maximal_independent_set(g, seed=0, runtime=rt)
        assert mis.size >= 10  # MIS of C30 is >= n/3
        assert rt.makespan > 0

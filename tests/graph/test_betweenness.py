"""Brandes betweenness tests vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.betweenness import betweenness_centrality
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR


def to_csr(G: nx.Graph, n: int) -> CSR:
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("normalized", [True, False])
def test_matches_networkx(seed, normalized):
    G = nx.gnm_random_graph(40, 80, seed=seed)
    bc = betweenness_centrality(to_csr(G, 40), normalized=normalized)
    expect = nx.betweenness_centrality(G, normalized=normalized)
    assert np.allclose(bc, [expect[v] for v in range(40)])


def test_path_graph_center_highest():
    G = nx.path_graph(5)
    bc = betweenness_centrality(to_csr(G, 5), normalized=False)
    assert bc.tolist() == [0.0, 3.0, 4.0, 3.0, 0.0]


def test_star_graph():
    G = nx.star_graph(6)  # 7 vertices, center 0
    bc = betweenness_centrality(to_csr(G, 7), normalized=True)
    assert bc[0] == pytest.approx(1.0)
    assert np.allclose(bc[1:], 0.0)


def test_disconnected_graph():
    G = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
    bc = betweenness_centrality(to_csr(G, 6), normalized=False)
    expect = nx.betweenness_centrality(G, normalized=False)
    assert np.allclose(bc, [expect[v] for v in range(6)])


def test_sampled_sources_scale():
    G = nx.gnm_random_graph(40, 120, seed=3)
    g = to_csr(G, 40)
    exact = betweenness_centrality(g, normalized=False)
    sampled = betweenness_centrality(
        g, normalized=False, sources=np.arange(40)
    )
    assert np.allclose(exact, sampled)  # all sources == exact


def test_runtime_identical_values():
    G = nx.gnm_random_graph(30, 60, seed=7)
    g = to_csr(G, 30)
    ref = betweenness_centrality(g)
    rt = ParallelRuntime(num_threads=4, execution_order="shuffled", seed=2)
    got = betweenness_centrality(g, runtime=rt)
    assert np.allclose(ref, got)
    assert rt.makespan > 0


def test_empty_graph():
    assert betweenness_centrality(CSR.empty(0)).size == 0

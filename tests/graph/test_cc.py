"""Connected-components tests: three engines vs networkx and each other."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.cc import (
    cc_afforest,
    cc_label_propagation,
    cc_shiloach_vishkin,
    compress_labels,
    connected_components,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.csr import CSR

ENGINES = ["label_propagation", "shiloach_vishkin", "afforest"]


def to_csr(G: nx.Graph, n: int) -> CSR:
    if G.number_of_edges() == 0:
        return CSR.empty(n, num_targets=n)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


def partition_of(labels: np.ndarray) -> set[frozenset]:
    groups: dict[int, set] = {}
    for v, lab in enumerate(labels.tolist()):
        groups.setdefault(lab, set()).add(v)
    return {frozenset(g) for g in groups.values()}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_matches_networkx(engine, seed):
    G = nx.gnm_random_graph(100, 130, seed=seed)  # sparse -> many comps
    labels = connected_components(to_csr(G, 100), engine)
    assert partition_of(labels) == {
        frozenset(c) for c in nx.connected_components(G)
    }


@pytest.mark.parametrize("engine", ENGINES)
def test_canonical_min_labels(engine):
    G = nx.gnm_random_graph(60, 50, seed=9)
    labels = connected_components(to_csr(G, 60), engine)
    for v, lab in enumerate(labels.tolist()):
        assert lab <= v  # label is the min ID in the component
        assert labels[lab] == lab


def test_engines_agree_exactly():
    G = nx.gnm_random_graph(120, 150, seed=4)
    g = to_csr(G, 120)
    results = [connected_components(g, e) for e in ENGINES]
    assert all(np.array_equal(results[0], r) for r in results[1:])


@pytest.mark.parametrize("engine", ENGINES)
def test_no_edges(engine):
    labels = connected_components(CSR.empty(5, num_targets=5), engine)
    assert labels.tolist() == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("engine", ENGINES)
def test_single_component(engine):
    G = nx.cycle_graph(30)
    labels = connected_components(to_csr(G, 30), engine)
    assert np.all(labels == 0)


def test_unknown_engine():
    with pytest.raises(ValueError, match="unknown CC"):
        connected_components(CSR.empty(1), "quantum")


@pytest.mark.parametrize("engine", ENGINES)
def test_runtime_does_not_change_labels(engine):
    G = nx.gnm_random_graph(80, 100, seed=2)
    g = to_csr(G, 80)
    ref = connected_components(g, engine)
    rt = ParallelRuntime(num_threads=8, execution_order="shuffled", seed=1)
    got = connected_components(g, engine, runtime=rt)
    assert np.array_equal(ref, got)


def test_afforest_skips_giant_component_work():
    """Afforest's phase 3 should process far fewer vertices than n when a
    giant component dominates."""
    G = nx.connected_watts_strogatz_graph(500, 6, 0.1, seed=1)
    g = to_csr(G, 500)
    rt = ParallelRuntime(num_threads=1)
    cc_afforest(g, runtime=rt)
    finish = [p for p in rt.ledger.phases if p.name == "afforest_finish"]
    sample = [p for p in rt.ledger.phases if p.name.startswith("afforest_sample")]
    assert sample, "sampling phases missing"
    # giant component found by sampling -> finish phase empty or tiny
    finish_work = sum(p.total_work for p in finish)
    assert finish_work < g.num_edges() / 4


def test_compress_labels():
    out = compress_labels(np.array([7, 7, 3, 9, 3]))
    assert out.tolist() == [1, 1, 0, 2, 0]


def test_lp_equals_afforest_on_two_cliques():
    G = nx.disjoint_union(nx.complete_graph(10), nx.complete_graph(10))
    g = to_csr(G, 20)
    assert np.array_equal(cc_label_propagation(g), cc_afforest(g))
    assert np.array_equal(cc_label_propagation(g), cc_shiloach_vishkin(g))

"""Weighted Brandes betweenness tests vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.betweenness import (
    betweenness_centrality,
    betweenness_centrality_weighted,
)
from repro.structures.csr import CSR


def weighted_case(seed: int, n: int = 35, m: int = 80):
    rng = np.random.default_rng(seed)
    G = nx.gnm_random_graph(n, m, seed=seed)
    w = rng.uniform(0.5, 4.0, G.number_of_edges())
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    g = CSR.from_coo(src, dst, np.concatenate([w, w]),
                     num_sources=n, num_targets=n)
    Gw = nx.Graph()
    Gw.add_nodes_from(range(n))
    for (u, v), wt in zip(G.edges(), w):
        Gw.add_edge(u, v, weight=float(wt))
    return g, Gw


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("normalized", [True, False])
def test_matches_networkx(seed, normalized):
    g, Gw = weighted_case(seed)
    ours = betweenness_centrality_weighted(g, normalized=normalized)
    ref = nx.betweenness_centrality(Gw, normalized=normalized,
                                    weight="weight")
    assert np.allclose(ours, [ref[v] for v in range(g.num_vertices())])


def test_unit_weights_reduce_to_unweighted():
    G = nx.gnm_random_graph(30, 70, seed=4)
    src = np.array([u for u, v in G.edges()] + [v for u, v in G.edges()])
    dst = np.array([v for u, v in G.edges()] + [u for u, v in G.edges()])
    ones = np.ones(src.size)
    g = CSR.from_coo(src, dst, ones, num_sources=30, num_targets=30)
    g_plain = CSR.from_coo(src, dst, num_sources=30, num_targets=30)
    assert np.allclose(
        betweenness_centrality_weighted(g),
        betweenness_centrality(g_plain),
    )


def test_weights_change_paths():
    """A heavy direct edge loses to a light two-hop detour."""
    # triangle 0-1-2 with edge (0,2) heavy
    src = np.array([0, 1, 1, 2, 0, 2])
    dst = np.array([1, 0, 2, 1, 2, 0])
    w = np.array([1.0, 1.0, 1.0, 1.0, 10.0, 10.0])
    g = CSR.from_coo(src, dst, w, num_sources=3, num_targets=3)
    bc = betweenness_centrality_weighted(g, normalized=False)
    assert bc[1] == pytest.approx(1.0)  # on the 0->2 shortest path
    unweighted = betweenness_centrality(
        CSR.from_coo(src, dst, num_sources=3, num_targets=3),
        normalized=False,
    )
    assert unweighted[1] == 0.0  # triangle: no strict middleman


def test_disconnected_and_empty():
    g = CSR.empty(4, num_targets=4)
    assert betweenness_centrality_weighted(g).tolist() == [0, 0, 0, 0]


def test_sampled_sources():
    g, Gw = weighted_case(5)
    exact = betweenness_centrality_weighted(g, normalized=False)
    sampled = betweenness_centrality_weighted(
        g, normalized=False, sources=np.arange(g.num_vertices())
    )
    assert np.allclose(exact, sampled)

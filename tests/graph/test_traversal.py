"""Unit tests for the vectorized traversal primitives."""

import numpy as np

from repro.graph.traversal import frontier_edge_count, gather_neighbors, multi_slice
from repro.structures.csr import CSR


def graph() -> CSR:
    return CSR.from_coo(
        np.array([0, 0, 1, 2, 2, 2]),
        np.array([1, 2, 2, 0, 1, 3]),
        num_sources=4, num_targets=4,
    )


class TestMultiSlice:
    def test_basic(self):
        data = np.arange(10) * 10
        out = multi_slice(data, np.array([0, 5]), np.array([2, 3]))
        assert out.tolist() == [0, 10, 50, 60, 70]

    def test_empty_counts(self):
        out = multi_slice(np.arange(5), np.array([1, 3]), np.array([0, 0]))
        assert out.size == 0

    def test_mixed_zero_counts(self):
        out = multi_slice(np.arange(5), np.array([0, 2, 4]), np.array([1, 0, 1]))
        assert out.tolist() == [0, 4]

    def test_no_slices(self):
        assert multi_slice(np.arange(5), np.array([]), np.array([])).size == 0


class TestGatherNeighbors:
    def test_sources_repeat(self):
        src, dst = gather_neighbors(graph(), np.array([0, 2]))
        assert src.tolist() == [0, 0, 2, 2, 2]
        assert dst.tolist() == [1, 2, 0, 1, 3]

    def test_zero_degree_vertex(self):
        src, dst = gather_neighbors(graph(), np.array([3]))
        assert src.size == 0 and dst.size == 0

    def test_empty_frontier(self):
        src, dst = gather_neighbors(graph(), np.array([], dtype=np.int64))
        assert src.size == 0

    def test_matches_explicit_loop(self):
        g = graph()
        frontier = np.array([2, 0])
        src, dst = gather_neighbors(g, frontier)
        expected = [(v, n) for v in frontier for n in g[v]]
        assert list(zip(src.tolist(), dst.tolist())) == expected


class TestFrontierEdgeCount:
    def test_counts_out_degree(self):
        assert frontier_edge_count(graph(), np.array([0, 1])) == 3
        assert frontier_edge_count(graph(), np.array([3])) == 0

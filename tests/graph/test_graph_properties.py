"""Property-based tests over the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bfs import bfs_top_down
from repro.graph.cc import connected_components
from repro.graph.kcore import core_number
from repro.graph.mis import maximal_independent_set
from repro.graph.pagerank import pagerank
from repro.graph.triangles import clustering_coefficient, triangles_per_vertex
from repro.structures.csr import CSR


@st.composite
def sym_graphs(draw, max_n=14):
    """Small symmetric simple CSR graphs."""
    n = draw(st.integers(1, max_n))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    pairs = {(min(a, b), max(a, b)) for a, b in pairs if a != b}
    if not pairs:
        return CSR.empty(n, num_targets=n)
    src = np.array([a for a, b in pairs] + [b for a, b in pairs])
    dst = np.array([b for a, b in pairs] + [a for a, b in pairs])
    return CSR.from_coo(src, dst, num_sources=n, num_targets=n)


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_pagerank_is_a_distribution(g):
    if g.num_vertices() == 0:
        return
    pr = pagerank(g)
    assert pr.sum() == 1.0 or abs(pr.sum() - 1.0) < 1e-9
    assert np.all(pr > 0)


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_core_number_bounded_by_degree(g):
    cores = core_number(g)
    assert np.all(cores <= g.degrees())
    assert np.all(cores >= 0)


@settings(max_examples=50, deadline=None)
@given(sym_graphs(), st.integers(0, 5))
def test_mis_independent_and_maximal(g, seed):
    mis = set(maximal_independent_set(g, seed=seed).tolist())
    for u in range(g.num_vertices()):
        nbrs = set(g[u].tolist())
        if u in mis:
            assert not (nbrs & mis - {u})
        else:
            assert nbrs & mis, u


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_bfs_distance_is_metric_like(g):
    """Triangle inequality along edges: |d(u) - d(v)| <= 1 for edges."""
    dist, _ = bfs_top_down(g, 0)
    src, dst = g.neighborhood_pairs()
    for u, v in zip(src.tolist(), dst.tolist()):
        if dist[u] >= 0 and dist[v] >= 0:
            assert abs(dist[u] - dist[v]) <= 1
        else:
            # one reachable, the other not, yet adjacent -> impossible
            assert dist[u] < 0 and dist[v] < 0 or not (
                (dist[u] < 0) != (dist[v] < 0)
            )


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_cc_labels_constant_on_edges(g):
    labels = connected_components(g)
    src, dst = g.neighborhood_pairs()
    assert np.array_equal(labels[src], labels[dst])


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_clustering_in_unit_interval(g):
    cc = clustering_coefficient(g)
    assert np.all((0.0 <= cc) & (cc <= 1.0))


@settings(max_examples=50, deadline=None)
@given(sym_graphs())
def test_triangle_sum_divisible_by_three(g):
    assert int(triangles_per_vertex(g).sum()) % 3 == 0

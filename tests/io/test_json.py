"""JSON interchange tests."""

import io
import json

import pytest

from repro.core.labeled import LabeledHypergraph
from repro.io.json_io import read_json, write_json


@pytest.fixture
def lh():
    return LabeledHypergraph.from_dict(
        {"p1": ["alice", "bob"], "p2": ["bob", "carol"], "p3": []}
    )


def test_roundtrip(lh):
    buf = io.StringIO()
    write_json(buf, lh)
    buf.seek(0)
    back = read_json(buf)
    assert back.to_dict() == lh.to_dict()


def test_file_roundtrip(tmp_path, lh):
    p = tmp_path / "h.json"
    write_json(p, lh)
    assert read_json(p).to_dict() == lh.to_dict()


def test_document_shape(lh):
    buf = io.StringIO()
    write_json(buf, lh)
    doc = json.loads(buf.getvalue())
    assert doc["format"] == "repro-hypergraph"
    assert doc["version"] == 1
    assert sorted(doc["edges"]) == ["p1", "p2", "p3"]


def test_numeric_node_labels():
    lh = LabeledHypergraph.from_dict({"e": [1, 2.5]})
    buf = io.StringIO()
    write_json(buf, lh)
    buf.seek(0)
    assert read_json(buf).members("e") == [1, 2.5]


def test_rejects_wrong_format():
    with pytest.raises(ValueError, match="format"):
        read_json(io.StringIO('{"format": "other", "version": 1}'))
    with pytest.raises(ValueError, match="version"):
        read_json(io.StringIO('{"format": "repro-hypergraph", "version": 9}'))
    with pytest.raises(ValueError, match="edges"):
        read_json(io.StringIO(
            '{"format": "repro-hypergraph", "version": 1, "edges": []}'
        ))
    with pytest.raises(ValueError, match="members"):
        read_json(io.StringIO(
            '{"format": "repro-hypergraph", "version": 1,'
            ' "edges": {"e": 5}}'
        ))
    with pytest.raises(ValueError, match="object"):
        read_json(io.StringIO("[1, 2]"))


def test_analytics_survive_roundtrip(lh):
    buf = io.StringIO()
    write_json(buf, lh)
    buf.seek(0)
    back = read_json(buf)
    assert back.s_neighbors("p1", s=1) == lh.s_neighbors("p1", s=1)
    assert back.toplexes() == lh.toplexes()

"""Configuration-model null-model tests."""

import numpy as np
import pytest

from repro.io.datasets import load
from repro.io.generators import configuration_model_hypergraph
from repro.structures.biadjacency import BiAdjacency


def test_exact_sequences_preserved():
    rng = np.random.default_rng(0)
    sizes = rng.integers(1, 8, size=60)
    degrees = np.zeros(40, dtype=np.int64)
    # distribute the same total over nodes
    total = int(sizes.sum())
    for _ in range(total):
        degrees[rng.integers(0, 40)] += 1
    el = configuration_model_hypergraph(sizes, degrees, seed=1)
    h = BiAdjacency.from_biedgelist(el)
    assert np.array_equal(h.edge_sizes(), sizes)
    assert np.array_equal(h.node_degrees(), degrees)


def test_no_duplicate_incidences():
    sizes = np.full(30, 4)
    degrees = np.full(40, 3)
    el = configuration_model_hypergraph(sizes, degrees, seed=2)
    assert len(el) == len(el.deduplicate())


def test_deterministic():
    sizes = np.full(10, 3)
    degrees = np.full(15, 2)
    a = configuration_model_hypergraph(sizes, degrees, seed=5)
    b = configuration_model_hypergraph(sizes, degrees, seed=5)
    assert np.array_equal(a.part1, b.part1)


def test_rewiring_randomizes():
    sizes = np.full(40, 5)
    degrees = np.full(50, 4)
    a = configuration_model_hypergraph(sizes, degrees, seed=1)
    b = configuration_model_hypergraph(sizes, degrees, seed=2)
    assert not np.array_equal(a.part1, b.part1)


def test_sum_mismatch_rejected():
    with pytest.raises(ValueError, match="disagree"):
        configuration_model_hypergraph(np.array([3]), np.array([1, 1]))


def test_unrealizable_rejected():
    # a hyperedge of size 3 over a 2-node universe cannot avoid duplicates
    with pytest.raises(ValueError, match="duplicate"):
        configuration_model_hypergraph(
            np.array([3]), np.array([2, 1]), seed=0
        )


def test_validation():
    with pytest.raises(ValueError, match="1-D"):
        configuration_model_hypergraph(np.zeros((2, 2)), np.zeros(4))
    with pytest.raises(ValueError, match="non-negative"):
        configuration_model_hypergraph(np.array([-1]), np.array([-1]))


def test_real_sequences_from_standin():
    h = BiAdjacency.from_biedgelist(load("orkut-group"))
    null = configuration_model_hypergraph(
        h.edge_sizes(), h.node_degrees(), seed=3, swap_factor=1
    )
    hn = BiAdjacency.from_biedgelist(null)
    assert np.array_equal(hn.edge_sizes(), h.edge_sizes())
    assert np.array_equal(hn.node_degrees(), h.node_degrees())

"""AdjacencyHypergraph (Hygra format) I/O tests."""

import io

import numpy as np
import pytest

from repro.io.hygra import read_hygra, write_hygra
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


def roundtrip(el):
    buf = io.StringIO()
    write_hygra(buf, el)
    buf.seek(0)
    return read_hygra(buf)


def test_roundtrip_paper_example(paper_el):
    back = roundtrip(paper_el)
    assert back.vertex_cardinality == paper_el.vertex_cardinality
    assert set(back) == set(paper_el)


def test_roundtrip_random():
    el = random_biedgelist(seed=9)
    back = roundtrip(el)
    h1 = BiAdjacency.from_biedgelist(el)
    h2 = BiAdjacency.from_biedgelist(back)
    assert h1.edges == h2.edges


def test_file_path(tmp_path, paper_el):
    p = tmp_path / "h.hygra"
    write_hygra(p, paper_el)
    assert set(read_hygra(p)) == set(paper_el)


def test_handwritten_small_file():
    # one hypernode in two hyperedges; one hyperedge with two nodes:
    # nodes: v0 -> {e0, e1}, v1 -> {e0}; edges: e0 -> {v0, v1}, e1 -> {v0}
    text = "\n".join(
        ["AdjacencyHypergraph", "2", "3", "2", "3",
         "0", "2",        # node offsets
         "0", "1", "0",   # node adjacency (hyperedges)
         "0", "2",        # edge offsets
         "0", "1", "0"]   # edge adjacency (hypernodes)
    )
    el = read_hygra(io.StringIO(text))
    h = BiAdjacency.from_biedgelist(el)
    assert h.members(0).tolist() == [0, 1]
    assert h.members(1).tolist() == [0]
    assert h.memberships(0).tolist() == [0, 1]


def test_missing_header():
    with pytest.raises(ValueError, match="header"):
        read_hygra(io.StringIO("NotAHypergraph\n1\n"))


def test_truncated():
    with pytest.raises(ValueError, match="truncated"):
        read_hygra(io.StringIO("AdjacencyHypergraph\n1\n2\n"))


def test_count_mismatch():
    with pytest.raises(ValueError, match="disagree"):
        read_hygra(io.StringIO("AdjacencyHypergraph\n1\n2\n1\n3\n" + "0\n" * 7))


def test_body_size_checked():
    with pytest.raises(ValueError, match="expected"):
        read_hygra(io.StringIO("AdjacencyHypergraph\n1\n1\n1\n1\n0\n0\n"))


def test_inconsistent_halves_detected():
    # node side says v0 ∈ e0; edge side puts the incidence in e1
    text = "\n".join(
        ["AdjacencyHypergraph", "1", "1", "2", "1",
         "0",       # node offsets
         "0",       # v0 -> e0
         "0", "0",  # edge offsets: e0 = {}, e1 = {v0}
         "0"]
    )
    with pytest.raises(ValueError):
        read_hygra(io.StringIO(text))


def test_isolated_entities_roundtrip():
    from repro.structures.edgelist import BiEdgeList

    el = BiEdgeList([0], [0], n0=3, n1=4)  # e1, e2 empty; v1..v3 isolated
    back = roundtrip(el)
    assert back.vertex_cardinality == (3, 4)
    assert set(back) == {(0, 0)}

"""MatrixMarket I/O tests: roundtrips, format variants, Listing 2 readers."""

import io

import numpy as np
import pytest

from repro.io.mmio import graph_reader, graph_reader_adjoin, read_mm, write_mm
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

from ..conftest import random_biedgelist


def roundtrip(el: BiEdgeList) -> BiEdgeList:
    buf = io.StringIO()
    write_mm(buf, el)
    buf.seek(0)
    return read_mm(buf)


class TestRoundtrip:
    def test_pattern(self, paper_el):
        back = roundtrip(paper_el)
        assert back.vertex_cardinality == paper_el.vertex_cardinality
        assert set(back) == set(paper_el)
        assert back.weights is None

    def test_weighted(self):
        el = BiEdgeList([0, 1], [1, 0], weights=[2.5, 7.0], n0=2, n1=2)
        back = roundtrip(el)
        assert back.weights.tolist() == [2.5, 7.0]

    def test_file_paths(self, tmp_path, paper_el):
        p = tmp_path / "h.mtx"
        write_mm(p, paper_el)
        back = read_mm(p)
        assert set(back) == set(paper_el)

    def test_random(self):
        el = random_biedgelist(seed=3)
        assert set(roundtrip(el)) == set(el)


class TestFormatHandling:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            read_mm(io.StringIO("1 1 0\n"))

    def test_unsupported_field(self):
        buf = io.StringIO("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(ValueError, match="field"):
            read_mm(buf)

    def test_unsupported_symmetry(self):
        buf = io.StringIO("%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n")
        with pytest.raises(ValueError, match="symmetry"):
            read_mm(buf)

    def test_array_format_rejected(self):
        buf = io.StringIO("%%MatrixMarket matrix array real general\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_mm(buf)

    def test_comments_skipped(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n% another\n"
            "2 3 2\n1 1\n2 3\n"
        )
        el = read_mm(buf)
        assert el.vertex_cardinality == (2, 3)
        assert set(el) == {(0, 0), (1, 2)}

    def test_entry_count_checked(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n"
        )
        with pytest.raises(ValueError, match="expected 3"):
            read_mm(buf)

    def test_symmetric_mirrored(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        el = read_mm(buf)
        assert set(el) == {(1, 0), (0, 1), (2, 2)}

    def test_integer_field(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 4\n"
        )
        el = read_mm(buf)
        assert el.weights.tolist() == [4.0]


class TestListing2Readers:
    def test_graph_reader(self, tmp_path, paper_el):
        p = tmp_path / "h.mtx"
        write_mm(p, paper_el)
        el = graph_reader(p)
        h = BiAdjacency.from_biedgelist(el)
        assert h.vertex_cardinality == (4, 9)

    def test_graph_reader_adjoin(self, tmp_path, paper_el):
        p = tmp_path / "h.mtx"
        write_mm(p, paper_el)
        adjoin_el, nrealedges, nrealnodes = graph_reader_adjoin(p)
        assert (nrealedges, nrealnodes) == (4, 9)
        g = AdjoinGraph.from_edgelist(adjoin_el, nrealedges, nrealnodes)
        ref = AdjoinGraph.from_biedgelist(paper_el)
        assert g.graph == ref.graph

"""Table I stand-in tests: registry, stats, shape fidelity to the paper."""

import pytest

from repro.io.datasets import (
    DATASETS,
    PAPER_TABLE1,
    dataset_stats,
    load,
    skewness,
    table1,
)


def test_registry_covers_table1():
    assert set(DATASETS) == set(PAPER_TABLE1) == {
        "com-orkut", "friendster", "orkut-group", "livejournal", "web",
        "rand1",
    }


def test_load_unknown():
    with pytest.raises(KeyError, match="unknown dataset"):
        load("imaginary")


def test_load_cached_identity():
    assert load("rand1") is load("rand1")


def test_case_insensitive():
    assert load("Rand1") is load("rand1")


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_avg_degrees_within_tolerance(name):
    """Stand-ins land within 2x of the paper's average degrees (usually
    much closer); the point is shape, not absolute size."""
    ours = dataset_stats(name)
    paper = PAPER_TABLE1[name]
    assert 0.5 <= ours.avg_node_degree / paper.avg_node_degree <= 2.0
    assert 0.5 <= ours.avg_edge_size / paper.avg_edge_size <= 2.0


@pytest.mark.parametrize("name", sorted(set(DATASETS) - {"rand1"}))
def test_realworld_standins_are_skewed(name):
    assert skewness(load(name)) > 5.0


def test_rand1_is_uniform():
    assert skewness(load("rand1")) < 1.5


def test_table1_row_order_and_shape():
    rows = table1()
    assert [r.name for r in rows] == list(DATASETS)
    for r in rows:
        assert r.num_nodes > 0 and r.num_edges > 0
        assert len(r.row()) == 7


def test_table1_subset():
    rows = table1(["web", "rand1"])
    assert [r.name for r in rows] == ["web", "rand1"]


def test_vertex_edge_ratio_preserved():
    for name in DATASETS:
        ours = dataset_stats(name)
        paper = PAPER_TABLE1[name]
        ratio_ours = ours.num_nodes / ours.num_edges
        ratio_paper = paper.num_nodes / paper.num_edges
        assert 0.3 < ratio_ours / ratio_paper < 3.0, name

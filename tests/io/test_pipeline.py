"""Dataset-pipeline tests (graph → communities → hypergraph)."""

import networkx as nx
import numpy as np
import pytest

from repro.io.pipeline import (
    communities_to_hypergraph,
    hypergraph_from_graph_communities,
)
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList


class TestCommunitiesToHypergraph:
    def test_basic(self):
        labels = np.array([0, 0, 2, 2, 2, 5])
        el = communities_to_hypergraph(labels)
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 3
        assert h.members(0).tolist() == [0, 1]
        assert h.members(1).tolist() == [2, 3, 4]
        assert h.members(2).tolist() == [5]

    def test_min_size_filter(self):
        labels = np.array([0, 0, 2, 5])
        el = communities_to_hypergraph(labels, min_size=2)
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 1
        assert h.members(0).tolist() == [0, 1]
        # node space preserved even for dropped members
        assert h.num_hypernodes() == 4

    def test_each_vertex_in_at_most_one_edge(self):
        labels = np.array([3, 3, 3, 1, 1, 9])
        h = BiAdjacency.from_biedgelist(communities_to_hypergraph(labels))
        assert np.all(h.node_degrees() <= 1)


class TestFullPipeline:
    def test_caveman_cliques_become_hyperedges(self):
        G = nx.connected_caveman_graph(10, 6)
        src = np.array([u for u, v in G.edges()])
        dst = np.array([v for u, v in G.edges()])
        el = hypergraph_from_graph_communities(
            (src, dst), num_vertices=60, seed=1
        )
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 10
        assert h.edge_sizes().tolist() == [6] * 10

    def test_accepts_edgelist(self):
        el_in = EdgeList([0, 1, 2], [1, 2, 0], num_vertices=4)
        el = hypergraph_from_graph_communities(el_in, min_size=2, seed=0)
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 1
        assert h.members(0).tolist() == [0, 1, 2]

    def test_min_size_drops_singletons(self):
        # a triangle plus two isolated vertices
        el = hypergraph_from_graph_communities(
            EdgeList([0, 1, 2], [1, 2, 0], num_vertices=5), min_size=2
        )
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 1

    def test_deterministic(self):
        G = nx.gnm_random_graph(40, 80, seed=4)
        src = np.array([u for u, v in G.edges()])
        dst = np.array([v for u, v in G.edges()])
        a = hypergraph_from_graph_communities((src, dst), seed=5)
        b = hypergraph_from_graph_communities((src, dst), seed=5)
        assert np.array_equal(a.part0, b.part0)
        assert np.array_equal(a.part1, b.part1)

    @staticmethod
    def _two_cliques_plus_hub(extra: list[tuple[int, int]]) -> EdgeList:
        """Two K5s ({0..4}, {5..9}) plus the given extra edges."""
        src: list[int] = []
        dst: list[int] = []
        for base in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    src.append(base + i)
                    dst.append(base + j)
        for u, v in extra:
            src.append(u)
            dst.append(v)
        return EdgeList(src, dst, num_vertices=10)

    def test_expand_overlap_creates_multi_membership(self):
        """A hub with >= min_links edges into a foreign clique joins it."""
        el_in = self._two_cliques_plus_hub([(0, 5), (0, 6)])
        flat = hypergraph_from_graph_communities(el_in, seed=0)
        h_flat = BiAdjacency.from_biedgelist(flat)
        assert h_flat.num_hyperedges() == 2
        assert np.all(h_flat.node_degrees() <= 1)  # partition
        over = hypergraph_from_graph_communities(
            el_in, seed=0, expand_overlap=True, min_links=2
        )
        h_over = BiAdjacency.from_biedgelist(over)
        assert h_over.node_degrees()[0] == 2  # vertex 0 in both communities
        assert h_over.num_incidences() == h_flat.num_incidences() + 1

    def test_expand_min_links_threshold(self):
        # vertex 0 has only ONE edge into the other clique
        el_in = self._two_cliques_plus_hub([(0, 5)])
        over = hypergraph_from_graph_communities(
            el_in, seed=0, expand_overlap=True, min_links=2
        )
        h = BiAdjacency.from_biedgelist(over)
        assert h.num_hyperedges() == 2
        assert np.all(h.node_degrees() <= 1)

    def test_pipeline_feeds_s_analysis(self):
        """End to end: graph -> hypergraph -> s-line metrics."""
        from repro import NWHypergraph

        G = nx.connected_caveman_graph(6, 5)
        src = np.array([u for u, v in G.edges()])
        dst = np.array([v for u, v in G.edges()])
        el = hypergraph_from_graph_communities((src, dst), seed=2)
        hg = NWHypergraph(el.part0, el.part1,
                          num_edges=el.num_vertices(0),
                          num_nodes=el.num_vertices(1))
        lg = hg.s_linegraph(1)
        assert lg.num_vertices() == hg.number_of_edges()

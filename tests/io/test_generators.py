"""Generator tests: determinism, shape statistics, structured families."""

import numpy as np

from repro.io.generators import (
    community_hypergraph,
    path_hypergraph,
    powerlaw_hypergraph,
    star_hypergraph,
    uniform_random_hypergraph,
)
from repro.linegraph import slinegraph_matrix
from repro.structures.biadjacency import BiAdjacency


class TestDeterminism:
    def test_same_seed_same_output(self):
        for gen in (
            lambda s: uniform_random_hypergraph(50, 80, 5, seed=s),
            lambda s: powerlaw_hypergraph(50, 80, seed=s),
            lambda s: community_hypergraph(30, 100, seed=s),
        ):
            a, b = gen(7), gen(7)
            assert np.array_equal(a.part0, b.part0)
            assert np.array_equal(a.part1, b.part1)

    def test_different_seed_differs(self):
        a = uniform_random_hypergraph(50, 80, 5, seed=1)
        b = uniform_random_hypergraph(50, 80, 5, seed=2)
        assert not (
            np.array_equal(a.part1, b.part1)
        )


class TestUniform:
    def test_exact_edge_sizes(self):
        el = uniform_random_hypergraph(40, 100, 7, seed=0)
        h = BiAdjacency.from_biedgelist(el)
        assert np.all(h.edge_sizes() == 7)

    def test_members_distinct(self):
        el = uniform_random_hypergraph(40, 10, 8, seed=0)
        h = BiAdjacency.from_biedgelist(el)
        for e in range(40):
            mem = h.members(e)
            assert np.unique(mem).size == mem.size

    def test_edge_size_bound(self):
        import pytest

        with pytest.raises(ValueError, match="edge_size"):
            uniform_random_hypergraph(5, 3, 4)

    def test_uniform_degree_distribution(self):
        """Rand1's defining property: Δ_v close to d̄_v."""
        el = uniform_random_hypergraph(2000, 2000, 10, seed=3)
        h = BiAdjacency.from_biedgelist(el)
        deg = h.node_degrees()
        assert deg.max() < 5 * deg.mean()


class TestPowerlaw:
    def test_skewed_both_sides(self):
        el = powerlaw_hypergraph(2000, 1500, mean_edge_size=10, seed=1)
        h = BiAdjacency.from_biedgelist(el)
        assert h.edge_sizes().max() > 5 * h.edge_sizes().mean()
        assert h.node_degrees().max() > 5 * h.node_degrees().mean()

    def test_mean_size_roughly_respected(self):
        el = powerlaw_hypergraph(3000, 50000, mean_edge_size=12, seed=2)
        h = BiAdjacency.from_biedgelist(el)
        assert 0.5 * 12 < h.edge_sizes().mean() < 1.5 * 12

    def test_no_duplicate_incidences(self):
        el = powerlaw_hypergraph(200, 100, seed=5)
        assert len(el) == len(el.deduplicate())


class TestCommunity:
    def test_no_duplicate_incidences(self):
        el = community_hypergraph(100, 500, seed=4)
        assert len(el) == len(el.deduplicate())

    def test_local_overlap_exists(self):
        """Neighboring communities overlap -> the 1-line graph is dense
        enough to be interesting."""
        el = community_hypergraph(100, 200, mean_community_size=8,
                                  locality=1.0, seed=6)
        h = BiAdjacency.from_biedgelist(el)
        lg = slinegraph_matrix(h, 1)
        assert lg.num_edges() > 50


class TestChungLu:
    def test_exact_sequences_respected(self):
        import pytest

        from repro.io.generators import chung_lu_hypergraph

        sizes = np.array([3, 1, 5, 2])
        weights = np.ones(50)
        el = chung_lu_hypergraph(sizes, weights, seed=0)
        h = BiAdjacency.from_biedgelist(el)
        assert h.num_hyperedges() == 4
        # realized sizes <= targets (duplicates collapse)
        assert np.all(h.edge_sizes() <= sizes)

    def test_degree_proportional_to_weights(self):
        from repro.io.generators import chung_lu_hypergraph

        rng = np.random.default_rng(1)
        sizes = rng.integers(2, 8, size=3000)
        weights = np.concatenate([np.full(50, 10.0), np.full(450, 1.0)])
        el = chung_lu_hypergraph(sizes, weights, seed=2)
        h = BiAdjacency.from_biedgelist(el)
        deg = h.node_degrees()
        heavy = deg[:50].mean()
        light = deg[50:].mean()
        assert 5 < heavy / light < 15  # ∝ 10x weights, modulo collapse

    def test_validation(self):
        import pytest

        from repro.io.generators import chung_lu_hypergraph

        with pytest.raises(ValueError, match="1-D"):
            chung_lu_hypergraph(np.zeros((2, 2)), np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            chung_lu_hypergraph(np.array([-1]), np.ones(3))
        with pytest.raises(ValueError, match="node_weights"):
            chung_lu_hypergraph(np.array([2]), np.zeros(3))

    def test_deterministic(self):
        from repro.io.generators import chung_lu_hypergraph

        sizes = np.array([4, 4, 4])
        a = chung_lu_hypergraph(sizes, np.ones(20), seed=9)
        b = chung_lu_hypergraph(sizes, np.ones(20), seed=9)
        assert np.array_equal(a.part1, b.part1)


class TestStructured:
    def test_star_linegraph_is_clique(self):
        el = star_hypergraph(6)
        h = BiAdjacency.from_biedgelist(el)
        lg = slinegraph_matrix(h, 1)
        assert lg.num_edges() == 6 * 5 // 2

    def test_path_linegraph_is_path(self):
        el = path_hypergraph(5, overlap=2, size=4)
        h = BiAdjacency.from_biedgelist(el)
        lg2 = slinegraph_matrix(h, 2)
        pairs = set(zip(lg2.src.tolist(), lg2.dst.tolist()))
        assert pairs == {(0, 1), (1, 2), (2, 3), (3, 4)}
        # above the overlap, empty
        assert slinegraph_matrix(h, 3).num_edges() == 0

    def test_path_validation(self):
        import pytest

        with pytest.raises(ValueError, match="overlap"):
            path_hypergraph(3, overlap=3, size=3)

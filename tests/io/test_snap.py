"""SNAP edge-list reader tests."""

import io

import numpy as np
import pytest

from repro.io.snap import read_snap_edgelist


def test_basic_with_comments():
    text = (
        "# Undirected graph: com-example.ungraph.txt\n"
        "# Nodes: 4 Edges: 3\n"
        "# FromNodeId\tToNodeId\n"
        "1\t2\n"
        "2\t3\n"
        "10\t1\n"
    )
    el = read_snap_edgelist(io.StringIO(text))
    # compact renumbering: {1, 2, 3, 10} -> {0, 1, 2, 3}
    assert el.num_vertices() == 4
    assert set(el) == {(0, 1), (1, 2), (3, 0)}


def test_non_compact_keeps_ids():
    el = read_snap_edgelist(io.StringIO("5 7\n"), compact=False)
    assert el.num_vertices() == 8
    assert set(el) == {(5, 7)}


def test_self_loops_dropped():
    el = read_snap_edgelist(io.StringIO("1 1\n1 2\n"))
    assert set(el) == {(0, 1)}


def test_duplicates_collapse():
    el = read_snap_edgelist(io.StringIO("1 2\n1 2\n1 2\n"))
    assert len(el) == 1


def test_whitespace_flexible():
    el = read_snap_edgelist(io.StringIO("1   2\n3\t4\n"))
    assert len(el) == 2


def test_errors():
    with pytest.raises(ValueError, match="expected"):
        read_snap_edgelist(io.StringIO("1\n"))
    with pytest.raises(ValueError, match="non-integer"):
        read_snap_edgelist(io.StringIO("a b\n"))
    with pytest.raises(ValueError, match="negative"):
        read_snap_edgelist(io.StringIO("-1 2\n"))


def test_empty_file():
    el = read_snap_edgelist(io.StringIO("# nothing\n"))
    assert len(el) == 0
    assert el.num_vertices() == 0


def test_file_path(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("# c\n0 1\n1 2\n")
    el = read_snap_edgelist(p)
    assert len(el) == 2


def test_feeds_pipeline(tmp_path):
    """SNAP file -> pipeline -> hypergraph, end to end (§IV-B)."""
    from repro.io.pipeline import hypergraph_from_graph_communities
    from repro.structures.biadjacency import BiAdjacency

    lines = ["# toy\n"]
    # two K4 cliques {0..3} and {4..7}
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                lines.append(f"{base + i} {base + j}\n")
    p = tmp_path / "snap.txt"
    p.write_text("".join(lines))
    graph = read_snap_edgelist(p)
    el = hypergraph_from_graph_communities(graph, seed=0)
    h = BiAdjacency.from_biedgelist(el)
    assert h.num_hyperedges() == 2
    assert sorted(h.members(0).tolist()) == [0, 1, 2, 3]

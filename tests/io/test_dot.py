"""DOT export tests (text structure; no graphviz needed)."""

import io

from repro.io.dot import bipartite_dot, linegraph_dot
from repro.linegraph import slinegraph_matrix


def test_bipartite_dot_structure(paper_h):
    text = bipartite_dot(paper_h)
    assert text.startswith("graph hypergraph {")
    assert text.rstrip().endswith("}")
    # every entity declared
    for e in range(4):
        assert f"e{e} [shape=box" in text
    for v in range(9):
        assert f"v{v} [shape=circle" in text
    # every incidence present
    assert text.count(" -- ") == paper_h.num_incidences()
    assert "e0 -- v1;" in text


def test_bipartite_dot_to_file(tmp_path, paper_h):
    p = tmp_path / "h.dot"
    bipartite_dot(paper_h, p)
    assert p.read_text().startswith("graph")


def test_linegraph_dot_weights_scale(paper_h):
    el = slinegraph_matrix(paper_h, 1)
    text = linegraph_dot(el, s=1)
    assert "graph slinegraph_s1 {" in text
    # strongest edge (|e0∩e3| = 3) gets the max penwidth
    assert 'e0 -- e3 [label="3", penwidth=4.00];' in text
    # all four hyperedges drawn even when isolated at higher s
    el3 = slinegraph_matrix(paper_h, 3)
    text3 = linegraph_dot(el3, s=3)
    for e in range(4):
        assert f"e{e} [" in text3
    assert text3.count(" -- ") == 1


def test_linegraph_dot_unweighted():
    from repro.structures.edgelist import EdgeList

    el = EdgeList([0], [1], num_vertices=3)
    text = linegraph_dot(el)
    assert "e0 -- e1;" in text
    assert "penwidth" not in text


def test_write_to_stream(paper_h):
    buf = io.StringIO()
    bipartite_dot(paper_h, buf)
    assert buf.getvalue().startswith("graph")

"""Incidence-CSV I/O tests."""

import io

import pytest

from repro.io.csv import read_incidence_csv, write_incidence_csv
from repro.structures.biadjacency import BiAdjacency


def test_integer_table_no_header():
    el, e_labels, v_labels = read_incidence_csv(
        io.StringIO("0,0\n0,1\n1,1\n")
    )
    h = BiAdjacency.from_biedgelist(el)
    assert h.vertex_cardinality == (2, 2)
    assert e_labels == [0, 1]


def test_header_autodetected():
    el, e_labels, v_labels = read_incidence_csv(
        io.StringIO("paper,author\np1,alice\np1,bob\np2,bob\n")
    )
    assert e_labels == ["p1", "p2"]
    assert v_labels == ["alice", "bob"]
    h = BiAdjacency.from_biedgelist(el)
    assert h.members(0).tolist() == [0, 1]


def test_explicit_header_flag():
    # integer-looking first row that IS a header
    el, e_labels, _ = read_incidence_csv(
        io.StringIO("1,2\n0,0\n"), header=True
    )
    assert e_labels == [0]
    assert len(el) == 1


def test_mixed_labels():
    # first row is data, not a header: say so explicitly
    el, e_labels, v_labels = read_incidence_csv(
        io.StringIO("e1,7\ne1,8\n42,7\n"), header=False
    )
    assert e_labels == ["e1", 42]
    assert v_labels == [7, 8]


def test_duplicates_collapse():
    el, *_ = read_incidence_csv(io.StringIO("0,0\n0,0\n"))
    assert len(el) == 1


def test_bad_row():
    with pytest.raises(ValueError, match="2 columns"):
        read_incidence_csv(io.StringIO("0\n"))


def test_empty():
    el, e_labels, v_labels = read_incidence_csv(io.StringIO(""))
    assert len(el) == 0 and e_labels == [] and v_labels == []


def test_roundtrip_with_labels():
    src = "paper,author\np1,alice\np1,bob\np2,bob\n"
    el, e_labels, v_labels = read_incidence_csv(io.StringIO(src))
    buf = io.StringIO()
    write_incidence_csv(buf, el, e_labels, v_labels)
    buf.seek(0)
    el2, e2, v2 = read_incidence_csv(buf)
    assert e2 == e_labels and v2 == v_labels
    assert set(el2) == set(el)


def test_roundtrip_plain_ids(tmp_path):
    from repro.testing import random_hypergraph

    el = random_hypergraph(seed=3)
    p = tmp_path / "inc.csv"
    write_incidence_csv(p, el, header=None)
    el2, *_ = read_incidence_csv(p)
    h1 = BiAdjacency.from_biedgelist(el)
    h2 = BiAdjacency.from_biedgelist(el2)
    # renumbering is first-appearance order; compare as member multisets
    m1 = sorted(tuple(h1.members(e)) for e in range(h1.num_hyperedges()))
    m2 = sorted(tuple(h2.members(e)) for e in range(h2.num_hyperedges()))
    assert len(m1) == len(m2)


def test_tab_delimiter():
    el, *_ = read_incidence_csv(io.StringIO("0\t1\n"), delimiter="\t")
    assert len(el) == 1

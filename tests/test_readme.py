"""Documentation accuracy: the README quickstart must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_block_executes():
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
    assert blocks, "README lost its python quickstart block"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    # the quickstart leaves a 2-line-graph in scope; sanity-check it
    assert "hg" in namespace


def test_architecture_section_matches_package():
    """Every subpackage named in the README architecture block exists."""
    import importlib

    text = README.read_text(encoding="utf-8")
    for name in re.findall(r"^repro\.(\w+)", text, flags=re.M):
        importlib.import_module(f"repro.{name}")


def test_docs_exist():
    docs = README.parent / "docs"
    assert (docs / "API.md").is_file()
    assert (docs / "TUTORIAL.md").is_file()
    assert (README.parent / "DESIGN.md").is_file()
    assert (README.parent / "EXPERIMENTS.md").is_file()

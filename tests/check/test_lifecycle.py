"""R201 resource-lifecycle rule: leaks fire, owners and finally are fine."""

import textwrap

from repro.check import lint_source


def lint(src: str, relpath: str = "src/repro/store/fake.py"):
    report = lint_source(textwrap.dedent(src), relpath, relpath=relpath)
    assert not report.errors, report.errors
    return report


def codes(report, active_only: bool = True):
    pool = report.active if active_only else report.findings
    return [f.rule for f in pool]


class TestR201Leaks:
    def test_unclosed_local_acquisition_fires(self):
        report = lint(
            """\
            def inspect(path):
                slab = SlabFile(path)
                slab.array("indptr")
            """
        )
        assert codes(report) == ["R201"]
        (f,) = report.active
        assert "never closed" in f.message and "SlabFile" in f.message

    def test_happy_path_close_fires(self):
        # close() exists but nothing guards the statements before it
        report = lint(
            """\
            def inspect(path):
                slab = SlabFile(path)
                slab.array("indptr")
                slab.close()
            """
        )
        assert codes(report) == ["R201"]
        assert "happy path" in report.active[0].message

    def test_unclosed_session_container_fires(self):
        report = lint(
            """\
            def fanout(addresses, payload):
                pool = [SocketSession(*a) for a in addresses]
                for s in pool:
                    s.request(payload)
            """
        )
        assert codes(report) == ["R201"]


class TestR201SafePatterns:
    def test_with_statement_manages_the_lifetime(self):
        report = lint(
            """\
            def inspect(path):
                slab = SlabFile(path)
                with slab:
                    slab.array("indptr")
            """
        )
        assert codes(report) == []

    def test_try_finally_close_is_fine(self):
        report = lint(
            """\
            def inspect(path):
                slab = SlabFile(path)
                try:
                    slab.array("indptr")
                finally:
                    slab.close()
            """
        )
        assert codes(report) == []

    def test_close_in_except_handler_counts_as_error_path(self):
        report = lint(
            """\
            def open_or_raise(path):
                wal = WriteAheadLog(path)
                try:
                    return wal
                except OSError:
                    wal.close()
                    raise
            """
        )
        assert codes(report) == []

    def test_return_escape_transfers_ownership(self):
        report = lint(
            """\
            def open_slab(path):
                slab = SlabFile(path)
                return slab
            """
        )
        assert codes(report) == []

    def test_self_attribute_store_transfers_ownership(self):
        report = lint(
            """\
            class Store:
                def open(self, path):
                    slab = SlabFile(path)
                    self._slab = slab
            """
        )
        assert codes(report) == []

    def test_constructor_argument_transfers_ownership(self):
        report = lint(
            """\
            def open_handle(path, manifest):
                slab = SlabFile(path)
                return StoreHandle(manifest, slab)
            """
        )
        assert codes(report) == []

    def test_registry_store_transfers_ownership(self):
        report = lint(
            """\
            _OPEN = {}

            def track(path, key):
                slab = SlabFile(path)
                _OPEN[key] = slab
            """
        )
        assert codes(report) == []

    def test_container_closed_in_finally_loop_is_fine(self):
        report = lint(
            """\
            def fanout(addresses, payload):
                pool = [SocketSession(*a) for a in addresses]
                try:
                    for s in pool:
                        s.request(payload)
                finally:
                    for s in pool:
                        s.close()
            """
        )
        assert codes(report) == []

    def test_untracked_constructors_are_ignored(self):
        report = lint(
            """\
            def build(n):
                items = Counter(n)
                items.update([1, 2])
            """
        )
        assert codes(report) == []

    def test_noqa_suppresses_with_justification(self):
        report = lint(
            """\
            def singleton(path):
                slab = SlabFile(path)  # repro: noqa-R201 — process-lifetime
                slab.array("indptr")
            """
        )
        assert report.active == []
        assert [f.rule for f in report.findings] == ["R201"]
        (supp,) = report.suppressions
        assert supp.used and "process-lifetime" in supp.justification

"""R301–R304 protocol-conformance tree rules over fixture service trees.

Each test materializes a miniature ``src/repro/service`` tree (spec,
engine, both front doors, ``docs/API.md``) in ``tmp_path``, seeds one
kind of drift, and asserts the matching rule flags it — plus a fully
conformant baseline that must stay silent.
"""

import textwrap

from repro.check import conformance_summary, lint_paths, parse_tree

SPEC_PY = """\
SPEC = ProtocolSpec(
    version=2,
    supported=(1, 2),
    legacy=(1.1,),
    ops={"stats": 1, "s_distance": 1, "update": 1.1},
    error_codes=("unknown_op", "internal_error"),
    vertex_ops=(),
)
"""

ENGINE_PY = """\
from .spec import SPEC

_POST_V1_OPS = SPEC.post_v1_ops()


class Engine:
    def _op_stats(self, q):
        return {}

    def _op_s_distance(self, q):
        return {}

    def _op_update(self, q):
        return {}

    def execute(self, op, served):
        if served == 1 and op in _POST_V1_OPS:
            raise QueryError(op, "unknown_op")
        return op
"""

SERVER_PY = """\
from .protocol import dispatch_line


def serve(engine, line):
    try:
        return dispatch_line(engine, line)
    except ValueError:
        return protocol_error("internal_error", "boom")
"""

ASERVER_PY = """\
from .protocol import dispatch_line


async def serve(engine, line):
    return dispatch_line(engine, line)
"""

API_MD = """\
# API

<!-- spec:ops -->

| op | since |
| --- | --- |
| `stats` | 1 |
| `s_distance` | 1 |
| `update` | 1.1 |

<!-- spec:error-codes -->
`unknown_op` `internal_error`
"""

DEFAULTS = {
    "src/repro/service/spec.py": SPEC_PY,
    "src/repro/service/engine.py": ENGINE_PY,
    "src/repro/service/server.py": SERVER_PY,
    "src/repro/service/aserver.py": ASERVER_PY,
    "docs/API.md": API_MD,
}


def make_tree(tmp_path, **overrides):
    files = dict(DEFAULTS)
    for rel, content in overrides.items():
        if content is None:
            files.pop(rel, None)
        else:
            files[rel] = content
    for rel, content in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
    return tmp_path


def conformance(report):
    """Active R3xx findings only (fixtures may trip no other rules)."""
    return [f for f in report.active if f.rule.startswith("R3")]


class TestConformantBaseline:
    def test_fixture_tree_is_silent(self, tmp_path):
        root = make_tree(tmp_path)
        report = lint_paths([str(root)])
        assert report.errors == []
        assert conformance(report) == [], "\n".join(
            f.format() for f in conformance(report)
        )

    def test_summary_rows_all_ok(self, tmp_path):
        root = make_tree(tmp_path)
        tree, errors = parse_tree([str(root)])
        assert errors == []
        rows = conformance_summary(tree)
        assert rows and all(r["status"] == "ok" for r in rows)

    def test_tree_without_spec_module_is_silent(self, tmp_path):
        root = make_tree(tmp_path, **{"src/repro/service/spec.py": None})
        report = lint_paths([str(root)])
        assert conformance(report) == []


class TestR301SurfaceParity:
    def test_orphan_handler_flagged(self, tmp_path):
        engine = ENGINE_PY + (
            "\n\ndef _op_extra(q):\n    return {}\n"
        )
        root = make_tree(
            tmp_path, **{"src/repro/service/engine.py": engine}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R301" and "_op_extra" in f.message for f in findings
        )

    def test_spec_op_without_handler_flagged(self, tmp_path):
        spec = SPEC_PY.replace('"update": 1.1}', '"update": 1.1, "ghost": 2}')
        root = make_tree(tmp_path, **{"src/repro/service/spec.py": spec})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R301" and "'ghost'" in f.message for f in findings
        )

    def test_front_door_divergence_flagged(self, tmp_path):
        # the async door abandons the shared router for a literal table
        # that misses 'update' — both directions of R301 fire
        aserver = """\
        async def serve(engine, op, line):
            handlers = {"stats": 1, "s_distance": 2}
            return handlers.get(op)
        """
        root = make_tree(
            tmp_path, **{"src/repro/service/aserver.py": aserver}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R301" and "update" in f.message for f in findings
        )

    def test_non_literal_spec_field_flagged(self, tmp_path):
        spec = SPEC_PY.replace(
            'ops={"stats": 1, "s_distance": 1, "update": 1.1},',
            "ops=dict(OPS),",
        )
        root = make_tree(tmp_path, **{"src/repro/service/spec.py": spec})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R301" and "not a pure literal" in f.message
            for f in findings
        )

    def test_noqa_on_handler_line_suppresses(self, tmp_path):
        engine = ENGINE_PY + (
            "\n\ndef _op_extra(q):  # repro: noqa-R301 — staged rollout\n"
            "    return {}\n"
        )
        root = make_tree(
            tmp_path, **{"src/repro/service/engine.py": engine}
        )
        report = lint_paths([str(root)])
        assert conformance(report) == []
        assert any(
            f.rule == "R301" and "_op_extra" in f.message
            for f in report.suppressed
        )


class TestR302ErrorCodes:
    def test_non_canonical_code_flagged_at_site(self, tmp_path):
        server = SERVER_PY.replace('"internal_error"', '"weird"')
        # keep internal_error emitted somewhere so only 'weird' drifts
        server += (
            "\n\ndef fallback(op):\n"
            '    return protocol_error("internal_error", "fallback")\n'
        )
        root = make_tree(
            tmp_path, **{"src/repro/service/server.py": server}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R302" and "'weird'" in f.message for f in findings
        )

    def test_dead_canonical_code_flagged(self, tmp_path):
        spec = SPEC_PY.replace(
            '"internal_error"),', '"internal_error", "quota_exceeded"),'
        )
        root = make_tree(tmp_path, **{"src/repro/service/spec.py": spec})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R302"
            and "quota_exceeded" in f.message
            and "never emitted" in f.message
            for f in findings
        )


class TestR303VersionGate:
    def test_derived_gate_is_fine(self, tmp_path):
        root = make_tree(tmp_path)
        findings = conformance(lint_paths([str(root)]))
        assert [f for f in findings if f.rule == "R303"] == []

    def test_literal_gate_mismatch_flagged(self, tmp_path):
        engine = ENGINE_PY.replace(
            "_POST_V1_OPS = SPEC.post_v1_ops()",
            '_POST_V1_OPS = frozenset({"update", "stats"})',
        )
        root = make_tree(
            tmp_path, **{"src/repro/service/engine.py": engine}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R303" and "'stats'" in f.message for f in findings
        )

    def test_missing_gate_flagged(self, tmp_path):
        engine = ENGINE_PY.replace(
            "_POST_V1_OPS = SPEC.post_v1_ops()", "GATE = None"
        ).replace("op in _POST_V1_OPS", "op in ()")
        root = make_tree(
            tmp_path, **{"src/repro/service/engine.py": engine}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R303" and "no _POST_V1_OPS" in f.message
            for f in findings
        )

    def test_unenforced_gate_flagged(self, tmp_path):
        engine = ENGINE_PY.replace("op in _POST_V1_OPS", "op in ()")
        root = make_tree(
            tmp_path, **{"src/repro/service/engine.py": engine}
        )
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R303" and "never enforced" in f.message
            for f in findings
        )


class TestR304DocsDrift:
    def test_missing_marker_flagged(self, tmp_path):
        api = API_MD.replace("<!-- spec:ops -->", "")
        root = make_tree(tmp_path, **{"docs/API.md": api})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R304" and "spec:ops" in f.message for f in findings
        )

    def test_missing_op_row_flagged(self, tmp_path):
        api = API_MD.replace("| `update` | 1.1 |\n", "")
        root = make_tree(tmp_path, **{"docs/API.md": api})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R304" and "'update'" in f.message for f in findings
        )

    def test_since_version_drift_flagged(self, tmp_path):
        api = API_MD.replace("| `update` | 1.1 |", "| `update` | 1 |")
        root = make_tree(tmp_path, **{"docs/API.md": api})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R304" and "drifts from SPEC" in f.message
            for f in findings
        )

    def test_undocumented_extra_rows_flagged(self, tmp_path):
        api = API_MD.replace(
            "| `stats` | 1 |", "| `stats` | 1 |\n| `bogus` | 1 |"
        ).replace("`internal_error`", "`internal_error` `made_up`")
        root = make_tree(tmp_path, **{"docs/API.md": api})
        findings = conformance(lint_paths([str(root)]))
        assert any(
            f.rule == "R304" and "'bogus'" in f.message for f in findings
        )
        assert any(
            f.rule == "R304" and "'made_up'" in f.message for f in findings
        )

    def test_summary_reports_drift(self, tmp_path):
        api = API_MD.replace("| `update` | 1.1 |\n", "")
        root = make_tree(tmp_path, **{"docs/API.md": api})
        tree, _ = parse_tree([str(root)])
        rows = conformance_summary(tree)
        drifted = [r for r in rows if r["status"] != "ok"]
        assert any("op table" in r["surface"] for r in drifted)

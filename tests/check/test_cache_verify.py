"""``SLineGraphCache.debug_verify``: byte accounting stays exact.

Every test drives a real mutation path — cold builds, derives, LRU
eviction, external ``put`` (the dynamic patch path), ``invalidate`` —
and then asserts the recomputed accounting matches the live counters.
"""

import pytest

from repro.core.hypergraph import NWHypergraph
from repro.service import QueryEngine
from repro.service.cache import SLineGraphCache

from ..conftest import PAPER_MEMBERS, make_biedgelist, random_biedgelist


def hg_from(el) -> NWHypergraph:
    return NWHypergraph(
        el.part0, el.part1, el.weights,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


@pytest.fixture
def paper_hg():
    return hg_from(make_biedgelist(PAPER_MEMBERS, num_nodes=9))


def random_hg(seed: int, **kw) -> NWHypergraph:
    return hg_from(random_biedgelist(seed=seed, **kw))


class TestAccountingInvariants:
    def test_fresh_cache_verifies(self):
        SLineGraphCache().debug_verify()

    def test_after_builds_and_derives(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        cache.get_or_build("paper", 2, paper_hg)  # derive
        cache.get_or_build("paper", 1, paper_hg)  # hit
        cache.get_or_build("paper", 1, paper_hg, over_edges=False)
        cache.debug_verify()
        assert len(cache) == 3

    def test_after_eviction_under_tight_budget(self):
        hgs = [random_hg(seed, num_edges=60, num_nodes=40) for seed in range(4)]
        sizes = [
            SLineGraphCache.entry_bytes(hg.s_linegraph(1)) for hg in hgs
        ]
        # room for roughly two entries: insertions must evict
        cache = SLineGraphCache(budget_bytes=int(sum(sizes[:2]) * 1.1))
        for i, hg in enumerate(hgs):
            cache.get_or_build(f"d{i}", 1, hg)
            cache.debug_verify()
        assert cache.stats.evictions > 0

    def test_after_put_replacement(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 2, paper_hg)
        # replace the resident entry with a differently-sized graph
        replacement = paper_hg.s_linegraph(3)
        assert cache.put("paper", 2, True, replacement)
        cache.debug_verify()
        assert cache.lookup("paper", 2) == "hit"

    def test_after_oversized_bypass(self, paper_hg):
        cache = SLineGraphCache(budget_bytes=1)
        cache.get_or_build("paper", 1, paper_hg)
        assert cache.stats.bypasses == 1
        cache.debug_verify()
        assert len(cache) == 0

    def test_after_invalidate_one_and_all(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        other = random_hg(7, num_edges=30, num_nodes=25)
        cache.get_or_build("other", 1, other)
        assert cache.invalidate("paper") == 1
        cache.debug_verify()
        assert cache.invalidate() == 1
        cache.debug_verify()
        assert cache.stats.current_bytes == 0


class TestServicePatchingPath:
    """PR-3's update op delta-patches cached entries; accounting holds."""

    @pytest.fixture
    def engine(self):
        eng = QueryEngine(num_threads=1)
        eng.store.register(
            "paper",
            NWHypergraph.from_hyperedge_lists(PAPER_MEMBERS, num_nodes=9),
        )
        return eng

    def test_verify_after_update_patches_cache(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1, 2]})
        engine.cache.debug_verify()
        resp = engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [{"op": "add_edge", "members": [0, 6, 8]}],
            }
        )
        assert resp["ok"] is True
        engine.cache.debug_verify()

    def test_verify_after_update_then_invalidate(self, engine):
        engine.execute({"op": "warm", "dataset": "paper", "s_values": [1]})
        engine.execute(
            {
                "op": "update",
                "dataset": "paper",
                "ops": [{"op": "remove_edge", "edge": 2}],
            }
        )
        engine.execute({"op": "invalidate", "dataset": "paper"})
        engine.cache.debug_verify()


class TestCorruptionIsCaught:
    def test_stale_size_raises(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        key = cache.keys()[0]
        cache._sizes[key] += 64
        with pytest.raises(AssertionError, match="stale size"):
            cache.debug_verify()

    def test_byte_drift_raises(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        cache.stats.current_bytes += 1
        with pytest.raises(AssertionError, match="current_bytes drift"):
            cache.debug_verify()

    def test_key_mismatch_raises(self, paper_hg):
        cache = SLineGraphCache()
        cache.get_or_build("paper", 1, paper_hg)
        cache._sizes[("ghost", 1, True)] = 0
        with pytest.raises(AssertionError, match="key mismatch"):
            cache.debug_verify()

"""The shipped tree lints clean: ``repro check src`` exits 0.

This is the CI gate — any rule regression on the real sources fails
here first, with the offending findings in the assertion message.
"""

import pathlib

from repro.check import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestTreeIsClean:
    def test_src_has_no_active_findings(self):
        report = lint_paths([str(REPO_ROOT / "src")])
        assert report.errors == []
        assert report.active == [], "\n".join(
            f.format() for f in report.active
        )
        assert report.ok

    def test_all_rules_ran_over_the_tree(self):
        report = lint_paths([str(REPO_ROOT / "src")])
        assert len(report.paths) > 50  # the whole package, not a subset

    def test_cli_exit_code_on_tree(self):
        from repro.cli import main

        assert main(["check", str(REPO_ROOT / "src")]) == 0

    def test_suppressions_are_annotated(self):
        # every suppression in the tree must carry a justification after
        # the noqa code (enforced by convention: "— reason" suffix)
        report = lint_paths([str(REPO_ROOT / "src")])
        assert report.suppressed, "tree should exercise the noqa machinery"

    def test_no_stale_suppressions_in_the_tree(self):
        # a noqa comment that silences nothing is dead weight: drop it
        report = lint_paths([str(REPO_ROOT / "src")])
        assert report.suppressions
        stale = report.stale_suppressions
        assert stale == [], "\n".join(
            f"{s.path}:{s.line}" for s in stale
        )

    def test_protocol_surface_conforms(self):
        # both front doors, the error codes, the version gate, and the
        # docs/API.md tables must all match repro.service.spec.SPEC
        from repro.check import conformance_summary, parse_tree

        tree, errors = parse_tree([str(REPO_ROOT / "src")])
        assert errors == []
        rows = conformance_summary(tree)
        assert len(rows) >= 6  # engine, 2 doors, codes, gate, 2 doc tables
        drifted = [r for r in rows if r["status"] != "ok"]
        assert drifted == [], drifted

    def test_conformance_cli_exit_code_on_tree(self):
        from repro.cli import main

        assert main(
            ["check", str(REPO_ROOT / "src"), "--conformance"]
        ) == 0

"""Race detector: flags seeded racy kernels, silent on stock builders."""

import numpy as np
import pytest

from repro.check import CheckedArray, RaceDetector
from repro.obs import MetricsRegistry
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_MEMBERS, make_biedgelist


def paper_biadjacency() -> BiAdjacency:
    return BiAdjacency.from_biedgelist(
        make_biedgelist(PAPER_MEMBERS, num_nodes=9)
    )


@pytest.fixture
def checked_runtime():
    return ParallelRuntime(num_threads=4, grain=2).checked()


def ids(n):
    return np.arange(n, dtype=np.int64)


class TestSeededRacyKernels:
    def test_write_write_overlap_is_flagged(self, checked_runtime):
        det = checked_runtime.monitor
        out = det.wrap(np.zeros(16, dtype=np.int64), "out")

        def racy(chunk):
            # every task read-modify-writes slot 0: a classic reduction race
            out[0] = out[0] + int(chunk.sum())
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(16)), racy, phase="racy_sum"
        )
        assert any(f.rule == "D001" for f in det.findings)
        (f,) = [f for f in det.findings if f.rule == "D001"][:1]
        assert f.extra["array"] == "out" and f.extra["index"] == 0
        assert len(f.extra["tasks"]) >= 2

    def test_read_write_overlap_is_flagged(self, checked_runtime):
        det = checked_runtime.monitor
        arr = det.wrap(np.zeros(16, dtype=np.int64), "arr")

        def racy(chunk):
            # everyone reads slot 0; the task owning slot 0 writes it
            base = arr[0]
            for i in chunk.tolist():
                arr[i] = base + 1
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(16)), racy, phase="racy_rw"
        )
        assert any(f.rule == "D002" for f in det.findings)

    def test_disjoint_writes_are_clean(self, checked_runtime):
        det = checked_runtime.monitor
        out = det.wrap(np.zeros(16, dtype=np.int64), "out")

        def owner_computes(chunk):
            for i in chunk.tolist():
                out[i] = i * i
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(16)), owner_computes, phase="ok"
        )
        assert det.findings == []

    def test_atomic_updates_are_exempt(self, checked_runtime):
        det = checked_runtime.monitor
        out = det.wrap(np.zeros(4, dtype=np.int64), "out")

        def atomic_sum(chunk):
            out.atomic_add(0, int(chunk.sum()))
            out.atomic_max(1, int(chunk.max()))
            out.atomic_cas(2, 0, 1)
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(16)), atomic_sum, phase="atomics"
        )
        assert det.findings == []
        assert out.array[0] == ids(16).sum()

    def test_slice_and_fancy_index_normalization(self, checked_runtime):
        det = checked_runtime.monitor
        out = det.wrap(np.zeros(8, dtype=np.int64), "out")

        def racy(chunk):
            out[0:2] = 1  # slice overlapping across all tasks
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(8)), racy, phase="slices"
        )
        assert any(f.rule == "D001" for f in det.findings)


class TestStockBuildersStaySilent:
    @pytest.mark.parametrize(
        "name",
        ["hashmap", "intersection", "queue_hashmap", "queue_intersection",
         "ensemble"],
    )
    def test_builder_is_race_free(self, name):
        from repro.linegraph import to_two_graph

        runtime = ParallelRuntime(num_threads=4, grain=2).checked()
        h = paper_biadjacency()
        if name == "ensemble":
            from repro.linegraph.ensemble import slinegraph_ensemble

            slinegraph_ensemble(h, [1, 2], runtime=runtime)
        else:
            to_two_graph(h, 2, algorithm=name, runtime=runtime)
        assert runtime.monitor.findings == []

    def test_queue_builders_report_pushes(self):
        from repro.linegraph import to_two_graph

        runtime = ParallelRuntime(num_threads=4, grain=2).checked()
        to_two_graph(
            paper_biadjacency(), 1, algorithm="queue_intersection",
            runtime=runtime,
        )
        assert runtime.monitor.queue_pushes > 0


class TestActivation:
    def test_off_by_default(self):
        assert ParallelRuntime().monitor is None

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert ParallelRuntime().monitor is not None

    def test_checked_returns_self_for_chaining(self):
        rt = ParallelRuntime(2)
        assert rt.checked() is rt
        assert isinstance(rt.monitor, RaceDetector)

    def test_accesses_outside_tasks_are_ignored(self):
        det = RaceDetector()
        arr = det.wrap(np.zeros(4), "setup")
        arr[0] = 1  # no open task: setup write
        assert det.accesses == 0

    def test_sampling_skips_accesses(self):
        rt = ParallelRuntime(2).checked(RaceDetector(sample_every=1000))
        det = rt.monitor
        arr = det.wrap(np.zeros(8), "arr")

        def body(chunk):
            arr[0] = 1
            return None

        rt.parallel_for(rt.partition(ids(8)), body, phase="sampled")
        assert det.accesses < 8


class TestEmission:
    def test_emit_reports_through_metrics(self, checked_runtime):
        det = checked_runtime.monitor
        out = det.wrap(np.zeros(4, dtype=np.int64), "out")

        def racy(chunk):
            out[0] = int(chunk[0])
            return None

        checked_runtime.parallel_for(
            checked_runtime.partition(ids(8)), racy, phase="emit"
        )
        registry = MetricsRegistry()
        findings = det.emit(metrics=registry)
        assert findings
        assert registry.counter("check.races.findings").value == len(findings)
        assert registry.counter("check.races.phases").value >= 1

    def test_checked_array_is_transparent(self):
        det = RaceDetector()
        arr = det.wrap(np.arange(5, dtype=np.int64), "a")
        assert len(arr) == 5
        assert arr.shape == (5,)
        assert arr.dtype == np.int64
        assert arr[2] == 2
        assert "CheckedArray" in repr(arr)

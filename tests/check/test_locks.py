"""Lock-order monitor: inversion detection, re-entrancy, patching."""

import threading

from repro.check import LockOrderMonitor, patch_threading
from repro.obs import MetricsRegistry


class TestInversionDetection:
    def test_opposite_orders_flag_a_cycle(self):
        mon = LockOrderMonitor()
        a, b = mon.lock("A"), mon.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        findings = mon.inversions()
        assert len(findings) == 1
        (f,) = findings
        assert f.rule == "L001"
        assert set(f.extra["cycle"]) >= {"A", "B"}
        assert f.extra["sites"], "edges should carry acquisition sites"

    def test_consistent_order_is_clean(self):
        mon = LockOrderMonitor()
        a, b, c = mon.lock("A"), mon.lock("B"), mon.lock("C")
        for _ in range(3):
            with a:
                with b:
                    with c:
                        pass
        assert mon.inversions() == []
        assert ("A", "B") in mon.edges()

    def test_three_lock_cycle(self):
        mon = LockOrderMonitor()
        a, b, c = mon.lock("A"), mon.lock("B"), mon.lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        cycles = mon.cycles()
        assert any(len(set(cyc)) == 3 for cyc in cycles)

    def test_rlock_reentrancy_is_not_an_inversion(self):
        mon = LockOrderMonitor()
        r = mon.rlock("R")
        with r:
            with r:
                pass
        assert mon.edges() == {}
        assert mon.inversions() == []

    def test_cross_thread_orders_combine(self):
        mon = LockOrderMonitor()
        a, b = mon.lock("A"), mon.lock("B")
        with a:
            with b:
                pass

        def worker():
            with b:
                with a:
                    pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert len(mon.inversions()) == 1


class TestCheckedLockBehavior:
    def test_acquire_release_protocol(self):
        mon = LockOrderMonitor()
        lock = mon.lock("L")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_nonblocking_failure_records_nothing(self):
        mon = LockOrderMonitor()
        lock = mon.lock("L")
        with lock:
            assert not lock.acquire(blocking=False)
        assert mon.acquisitions == 1

    def test_wrap_names_existing_primitives(self):
        mon = LockOrderMonitor()
        wrapped = mon.wrap(threading.Lock(), "mine")
        with wrapped:
            pass
        assert wrapped.name == "mine"


class TestPatchThreading:
    def test_locks_created_inside_are_checked(self):
        mon = LockOrderMonitor()
        with patch_threading(mon):
            a = threading.Lock()
            b = threading.RLock()
            with a:
                with b:
                    pass
        assert mon.acquisitions == 2
        assert len(mon.edges()) == 1
        # restored afterwards
        assert threading.Lock is not None
        assert not hasattr(threading.Lock(), "_monitor")

    def test_service_engine_under_monitor_is_inversion_free(self):
        mon = LockOrderMonitor()
        with patch_threading(mon):
            from repro.service import InProcessSession, QueryEngine

            engine = QueryEngine()
            client = InProcessSession(engine, strict=False)
            out = client.query("version")
            assert out["ok"]
        assert mon.inversions() == []

    def test_emit_reports_through_metrics(self):
        mon = LockOrderMonitor()
        a, b = mon.lock("A"), mon.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        registry = MetricsRegistry()
        findings = mon.emit(metrics=registry)
        assert len(findings) == 1
        assert registry.counter("check.locks.inversions").value == 1
        assert registry.counter("check.locks.acquires").value == 4

"""R101/R102 async-safety rules: each fires on a fixture and suppresses."""

import textwrap

from repro.check import lint_source


def lint(src: str, relpath: str = "src/repro/service/fake.py"):
    report = lint_source(textwrap.dedent(src), relpath, relpath=relpath)
    assert not report.errors, report.errors
    return report


def codes(report, active_only: bool = True):
    pool = report.active if active_only else report.findings
    return [f.rule for f in pool]


class TestR101BlockingCalls:
    def test_sleep_in_async_def_fires(self):
        report = lint(
            """\
            import time

            async def handle(reader):
                time.sleep(0.1)
            """
        )
        assert codes(report) == ["R101"]
        (f,) = report.active
        assert "time.sleep" in f.message
        assert "in async 'handle'" in f.message

    def test_sleep_reachable_through_sync_helper_fires(self):
        # the call-graph walk: the helper itself is sync, but it runs
        # on the loop because a coroutine calls it directly
        report = lint(
            """\
            import time

            def _backoff():
                time.sleep(0.1)

            async def handle(reader):
                _backoff()
            """
        )
        assert codes(report) == ["R101"]
        (f,) = report.active
        assert "reachable from async 'handle'" in f.message

    def test_method_call_graph_through_self(self):
        report = lint(
            """\
            import time

            class Server:
                def _drain(self):
                    time.sleep(0.5)

                async def stop(self):
                    self._drain()
            """
        )
        assert codes(report) == ["R101"]
        assert "reachable from async 'Server.stop'" in report.active[0].message

    def test_import_alias_is_resolved(self):
        report = lint(
            """\
            from time import sleep as nap

            async def handle():
                nap(1)
            """
        )
        assert codes(report) == ["R101"]
        assert "time.sleep" in report.active[0].message

    def test_function_passed_to_run_in_executor_is_exempt(self):
        # passing a function to the executor creates no call edge —
        # this is exactly the offloading pattern the rule demands
        report = lint(
            """\
            import time

            def _work():
                time.sleep(0.1)

            async def handle(loop):
                await loop.run_in_executor(None, _work)
            """
        )
        assert codes(report) == []

    def test_sync_only_module_is_clean(self):
        report = lint(
            """\
            import time

            def retry():
                time.sleep(0.1)
            """
        )
        assert codes(report) == []

    def test_threaded_session_construction_and_request_fire(self):
        report = lint(
            """\
            from repro.service.session import SocketSession

            async def proxy(addr, payload):
                s = SocketSession(*addr)
                return s.request(payload)
            """
        )
        assert codes(report) == ["R101", "R101"]
        messages = " / ".join(f.message for f in report.active)
        assert "connects synchronously" in messages
        assert ".request(...)" in messages

    def test_pool_shutdown_wait_true_fires(self):
        report = lint(
            """\
            async def drain(pool):
                pool.shutdown(wait=True)
            """
        )
        assert codes(report) == ["R101"]
        assert "joins worker threads" in report.active[0].message

    def test_pool_shutdown_wait_false_is_fine(self):
        report = lint(
            """\
            async def drain(pool):
                pool.shutdown(wait=False)
            """
        )
        assert codes(report) == []

    def test_unbounded_lock_acquire_fires(self):
        report = lint(
            """\
            async def guard(lock):
                lock.acquire()
            """
        )
        assert codes(report) == ["R101"]
        assert "no timeout" in report.active[0].message

    def test_lock_acquire_with_timeout_is_fine(self):
        report = lint(
            """\
            async def guard(lock):
                lock.acquire(timeout=0.5)
            """
        )
        assert codes(report) == []

    def test_subprocess_and_open_fire(self):
        report = lint(
            """\
            import subprocess

            async def snapshot(path):
                subprocess.run(["sync"])
                fh = open(path)
                return fh
            """
        )
        assert sorted(codes(report)) == ["R101", "R101"]

    def test_noqa_suppresses_but_is_recorded(self):
        report = lint(
            """\
            import time

            async def handle():
                time.sleep(0.1)  # repro: noqa-R101 — test fixture delay
            """
        )
        assert report.active == []
        assert [f.rule for f in report.findings] == ["R101"]
        assert report.suppressions and report.suppressions[0].used


class TestR102AwaitUnderLock:
    def test_await_under_self_lock_fires(self):
        report = lint(
            """\
            import asyncio

            class Cache:
                async def get(self, key):
                    with self._lock:
                        await asyncio.sleep(0)
            """
        )
        assert codes(report) == ["R102"]
        assert "holding threading lock" in report.active[0].message

    def test_await_under_bare_lock_name_fires(self):
        report = lint(
            """\
            async def f(lock, coro):
                with lock:
                    await coro
            """
        )
        assert codes(report) == ["R102"]

    def test_async_with_is_the_asyncio_idiom_and_fine(self):
        report = lint(
            """\
            import asyncio

            class Cache:
                async def get(self, key):
                    async with self._lock:
                        await asyncio.sleep(0)
            """
        )
        assert codes(report) == []

    def test_await_after_lock_released_is_fine(self):
        report = lint(
            """\
            import asyncio

            class Cache:
                async def get(self, key):
                    with self._lock:
                        value = key
                    await asyncio.sleep(0)
                    return value
            """
        )
        assert codes(report) == []

    def test_nested_def_inside_lock_is_its_own_context(self):
        report = lint(
            """\
            class Cache:
                async def get(self, key):
                    with self._lock:
                        async def inner():
                            await something()
                    return inner
            """
        )
        assert codes(report) == []

    def test_noqa_suppresses(self):
        report = lint(
            """\
            import asyncio

            class Cache:
                async def get(self, key):
                    with self._lock:
                        await asyncio.sleep(0)  # repro: noqa-R102 — test-only
            """
        )
        assert report.active == []
        assert [f.rule for f in report.findings] == ["R102"]

"""Per-rule unit tests: each rule fires on a fixture and suppresses."""

import textwrap

from repro.check import lint_source


def lint(src: str, relpath: str = "src/repro/fake/module.py"):
    report = lint_source(
        textwrap.dedent(src), relpath, relpath=relpath
    )
    assert not report.errors, report.errors
    return report


def codes(report, active_only: bool = True):
    pool = report.active if active_only else report.findings
    return [f.rule for f in pool]


class TestR001FrozenCSR:
    def test_write_to_indptr_fires(self):
        report = lint("def f(g):\n    g.indptr[0] = 1\n")
        assert codes(report) == ["R001"]
        (f,) = report.active
        assert "indptr" in f.message and f.line == 2

    def test_indices_augmented_assign_fires(self):
        report = lint("def f(g):\n    g.graph.indices[:] += 1\n")
        assert codes(report) == ["R001"]

    def test_reads_are_fine(self):
        report = lint("def f(g):\n    return g.indptr[0] + g.indices[1]\n")
        assert codes(report) == []

    def test_structures_and_dynamic_are_exempt(self):
        src = "def f(g):\n    g.indptr[0] = 1\n"
        for relpath in (
            "src/repro/structures/csr.py",
            "src/repro/dynamic/overlay.py",
        ):
            assert codes(lint(src, relpath)) == []

    def test_noqa_suppresses_but_is_reported(self):
        report = lint(
            "def f(g):\n    g.indptr[0] = 1  # repro: noqa-R001\n"
        )
        assert codes(report) == []
        assert codes(report, active_only=False) == ["R001"]
        assert report.findings[0].suppressed


class TestR002LockDiscipline:
    GUARDED = """
    class C:
        def write(self):
            with self._lock:
                self._x = 1

        def read(self):
            return self._x
    """

    def test_unlocked_read_of_guarded_attr_fires(self):
        report = lint(self.GUARDED)
        assert codes(report) == ["R002"]
        assert report.active[0].extra["attribute"] == "_x"

    def test_locked_access_is_fine(self):
        report = lint("""
        class C:
            def write(self):
                with self._lock:
                    self._x = 1

            def read(self):
                with self._lock:
                    return self._x
        """)
        assert codes(report) == []

    def test_init_does_not_need_the_lock(self):
        report = lint("""
        class C:
            def __init__(self):
                self._x = 0

            def write(self):
                with self._lock:
                    self._x = 1
        """)
        assert codes(report) == []

    def test_closure_under_lock_does_not_count_as_locked(self):
        # a closure defined while the lock is held may run after release
        report = lint("""
        class C:
            def write(self):
                with self._lock:
                    self._x = 1

            def deferred(self):
                with self._lock:
                    def later():
                        return self._x
                    return later
        """)
        assert codes(report) == ["R002"]

    def test_second_with_item_sees_the_lock_held(self):
        # `with self._lock, span(self._x)` evaluates the second item
        # after the first is acquired
        report = lint("""
        class C:
            def write(self):
                with self._lock:
                    self._x = 1

            def traced(self):
                with self._lock, self.span(self._x):
                    pass
        """)
        assert codes(report) == []

    def test_def_line_noqa_covers_the_body(self):
        report = lint("""
        class C:
            def write(self):
                with self._lock:
                    self._x = 1

            def helper(self):  # repro: noqa-R002
                return self._x
        """)
        assert codes(report) == []
        assert any(f.suppressed for f in report.findings)


class TestR003ParallelBodyMutation:
    def test_closure_append_fires(self):
        report = lint("""
        def kernel(runtime, chunks):
            acc = []

            def body(chunk):
                acc.append(chunk)
                return 1

            runtime.parallel_for(chunks, body)
            return acc
        """)
        assert codes(report) == ["R003"]
        assert report.active[0].extra["shared"] == "acc"

    def test_subscript_store_on_closure_fires(self):
        report = lint("""
        def kernel(runtime, chunks, out):
            def body(chunk):
                out[chunk] = 1

            runtime.parallel_for(chunks, body)
        """)
        assert codes(report) == ["R003"]

    def test_lambda_body_fires(self):
        report = lint("""
        def kernel(runtime, chunks, shared):
            runtime.parallel_for(chunks, lambda c: shared.update(c))
        """)
        assert codes(report) == ["R003"]

    def test_param_and_local_mutation_are_fine(self):
        report = lint("""
        def kernel(runtime, chunks):
            def body(chunk):
                chunk[0] = 1
                local = []
                local.append(chunk)
                return local

            runtime.parallel_for(chunks, body)
        """)
        assert codes(report) == []

    def test_unsubmitted_functions_are_ignored(self):
        report = lint("""
        def not_a_body(acc, chunk):
            acc.append(chunk)
        """)
        assert codes(report) == []

    def test_noqa_suppresses(self):
        report = lint("""
        def kernel(runtime, chunks):
            acc = [0]

            def body(chunk):
                acc[0] += 1  # repro: noqa-R003
                return 1

            runtime.parallel_for(chunks, body)
        """)
        assert codes(report) == []


class TestR004BlanketExcept:
    def test_bare_except_fires(self):
        report = lint("""
        def f():
            try:
                risky()
            except:
                pass
        """)
        assert codes(report) == ["R004"]

    def test_blanket_exception_fires(self):
        report = lint("""
        def f():
            try:
                risky()
            except Exception:
                pass
        """)
        assert codes(report) == ["R004"]

    def test_exception_inside_tuple_fires(self):
        report = lint("""
        def f():
            try:
                risky()
            except (ValueError, Exception):
                pass
        """)
        assert codes(report) == ["R004"]

    def test_specific_exceptions_are_fine(self):
        report = lint("""
        def f():
            try:
                risky()
            except (OSError, ValueError):
                pass
        """)
        assert codes(report) == []

    def test_noqa_suppresses(self):
        report = lint("""
        def f():
            try:
                risky()
            except Exception:  # repro: noqa-R004
                pass
        """)
        assert codes(report) == []


class TestR005EntryPointSignature:
    LG = "src/repro/linegraph/fake.py"

    def test_runtime_without_trio_fires_in_linegraph(self):
        report = lint(
            "def build(h, s=1, runtime=None):\n    return h\n", self.LG
        )
        assert codes(report) == ["R005"]
        assert report.active[0].extra["missing"] == ["metrics", "tracer"]

    def test_full_trio_is_fine(self):
        report = lint(
            "def build(h, s=1, runtime=None, tracer=None, metrics=None):\n"
            "    return h\n",
            self.LG,
        )
        assert codes(report) == []

    def test_trio_not_required_outside_entry_scopes(self):
        report = lint(
            "def helper(h, runtime=None):\n    return h\n",
            "src/repro/graph/fake.py",
        )
        assert codes(report) == []

    def test_private_functions_are_exempt(self):
        report = lint(
            "def _impl(h, runtime=None):\n    return h\n", self.LG
        )
        assert codes(report) == []

    def test_deprecated_edges_kwarg_fires_everywhere(self):
        report = lint(
            "def load(path, edges=None):\n    return path\n",
            "src/repro/io/fake.py",
        )
        assert codes(report) == ["R005"]

    def test_positional_edges_data_param_is_fine(self):
        # `edges` as a required data parameter (a CSR) is not the shim
        report = lint(
            "def count(edges, nodes):\n    return len(edges)\n",
            "src/repro/io/fake.py",
        )
        assert codes(report) == []

    def test_def_line_noqa_suppresses(self):
        report = lint(
            "def load(  # repro: noqa-R005\n"
            "    path,\n"
            "    edges=None,\n"
            "):\n"
            "    return path\n",
            "src/repro/io/fake.py",
        )
        assert codes(report) == []


class TestDriver:
    def test_rule_selection(self):
        from repro.check import select_rules

        assert [r.code for r in select_rules(["R004"])] == ["R004"]
        assert len(select_rules(None)) == 12

    def test_unknown_rule_raises(self):
        import pytest

        from repro.check import select_rules

        with pytest.raises(ValueError, match="R999"):
            select_rules(["R999"])

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def f(:\n", "bad.py")
        assert report.errors and not report.ok

    def test_plain_noqa_suppresses_all_rules(self):
        report = lint_source(
            "def f(g):\n    g.indptr[0] = 1  # repro: noqa\n",
            "src/repro/fake.py",
            relpath="src/repro/fake.py",
        )
        assert not report.active and report.findings

"""``repro check`` CLI: exit codes, JSON output, rule selection."""

import json

import pytest

from repro.cli import main

CLEAN = "def f(x):\n    return x + 1\n"

DIRTY = """\
def f():
    try:
        pass
    except:
        pass
"""


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.py"
    p.write_text(CLEAN)
    return str(p)


@pytest.fixture
def dirty_file(tmp_path):
    p = tmp_path / "dirty.py"
    p.write_text(DIRTY)
    return str(p)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, dirty_file, capsys):
        assert main(["check", dirty_file]) == 1
        out = capsys.readouterr().out
        assert "R004" in out and "dirty.py" in out

    def test_unknown_rule_exits_two(self, clean_file, capsys):
        assert main(["check", clean_file, "--rules", "R999"]) == 2
        assert "R999" in capsys.readouterr().err


class TestRuleSelection:
    def test_deselected_rule_does_not_fire(self, dirty_file):
        assert main(["check", dirty_file, "--rules", "R001"]) == 0

    def test_selected_rule_fires(self, dirty_file):
        assert main(["check", dirty_file, "--rules", "R004"]) == 1


class TestJsonFormat:
    def test_json_payload_shape(self, dirty_file, capsys):
        assert main(["check", dirty_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["active"] == 1
        assert payload["counts"]["by_rule"] == {"R004": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "R004"
        assert finding["line"] == 4

    def test_json_clean_tree_ok_true(self, clean_file, capsys):
        assert main(["check", clean_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["findings"] == []


class TestSuppression:
    def test_noqa_suppresses_and_show_suppressed_prints(self, tmp_path, capsys):
        p = tmp_path / "silenced.py"
        p.write_text(
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except:  # repro: noqa-R004\n"
            "        pass\n"
        )
        assert main(["check", str(p)]) == 0
        assert main(["check", str(p), "--show-suppressed"]) == 0
        assert "suppressed" in capsys.readouterr().out


class TestListSuppressions:
    def test_inventory_with_justification(self, tmp_path, capsys):
        p = tmp_path / "silenced.py"
        p.write_text(
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except:  # repro: noqa-R004 — fixture reason\n"
            "        pass\n"
        )
        assert main(["check", str(p), "--list-suppressions"]) == 0
        out = capsys.readouterr().out
        assert "R004" in out and "fixture reason" in out
        assert "[stale]" not in out
        assert "1 suppression(s), 0 stale" in out

    def test_stale_suppression_exits_one(self, tmp_path, capsys):
        p = tmp_path / "stale.py"
        p.write_text("x = 1  # repro: noqa-R004 — nothing here fires\n")
        assert main(["check", str(p), "--list-suppressions"]) == 1
        out = capsys.readouterr().out
        assert "[stale]" in out and "1 stale" in out


class TestConformanceFlag:
    def test_conformance_table_on_tree_without_spec(self, clean_file, capsys):
        # no service/spec.py in the fixture tree: nothing to diff, ok
        assert main(["check", clean_file, "--conformance"]) == 0
        out = capsys.readouterr().out
        assert "no protocol spec" in out

"""The paper's claims about Algorithms 1–2: representation independence.

Queue-based construction must work on (a) the bipartite representation,
(b) the adjoin representation, and (c) arbitrarily permuted ID queues —
none of which the non-queue algorithms support directly (§III-C.3).
"""

import numpy as np
import pytest

from repro.linegraph import (
    slinegraph_matrix,
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist

QUEUE_ALGOS = [slinegraph_queue_hashmap, slinegraph_queue_intersection]


@pytest.fixture(params=[0, 1])
def reps(request):
    el = random_biedgelist(seed=request.param)
    return BiAdjacency.from_biedgelist(el), AdjoinGraph.from_biedgelist(el)


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
@pytest.mark.parametrize("s", [1, 2, 3])
def test_adjoin_equals_bipartite(reps, fn, s):
    h, g = reps
    ref = slinegraph_matrix(h, s)
    assert fn(h, s) == ref
    assert fn(g, s) == ref


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_permuted_queue_same_result(reps, fn):
    """Enqueue order must not matter (IDs 'original or permuted')."""
    h, _ = reps
    ref = slinegraph_matrix(h, 2)
    rng = np.random.default_rng(3)
    shuffled = rng.permutation(h.num_hyperedges())
    assert fn(h, 2, queue_ids=shuffled) == ref


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_subset_queue_restricts_sources(paper_h, fn):
    """A partial queue computes the line-graph rows initiated by those IDs
    (pairs whose smaller endpoint is enqueued)."""
    full = slinegraph_matrix(paper_h, 1)
    got = fn(paper_h, 1, queue_ids=np.array([0]))
    expected = {
        (a, b)
        for a, b in zip(full.src.tolist(), full.dst.tolist())
        if a == 0
    }
    assert set(zip(got.src.tolist(), got.dst.tolist())) == expected


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_rejects_bad_type(fn):
    with pytest.raises(TypeError, match="BiAdjacency or AdjoinGraph"):
        fn(object(), 1)


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_adjoin_with_runtime(reps, fn):
    _, g = reps
    ref = fn(g, 2)
    rt = ParallelRuntime(num_threads=4, partitioner="cyclic")
    assert fn(g, 2, runtime=rt) == ref
    # queue algorithms record enqueue + process phases
    names = {p.name for p in rt.ledger.phases}
    assert any("enqueue" in n for n in names)


def test_two_phase_has_pair_queue_phases(paper_h):
    rt = ParallelRuntime(num_threads=2)
    slinegraph_queue_intersection(paper_h, 2, runtime=rt)
    names = [p.name for p in rt.ledger.phases]
    assert any("enqueue_pairs" in n for n in names)
    assert any("intersect_pairs" in n for n in names)


def test_single_phase_work_matches_hashmap_shape(paper_h):
    """Alg. 1's total work is within a small factor of non-queue hashmap
    (the paper's 'time complexity remains the same' claim)."""
    from repro.linegraph import slinegraph_hashmap

    rt1 = ParallelRuntime(num_threads=1)
    slinegraph_hashmap(paper_h, 2, runtime=rt1)
    rt2 = ParallelRuntime(num_threads=1)
    slinegraph_queue_hashmap(paper_h, 2, runtime=rt2)
    assert rt2.ledger.total_work <= 3 * rt1.ledger.total_work + 50

"""Bitset overlap kernel: dense AND+popcount must equal hashmap counting.

The bitset family is a *performance* alternative, never a semantic one —
every (src, dst, overlap) triple it emits must match the two-hop hashmap
reference on any incidence structure, s threshold, and orientation.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linegraph.bitset import (
    BitsetOverlapKernel,
    bitset_overlap_counts,
    bitset_rows,
    pack_rows,
    popcount_bytes,
)
from repro.linegraph.common import two_hop_pair_counts
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList
from repro.testing import random_hypergraph


@st.composite
def hypergraphs(draw, max_edges=14, max_nodes=12):
    n_e = draw(st.integers(1, max_edges))
    n_v = draw(st.integers(1, max_nodes))
    members = draw(
        st.lists(
            st.sets(st.integers(0, n_v - 1), max_size=n_v),
            min_size=n_e,
            max_size=n_e,
        )
    )
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=n_e, n1=n_v)


def reference_pairs(h, ids, s, upper_only):
    src, dst, cnt, _ = two_hop_pair_counts(
        h.edges, h.nodes, ids, upper_only=upper_only
    )
    keep = cnt >= s
    if not upper_only:
        keep &= src != dst
    return set(zip(src[keep].tolist(), dst[keep].tolist(),
                   cnt[keep].tolist()))


def bitset_pairs(h, ids, s, upper_only):
    src, dst, cnt, stats, work = bitset_rows(
        h.edges, ids, s, upper_only=upper_only
    )
    assert work > 0 or ids.size == 0
    assert "bitset" in stats
    return set(zip(src.tolist(), dst.tolist(), cnt.tolist()))


class TestPacking:
    def test_popcount_bytes(self):
        arr = np.arange(256, dtype=np.uint8).reshape(256, 1)
        expected = np.array([bin(i).count("1") for i in range(256)])
        np.testing.assert_array_equal(popcount_bytes(arr), expected)

    def test_pack_rows_bit_layout(self):
        h = BiAdjacency.from_biedgelist(
            random_hypergraph(seed=1, num_edges=10, num_nodes=70)
        )
        ids = np.arange(10, dtype=np.int64)
        packed = pack_rows(h.edges, ids, h.edges.num_targets())
        # words per row: ceil(70/64) = 2 -> 16 bytes
        assert packed.shape == (10, 16)
        for i in range(10):
            members = h.edges.indices[
                h.edges.indptr[i]:h.edges.indptr[i + 1]
            ]
            bits = np.unpackbits(packed[i], bitorder="little")
            np.testing.assert_array_equal(
                np.flatnonzero(bits), np.sort(members)
            )

    def test_overlap_counts_small(self):
        h = BiAdjacency.from_biedgelist(
            BiEdgeList([0, 0, 0, 1, 1, 2], [0, 1, 2, 1, 2, 5],
                       n0=3, n1=70)
        )
        ids = np.arange(3, dtype=np.int64)
        packed = pack_rows(h.edges, ids, 70)
        counts = bitset_overlap_counts(packed[0], packed)
        np.testing.assert_array_equal(counts, [3, 2, 0])


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(el=hypergraphs(), s=st.integers(1, 4),
           upper_only=st.booleans())
    def test_matches_hashmap_reference(self, el, s, upper_only):
        h = BiAdjacency.from_biedgelist(el)
        sizes = h.edge_sizes()
        ids = np.flatnonzero(sizes >= s).astype(np.int64)
        assert bitset_pairs(h, ids, s, upper_only) == reference_pairs(
            h, ids, s, upper_only
        )

    def test_chunk_split_invariant(self):
        """Row results don't depend on how the frontier was chunked."""
        h = BiAdjacency.from_biedgelist(
            random_hypergraph(seed=5, num_edges=40, num_nodes=30)
        )
        ids = np.arange(40, dtype=np.int64)
        whole = bitset_pairs(h, ids, 2, True)
        split = set()
        for part in np.array_split(ids, 7):
            split |= bitset_pairs(h, part, 2, True)
        assert whole == split


class TestKernel:
    def test_pickle_round_trip(self):
        h = BiAdjacency.from_biedgelist(
            random_hypergraph(seed=2, num_edges=20, num_nodes=25)
        )
        k = BitsetOverlapKernel(h.edges, 2)
        k2 = pickle.loads(pickle.dumps(k))
        ids = np.arange(20, dtype=np.int64)
        a = k(ids)
        b = k2(ids)
        np.testing.assert_array_equal(a.value[0], b.value[0])
        np.testing.assert_array_equal(a.value[2], b.value[2])
        assert a.work == b.work > 0

    def test_stats_channel(self):
        h = BiAdjacency.from_biedgelist(
            random_hypergraph(seed=2, num_edges=20, num_nodes=25)
        )
        res = BitsetOverlapKernel(h.edges, 1)(np.arange(20, dtype=np.int64))
        src, dst, cnt, stats = res.value
        trio = stats["bitset"]
        assert trio["tasks"] == 1
        assert trio["rows"] > 0
        assert trio["candidates"] >= trio["emitted"] == src.size

    def test_empty_chunk(self):
        h = BiAdjacency.from_biedgelist(
            random_hypergraph(seed=2, num_edges=20, num_nodes=25)
        )
        res = BitsetOverlapKernel(h.edges, 2)(np.empty(0, dtype=np.int64))
        assert res.value[0].size == 0

"""Weighted s-line construction tests (hashmap vs matrix oracle)."""

import numpy as np
import pytest

from repro.linegraph import slinegraph_hashmap, slinegraph_matrix
from repro.linegraph.common import two_hop_pair_weighted
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList


def weighted_h(seed: int = 0, ne: int = 25, nv: int = 20):
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for e in range(ne):
        mem = rng.choice(nv, size=rng.integers(1, 6), replace=False)
        rows += [e] * len(mem)
        cols += mem.tolist()
    w = rng.uniform(0.5, 4.0, len(rows))
    return BiAdjacency.from_biedgelist(BiEdgeList(rows, cols, w, n0=ne, n1=nv))


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("s", [1, 2, 3])
def test_hashmap_matches_matrix_oracle(seed, s):
    h = weighted_h(seed)
    a = slinegraph_hashmap(h, s, weighted=True)
    b = slinegraph_matrix(h, s, weighted=True)
    assert a.src.tolist() == b.src.tolist()
    assert a.dst.tolist() == b.dst.tolist()
    assert np.allclose(a.weights, b.weights)


def test_same_edge_set_as_unweighted():
    """Weights change the edge *values*, never the edge *set* (the s
    threshold stays on set overlap)."""
    h = weighted_h(3)
    for s in (1, 2):
        w = slinegraph_hashmap(h, s, weighted=True)
        u = slinegraph_hashmap(h, s, weighted=False)
        assert w.src.tolist() == u.src.tolist()
        assert w.dst.tolist() == u.dst.tolist()


def test_weighted_values_by_hand():
    # e0 = {0:2.0, 1:3.0}, e1 = {0:4.0, 2:5.0}: shared node 0 -> 2*4 = 8
    h = BiAdjacency.from_biedgelist(
        BiEdgeList([0, 0, 1, 1], [0, 1, 0, 2], [2.0, 3.0, 4.0, 5.0])
    )
    el = slinegraph_hashmap(h, 1, weighted=True)
    assert el.src.tolist() == [0] and el.dst.tolist() == [1]
    assert el.weights.tolist() == [8.0]


def test_requires_weights():
    h = BiAdjacency.from_biedgelist(BiEdgeList([0, 1], [0, 0]))
    with pytest.raises(ValueError, match="weighted"):
        two_hop_pair_weighted(h.edges, h.nodes, np.array([0, 1]))


def test_unit_weights_reduce_to_counts():
    rng = np.random.default_rng(5)
    rows, cols = [], []
    for e in range(20):
        mem = rng.choice(15, size=rng.integers(1, 5), replace=False)
        rows += [e] * len(mem)
        cols += mem.tolist()
    ones = np.ones(len(rows))
    h = BiAdjacency.from_biedgelist(BiEdgeList(rows, cols, ones))
    w = slinegraph_hashmap(h, 2, weighted=True)
    u = slinegraph_hashmap(h, 2, weighted=False)
    assert np.allclose(w.weights, u.weights)


def test_empty_ids():
    h = weighted_h(7)
    src, dst, cnt, wgt = two_hop_pair_weighted(
        h.edges, h.nodes, np.array([], dtype=np.int64)
    )
    assert src.size == dst.size == cnt.size == wgt.size == 0

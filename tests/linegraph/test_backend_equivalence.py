"""Property: every execution backend computes the same answers, bit for bit.

The determinism contract (docs/PARALLEL.md) says backend choice changes
wall-clock time and nothing else: s-line graphs, CC labels, and the
simulated cost ledger must be identical whether chunk bodies run on the
serial simulated loop, a thread pool, or a process pool.  Hypothesis
drives random hypergraphs through all three.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.hypercc import hypercc
from repro.linegraph import to_two_graph
from repro.parallel import ProcessBackend, SimulatedBackend, ThreadedBackend
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList


@pytest.fixture(scope="module")
def pools():
    """One persistent pool per backend, shared across examples."""
    backends = {
        "simulated": SimulatedBackend(),
        "threaded": ThreadedBackend(2),
        "process": ProcessBackend(2),
    }
    yield backends
    for be in backends.values():
        be.close()


@st.composite
def hypergraphs(draw, max_edges=12, max_nodes=10):
    n_e = draw(st.integers(1, max_edges))
    n_v = draw(st.integers(1, max_nodes))
    members = draw(
        st.lists(
            st.sets(st.integers(0, n_v - 1), max_size=n_v),
            min_size=n_e,
            max_size=n_e,
        )
    )
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=n_e, n1=n_v)


@settings(max_examples=25, deadline=None)
@given(el=hypergraphs(), s=st.integers(1, 3))
def test_slinegraph_and_cc_bit_identical(pools, el, s):
    h = BiAdjacency.from_biedgelist(el)
    graphs = {}
    edge_labels = {}
    node_labels = {}
    makespans = {}
    for name, be in pools.items():
        with ParallelRuntime(
            num_threads=4, partitioner="cyclic", grain=2, backend=be
        ) as rt:
            graphs[name] = to_two_graph(h, s, "hashmap", runtime=rt)
            elabels, nlabels = hypercc(h, runtime=rt)
            edge_labels[name] = elabels
            node_labels[name] = nlabels
            makespans[name] = rt.makespan
    for name in ("threaded", "process"):
        assert graphs[name] == graphs["simulated"], name
        np.testing.assert_array_equal(
            edge_labels[name], edge_labels["simulated"]
        )
        np.testing.assert_array_equal(
            node_labels[name], node_labels["simulated"]
        )
        assert makespans[name] == makespans["simulated"], name


@settings(max_examples=15, deadline=None)
@given(
    el=hypergraphs(),
    s=st.integers(1, 3),
    kernel=st.sampled_from(("auto", "naive", "hashmap", "intersection",
                            "bitset")),
)
def test_forced_kernels_bit_identical_across_backends(pools, el, s, kernel):
    """Any kernel family, any backend: same graph, same simulated ledger."""
    h = BiAdjacency.from_biedgelist(el)
    base = to_two_graph(h, s, "hashmap")
    makespans = {}
    for name, be in pools.items():
        with ParallelRuntime(
            num_threads=4, partitioner="cyclic", grain=2, backend=be
        ) as rt:
            got = to_two_graph(h, s, "hashmap", runtime=rt, kernel=kernel)
            makespans[name] = rt.makespan
        assert got == base, (kernel, name)
    assert makespans["threaded"] == makespans["simulated"]
    assert makespans["process"] == makespans["simulated"]


@settings(max_examples=10, deadline=None)
@given(el=hypergraphs(), s=st.integers(1, 3))
def test_compressed_csr_transport_bit_identical(pools, el, s):
    """Kernels fed CompressedCSR inputs decode to the exact same graph.

    The compressed column crosses each backend differently (inline
    decode on simulated/threaded, shm bytes + worker-side decode on
    process); the results must not care.
    """
    from repro.linegraph.common import finalize_edges
    from repro.linegraph.kernels import HashmapCountKernel

    h = BiAdjacency.from_biedgelist(el)
    base = to_two_graph(h, s, "hashmap")
    ce, cn = h.edges.compress(), h.nodes.compress()
    eligible = np.flatnonzero(h.edge_sizes() >= s).astype(np.int64)
    n = h.num_hyperedges()
    for name, be in pools.items():
        with ParallelRuntime(
            num_threads=4, partitioner="cyclic", grain=2, backend=be
        ) as rt:
            rt.new_run()
            with rt.share(ce, cn) as (se, sn):
                body = HashmapCountKernel(se, sn, s)
                parts = rt.parallel_for(
                    rt.partition(eligible), body, pure=True
                )
        if parts:
            src = np.concatenate([p[0] for p in parts])
            dst = np.concatenate([p[1] for p in parts])
            cnt = np.concatenate([p[2] for p in parts])
            got = finalize_edges(src, dst, cnt, n)
        else:
            from repro.linegraph.common import empty_linegraph

            got = empty_linegraph(n)
        assert got == base, name


@settings(max_examples=10, deadline=None)
@given(el=hypergraphs())
def test_queue_algorithms_bit_identical(pools, el):
    """The queue-based constructions (Algs. 1-2) under real backends."""
    h = BiAdjacency.from_biedgelist(el)
    for algorithm in ("queue_hashmap", "queue_intersection"):
        base = None
        for name, be in pools.items():
            with ParallelRuntime(
                num_threads=4, partitioner="cyclic", grain=2, backend=be
            ) as rt:
                got = to_two_graph(h, 2, algorithm, runtime=rt)
            if base is None:
                base = got
            else:
                assert got == base, (algorithm, name)

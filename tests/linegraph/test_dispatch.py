"""Degree-bucketed kernel dispatch: policy is deterministic, outputs exact.

The dispatcher may pick any kernel family per bucket; the contract is
that the choice is a pure function of incidence structure + s + policy
(never backend or timing) and that every choice produces the identical
line graph.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linegraph import ALGORITHMS, to_two_graph
from repro.linegraph.dispatch import (
    KERNEL_NAMES,
    AdaptiveKernel,
    DispatchPolicy,
    adaptive_rows,
    bucketize,
    make_count_kernel,
)
from repro.obs import MetricsRegistry
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList
from repro.testing import random_hypergraph

DISPATCHED = sorted(
    set(ALGORITHMS) - {"matrix", "naive", "threaded", "queue_intersection"}
)


def make_h(seed: int = 7, num_edges: int = 24, num_nodes: int = 32):
    return BiAdjacency.from_biedgelist(
        random_hypergraph(
            seed=seed, num_edges=num_edges, num_nodes=num_nodes
        )
    )


def edge_tuple(g) -> tuple:
    return (
        g.src.tolist(),
        g.dst.tolist(),
        None if g.weights is None else g.weights.tolist(),
    )


@st.composite
def hypergraphs(draw, max_edges=14, max_nodes=12):
    n_e = draw(st.integers(1, max_edges))
    n_v = draw(st.integers(1, max_nodes))
    members = draw(
        st.lists(
            st.sets(st.integers(0, n_v - 1), max_size=n_v),
            min_size=n_e,
            max_size=n_e,
        )
    )
    rows = [e for e, mem in enumerate(members) for _ in mem]
    cols = [v for mem in members for v in mem]
    return BiEdgeList(rows, cols, n0=n_e, n1=n_v)


class TestBucketize:
    def test_partitions_live_rows_exactly_once(self):
        h = make_h()
        chunk = np.arange(h.num_hyperedges(), dtype=np.int64)
        s = 2
        buckets = bucketize(h.edges, h.nodes, chunk, s)
        got = np.sort(np.concatenate([ids for _, ids in buckets]))
        live = chunk[h.edge_sizes() >= s]
        np.testing.assert_array_equal(got, np.sort(live))

    def test_small_graph_goes_naive(self):
        h = make_h(num_edges=6, num_nodes=8)
        chunk = np.arange(6, dtype=np.int64)
        buckets = bucketize(h.edges, h.nodes, chunk, 1)
        assert [name for name, _ in buckets] == ["naive"]

    def test_drops_sub_s_rows(self):
        el = BiEdgeList(
            [0, 1, 1, 2, 2, 2] + list(range(3, 12)),
            [0, 0, 1, 0, 1, 2] + [0] * 9,
            n0=12, n1=3,
        )
        h = BiAdjacency.from_biedgelist(el)
        buckets = bucketize(
            h.edges, h.nodes, np.arange(12, dtype=np.int64), 2
        )
        kept = np.concatenate([ids for _, ids in buckets])
        assert set(kept.tolist()) == {1, 2}

    def test_deterministic(self):
        h = make_h(seed=3)
        chunk = np.arange(h.num_hyperedges(), dtype=np.int64)
        a = bucketize(h.edges, h.nodes, chunk, 2)
        b = bucketize(h.edges, h.nodes, chunk, 2)
        assert [n for n, _ in a] == [n for n, _ in b]
        for (_, x), (_, y) in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_intersect_min_s_knob(self):
        h = make_h(seed=4, num_edges=30)
        chunk = np.arange(30, dtype=np.int64)
        policy = DispatchPolicy(intersect_min_s=2)
        names = {
            n for n, _ in bucketize(h.edges, h.nodes, chunk, 3, policy)
        }
        assert "intersection" in names and "hashmap" not in names


class TestForcedKernels:
    @settings(max_examples=20, deadline=None)
    @given(
        el=hypergraphs(),
        s=st.integers(1, 3),
        kernel=st.sampled_from(KERNEL_NAMES),
    )
    def test_every_kernel_bit_identical(self, el, s, kernel):
        h = BiAdjacency.from_biedgelist(el)
        base = to_two_graph(h, s, algorithm="hashmap")
        got = to_two_graph(h, s, algorithm="hashmap", kernel=kernel)
        assert edge_tuple(got) == edge_tuple(base), kernel

    @pytest.mark.parametrize("algorithm", DISPATCHED)
    @pytest.mark.parametrize("kernel", sorted(KERNEL_NAMES))
    def test_builders_accept_kernel(self, algorithm, kernel):
        h = make_h()
        base = to_two_graph(h, 2, algorithm=algorithm)
        got = to_two_graph(h, 2, algorithm=algorithm, kernel=kernel)
        assert edge_tuple(got) == edge_tuple(base), (algorithm, kernel)

    def test_queue_intersection_rejects_foreign_kernels(self):
        h = make_h()
        with pytest.raises(ValueError, match="queue_intersection"):
            to_two_graph(
                h, 2, algorithm="queue_intersection", kernel="bitset"
            )
        got = to_two_graph(
            h, 2, algorithm="queue_intersection", kernel="intersection"
        )
        base = to_two_graph(h, 2, algorithm="queue_intersection")
        assert edge_tuple(got) == edge_tuple(base)

    def test_undispatched_algorithms_reject_kernel(self):
        h = make_h()
        for algorithm in ("matrix", "naive"):
            with pytest.raises(ValueError, match="kernel"):
                to_two_graph(h, 2, algorithm=algorithm, kernel="auto")

    def test_unknown_kernel_rejected(self):
        h = make_h()
        with pytest.raises(ValueError, match="unknown kernel"):
            make_count_kernel("turbo", h.edges, h.nodes, 2)

    def test_weighted_requires_hashmap(self):
        h = make_h()
        with pytest.raises(ValueError, match="weighted"):
            make_count_kernel(
                "bitset", h.edges, h.nodes, 2, weighted=True
            )


class TestAdaptiveRows:
    @settings(max_examples=20, deadline=None)
    @given(el=hypergraphs(), s=st.integers(1, 3),
           upper_only=st.booleans())
    def test_matches_forced_hashmap(self, el, s, upper_only):
        h = BiAdjacency.from_biedgelist(el)
        chunk = np.arange(h.num_hyperedges(), dtype=np.int64)
        auto = adaptive_rows(
            h.edges, h.nodes, chunk, s, upper_only=upper_only
        )
        forced = adaptive_rows(
            h.edges, h.nodes, chunk, s, upper_only=upper_only,
            force="hashmap",
        )
        key = lambda r: sorted(  # noqa: E731
            zip(r[0].tolist(), r[1].tolist(), r[2].tolist())
        )
        assert key(auto) == key(forced)

    def test_stats_carry_dispatch_entry(self):
        h = make_h()
        chunk = np.arange(h.num_hyperedges(), dtype=np.int64)
        *_, stats, work = adaptive_rows(h.edges, h.nodes, chunk, 2)
        assert "dispatch" in stats
        assert stats["dispatch"]["rows"] == chunk.size
        assert stats["dispatch"]["tasks"] >= 1
        assert work > 0

    def test_kernel_pickles(self):
        h = make_h()
        k = AdaptiveKernel(h.edges, h.nodes, 2)
        k2 = pickle.loads(pickle.dumps(k))
        chunk = np.arange(h.num_hyperedges(), dtype=np.int64)
        a, b = k(chunk), k2(chunk)
        np.testing.assert_array_equal(a.value[0], b.value[0])
        assert a.work == b.work


class TestDispatchCounters:
    def test_builder_emits_dispatch_tables(self):
        h = make_h()
        metrics = MetricsRegistry()
        to_two_graph(h, 2, algorithm="hashmap", kernel="auto",
                     metrics=metrics)
        names = {
            (inst["name"], dict(inst["labels"]).get("kernel"))
            for inst in metrics.snapshot()
        }
        kernels_used = {k for n, k in names if n == "dispatch_rows_total"}
        assert kernels_used  # at least one per-bucket family recorded
        assert all(
            (n, k) in names or n != "dispatch_rows_total"
            for n, k in names
        )
        assert {
            n for n, _ in names
        } >= {"dispatch_rows_total", "dispatch_buckets_total"}

"""Deeper queue-algorithm semantics: duplicates, chunked drains, ordering.

Algorithms 1–2 promise representation independence via the work queue; this
module pins down the corner semantics of that queue contract.
"""

import numpy as np
import pytest

from repro.linegraph import (
    slinegraph_matrix,
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.runtime import ParallelRuntime
from repro.parallel.workqueue import WorkQueue
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist

QUEUE_ALGOS = [slinegraph_queue_hashmap, slinegraph_queue_intersection]


@pytest.fixture
def h():
    return BiAdjacency.from_biedgelist(random_biedgelist(seed=17))


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_duplicate_queue_ids_are_harmless(h, fn):
    """Enqueuing an ID twice re-processes it, but the canonical finalize
    deduplicates — the result is identical to the clean queue."""
    ref = slinegraph_matrix(h, 2)
    ids = np.arange(h.num_hyperedges())
    doubled = np.concatenate([ids, ids[::3]])
    assert fn(h, 2, queue_ids=doubled) == ref


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_reversed_queue(h, fn):
    ref = slinegraph_matrix(h, 3)
    ids = np.arange(h.num_hyperedges())[::-1].copy()
    assert fn(h, 3, queue_ids=ids) == ref


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
@pytest.mark.parametrize("grain", [1, 3, 16])
def test_grain_invariance(h, fn, grain):
    """Chunking granularity never changes the computed line graph."""
    ref = slinegraph_matrix(h, 2)
    rt = ParallelRuntime(num_threads=5, grain=grain)
    assert fn(h, 2, runtime=rt) == ref


def test_work_queue_chunked_drain_equals_bulk():
    q1 = WorkQueue(np.arange(100))
    q2 = WorkQueue(np.arange(100))
    bulk = q1.drain()
    chunks = []
    while not q2.empty():
        chunks.append(q2.drain(7))
    assert np.array_equal(bulk, np.concatenate(chunks))


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_empty_queue_yields_empty_graph(h, fn):
    el = fn(h, 1, queue_ids=np.array([], dtype=np.int64))
    assert el.num_edges() == 0
    assert el.num_vertices() == h.num_hyperedges()


@pytest.mark.parametrize("fn", QUEUE_ALGOS)
def test_union_of_disjoint_queues_covers_full_result(h, fn):
    """Partitioning the ID space across two queue runs and unioning the
    outputs reproduces the full line graph (each unordered pair is found
    by its smaller endpoint, which lives in exactly one part)."""
    ref = slinegraph_matrix(h, 2)
    ids = np.arange(h.num_hyperedges())
    a = fn(h, 2, queue_ids=ids[: ids.size // 2])
    b = fn(h, 2, queue_ids=ids[ids.size // 2:])
    pairs = set(zip(a.src.tolist(), a.dst.tolist())) | set(
        zip(b.src.tolist(), b.dst.tolist())
    )
    assert pairs == set(zip(ref.src.tolist(), ref.dst.tolist()))

"""Unit tests for the shared construction kernels."""

import numpy as np
import pytest

from repro.linegraph.common import (
    batch_intersect_counts,
    empty_linegraph,
    finalize_edges,
    intersect_count_sorted,
    linegraph_csr,
    resolve_incidence,
    two_hop_pair_counts,
)
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR

from ..conftest import random_biedgelist


class TestFinalizeEdges:
    def test_canonical_order_and_dedup(self):
        el = finalize_edges(
            np.array([3, 1, 3]), np.array([1, 3, 1]),
            np.array([2, 2, 2]), 5,
        )
        assert el.src.tolist() == [1]
        assert el.dst.tolist() == [3]
        assert el.weights.tolist() == [2.0]

    def test_self_loops_dropped(self):
        el = finalize_edges(np.array([2]), np.array([2]), np.array([5]), 4)
        assert el.num_edges() == 0

    def test_vertex_space_preserved(self):
        el = finalize_edges(np.array([0]), np.array([1]), None, 10)
        assert el.num_vertices() == 10
        assert el.weights is None


class TestIntersectCount:
    def test_basic(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 9])
        assert intersect_count_sorted(a, b) == 2

    def test_empty(self):
        assert intersect_count_sorted(np.array([]), np.array([1])) == 0

    def test_disjoint(self):
        assert intersect_count_sorted(np.array([1, 2]), np.array([3, 4])) == 0

    def test_identical(self):
        a = np.array([2, 4, 6])
        assert intersect_count_sorted(a, a) == 3

    def test_asymmetric_sizes(self):
        a = np.array([500])
        b = np.arange(1000)
        assert intersect_count_sorted(a, b) == 1
        assert intersect_count_sorted(b, a) == 1


class TestBatchIntersect:
    def test_matches_scalar_kernel(self):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=4))
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, h.num_hyperedges(), size=(50, 2))
        counts = batch_intersect_counts(h.edges, pairs)
        for (a, b), c in zip(pairs.tolist(), counts.tolist()):
            assert c == intersect_count_sorted(h.members(a), h.members(b))

    def test_empty_pairs(self):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=4))
        assert batch_intersect_counts(h.edges, np.empty((0, 2))).size == 0


class TestTwoHop:
    def test_counts_are_overlaps(self, paper_h):
        src, dst, cnt, work = two_hop_pair_counts(
            paper_h.edges, paper_h.nodes, np.arange(4)
        )
        from ..conftest import PAPER_OVERLAPS

        got = dict(zip(zip(src.tolist(), dst.tolist()), cnt.tolist()))
        assert got == {(a, b): c for a, b, c in PAPER_OVERLAPS}
        assert work > 0

    def test_upper_only_false_gives_both_directions(self, paper_h):
        src, dst, cnt, _ = two_hop_pair_counts(
            paper_h.edges, paper_h.nodes, np.arange(4), upper_only=False
        )
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs
        # diagonal present too (self-overlap = edge size)
        got = dict(zip(zip(src.tolist(), dst.tolist()), cnt.tolist()))
        assert got[(2, 2)] == 6

    def test_empty_ids(self, paper_h):
        src, dst, cnt, work = two_hop_pair_counts(
            paper_h.edges, paper_h.nodes, np.array([], dtype=np.int64)
        )
        assert src.size == dst.size == cnt.size == 0 and work == 0


class TestResolve:
    def test_biadjacency(self, paper_h):
        edges, nodes, n_e, sizes = resolve_incidence(paper_h)
        assert n_e == 4
        assert sizes.tolist() == [3, 3, 6, 4]
        assert edges is paper_h.edges

    def test_adjoin(self, paper_el):
        g = AdjoinGraph.from_biedgelist(paper_el)
        edges, nodes, n_e, sizes = resolve_incidence(g)
        assert edges is nodes is g.graph
        assert n_e == 4
        assert sizes.tolist() == [3, 3, 6, 4]

    def test_type_error(self):
        with pytest.raises(TypeError):
            resolve_incidence(42)


class TestHelpers:
    def test_empty_linegraph(self):
        el = empty_linegraph(7)
        assert el.num_vertices() == 7
        assert el.num_edges() == 0
        assert el.weights is not None and el.weights.size == 0

    def test_linegraph_csr_symmetric(self, paper_h):
        from repro.linegraph import slinegraph_matrix

        el = slinegraph_matrix(paper_h, 2)
        g = linegraph_csr(el)
        assert isinstance(g, CSR)
        assert g.num_edges() == 2 * el.num_edges()
        for a, b in zip(el.src.tolist(), el.dst.tolist()):
            assert b in g[a] and a in g[b]

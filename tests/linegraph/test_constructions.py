"""Cross-validation of all six s-line construction algorithms.

Every algorithm must produce the identical canonical edge list (with
identical overlap weights) as the scipy ``BᵗB`` oracle, on hand-built and
random hypergraphs, for every s.
"""

import numpy as np
import pytest

from repro.linegraph import (
    ALGORITHMS,
    slinegraph_matrix,
    to_two_graph,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_OVERLAPS, random_biedgelist

# 'matrix' and 'threaded' take no simulated runtime; they are covered by
# their own test modules
NAMES = sorted(set(ALGORITHMS) - {"matrix", "threaded"})


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("s", [1, 2, 3, 4])
def test_agrees_with_matrix_oracle(name, s):
    for seed in range(3):
        h = BiAdjacency.from_biedgelist(random_biedgelist(seed=seed))
        assert to_two_graph(h, s, name) == slinegraph_matrix(h, s), (seed,)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("backend", ["threaded", "process"])
def test_backends_produce_identical_edgelists(name, backend):
    """Real execution backends return the exact EdgeList of the default."""
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=3))
    base = to_two_graph(h, 2, name)
    assert to_two_graph(h, 2, name, backend=backend, workers=2) == base


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_paper_example_weights(name, paper_h):
    el = to_two_graph(paper_h, 1, name)
    got = {
        (a, b): int(w)
        for a, b, w in zip(el.src.tolist(), el.dst.tolist(), el.weights)
    }
    assert got == {(a, b): c for a, b, c in PAPER_OVERLAPS}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_paper_example_s_filtering(name, paper_h):
    """The Fig. 5 analogue: s = 1, 2, 3 line graphs of the running example."""
    expect = {
        1: {(a, b) for a, b, _ in PAPER_OVERLAPS},
        2: {(a, b) for a, b, c in PAPER_OVERLAPS if c >= 2},
        3: {(0, 3)},
        4: set(),
    }
    for s, pairs in expect.items():
        el = to_two_graph(paper_h, s, name)
        assert set(zip(el.src.tolist(), el.dst.tolist())) == pairs, s


@pytest.mark.parametrize("name", NAMES)
def test_s_monotonicity(name):
    """L_{s+1} ⊆ L_s — edges only disappear as s grows."""
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=11, max_size=6))
    prev = None
    for s in (1, 2, 3, 4, 5):
        el = to_two_graph(h, s, name)
        pairs = set(zip(el.src.tolist(), el.dst.tolist()))
        if prev is not None:
            assert pairs <= prev
        prev = pairs


@pytest.mark.parametrize("name", NAMES)
def test_invalid_s(name, paper_h):
    with pytest.raises(ValueError, match="s must be"):
        to_two_graph(paper_h, 0, name)


def test_unknown_algorithm(paper_h):
    with pytest.raises(ValueError, match="unknown algorithm"):
        to_two_graph(paper_h, 1, "quantum")


@pytest.mark.parametrize("name", NAMES)
def test_empty_hypergraph(name):
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=0, num_edges=0,
                                                      num_nodes=5))
    el = to_two_graph(h, 1, name)
    assert el.num_edges() == 0


@pytest.mark.parametrize("name", NAMES)
def test_large_s_empty(name, paper_h):
    el = to_two_graph(paper_h, 100, name)
    assert el.num_edges() == 0
    assert el.num_vertices() == 4  # vertex space preserved


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("partitioner", ["blocked", "cyclic"])
def test_runtime_and_partitioner_invariance(name, partitioner):
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=5))
    ref = slinegraph_matrix(h, 2)
    rt = ParallelRuntime(
        num_threads=4, partitioner=partitioner, execution_order="shuffled",
        seed=8,
    )
    assert to_two_graph(h, 2, name, runtime=rt) == ref
    assert rt.makespan > 0


def test_weights_are_overlap_sizes(paper_h):
    el = slinegraph_matrix(paper_h, 2)
    for a, b, w in zip(el.src.tolist(), el.dst.tolist(), el.weights):
        inter = np.intersect1d(paper_h.members(a), paper_h.members(b))
        assert len(inter) == w

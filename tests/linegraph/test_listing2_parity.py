"""Listing 2 paper-parity constructors."""

import pytest

from repro.linegraph import (
    slinegraph_matrix,
    to_two_graph_hashmap_blocked,
    to_two_graph_hashmap_cyclic,
)
from repro.structures.biadjacency import BiAdjacency, biadjacency

from ..conftest import random_biedgelist


@pytest.mark.parametrize("s", [1, 2, 3])
def test_cyclic_wrapper_matches_oracle(s):
    el = random_biedgelist(seed=6)
    hyperedges = biadjacency(el, 0)
    hypernodes = biadjacency(el, 1)
    ref = slinegraph_matrix(BiAdjacency.from_biedgelist(el), s)
    got = to_two_graph_hashmap_cyclic(
        hyperedges, hypernodes, hyperedges.degrees(), s,
        num_threads=4, num_bins=16,
    )
    assert got == ref


def test_blocked_wrapper_matches_cyclic():
    el = random_biedgelist(seed=7)
    hyperedges = biadjacency(el, 0)
    hypernodes = biadjacency(el, 1)
    a = to_two_graph_hashmap_cyclic(
        hyperedges, hypernodes, hyperedges.degrees(), 2, num_threads=2,
    )
    b = to_two_graph_hashmap_blocked(
        hyperedges, hypernodes, hyperedges.degrees(), 2, num_threads=2,
    )
    assert a == b


def test_clique_expansion_via_listing2_call():
    """Listing 2's clique-expansion recipe: swap the roles and use s=1."""
    el = random_biedgelist(seed=8)
    hyperedges = biadjacency(el, 0)
    hypernodes = biadjacency(el, 1)
    got = to_two_graph_hashmap_cyclic(
        hypernodes, hyperedges, hypernodes.degrees(), 1, num_threads=2,
    )
    h = BiAdjacency.from_biedgelist(el)
    assert got == slinegraph_matrix(h.dual(), 1)

"""Clique-expansion / s-clique graph tests."""

import networkx as nx
import numpy as np

from repro.linegraph import (
    clique_expansion,
    scliquegraph,
    slinegraph_matrix,
    slinegraph_queue_intersection,
)
from repro.structures.biadjacency import BiAdjacency

from ..conftest import PAPER_MEMBERS, random_biedgelist


def test_identity_clique_expansion_is_1_line_of_dual(random_h):
    """Paper §II-D / §III-B.4: clique expansion == 1-line graph of H*."""
    assert clique_expansion(random_h) == slinegraph_matrix(random_h.dual(), 1)


def test_sclique_is_sline_of_dual(random_h):
    for s in (1, 2, 3):
        assert scliquegraph(random_h, s) == slinegraph_matrix(
            random_h.dual(), s
        )


def test_paper_example_clique_edges(paper_h):
    """Hand check: clique expansion = union of per-hyperedge cliques."""
    el = clique_expansion(paper_h)
    pairs = set(zip(el.src.tolist(), el.dst.tolist()))
    expect = set()
    for mem in PAPER_MEMBERS:
        for i, a in enumerate(mem):
            for b in mem[i + 1:]:
                expect.add((min(a, b), max(a, b)))
    assert pairs == expect


def test_paper_example_coocurrence_weights(paper_h):
    el = clique_expansion(paper_h)
    w = {
        (a, b): int(c)
        for a, b, c in zip(el.src.tolist(), el.dst.tolist(), el.weights)
    }
    # nodes 1,2 co-occur in e0, e1, e3
    assert w[(1, 2)] == 3
    assert w[(0, 1)] == 2
    assert w[(2, 3)] == 2
    assert w[(4, 5)] == 1


def test_blowup_size_quadratic_in_edge_size():
    """The §III-B.3 drawback: one size-k hyperedge -> k(k-1)/2 graph edges."""
    k = 30
    h = BiAdjacency.from_arrays([0] * k, list(range(k)))
    el = clique_expansion(h)
    assert el.num_edges() == k * (k - 1) // 2


def test_alternative_algorithm_backend(random_h):
    ref = clique_expansion(random_h)
    alt = clique_expansion(random_h, algorithm=slinegraph_queue_intersection)
    assert alt == ref


def test_clique_expansion_connectivity_matches_hypergraph(random_h):
    """Node connectivity is preserved by clique expansion (info that IS
    retained, unlike inclusion structure)."""
    el = clique_expansion(random_h)
    G = nx.Graph()
    G.add_nodes_from(range(random_h.num_hypernodes()))
    G.add_edges_from(zip(el.src.tolist(), el.dst.tolist()))
    from repro.algorithms.hypercc import hypercc

    _, node_labels = hypercc(random_h)
    expect = {
        frozenset(c) for c in nx.connected_components(G)
    }
    groups: dict[int, set] = {}
    for v, lab in enumerate(node_labels.tolist()):
        groups.setdefault(lab, set()).add(v)
    assert {frozenset(g) for g in groups.values()} == expect

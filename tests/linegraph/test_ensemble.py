"""Ensemble construction tests."""

import pytest

from repro.linegraph import slinegraph_ensemble, slinegraph_matrix
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

from ..conftest import random_biedgelist


def test_matches_individual_constructions():
    h = BiAdjacency.from_biedgelist(random_biedgelist(seed=2, max_size=6))
    ens = slinegraph_ensemble(h, [1, 2, 3, 5])
    assert sorted(ens) == [1, 2, 3, 5]
    for s, el in ens.items():
        assert el == slinegraph_matrix(h, s)


def test_duplicate_and_unsorted_s_values(paper_h):
    ens = slinegraph_ensemble(paper_h, [3, 1, 3, 2])
    assert sorted(ens) == [1, 2, 3]


def test_empty_s_list(paper_h):
    assert slinegraph_ensemble(paper_h, []) == {}


def test_invalid_s(paper_h):
    with pytest.raises(ValueError, match="s must be"):
        slinegraph_ensemble(paper_h, [0, 2])


def test_adjoin_input(paper_el, paper_h):
    g = AdjoinGraph.from_biedgelist(paper_el)
    ens = slinegraph_ensemble(g, [1, 2])
    for s, el in ens.items():
        assert el == slinegraph_matrix(paper_h, s)


def test_with_runtime_single_counting_pass(paper_h):
    rt = ParallelRuntime(num_threads=2)
    slinegraph_ensemble(paper_h, [1, 2, 3], runtime=rt)
    count_phases = [p for p in rt.ledger.phases if "count" in p.name]
    assert len(count_phases) == 1  # one pass regardless of #s values

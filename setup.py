"""Setup shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package can be installed editable on environments whose setuptools predates
bundled bdist_wheel (no `wheel` package available offline):

    python setup.py develop        # or: pip install -e . (newer toolchains)
"""

from setuptools import setup

setup()

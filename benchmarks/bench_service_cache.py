"""Service cache latency — cold build vs warm hit vs s-monotone derive.

The service's `SLineGraphCache` has three ways to answer "give me L_s":
a cold construction (miss), a cached instance (hit), and the s-monotone
shortcut — filter a cached lower-s weighted edge list down to overlap
>= s (derive).  This sweep times all three per dataset over s = 1..5
and checks the ordering the design relies on: warm hits are measurably
faster than cold builds, and every s > 1 rides the derive path once
s = 1 is resident.
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.core.hypergraph import NWHypergraph
from repro.io.datasets import load
from repro.service.cache import SLineGraphCache

S_SWEEP = [1, 2, 3, 4, 5]


def _hypergraph(name: str) -> NWHypergraph:
    el = load(name)
    return NWHypergraph(
        el.part0, el.part1, el.weights,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


def _time_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


@pytest.mark.parametrize("name", ["orkut-group", "rand1"])
def test_cold_warm_derive_latency(benchmark, record, name):
    hg = _hypergraph(name)

    def sweep():
        rows = []
        for s in S_SWEEP:
            cold_cache = SLineGraphCache(budget_bytes=None)
            cold_ms = _time_ms(lambda: cold_cache.get_or_build(name, s, hg))
            warm_ms = _time_ms(lambda: cold_cache.get_or_build(name, s, hg))

            derive_cache = SLineGraphCache(budget_bytes=None)
            derive_cache.get_or_build(name, 1, hg)
            t0 = time.perf_counter()
            lg, how = derive_cache.get_or_build(name, s, hg)
            derive_ms = (time.perf_counter() - t0) * 1e3
            rows.append((s, cold_ms, warm_ms, derive_ms, how,
                         lg.num_edges()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        f"service cache — cold vs warm vs s-monotone derive: {name}",
        format_table(
            ["s", "cold (ms)", "warm hit (ms)", "derive (ms)", "via",
             "line edges"],
            [(f"s={s}", f"{c:.2f}", f"{w:.3f}", f"{d:.2f}", how, f"{m}")
             for s, c, w, d, how, m in rows],
        ),
    )
    # s = 1 has nothing to derive from; every s > 1 must ride the shortcut
    assert rows[0][4] == "hit"  # (name, 1) was just built -> cache hit
    assert all(how == "derive" for _, _, _, _, how, _ in rows[1:])
    # a warm hit is a dict lookup; it must beat every cold construction
    slowest_warm = max(w for _, _, w, _, _, _ in rows)
    fastest_cold = min(c for _, c, _, _, _, _ in rows)
    assert slowest_warm < fastest_cold


def test_derive_beats_cold_on_aggregate(benchmark, record):
    """Filtering a resident L_1 should undercut re-running construction."""
    name = "rand1"
    hg = _hypergraph(name)

    def serve_sweep(seed_lowest_s: bool):
        cache = SLineGraphCache(budget_bytes=None)
        if seed_lowest_s:
            cache.get_or_build(name, 1, hg)
        t0 = time.perf_counter()
        for s in S_SWEEP[1:]:
            cache.get_or_build(name, s, hg)
        return (time.perf_counter() - t0) * 1e3, cache.stats

    def run():
        cold_ms, cold_stats = serve_sweep(seed_lowest_s=False)
        warm_ms, warm_stats = serve_sweep(seed_lowest_s=True)
        return cold_ms, cold_stats, warm_ms, warm_stats

    cold_ms, cold_stats, warm_ms, warm_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record(
        f"service cache — serving s=2..5 of {name}",
        format_table(
            ["strategy", "total (ms)", "misses", "derives"],
            [
                ("cold builds", f"{cold_ms:.1f}",
                 f"{cold_stats.misses}", f"{cold_stats.derives}"),
                ("derive from L_1", f"{warm_ms:.1f}",
                 f"{warm_stats.misses}", f"{warm_stats.derives}"),
            ],
        ),
    )
    # cold path: s=2 misses then s=3..5 derive from it; seeding L_1 first
    # makes every request a derive
    assert warm_stats.derives == len(S_SWEEP) - 1
    assert warm_stats.misses == 1  # only the seeded s=1 build
    assert warm_ms < cold_ms

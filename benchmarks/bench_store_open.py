"""Store open path: cold parse vs mmap open vs warm restart.

The store's headline claim is O(1) open: ``open_store`` maps one slab
and adopts the persisted buffers without parsing, validating, or copying,
so its latency must be independent of dataset size — while a cold start
(parse the file, deduplicate, counting-sort both CSRs, build the adjoin)
is linear in the incidence count.  This sweep measures both, plus a warm
restart (open + WAL tail replay), over a geometric size grid, asserts the
scaling gap, and writes ``BENCH_store_open.json`` at the repo root — the
artifact CI's store-smoke job uploads.

The gate compares growth ratios, not absolute times: across a 16x data
growth the cold path must slow down by >= 4x while the mmap open stays
within 3x of its small-dataset latency (generous noise margin; the
measured open is sub-millisecond either way).

Run directly (``python benchmarks/bench_store_open.py``) or through
pytest (``pytest benchmarks/bench_store_open.py``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.io.generators import uniform_random_hypergraph
from repro.io.loader import load_hypergraph
from repro.io.mmio import write_mm
from repro.obs.metrics import MetricsRegistry
from repro.store import build_store, open_store

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_store_open.json"

#: geometric grid: each step is 4x the incidences of the previous
EDGE_GRID = (1_000, 4_000, 16_000)
MEAN_SIZE = 8
WAL_BATCHES = 10
REPEATS = 5


def _best(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = (time.perf_counter() - t0) * 1e3
        best = min(best, dt)
    return best, out


def _cold(path: str):
    """Full cold start: parse + dedup + index every representation."""
    hg = load_hypergraph(path)
    hg.biadjacency
    hg.adjoin_graph
    return hg


def _measure(workdir: Path, num_edges: int) -> dict:
    el = uniform_random_hypergraph(
        num_edges, num_edges, MEAN_SIZE, seed=num_edges
    )
    mtx = workdir / f"g{num_edges}.mtx"
    write_mm(mtx, el)
    store_dir = workdir / f"store{num_edges}"
    build_store(store_dir, str(mtx))

    cold_ms, _ = _best(lambda: _cold(str(mtx)))

    def mmap_open():
        handle = open_store(store_dir)
        handle.close()
        return handle

    open_ms, _ = _best(mmap_open)

    # warm restart: a mutation tail to replay on open
    handle = open_store(store_dir)
    for i in range(WAL_BATCHES):
        handle.dynamic.apply(
            [{"op": "add_edge", "members": [i % 10, (i + 1) % 10]}]
        )
    handle.close()
    metrics = MetricsRegistry()

    def warm_open():
        h = open_store(store_dir, metrics=metrics)
        h.close()
        return h

    warm_ms, last = _best(warm_open)
    assert last.recovery.replayed_batches == WAL_BATCHES

    return {
        "num_edges": num_edges,
        "num_incidences": len(el),
        "slab_bytes": last.manifest.slab_bytes(),
        "cold_parse_ms": round(cold_ms, 3),
        "mmap_open_ms": round(open_ms, 3),
        "warm_restart_ms": round(warm_ms, 3),
        "replayed_batches": last.recovery.replayed_batches,
        "counters": {
            row["name"]: row["value"]
            for row in sorted(metrics.snapshot(), key=lambda r: r["name"])
            if row["kind"] == "counter" and row["name"].startswith("store.")
        },
    }


def run() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        rows = [_measure(Path(tmp), n) for n in EDGE_GRID]
    small, large = rows[0], rows[-1]
    growth = large["num_incidences"] / small["num_incidences"]
    cold_ratio = large["cold_parse_ms"] / small["cold_parse_ms"]
    open_ratio = large["mmap_open_ms"] / small["mmap_open_ms"]
    doc = {
        "generated_by": "benchmarks/bench_store_open.py",
        "edge_grid": list(EDGE_GRID),
        "wal_batches": WAL_BATCHES,
        "rows": rows,
        "data_growth": round(growth, 2),
        "cold_ratio": round(cold_ratio, 2),
        "open_ratio": round(open_ratio, 2),
    }
    # the O(1)-open gate: cold start scales with the data, mmap open
    # does not (3x allows scheduler noise on a sub-ms measurement)
    assert cold_ratio >= 4.0, f"cold parse only {cold_ratio:.1f}x slower"
    assert open_ratio <= 3.0, f"mmap open grew {open_ratio:.1f}x"
    assert open_ratio < cold_ratio, "open must scale better than parse"
    return doc


def _table(doc: dict) -> str:
    lines = [
        f"{'edges':>8} {'incidences':>11} {'cold ms':>9} "
        f"{'open ms':>9} {'warm ms':>9}"
    ]
    for r in doc["rows"]:
        lines.append(
            f"{r['num_edges']:>8} {r['num_incidences']:>11} "
            f"{r['cold_parse_ms']:>9.2f} {r['mmap_open_ms']:>9.2f} "
            f"{r['warm_restart_ms']:>9.2f}"
        )
    lines.append(
        f"data x{doc['data_growth']}: cold x{doc['cold_ratio']}, "
        f"open x{doc['open_ratio']} (O(1) gate: open <= 3x)"
    )
    return "\n".join(lines)


def main() -> None:
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT}")
    print(_table(doc))


def test_store_open_is_o1(record):
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    record("Store open: cold parse vs mmap open vs warm restart",
           _table(doc))


if __name__ == "__main__":
    main()

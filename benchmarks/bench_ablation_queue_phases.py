"""Ablation C (§III-C.3) — one-phase vs two-phase queue granularity.

The paper argues Algorithm 2's flat pair loop "may lend itself to better
load balancing ... since the control of granularity for workload per thread
is more fine-grained".  We measure both queue algorithms' load imbalance
(max/mean thread time of the heaviest phase) and makespan on the most
skewed stand-in, plus the grain-size trade-off of the runtime itself.
"""

import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.linegraph import (
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

THREADS = 32
S = 2


def _run(fn, h, grain=4):
    rt = ParallelRuntime(
        num_threads=THREADS, partitioner="blocked", scheduler="static",
        grain=grain,
    )
    rt.new_run()
    fn(h, S, runtime=rt)
    heaviest = max(rt.ledger.phases, key=lambda p: p.total_work)
    return rt.makespan, heaviest.load_imbalance


def test_two_phase_balances_better(benchmark, record):
    h = BiAdjacency.from_biedgelist(load("orkut-group"))

    def measure():
        return {
            "Alg1 (one-phase)": _run(slinegraph_queue_hashmap, h),
            "Alg2 (two-phase)": _run(slinegraph_queue_intersection, h),
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (name, f"{span:.0f}", f"{imb:.2f}")
        for name, (span, imb) in out.items()
    ]
    record(
        f"Ablation C — queue phase granularity (orkut-group, static/blocked, "
        f"t={THREADS})",
        format_table(["algorithm", "makespan", "imbalance"], rows),
    )
    # the pair-level loop must not be *worse* balanced than the edge-level
    _, imb1 = out["Alg1 (one-phase)"]
    _, imb2 = out["Alg2 (two-phase)"]
    assert imb2 <= imb1 * 1.5


@pytest.mark.parametrize("grain", [1, 4, 16])
def test_grain_tradeoff(benchmark, record, grain):
    """Finer grain -> better balance but more per-task overhead (a real
    TBB trade-off the cost model reproduces)."""
    h = BiAdjacency.from_biedgelist(load("orkut-group"))
    span, imb = benchmark.pedantic(
        _run, args=(slinegraph_queue_hashmap, h, grain), rounds=1,
        iterations=1,
    )
    record(
        f"Ablation C — grain={grain}",
        f"makespan {span:.0f}, heaviest-phase imbalance {imb:.2f}",
    )
    assert span > 0

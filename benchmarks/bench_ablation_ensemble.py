"""Ablation E — ensemble s-line construction vs repeated single-s runs.

Liu et al. [18]'s ensemble algorithm (shipped in NWHy, §III-C.3) computes
``{L_s : s ∈ S}`` in ONE counting pass by filtering the shared overlap
counts at each threshold.  We measure the simulated work of the ensemble
against |S| independent hashmap constructions — the speedup should
approach |S|× because the counting pass dominates.
"""

import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.linegraph import slinegraph_ensemble, slinegraph_hashmap
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

S_VALUES = [1, 2, 4, 8]
THREADS = 16


def test_ensemble_beats_repeated(benchmark, record):
    h = BiAdjacency.from_biedgelist(load("orkut-group"))

    def measure():
        rt_ens = ParallelRuntime(num_threads=THREADS, partitioner="cyclic")
        rt_ens.new_run()
        slinegraph_ensemble(h, S_VALUES, runtime=rt_ens)
        repeated = 0.0
        for s in S_VALUES:
            rt = ParallelRuntime(num_threads=THREADS, partitioner="cyclic")
            rt.new_run()
            slinegraph_hashmap(h, s, runtime=rt)
            repeated += rt.makespan
        return rt_ens.makespan, repeated

    ens_span, rep_span = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        f"Ablation E — ensemble vs repeated construction "
        f"(orkut-group, S={S_VALUES}, t={THREADS})",
        format_table(
            ["approach", "makespan", "speedup"],
            [
                (f"{len(S_VALUES)} separate hashmap runs",
                 f"{rep_span:.0f}", "1.0x"),
                ("one ensemble pass", f"{ens_span:.0f}",
                 f"{rep_span / ens_span:.1f}x"),
            ],
        ),
    )
    # ensemble must be decisively cheaper than |S| runs
    assert ens_span < rep_span / (len(S_VALUES) / 2)


@pytest.mark.parametrize("name", ["rand1", "com-orkut"])
def test_wallclock_ensemble(benchmark, name):
    h = BiAdjacency.from_biedgelist(load(name))
    graphs = benchmark(slinegraph_ensemble, h, S_VALUES)
    assert sorted(graphs) == sorted(S_VALUES)

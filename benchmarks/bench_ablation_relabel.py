"""Ablation A (§III-B.2 / §III-C.3) — relabel-by-degree vs representations.

Two findings the paper argues qualitatively, measured here:

1. On the **bipartite** representation, relabel-by-degree changes the
   blocked-partition load balance of s-line construction (it sorts the
   heavy hyperedges together — better or worse depending on direction).
2. The **queue-based** algorithms accept a permuted ID queue and still
   produce the identical line graph — the versatility the adjoin
   representation needs, since adjoin graphs cannot be globally relabeled.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.linegraph import slinegraph_hashmap, slinegraph_queue_hashmap
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import (
    adjoin_safe_permutation,
    relabel_hyperedges,
)

S = 2
THREADS = 32


def _span(h, relabel: str, partitioner: str) -> float:
    variant = h if relabel == "none" else relabel_hyperedges(h, relabel)[0]
    rt = ParallelRuntime(num_threads=THREADS, partitioner=partitioner)
    rt.new_run()
    slinegraph_hashmap(variant, S, runtime=rt)
    return rt.makespan


def test_relabel_changes_blocked_balance(benchmark, record):
    h = BiAdjacency.from_biedgelist(load("orkut-group"))

    def sweep():
        return {
            (rel, part): _span(h, rel, part)
            for rel in ("none", "ascending", "descending")
            for part in ("blocked", "cyclic")
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (rel, part, f"{spans[(rel, part)]:.0f}")
        for rel in ("none", "ascending", "descending")
        for part in ("blocked", "cyclic")
    ]
    record(
        "Ablation A — relabel × partitioner (hashmap, orkut-group, "
        f"t={THREADS}, simulated makespan)",
        format_table(["relabel", "partitioner", "makespan"], rows),
    )
    # relabeling must actually move the blocked makespan
    blocked = [spans[(rel, "blocked")] for rel in
               ("none", "ascending", "descending")]
    assert max(blocked) / min(blocked) > 1.01


def test_queue_algorithm_survives_any_permutation(benchmark):
    """Correctness half of the ablation: permuted queue == original result."""
    el = load("orkut-group")
    h = BiAdjacency.from_biedgelist(el)
    ref = slinegraph_hashmap(h, S)
    rng = np.random.default_rng(0)
    perm = rng.permutation(h.num_hyperedges())

    result = benchmark(slinegraph_queue_hashmap, h, S, None, perm)
    assert result == ref


def test_adjoin_safe_permutation_keeps_ranges(benchmark, record):
    """The paper's §III-C fix: per-range permutation preserves the adjoin
    block boundary, so range-aware algorithms still work."""
    el = load("rand1")
    g = AdjoinGraph.from_biedgelist(el)
    perm = benchmark.pedantic(
        adjoin_safe_permutation,
        args=(g.degrees(), g.nrealedges, "descending"),
        rounds=1, iterations=1,
    )
    assert set(perm[: g.nrealedges].tolist()) == set(range(g.nrealedges))
    record(
        "Ablation A — adjoin-safe permutation",
        "hyperedge range preserved: "
        f"{g.nrealedges} IDs stay in [0, {g.nrealedges})",
    )

"""Kernel dispatch benchmark: bitset vs hashmap vs the adaptive policy.

Builds two synthetic hypergraphs — a *skewed* one (a core of huge hub
hyperedges over a small node universe, exactly the shape where the dense
bitset sweep wins) and a *uniform* one (where it shouldn't fire at all)
— and times the s-line-graph build under each forced kernel plus the
degree-bucketed dispatcher (``kernel="auto"``).  Writes
``BENCH_kernel_dispatch.json`` at the repo root — the artifact CI's
kernel-smoke job uploads.

Three gates, all asserted:

* every kernel family produces the bit-identical line graph;
* on the skewed dataset's high-degree bucket (the rows the policy routes
  to bitset), the bitset sweep is >= 1.5x faster than the hashmap body;
* the dispatcher is never more than 10% slower than the best single
  fixed kernel on either dataset (it should match it: dispatch cost is
  one vectorized bucketize pass per chunk).

Run directly (``python benchmarks/bench_kernel_dispatch.py``) or through
pytest (``pytest benchmarks/bench_kernel_dispatch.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.linegraph import to_two_graph
from repro.linegraph.bitset import bitset_rows
from repro.linegraph.dispatch import _hashmap_rows, bucketize
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList
from repro.testing import random_hypergraph

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_kernel_dispatch.json"
S = 2
KERNELS = ("hashmap", "intersection", "bitset", "auto")
REPEATS = 5
BITSET_SPEEDUP_GATE = 1.5
DISPATCH_SLACK = 1.10  # auto may cost at most 10% over the best fixed


def skewed_hypergraph(
    num_hubs: int = 96,
    hub_size: int = 420,
    num_tail: int = 1500,
    num_nodes: int = 512,
    seed: int = 7,
) -> BiAdjacency:
    """Hub-and-tail incidence: the dispatcher's bitset showcase.

    Hub hyperedges each cover ~80% of a small node universe, so their
    two-hop expansion is enormous while the packed eligible-row matrix
    is tiny — the regime where a dense AND+popcount sweep beats hashmap
    counting.  The tail keeps the frontier mixed so bucketize has a real
    decision to make.
    """
    rng = np.random.default_rng(seed)
    part0, part1 = [], []
    for e in range(num_hubs):
        members = rng.choice(num_nodes, size=hub_size, replace=False)
        part0.append(np.full(hub_size, e, dtype=np.int64))
        part1.append(members.astype(np.int64))
    for i in range(num_tail):
        size = int(rng.integers(3, 9))
        members = rng.choice(num_nodes, size=size, replace=False)
        part0.append(np.full(size, num_hubs + i, dtype=np.int64))
        part1.append(members.astype(np.int64))
    return BiAdjacency.from_biedgelist(
        BiEdgeList(np.concatenate(part0), np.concatenate(part1))
    )


def uniform_hypergraph() -> BiAdjacency:
    return BiAdjacency.from_biedgelist(
        random_hypergraph(seed=11, num_edges=1200, num_nodes=1600)
    )


def _edge_tuple(g) -> tuple:
    return (
        g.src.tolist(),
        g.dst.tolist(),
        None if g.weights is None else g.weights.tolist(),
    )


def _best_ms(fn, *args, **kwargs) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def _pairs(res) -> set:
    src, dst, cnt = res[0], res[1], res[2]
    return set(zip(src.tolist(), dst.tolist(), cnt.tolist()))


def bucket_table(h: BiAdjacency, s: int) -> list[dict]:
    """Full-frontier bucketize summary: which kernel got how many rows."""
    frontier = np.arange(h.num_hyperedges(), dtype=np.int64)
    agg: dict[str, dict[str, int]] = {}
    for name, ids in bucketize(h.edges, h.nodes, frontier, s):
        entry = agg.setdefault(name, {"buckets": 0, "rows": 0})
        entry["buckets"] += 1
        entry["rows"] += int(ids.size)
    return [
        {"kernel": name, **counts} for name, counts in sorted(agg.items())
    ]


def bench_dataset(label: str, h: BiAdjacency) -> dict:
    """Per-kernel build times + dispatcher bucket choices for one graph."""
    results = {}
    timings = {}
    for kernel in KERNELS:
        timings[kernel] = _best_ms(
            to_two_graph, h, S, algorithm="hashmap", kernel=kernel
        )
        results[kernel] = to_two_graph(h, S, algorithm="hashmap", kernel=kernel)
    baseline = _edge_tuple(results["hashmap"])
    identical = all(
        _edge_tuple(results[k]) == baseline for k in KERNELS
    )
    assert identical, f"{label}: kernel outputs diverged"
    fixed_best = min(v for k, v in timings.items() if k != "auto")
    dispatch_ok = timings["auto"] <= fixed_best * DISPATCH_SLACK + 2.0
    assert dispatch_ok, (
        f"{label}: dispatcher {timings['auto']:.1f} ms vs best fixed "
        f"{fixed_best:.1f} ms (> {DISPATCH_SLACK:.0%})"
    )
    return {
        "dataset": label,
        "num_edges": h.num_hyperedges(),
        "num_nodes": h.num_hypernodes(),
        "num_incidences": h.num_incidences(),
        "s": S,
        "build_ms": {k: round(v, 3) for k, v in timings.items()},
        "identical": identical,
        "dispatch_within_slack": dispatch_ok,
        "buckets": bucket_table(h, S),
    }


def bench_hub_bucket(h: BiAdjacency) -> dict:
    """The headline gate: bitset vs hashmap on the rows policy sends to it."""
    frontier = np.arange(h.num_hyperedges(), dtype=np.int64)
    buckets = dict(
        (name, ids) for name, ids in bucketize(h.edges, h.nodes, frontier, S)
    )
    assert "bitset" in buckets, (
        f"policy picked no bitset bucket on the skewed dataset: "
        f"{[(k, v.size) for k, v in buckets.items()]}"
    )
    ids = buckets["bitset"]
    hashmap_ms = _best_ms(_hashmap_rows, h.edges, h.nodes, ids, S, True)
    bitset_ms = _best_ms(bitset_rows, h.edges, ids, S)
    hm = _hashmap_rows(h.edges, h.nodes, ids, S, True)
    bs = bitset_rows(h.edges, ids, S)
    assert _pairs(hm) == _pairs(bs), "hub bucket: kernels disagree"
    speedup = hashmap_ms / bitset_ms if bitset_ms else float("inf")
    assert speedup >= BITSET_SPEEDUP_GATE, (
        f"bitset only {speedup:.2f}x over hashmap on the high-degree "
        f"bucket ({bitset_ms:.1f} vs {hashmap_ms:.1f} ms, "
        f"{ids.size} rows)"
    )
    return {
        "bucket_rows": int(ids.size),
        "hashmap_ms": round(hashmap_ms, 3),
        "bitset_ms": round(bitset_ms, 3),
        "bitset_speedup": round(speedup, 3),
        "gate": BITSET_SPEEDUP_GATE,
    }


def run() -> dict:
    skew = skewed_hypergraph()
    uni = uniform_hypergraph()
    doc = {
        "generated_by": "benchmarks/bench_kernel_dispatch.py",
        "s": S,
        "kernels": list(KERNELS),
        "hub_bucket": bench_hub_bucket(skew),
        "datasets": [
            bench_dataset("skewed-hubs", skew),
            bench_dataset("uniform", uni),
        ],
    }
    return doc


def _format(doc: dict) -> str:
    lines = [
        f"high-degree bucket ({doc['hub_bucket']['bucket_rows']} rows): "
        f"bitset {doc['hub_bucket']['bitset_ms']:.1f} ms vs hashmap "
        f"{doc['hub_bucket']['hashmap_ms']:.1f} ms "
        f"({doc['hub_bucket']['bitset_speedup']:.2f}x, gate "
        f">={doc['hub_bucket']['gate']}x)"
    ]
    for ds in doc["datasets"]:
        per = "  ".join(
            f"{k}={v:.1f}ms" for k, v in ds["build_ms"].items()
        )
        lines.append(f"{ds['dataset']:>12}: {per}")
        for b in ds["buckets"]:
            lines.append(
                f"{'':>14}bucket {b['kernel']}: {b['rows']} rows "
                f"in {b['buckets']} bucket(s)"
            )
    return "\n".join(lines)


def main() -> None:
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT}")
    print(_format(doc))


def test_kernel_dispatch(record):
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    assert doc["hub_bucket"]["bitset_speedup"] >= BITSET_SPEEDUP_GATE
    assert all(ds["identical"] for ds in doc["datasets"])
    assert all(ds["dispatch_within_slack"] for ds in doc["datasets"])
    record(f"Kernel dispatch (s={S})", _format(doc))


if __name__ == "__main__":
    main()

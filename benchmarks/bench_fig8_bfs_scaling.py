"""Figure 8 — strong scaling of hypergraph breadth-first search.

AdjoinBFS (direction-optimizing on the adjoin graph), HyperBFS
(direction-optimizing on the bipartite graph) and HygraBFS (top-down only)
over the doubling thread grid; speedup series per dataset plus wall-clock
benchmarks of the real kernels.

Expected shape (paper §IV-C): AdjoinBFS comparable to HygraBFS on the
uniform Rand1; direction optimization and work stealing help on skewed
inputs; traversals on many-component datasets are fast in absolute terms.
"""

import pytest

from repro.algorithms.adjoinbfs import adjoinbfs
from repro.algorithms.hyperbfs import hyperbfs_direction_optimizing
from repro.baselines.hygra import hygra_bfs
from repro.bench.harness import bfs_source, strong_scaling_bfs
from repro.bench.reporting import format_scaling
from repro.io.datasets import DATASETS, load
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

GRID = (1, 2, 4, 8, 16, 32, 64)
ALL = sorted(DATASETS)


@pytest.mark.parametrize("name", ALL)
def test_fig8_scaling_series(benchmark, record, name):
    series = benchmark.pedantic(
        strong_scaling_bfs, args=(name, GRID), rounds=1, iterations=1
    )
    record(f"Fig. 8 — BFS strong scaling: {name}", format_scaling(series))
    for s in series:
        assert s.max_speedup > 1.0


@pytest.mark.parametrize("name", ALL)
def test_wallclock_adjoinbfs(benchmark, name):
    el = load(name)
    g = AdjoinGraph.from_biedgelist(el)
    h = BiAdjacency.from_biedgelist(el)
    src = bfs_source(h)
    dist = benchmark(adjoinbfs, g, src)
    assert dist[1][src] == 0


@pytest.mark.parametrize("name", ALL)
def test_wallclock_hyperbfs(benchmark, name):
    h = BiAdjacency.from_biedgelist(load(name))
    src = bfs_source(h)
    dist = benchmark(hyperbfs_direction_optimizing, h, src)
    assert dist[1][src] == 0


@pytest.mark.parametrize("name", ALL)
def test_wallclock_hygrabfs(benchmark, name):
    h = BiAdjacency.from_biedgelist(load(name))
    src = bfs_source(h)
    dist = benchmark(hygra_bfs, h, src)
    assert dist[1][src] == 0


def test_fig8_claim_comparable_on_uniform(benchmark, record):
    """Paper: 'performance of our BFS on adjoin graphs is comparable to
    Hygra for hypergraphs with uniform degree distribution (Rand1)'."""
    raw = benchmark.pedantic(
        strong_scaling_bfs, args=("rand1", (1, 64)), rounds=1, iterations=1
    )
    series = {s.algorithm: s for s in raw}
    adjoin = series["AdjoinBFS"].speedup_at(64)
    hygra = series["HygraBFS"].speedup_at(64)
    record(
        "Fig. 8 claim — AdjoinBFS vs HygraBFS at t=64 on Rand1",
        f"AdjoinBFS {adjoin:.1f}x vs HygraBFS {hygra:.1f}x (comparable)",
    )
    assert 0.5 < adjoin / hygra < 2.0

"""Figure 7 — strong scaling of hypergraph connected components.

For every Table I stand-in, runs AdjoinCC (Afforest on the adjoin graph),
HyperCC (label propagation on the bipartite graph), and HygraCC (Hygra's
frontier label propagation) over the doubling thread grid on the simulated
runtime, and prints the speedup series; the wall-clock benchmark times one
real (vectorized) CC per dataset/algorithm.

Expected shape (paper §IV-C): near-linear scaling on Rand1 for everyone;
on skewed inputs the NWHy algorithms (work-stealing + cyclic) scale better
than the static/blocked baseline; AdjoinCC does the least total work.
"""

import numpy as np
import pytest

from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hypercc import hypercc
from repro.baselines.hygra import hygra_cc
from repro.bench.harness import strong_scaling_cc
from repro.bench.reporting import format_scaling
from repro.io.datasets import DATASETS, load
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

GRID = (1, 2, 4, 8, 16, 32, 64)
ALL = sorted(DATASETS)


@pytest.mark.parametrize("name", ALL)
def test_fig7_scaling_series(benchmark, record, name):
    series = benchmark.pedantic(
        strong_scaling_cc, args=(name, GRID), rounds=1, iterations=1
    )
    record(f"Fig. 7 — CC strong scaling: {name}", format_scaling(series))
    for s in series:
        assert s.max_speedup > 1.0  # everyone benefits from threads


@pytest.mark.parametrize("name", ALL)
def test_wallclock_adjoincc(benchmark, name):
    g = AdjoinGraph.from_biedgelist(load(name))
    labels = benchmark(adjoincc, g)
    assert labels[0].size == g.nrealedges


@pytest.mark.parametrize("name", ALL)
def test_wallclock_hypercc(benchmark, name):
    h = BiAdjacency.from_biedgelist(load(name))
    labels = benchmark(hypercc, h)
    assert labels[0].size == h.num_hyperedges()


@pytest.mark.parametrize("name", ALL)
def test_wallclock_hygracc(benchmark, name):
    h = BiAdjacency.from_biedgelist(load(name))
    labels = benchmark(hygra_cc, h)
    assert labels[0].size == h.num_hyperedges()


def test_fig7_claim_nwhy_scales_better_on_skewed(benchmark, record):
    """The paper's summary claim, asserted: on every skewed (real-world
    stand-in) dataset AdjoinCC out-scales HygraCC at 64 threads."""
    def sweep():
        return {
            name: {s.algorithm: s for s in strong_scaling_cc(name, (1, 64))}
            for name in sorted(set(ALL) - {"rand1"})
        }

    all_series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for name in sorted(set(ALL) - {"rand1"}):
        series = all_series[name]
        adjoin = series["AdjoinCC"].speedup_at(64)
        hygra = series["HygraCC"].speedup_at(64)
        lines.append(f"{name:12s} AdjoinCC {adjoin:6.1f}x  HygraCC {hygra:6.1f}x")
        assert adjoin > hygra, name
    record("Fig. 7 claim — AdjoinCC vs HygraCC at t=64 (skewed inputs)",
           "\n".join(lines))

"""Benchmark-suite plumbing.

Figure/table data produced by the benchmarks is collected through the
``record`` fixture and emitted in the terminal summary, so the full
regenerated evaluation (Table I, Figs. 7–9, ablations) appears at the end
of ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def record():
    """Register a (title, preformatted text) block for the final summary."""

    def _record(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for title, text in _REPORTS:
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _maybe_dump_json()


def _maybe_dump_json() -> None:
    """With REPRO_RESULTS_JSON set, also dump the reports machine-readably."""
    import json
    import os

    target = os.environ.get("REPRO_RESULTS_JSON")
    if not target:
        return
    payload = [{"title": title, "text": text} for title, text in _REPORTS]
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

"""Real-backend scaling: threaded/process pools vs the simulated loop.

Times the hashmap s-line builder (the hot construction kernel) under all
three execution backends over a worker grid, asserts the outputs are
bit-identical, and writes ``BENCH_backend_scaling.json`` at the repo root
— the artifact CI's backend-smoke job uploads.

Speedup expectations are gated on the host: real scaling needs real
cores, so the >=2x process-backend assertion only arms when
``os.cpu_count() >= 4`` (the result JSON always records the host core
count so a reader can interpret the numbers).  Bit-identity and
shared-memory cleanup are asserted unconditionally.

Run directly (``python benchmarks/bench_backend_scaling.py``) or through
pytest (``pytest benchmarks/bench_backend_scaling.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.io import datasets
from repro.linegraph import slinegraph_hashmap
from repro.parallel.runtime import ParallelRuntime
from repro.parallel.shared import debug_verify, shared_stats
from repro.structures.biadjacency import BiAdjacency

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_backend_scaling.json"
DATASET = os.environ.get("BENCH_BACKEND_DATASET", "rand1")
S = 2
WORKER_GRID = (1, 2, 4)
REPEATS = 3


def _time_build(h, backend: str, workers: int):
    """Best-of-N wall-clock for one (backend, workers) configuration."""
    best = float("inf")
    result = None
    makespan = None
    for _ in range(REPEATS):
        with ParallelRuntime(
            num_threads=4,
            partitioner="cyclic",
            backend=backend,
            workers=workers,
        ) as rt:
            t0 = time.perf_counter()
            el = slinegraph_hashmap(h, S, runtime=rt)
            dt = (time.perf_counter() - t0) * 1e3
            if dt < best:
                best = dt
            result = el
            makespan = rt.makespan
    return best, result, makespan


def run(dataset: str = DATASET) -> dict:
    h = BiAdjacency.from_biedgelist(datasets.load(dataset))
    cpus = os.cpu_count() or 1

    base_ms, base_el, base_span = _time_build(h, "simulated", 1)
    runs = [{
        "backend": "simulated",
        "workers": 1,
        "best_ms": round(base_ms, 3),
        "speedup_vs_simulated": 1.0,
        "identical": True,
    }]
    for backend in ("threaded", "process"):
        for workers in WORKER_GRID:
            ms, el, span = _time_build(h, backend, workers)
            identical = el == base_el
            assert identical, (backend, workers)
            assert span == base_span, (backend, workers)  # same ledger
            runs.append({
                "backend": backend,
                "workers": workers,
                "best_ms": round(ms, 3),
                "speedup_vs_simulated": round(base_ms / ms, 3) if ms else 0.0,
                "identical": identical,
            })

    debug_verify()  # every shm block released
    process_at_4 = next(
        r for r in runs if r["backend"] == "process" and r["workers"] == 4
    )
    doc = {
        "generated_by": "benchmarks/bench_backend_scaling.py",
        "dataset": dataset,
        "s": S,
        "host_cpus": cpus,
        "baseline_ms": round(base_ms, 3),
        "simulated_makespan": base_span,
        "runs": runs,
        "shared_memory": shared_stats(),
        "speedup_gate_armed": cpus >= 4,
    }
    if cpus >= 4:
        assert process_at_4["speedup_vs_simulated"] >= 2.0, (
            f"process backend at 4 workers only "
            f"{process_at_4['speedup_vs_simulated']}x on {cpus} cores"
        )
    return doc


def main() -> None:
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT}")
    for r in doc["runs"]:
        print(
            f"  {r['backend']:>9} workers={r['workers']}: "
            f"{r['best_ms']:8.1f} ms  "
            f"({r['speedup_vs_simulated']:.2f}x, identical={r['identical']})"
        )
    print(f"  host cpus: {doc['host_cpus']}  "
          f"speedup gate armed: {doc['speedup_gate_armed']}")


def test_backend_scaling(record):
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    assert all(r["identical"] for r in doc["runs"])
    assert doc["shared_memory"]["active"] == 0
    record(
        f"Backend scaling ({doc['dataset']}, s={S})",
        "\n".join(
            f"{r['backend']:>9} workers={r['workers']}: {r['best_ms']:.1f} ms "
            f"({r['speedup_vs_simulated']:.2f}x)"
            for r in doc["runs"]
        ),
    )


if __name__ == "__main__":
    main()

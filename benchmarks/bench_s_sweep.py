"""Construction cost vs s — the pruning curve behind the s-line design.

How much does the degree filter (Alg. 1 line 6) and the count threshold
actually save as s grows?  Sweeps s over each skewed stand-in, reporting
eligible-hyperedge fraction, output size, and simulated construction work
relative to s = 1 — quantifying §III-B.4's "lower-order approximation"
trade-off curve.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.linegraph import slinegraph_hashmap
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

S_SWEEP = [1, 2, 4, 8, 16]
THREADS = 16


@pytest.mark.parametrize("name", ["orkut-group", "com-orkut"])
def test_cost_vs_s(benchmark, record, name):
    h = BiAdjacency.from_biedgelist(load(name))
    sizes = h.edge_sizes()

    def sweep():
        out = []
        for s in S_SWEEP:
            rt = ParallelRuntime(num_threads=THREADS, partitioner="cyclic")
            rt.new_run()
            el = slinegraph_hashmap(h, s, runtime=rt)
            out.append(
                (
                    s,
                    float((sizes >= s).mean()),
                    el.num_edges(),
                    rt.ledger.total_work,
                )
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_work = results[0][3]
    rows = [
        (
            f"s={s}",
            f"{frac:.2f}",
            f"{edges}",
            f"{work / base_work:.2f}x",
        )
        for s, frac, edges, work in results
    ]
    record(
        f"s-sweep — construction cost and output vs s: {name} "
        f"(relative to s=1, t={THREADS})",
        format_table(
            ["s", "eligible frac", "line edges", "work vs s=1"], rows
        ),
    )
    # pruning must be monotone in both output and (weakly) work
    edges_seq = [r[2] for r in results]
    assert all(a >= b for a, b in zip(edges_seq, edges_seq[1:]))
    assert results[-1][3] <= results[0][3]

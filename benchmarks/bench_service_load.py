"""Service load benchmark: traffic-shaped runs + the noisy-neighbor proof.

Two scenarios against a real :class:`AsyncAnalyticsServer` over sockets
(the engine, cache, admission control, and quota paths all exercised
end to end), written to ``BENCH_service_load.json`` at the repo root —
the artifact CI's load-smoke job uploads:

* ``mixed`` — an open-loop run of two tenants with different op mixes
  (one read-mostly mix with heavy analytics and mutation bursts, one
  pure point-lookup tenant).  Latencies are coordinated-omission
  correct (measured from the workload's intended timestamps), and the
  declarative SLO gates — p99 bound, zero error rate, minimum
  throughput — must pass.
* ``noisy_neighbor`` — the per-tenant-quota isolation claim, measured:
  first a baseline run of a quiet point-lookup tenant alone, then the
  same quiet tenant next to a bursty tenant offering ~10x its quota.
  The gates assert the quota does its job: the bursty tenant is shed
  heavily, the quiet tenant is never shed, and the quiet tenant's p99
  stays within a noise envelope of its baseline.

Durations are deliberately short (a few seconds total) so the benchmark
doubles as a CI smoke; ``REPRO_LOAD_DURATION`` scales the per-run
duration for longer local investigations.

Run directly (``python benchmarks/bench_service_load.py``) or through
pytest (``pytest benchmarks/bench_service_load.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.load import (
    LoadReport,
    SLOGate,
    TenantSpec,
    WorkloadSpec,
    run_workload,
)
from repro.io.generators import uniform_random_hypergraph
from repro.service import AsyncAnalyticsServer, QueryEngine

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_service_load.json"

DURATION_S = float(os.environ.get("REPRO_LOAD_DURATION", "1.5"))
NUM_KEYS = 64
#: the quiet tenant's p99 may grow this much next to a quota'd neighbor
#: before we call the isolation broken (absolute floor below guards the
#: sub-millisecond regime where ratios are all noise)
NEIGHBOR_P99_RATIO = 5.0
NEIGHBOR_P99_FLOOR_MS = 50.0


def _engine() -> QueryEngine:
    engine = QueryEngine()
    hypergraph = uniform_random_hypergraph(300, 200, 4, seed=11)
    engine.store.register("load", hypergraph)
    # warm the s=1 line graph so the first heavy op isn't a cold build
    engine.execute({"op": "s_connected_components", "dataset": "load", "s": 1})
    return engine


def _scenario_mixed() -> dict:
    spec = WorkloadSpec(
        tenants=(
            TenantSpec("analytics", rps=120.0, connections=2),
            TenantSpec(
                "lookups",
                rps=200.0,
                connections=2,
                mix={"s_degree": 0.7, "s_neighbors": 0.3},
            ),
        ),
        duration_s=DURATION_S,
        seed=2026,
        num_keys=NUM_KEYS,
    )
    gates = [
        SLOGate("error_rate", max=0.0),
        SLOGate("shed_rate", max=0.0),
        SLOGate("p99_ms", max=1500.0),
        SLOGate("rps", min=0.5 * (120.0 + 200.0)),
        SLOGate("p99_ms", max=1500.0, tenant="lookups"),
    ]
    engine = _engine()
    try:
        with AsyncAnalyticsServer(engine, max_inflight=8) as server:
            run = run_workload(server.address, spec, mode="open")
    finally:
        engine.close()
    report = LoadReport(run)
    print(report.format_text())
    doc = report.as_dict(gates)
    doc["workload"] = spec.as_dict()
    for gate in report.evaluate(gates):
        print(gate.describe())
        assert gate.ok, gate.describe()
    assert not run.transport_errors, run.transport_errors
    return doc


def _scenario_noisy_neighbor() -> dict:
    quiet = TenantSpec(
        "quiet",
        rps=100.0,
        connections=2,
        mix={"s_degree": 0.7, "s_neighbors": 0.3},
    )
    bursty = TenantSpec(
        "bursty",
        rps=400.0,
        connections=2,
        mix={"s_degree": 1.0},
    )
    quota = {"bursty": {"rate": 40.0, "burst": 40.0}}

    def _run(tenants: tuple) -> LoadReport:
        spec = WorkloadSpec(
            tenants=tenants,
            duration_s=DURATION_S,
            seed=7,
            num_keys=NUM_KEYS,
        )
        engine = _engine()
        try:
            with AsyncAnalyticsServer(
                engine, max_inflight=8, quotas=quota
            ) as server:
                return LoadReport(
                    run_workload(server.address, spec, mode="open")
                )
        finally:
            engine.close()

    baseline = _run((quiet,))
    contended = _run((quiet, bursty))
    base_panel = baseline.panel("quiet")
    quiet_panel = contended.panel("quiet")
    bursty_panel = contended.panel("bursty")
    p99_limit = max(
        NEIGHBOR_P99_RATIO * base_panel["p99_ms"], NEIGHBOR_P99_FLOOR_MS
    )
    gates = [
        # the quota-protected promise, as declarative gates
        SLOGate("shed_rate", max=0.0, tenant="quiet"),
        SLOGate("error_rate", max=0.0, tenant="quiet"),
        SLOGate("p99_ms", max=p99_limit, tenant="quiet"),
        SLOGate("shed_rate", min=0.5, tenant="bursty"),
    ]
    print("noisy neighbor: baseline (quiet alone)")
    print(baseline.format_text())
    print("noisy neighbor: contended (quiet + bursty over quota)")
    print(contended.format_text())
    for gate in contended.evaluate(gates):
        print(gate.describe())
        assert gate.ok, gate.describe()
    assert bursty_panel["shed"] > 0, "bursty tenant was never shed"
    assert quiet_panel["shed"] == 0, "quiet tenant lost requests to sheds"
    doc = contended.as_dict(gates)
    doc["baseline_quiet"] = base_panel
    doc["p99_limit_ms"] = p99_limit
    return doc


def run() -> dict:
    return {
        "generated_by": "benchmarks/bench_service_load.py",
        "duration_s": DURATION_S,
        "num_keys": NUM_KEYS,
        "scenarios": {
            "mixed": _scenario_mixed(),
            "noisy_neighbor": _scenario_noisy_neighbor(),
        },
    }


def main() -> None:
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {OUT}")


def test_service_load_gates(record):
    doc = run()
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    mixed = doc["scenarios"]["mixed"]["overall"]
    noisy = doc["scenarios"]["noisy_neighbor"]
    record(
        "Service load: SLO gates + noisy-neighbor isolation",
        f"mixed: {mixed['ops']} ops @ {mixed['rps']:.0f} rps, "
        f"p99 {mixed['p99_ms']:.2f} ms; "
        f"quiet p99 {noisy['tenants']['quiet']['p99_ms']:.2f} ms "
        f"(limit {noisy['p99_limit_ms']:.1f}) beside bursty shed_rate "
        f"{noisy['tenants']['bursty']['shed_rate']:.2f}",
    )


if __name__ == "__main__":
    main()

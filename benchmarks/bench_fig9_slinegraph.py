"""Figure 9 — s-line graph construction: queue vs non-queue algorithms.

Per dataset: Hashmap [18], Intersection [17], Algorithm 1 (queue hashmap)
and Algorithm 2 (queue intersection), each swept over {blocked, cyclic}
partitioning × {none, ascending, descending} relabel-by-degree; only the
fastest configuration is reported, normalized to Hashmap's best — exactly
the paper's protocol.

Expected shape (paper §IV-D): Algorithm 1 ≈ Hashmap and Algorithm 2 ≈
Intersection, i.e. the queue-based variants match their non-queue
counterparts while additionally supporting permuted/adjoin ID spaces.
"""

import pytest

from repro.bench.harness import fig9_slinegraph
from repro.bench.reporting import format_fig9
from repro.io.datasets import DATASETS, load
from repro.linegraph import (
    slinegraph_hashmap,
    slinegraph_intersection,
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.structures.biadjacency import BiAdjacency

ALL = sorted(DATASETS)
S = 2

_KERNELS = {
    "hashmap": slinegraph_hashmap,
    "intersection": slinegraph_intersection,
    "queue_hashmap": slinegraph_queue_hashmap,
    "queue_intersection": slinegraph_queue_intersection,
}


@pytest.mark.parametrize("name", ALL)
def test_fig9_normalized_table(benchmark, record, name):
    rows = benchmark.pedantic(
        fig9_slinegraph, args=(name,), kwargs={"s": S, "threads": 32},
        rounds=1, iterations=1,
    )
    record(f"Fig. 9 — s-line construction (s={S}): {name}", format_fig9(rows))
    by = {r.algorithm: r for r in rows}
    # queue variants within 2x of their non-queue counterparts
    assert by["Alg1 (queue hashmap)"].best_makespan < (
        2.0 * by["Hashmap"].best_makespan
    )
    assert by["Alg2 (queue intersect)"].best_makespan < (
        2.0 * by["Intersection"].best_makespan
    )


@pytest.mark.parametrize("kernel", sorted(_KERNELS))
@pytest.mark.parametrize("name", ["rand1", "orkut-group"])
def test_wallclock_construction(benchmark, name, kernel):
    h = BiAdjacency.from_biedgelist(load(name))
    el = benchmark(_KERNELS[kernel], h, S)
    assert el.num_vertices() == h.num_hyperedges()


@pytest.mark.parametrize("name", ["rand1", "com-orkut"])
def test_wallclock_matrix_oracle(benchmark, name):
    from repro.linegraph import slinegraph_matrix

    h = BiAdjacency.from_biedgelist(load(name))
    el = benchmark(slinegraph_matrix, h, S)
    assert el.num_vertices() == h.num_hyperedges()

"""Ablation B (§III-D) — blocked vs cyclic partitioning under skew.

The paper's motivation for the cyclic range adaptors: blocked partitioning
of degree-sorted skewed inputs gives the first threads nearly all the work.
We sort each dataset's hyperedges by descending size (worst case for
blocked), then compare partitioners and schedulers on label-propagation CC.
"""

import pytest

from repro.algorithms.hypercc import hypercc
from repro.bench.reporting import format_table
from repro.io.datasets import DATASETS, load, skewness
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import relabel_hyperedges

THREADS = 32
SKEWED = sorted(set(DATASETS) - {"rand1"})


def _span(h, partitioner: str, scheduler: str) -> float:
    rt = ParallelRuntime(
        num_threads=THREADS, partitioner=partitioner, scheduler=scheduler
    )
    rt.new_run()
    hypercc(h, runtime=rt)
    return rt.makespan


@pytest.mark.parametrize("name", SKEWED)
def test_cyclic_beats_blocked_on_sorted_skew(benchmark, record, name):
    h, _ = relabel_hyperedges(
        BiAdjacency.from_biedgelist(load(name)), "descending"
    )

    def sweep():
        return {
            (p, s): _span(h, p, s)
            for p in ("blocked", "cyclic")
            for s in ("static", "work_stealing")
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(p, s, f"{v:.0f}") for (p, s), v in sorted(spans.items())]
    record(
        f"Ablation B — partition × scheduler on degree-sorted {name} "
        f"(skew {skewness(load(name)):.0f}x, t={THREADS})",
        format_table(["partitioner", "scheduler", "makespan"], rows),
    )
    # under static scheduling, cyclic must beat blocked on sorted skew
    assert spans[("cyclic", "static")] <= spans[("blocked", "static")]
    # work stealing rescues blocked partitioning
    assert spans[("blocked", "work_stealing")] <= spans[("blocked", "static")]


def test_uniform_dataset_insensitive(benchmark, record):
    """Rand1 control: partitioning choice barely matters without skew."""
    h = BiAdjacency.from_biedgelist(load("rand1"))
    blocked = benchmark.pedantic(
        _span, args=(h, "blocked", "static"), rounds=1, iterations=1
    )
    cyclic = _span(h, "cyclic", "static")
    record(
        "Ablation B — Rand1 control (uniform)",
        f"blocked {blocked:.0f} vs cyclic {cyclic:.0f} "
        f"(ratio {max(blocked, cyclic) / min(blocked, cyclic):.3f})",
    )
    assert max(blocked, cyclic) / min(blocked, cyclic) < 1.2

"""Approximation-quality study — how faithful are s-metrics? ([17], [18])

The paper leans on its companion works' finding that s-line metrics
approximate hypergraph metrics well "even though information loss is
existent".  This study quantifies that on the stand-ins:

* **distance fidelity**: 1-line distances are *exact* (half the bipartite
  distance — proven by `tests/test_approximation.py`); for s > 1 we report
  how much of the hyperedge pair space stays mutually reachable and the
  mean distance inflation among still-reachable pairs;
* **centrality fidelity**: Spearman rank correlation between hyperedge
  betweenness computed exactly (Brandes on the adjoin graph, restricted to
  hyperedge vertices) and on the s-line approximation, per s.
"""

import numpy as np
import pytest
from scipy import stats

from repro.bench.reporting import format_table
from repro.graph.betweenness import betweenness_centrality
from repro.graph.bfs import bfs_top_down
from repro.io.datasets import load
from repro.linegraph import linegraph_csr, slinegraph_ensemble
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

S_VALUES = [1, 2, 4]
SOURCES = 24  # distance sampling


def _distance_fidelity(h: BiAdjacency, graphs: dict[int]) -> list[tuple]:
    rng = np.random.default_rng(0)
    n = h.num_hyperedges()
    sources = rng.choice(n, size=min(SOURCES, n), replace=False)
    base = {
        int(src): bfs_top_down(graphs[1], int(src))[0] for src in sources
    }
    rows = []
    for s in S_VALUES:
        reachable = 0
        kept = 0
        inflation: list[float] = []
        for src in sources:
            d1 = base[int(src)]
            ds = bfs_top_down(graphs[s], int(src))[0]
            mask1 = d1 > 0
            reachable += int(mask1.sum())
            still = mask1 & (ds > 0)
            kept += int(still.sum())
            if still.any():
                inflation.append(float((ds[still] / d1[still]).mean()))
        rows.append(
            (
                f"s={s}",
                f"{kept / reachable:.2f}" if reachable else "n/a",
                f"{np.mean(inflation):.2f}x" if inflation else "n/a",
            )
        )
    return rows


def _betweenness_fidelity(
    el, h: BiAdjacency, graphs: dict[int]
) -> list[tuple]:
    g = AdjoinGraph.from_biedgelist(el)
    exact_full = betweenness_centrality(g.graph, normalized=False)
    exact_edges, _ = g.split_result(exact_full)
    rows = []
    for s in S_VALUES:
        approx = betweenness_centrality(graphs[s], normalized=False)
        rho, _p = stats.spearmanr(exact_edges, approx)
        rows.append((f"s={s}", f"{rho:.3f}"))
    return rows, exact_edges


@pytest.mark.parametrize("name", ["orkut-group"])
def test_approximation_quality(benchmark, record, name):
    el = load(name)
    h = BiAdjacency.from_biedgelist(el)

    def study():
        graphs = {
            s: linegraph_csr(e)
            for s, e in slinegraph_ensemble(h, S_VALUES).items()
        }
        dist_rows = _distance_fidelity(h, graphs)
        bc_rows, exact = _betweenness_fidelity(el, h, graphs)
        return dist_rows, bc_rows

    dist_rows, bc_rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record(
        f"Approximation quality — distances ({name}): pair coverage and "
        "mean inflation vs the exact (s=1) distances",
        format_table(["s", "pairs kept", "distance inflation"], dist_rows),
    )
    record(
        f"Approximation quality — hyperedge betweenness ({name}): "
        "Spearman rank correlation vs exact adjoin-graph betweenness",
        format_table(["s", "spearman rho"], bc_rows),
    )
    # s=1 must correlate strongly (same reachability structure)
    rho1 = float(bc_rows[0][1])
    assert rho1 > 0.6
    # correlation decays (information loss) but stays meaningfully positive
    rhos = [float(r[1]) for r in bc_rows]
    assert rhos[-1] > 0.2
    # s=1 keeps every pair by the exactness identity
    assert dist_rows[0][1] == "1.00"

"""Representation memory study — §III-B's space trade-off discussion.

The paper motivates s-line graphs and warns about clique expansion largely
on *space* grounds: "the size of the clique-expansion graph increases
exponentially compared to its original hypergraph representation".  We
measure the exact backing-array bytes of every representation over the
Table I stand-ins: bipartite (two CSRs), adjoin (one symmetric CSR),
clique expansion, and s-line graphs at increasing s.
"""

import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import DATASETS, load
from repro.linegraph import clique_expansion, linegraph_csr, slinegraph_ensemble
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency


def _measure(name: str) -> dict[str, int]:
    el = load(name)
    h = BiAdjacency.from_biedgelist(el)
    g = AdjoinGraph.from_biedgelist(el)
    out = {
        "bipartite (2 CSRs)": h.nbytes(),
        "adjoin (1 CSR)": g.nbytes(),
    }
    for s, lel in slinegraph_ensemble(h, [1, 2, 4]).items():
        out[f"s-line s={s}"] = linegraph_csr(lel).nbytes()
    out["clique expansion"] = linegraph_csr(clique_expansion(h)).nbytes()
    return out


@pytest.mark.parametrize("name", ["com-orkut", "orkut-group", "rand1"])
def test_memory_table(benchmark, record, name):
    sizes = benchmark.pedantic(_measure, args=(name,), rounds=1, iterations=1)
    base = sizes["bipartite (2 CSRs)"]
    rows = [
        (rep, f"{b / 1024:.0f} KiB", f"{b / base:.2f}x")
        for rep, b in sizes.items()
    ]
    record(
        f"Memory — representation footprints: {name} "
        "(relative to bipartite)",
        format_table(["representation", "bytes", "vs bipartite"], rows),
    )
    # paper claims, asserted:
    # 1) adjoin is about the same size as bipartite (same nnz, one CSR)
    assert 0.5 <= sizes["adjoin (1 CSR)"] / base <= 1.5
    # 2) the 1-line graph dwarfs the hypergraph on overlap-dense inputs...
    if name != "rand1":
        assert sizes["s-line s=1"] > base
    # 3) ...and higher s prunes it back down
    assert sizes["s-line s=4"] <= sizes["s-line s=2"] <= sizes["s-line s=1"]

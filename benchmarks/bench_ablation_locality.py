"""Ablation F — relabel-by-degree's memory-locality effect (§III-B.2).

Relabel-by-degree is credited with improving the "memory access pattern"
(Cuthill–McKee-style [9]): giving hot entities adjacent IDs compacts the
CSR rows traversals stream.  The scheduler simulation cannot see this —
it models work placement, not caches — so this ablation measures it
directly with the cache-line traffic estimator
(:mod:`repro.bench.locality`): distinct 64-byte lines touched by a
full-frontier gather over the hyperedge incidence, before and after
relabeling, on the skewed stand-ins.
"""

import numpy as np
import pytest

from repro.bench.locality import traversal_line_traffic
from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.parallel.partition import blocked_range
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import relabel_hyperedges

THREADS = 32


def _traffic(h: BiAdjacency) -> int:
    """Line traffic of gathering the hot half of the hyperedge frontier."""
    sizes = h.edge_sizes()
    hot = np.argsort(sizes)[::-1][: max(1, sizes.size // 8)]
    chunks = blocked_range(np.sort(hot), THREADS)
    total, _ = traversal_line_traffic(h.edges, chunks)
    return total


@pytest.mark.parametrize("name", ["com-orkut", "livejournal", "web"])
def test_relabel_reduces_line_traffic(benchmark, record, name):
    h = BiAdjacency.from_biedgelist(load(name))

    def sweep():
        out = {"none": _traffic(h)}
        for order in ("descending", "ascending"):
            rh, _ = relabel_hyperedges(h, order)
            out[order] = _traffic(rh)
        return out

    traffic = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = traffic["none"]
    rows = [
        (order, f"{t}", f"{t / base:.2f}x") for order, t in traffic.items()
    ]
    record(
        f"Ablation F — estimated cache-line traffic of hot-frontier "
        f"gathers: {name}",
        format_table(["relabel", "lines", "vs none"], rows),
    )
    # descending relabel clusters the hot hyperedges' rows -> fewer lines
    assert traffic["descending"] <= base

"""Dynamic updates — incremental s-line patching vs full rebuild.

The patch-or-rebuild policy (`repro.dynamic.policy`) is calibrated on a
simple claim: while the dirty fraction of a mutation batch is small, the
two-hop delta recount does asymptotically less work than re-running
construction over the whole hypergraph.  This sweep measures the claim
on `rand1` (5 000 hyperedges, uniform size 10 — the paper's synthetic
workhorse): apply one mixed mutation batch per batch size, time the
in-place patch against a from-scratch rebuild on the post-mutation
state, and verify the two produce bit-identical line graphs.

Acceptance: at the paper-scale operating point — batches up to 1 % of
the hyperedge set (50 ops on rand1) — patching must beat the rebuild.
"""

import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.hypergraph import NWHypergraph
from repro.dynamic import DynamicHypergraph, IncrementalSLineGraph
from repro.dynamic.policy import DEFAULT_PATCH_THRESHOLD, should_patch
from repro.io.datasets import load

S = 2
BATCH_SIZES = [5, 10, 25, 50, 100, 500]
ONE_PERCENT = 50  # 1% of rand1's 5000 hyperedges


def _hypergraph() -> NWHypergraph:
    el = load("rand1")
    return NWHypergraph(
        el.part0, el.part1, el.weights,
        num_edges=el.num_vertices(0), num_nodes=el.num_vertices(1),
    )


def _mixed_batch(rng, dyn, size: int) -> list[dict]:
    """An applicable batch: ~1/2 edge adds, ~1/4 removals, ~1/4 membership flips."""
    state = dyn.state
    num_nodes = dyn.snapshot().number_of_nodes()
    live = [
        e for e in range(state.num_edges()) if state.members(e).size > 0
    ]
    rng.shuffle(live)
    batch: list[dict] = []
    for i in range(size):
        kind = i % 4
        if kind in (0, 1) or not live:
            members = rng.choice(num_nodes, size=10, replace=False)
            batch.append({"op": "add_edge", "members": members.tolist()})
        elif kind == 2:
            batch.append({"op": "remove_edge", "edge": live.pop()})
        else:
            e = live.pop()
            v = int(state.members(e)[0])
            batch.append({"op": "remove_incidence", "edge": e, "node": v})
    return batch


def test_patch_vs_rebuild_across_batch_sizes(benchmark, record):
    def sweep():
        rows = []
        for size in BATCH_SIZES:
            dyn = DynamicHypergraph(_hypergraph())
            # threshold=1.0: always patch, so the sweep measures the
            # patch path even past the default policy's crossover
            inc = IncrementalSLineGraph(dyn, threshold=1.0)
            inc.materialize(S)
            rng = np.random.default_rng(size)
            res = dyn.apply(_mixed_batch(rng, dyn, size))

            t0 = time.perf_counter()
            inc.update(res)
            patch_ms = (time.perf_counter() - t0) * 1e3

            snap = dyn.snapshot()
            fresh = NWHypergraph(
                snap.row, snap.col,
                num_edges=snap.number_of_edges(),
                num_nodes=snap.number_of_nodes(),
            )
            t0 = time.perf_counter()
            ref = fresh.s_linegraph(S)
            rebuild_ms = (time.perf_counter() - t0) * 1e3

            got = inc.linegraph(S).edgelist
            assert np.array_equal(got.src, ref.edgelist.src)
            assert np.array_equal(got.dst, ref.edgelist.dst)
            assert np.array_equal(got.weights, ref.edgelist.weights)

            dirty_frac = len(res.dirty_edges) / snap.number_of_edges()
            rows.append((size, len(res.dirty_edges), dirty_frac,
                         patch_ms, rebuild_ms))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        f"dynamic updates — patch vs rebuild of L_{S} on rand1",
        format_table(
            ["batch", "dirty edges", "dirty %", "patch (ms)",
             "rebuild (ms)", "speedup", "policy"],
            [(f"{size}", f"{dirty}", f"{frac:.2%}", f"{p:.1f}",
              f"{r:.1f}", f"{r / p:.1f}x",
              "patch" if should_patch(dirty, 5000) else "rebuild")
             for size, dirty, frac, p, r in rows],
        ),
    )
    # the acceptance operating point: batches <= 1% of the hyperedge set
    for size, _, _, patch_ms, rebuild_ms in rows:
        if size <= ONE_PERCENT:
            assert patch_ms < rebuild_ms, (size, patch_ms, rebuild_ms)
    # and the default 10% threshold must sit on the winning side wherever
    # it chooses to patch
    for size, dirty, _, patch_ms, rebuild_ms in rows:
        if should_patch(dirty, 5000, DEFAULT_PATCH_THRESHOLD):
            assert patch_ms < rebuild_ms, (size, patch_ms, rebuild_ms)

"""GAP-style kernel suite on a materialized s-line graph.

The framework's "leverage highly-tuned graph algorithms" workflow (§I, §V;
NWGraph was evaluated with the GAP benchmark suite [4]): once the s-line
approximation exists, the standard kernel set — BFS, CC, SSSP, PageRank,
Betweenness, Triangle Counting — runs on it directly.  Wall-clock
benchmarks of every kernel over the 2-line graph of the densest stand-in.
"""

import numpy as np
import pytest

from repro.graph.betweenness import betweenness_centrality
from repro.graph.bfs import bfs_direction_optimizing
from repro.graph.cc import connected_components
from repro.graph.kcore import core_number
from repro.graph.pagerank import pagerank
from repro.graph.sssp import delta_stepping
from repro.graph.triangles import triangle_count
from repro.io.datasets import load
from repro.linegraph import linegraph_csr, slinegraph_hashmap
from repro.structures.biadjacency import BiAdjacency


@pytest.fixture(scope="module")
def lg():
    h = BiAdjacency.from_biedgelist(load("rand1"))
    return linegraph_csr(slinegraph_hashmap(h, 2))


def test_gap_bfs(benchmark, lg):
    dist, _ = benchmark(bfs_direction_optimizing, lg, 0)
    assert dist[0] == 0


def test_gap_cc(benchmark, lg):
    labels = benchmark(connected_components, lg, "afforest")
    assert labels.size == lg.num_vertices()


def test_gap_sssp(benchmark, lg):
    dist, _ = benchmark(delta_stepping, lg, 0)
    assert dist[0] == 0.0


def test_gap_pagerank(benchmark, lg):
    pr = benchmark(pagerank, lg)
    assert pr.sum() == pytest.approx(1.0)


def test_gap_betweenness_sampled(benchmark, lg):
    sources = np.arange(0, lg.num_vertices(), 50)
    bc = benchmark(
        betweenness_centrality, lg, True, sources
    )
    assert bc.size == lg.num_vertices()


def test_gap_triangle_count(benchmark, lg):
    tc = benchmark(triangle_count, lg)
    assert tc >= 0


def test_kcore_extra(benchmark, lg):
    cores = benchmark(core_number, lg)
    assert cores.max() >= 1

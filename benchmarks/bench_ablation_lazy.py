"""Ablation D — lazy s-line queries vs materialized construction.

The memory/recompute trade-off behind §III-B's approximation discussion:
materializing ``L_s(H)`` pays its full construction once and answers every
query cheaply; the lazy traversal answers one query at the cost of the
two-hop volume its BFS actually touches, storing nothing.  We measure both
in simulated work units and in wall-clock, for a point query (s-distance)
and a global one (s-CC), on the most overlap-dense stand-in.
"""

import numpy as np
import pytest

from repro.algorithms.s_traversal import s_bfs_lazy, s_distance_lazy
from repro.bench.reporting import format_table
from repro.graph.bfs import bfs_top_down
from repro.io.datasets import load
from repro.linegraph import linegraph_csr, slinegraph_hashmap
from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency

S = 2


@pytest.fixture(scope="module")
def h():
    return BiAdjacency.from_biedgelist(load("orkut-group"))


def test_lazy_point_query_cheaper_than_materialize(benchmark, record, h):
    """One s-distance query: lazy BFS touches less work than full
    construction when the query terminates early."""
    rt_full = ParallelRuntime(num_threads=1)
    slinegraph_hashmap(h, S, runtime=rt_full)
    construct_work = rt_full.ledger.total_work

    rt_lazy = ParallelRuntime(num_threads=1)
    src = 0
    dist = benchmark.pedantic(
        s_bfs_lazy, args=(h, src, S), kwargs={"runtime": rt_lazy},
        rounds=1, iterations=1,
    )
    lazy_work = rt_lazy.ledger.total_work
    record(
        "Ablation D — one s-BFS, lazy vs full construction "
        "(orkut-group, simulated work units)",
        format_table(
            ["approach", "work"],
            [
                ("materialize L_s (hashmap)", f"{construct_work:.0f}"),
                ("lazy s-BFS from one source", f"{lazy_work:.0f}"),
            ],
        ),
    )
    assert dist[src] == 0
    # a single-source query should not cost much more than one construction
    assert lazy_work < 4 * construct_work


def test_lazy_matches_materialized_on_dataset(benchmark, h):
    lg = linegraph_csr(slinegraph_hashmap(h, S))
    ref, _ = bfs_top_down(lg, 0)
    lazy = benchmark(s_bfs_lazy, h, 0, S)
    assert np.array_equal(lazy, ref)


def test_point_distance_early_exit(benchmark, record, h):
    """s_distance_lazy stops at the target level; measure wall clock."""
    lg = linegraph_csr(slinegraph_hashmap(h, S))
    ref, _ = bfs_top_down(lg, 0)
    reachable = np.flatnonzero(ref > 0)
    target = int(reachable[0]) if reachable.size else 0
    d = benchmark(s_distance_lazy, h, 0, target, S)
    assert d == ref[target]
    record(
        "Ablation D — early-exit point query",
        f"s_distance(0 -> {target}) = {d} on orkut-group (s={S})",
    )

"""Table I — input characteristics of the (stand-in) datasets.

Regenerates the paper's Table I over the seeded stand-ins and prints it
next to the published values.  The wall-clock benchmark times dataset
generation + statistics (the ingestion path of the framework).
"""

import pytest

from repro.io.datasets import DATASETS, PAPER_TABLE1, dataset_stats, table1
from repro.bench.reporting import format_table, format_table1


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_generate_dataset(benchmark, name):
    spec = DATASETS[name]
    el = benchmark.pedantic(spec.build, rounds=3, iterations=1)
    assert el.num_vertices(0) > 0


def test_table1_report(benchmark, record):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    record("Table I (measured over stand-ins)", format_table1(rows))
    paper_rows = [PAPER_TABLE1[r.name] for r in rows]
    record("Table I (paper, original scale)", format_table1(paper_rows))
    side = [
        (
            r.name,
            f"{r.avg_node_degree:.1f}/{p.avg_node_degree:g}",
            f"{r.avg_edge_size:.1f}/{p.avg_edge_size:g}",
            f"{r.max_node_degree / max(r.avg_node_degree, 1e-9):.0f}x"
            f"/{p.max_node_degree / p.avg_node_degree:.0f}x",
            f"{r.max_edge_size / max(r.avg_edge_size, 1e-9):.0f}x"
            f"/{p.max_edge_size / p.avg_edge_size:.0f}x",
        )
        for r, p in zip(rows, paper_rows)
    ]
    record(
        "Table I shape check (ours/paper)",
        format_table(
            ["dataset", "avg d_v", "avg d_e", "skew d_v", "skew d_e"], side
        ),
    )
    for r, p in zip(rows, paper_rows):
        assert 0.5 <= r.avg_node_degree / p.avg_node_degree <= 2.0

"""Weak scaling — constant work per thread (the strong-scaling complement).

Figures 7–8 hold the input fixed and grow threads; the dual experiment
grows the input *with* the threads (Gustafson's view): a uniform
hypergraph of ``t × base`` hyperedges on ``t`` threads should keep the
simulated makespan roughly flat if the algorithms scale.  Run for CC on
the Rand1 recipe (the only generator whose per-edge work is constant by
construction).
"""

import pytest

from repro.algorithms.adjoincc import adjoincc
from repro.bench.harness import nwhy_runtime
from repro.bench.reporting import format_table
from repro.io.generators import uniform_random_hypergraph
from repro.structures.adjoin import AdjoinGraph

BASE_EDGES = 600
EDGE_SIZE = 10
GRID = (1, 2, 4, 8, 16)


def _makespan(threads: int) -> float:
    el = uniform_random_hypergraph(
        num_edges=BASE_EDGES * threads,
        num_nodes=BASE_EDGES * threads,
        edge_size=EDGE_SIZE,
        seed=1000 + threads,
    )
    g = AdjoinGraph.from_biedgelist(el)
    rt = nwhy_runtime(threads)
    rt.new_run()
    adjoincc(g, runtime=rt)
    return rt.makespan


def test_weak_scaling_cc(benchmark, record):
    spans = benchmark.pedantic(
        lambda: {t: _makespan(t) for t in GRID}, rounds=1, iterations=1
    )
    base = spans[GRID[0]]
    rows = [
        (f"t={t} (n={BASE_EDGES * t})", f"{span:.0f}",
         f"{span / base:.2f}x")
        for t, span in spans.items()
    ]
    record(
        "Weak scaling — AdjoinCC on Rand1-style inputs "
        f"({BASE_EDGES} hyperedges per thread)",
        format_table(["config", "makespan", "vs t=1"], rows),
    )
    # flat within 2x across a 16x size range = weak-scalable
    assert max(spans.values()) / min(spans.values()) < 2.0

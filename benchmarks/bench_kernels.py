"""Micro-benchmarks of the hot kernels (performance regression surface).

Wall-clock timings of the vectorized primitives every algorithm is built
from: CSR indexing (counting sort), frontier gathering, two-hop multiplicity
counting, batched set intersection, and the atomics.  These are the pieces
the hpc-parallel guides say to profile first — if one of them regresses,
every figure above it moves.
"""

import numpy as np
import pytest

from repro.graph.traversal import gather_neighbors, multi_slice
from repro.io.datasets import load
from repro.linegraph.common import batch_intersect_counts, two_hop_pair_counts
from repro.parallel.atomics import write_min
from repro.structures.biadjacency import BiAdjacency
from repro.structures.csr import CSR


@pytest.fixture(scope="module")
def h() -> BiAdjacency:
    return BiAdjacency.from_biedgelist(load("com-orkut"))


def test_csr_from_coo(benchmark, h):
    src = np.repeat(
        np.arange(h.num_hyperedges(), dtype=np.int64), h.edge_sizes()
    )
    dst = h.edges.indices
    g = benchmark(
        CSR.from_coo, src, dst, None, h.num_hyperedges(), h.num_hypernodes()
    )
    assert g.num_edges() == h.num_incidences()


def test_gather_neighbors_full_frontier(benchmark, h):
    frontier = np.arange(h.num_hyperedges(), dtype=np.int64)
    src, dst = benchmark(gather_neighbors, h.edges, frontier)
    assert dst.size == h.num_incidences()


def test_multi_slice(benchmark, h):
    ids = np.arange(h.num_hyperedges(), dtype=np.int64)
    starts = h.edges.indptr[ids]
    counts = h.edges.indptr[ids + 1] - starts
    out = benchmark(multi_slice, h.edges.indices, starts, counts)
    assert out.size == h.num_incidences()


def test_two_hop_counting(benchmark, h):
    ids = np.arange(h.num_hyperedges(), dtype=np.int64)
    src, dst, cnt, work = benchmark(
        two_hop_pair_counts, h.edges, h.nodes, ids
    )
    assert cnt.size > 0 and work > 0


def test_batch_intersection(benchmark, h):
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, h.num_hyperedges(), size=(5000, 2))
    counts = benchmark(batch_intersect_counts, h.edges, pairs)
    assert counts.size == 5000


def test_write_min_atomic(benchmark):
    rng = np.random.default_rng(1)
    idx = rng.integers(0, 10_000, size=200_000)
    vals = rng.integers(0, 1_000_000, size=200_000)

    def run():
        arr = np.full(10_000, np.iinfo(np.int64).max)
        return write_min(arr, idx, vals)

    changed = benchmark(run)
    assert changed > 0


def test_transpose(benchmark, h):
    t = benchmark(h.edges.transpose)
    assert t.num_edges() == h.num_incidences()


@pytest.mark.parametrize("kernel", ["auto", "hashmap"])
def test_slinegraph_kernel(benchmark, h, kernel):
    """Builder-level kernel surface (auto = the bucketed dispatcher)."""
    from repro.linegraph import to_two_graph

    g = benchmark(to_two_graph, h, 2, algorithm="hashmap", kernel=kernel)
    assert g.src.size > 0


def test_bucketize_full_frontier(benchmark, h):
    """Dispatch overhead: one vectorized pass over the whole frontier."""
    from repro.linegraph.dispatch import bucketize

    frontier = np.arange(h.num_hyperedges(), dtype=np.int64)
    buckets = benchmark(bucketize, h.edges, h.nodes, frontier, 2)
    assert sum(ids.size for _, ids in buckets) > 0


def test_bitset_hub_rows(benchmark, h):
    """Dense AND+popcount sweep over the highest-degree rows only."""
    from repro.linegraph.bitset import bitset_rows

    sizes = h.edge_sizes()
    ids = np.sort(np.argsort(sizes)[-64:].astype(np.int64))
    src, dst, cnt, stats, work = benchmark(bitset_rows, h.edges, ids, 2)
    assert work > 0

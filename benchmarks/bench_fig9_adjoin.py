"""Figure 9 companion — the queue algorithms' versatility axis.

The paper's point about Algorithms 1–2 is not only parity with the
non-queue algorithms (bench_fig9_slinegraph) but *representation
independence*: they run unchanged on the adjoin (single-index-set) form,
which the contiguous-range algorithms cannot.  This bench measures the
queue algorithms on both representations of each dataset and asserts the
adjoin runs stay within a small factor of the bipartite runs — i.e. the
flexibility costs (almost) nothing.
"""

import pytest

from repro.bench.reporting import format_table
from repro.io.datasets import load
from repro.linegraph import (
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency

S = 2
THREADS = 32

ALGOS = {
    "Alg1 (queue hashmap)": slinegraph_queue_hashmap,
    "Alg2 (queue intersect)": slinegraph_queue_intersection,
}


def _span(fn, rep) -> float:
    rt = ParallelRuntime(num_threads=THREADS, partitioner="cyclic")
    rt.new_run()
    fn(rep, S, runtime=rt)
    return rt.makespan


@pytest.mark.parametrize("name", ["orkut-group", "rand1"])
def test_adjoin_costs_little_extra(benchmark, record, name):
    el = load(name)
    h = BiAdjacency.from_biedgelist(el)
    g = AdjoinGraph.from_biedgelist(el)

    def sweep():
        return {
            alg: (_span(fn, h), _span(fn, g)) for alg, fn in ALGOS.items()
        }

    spans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (alg, f"{bi:.0f}", f"{ad:.0f}", f"{ad / bi:.2f}x")
        for alg, (bi, ad) in spans.items()
    ]
    record(
        f"Fig. 9 companion — queue algorithms, bipartite vs adjoin: {name} "
        f"(s={S}, t={THREADS})",
        format_table(
            ["algorithm", "bipartite", "adjoin", "ratio"], rows
        ),
    )
    for alg, (bi, ad) in spans.items():
        assert 0.5 < ad / bi < 2.0, alg

    # and, of course, identical line graphs from both representations
    for fn in ALGOS.values():
        assert fn(h, S) == fn(g, S)

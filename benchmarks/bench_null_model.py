"""Null-model study — is the s-structure more than the degree sequences?

Standard hypernetwork-science question: compare a stand-in's s-line
structure against degree-preserving random rewirings (the bipartite
configuration model).  The per-dataset *direction* of the difference
depends on scale (at laptop sizes, rewiring concentrates overlap on hub
nodes), so the reproducible claim asserted here is that the real wiring
is statistically distinguishable from its nulls — the s-metrics respond
to wiring, not just to degree sequences.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.graph.triangles import clustering_coefficient
from repro.io.datasets import load
from repro.io.generators import configuration_model_hypergraph
from repro.linegraph import linegraph_csr, slinegraph_hashmap
from repro.structures.biadjacency import BiAdjacency

S = 2
NULL_SEEDS = (11, 12, 13)


def _profile(h: BiAdjacency) -> tuple[int, float]:
    lg = linegraph_csr(slinegraph_hashmap(h, S))
    cc = clustering_coefficient(lg)
    live = lg.degrees() > 0
    return lg.num_edges() // 2, float(cc[live].mean()) if live.any() else 0.0


def test_real_structure_exceeds_null(benchmark, record):
    h = BiAdjacency.from_biedgelist(load("orkut-group"))

    def study():
        real_edges, real_clust = _profile(h)
        nulls = []
        for seed in NULL_SEEDS:
            el = configuration_model_hypergraph(
                h.edge_sizes(), h.node_degrees(), seed=seed, swap_factor=1
            )
            nulls.append(_profile(BiAdjacency.from_biedgelist(el)))
        return (real_edges, real_clust), nulls

    (real_edges, real_clust), nulls = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    null_edges = float(np.mean([e for e, _ in nulls]))
    null_clust = float(np.mean([c for _, c in nulls]))
    rows = [
        ("real hypergraph", f"{real_edges}", f"{real_clust:.3f}"),
        (f"configuration model (mean of {len(NULL_SEEDS)})",
         f"{null_edges:.0f}", f"{null_clust:.3f}"),
    ]
    record(
        f"Null model — s={S} line-graph structure, orkut-group vs "
        "degree-preserving rewiring",
        format_table(["hypergraph", "s-line edges", "mean clustering"], rows),
    )
    # the real wiring is distinguishable from every degree-preserving null:
    # its edge count sits outside the nulls' (tight) spread
    null_edge_counts = [e for e, _ in nulls]
    spread = max(null_edge_counts) - min(null_edge_counts)
    assert abs(real_edges - null_edges) > max(spread, 1)

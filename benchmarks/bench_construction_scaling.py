"""Construction strong scaling — the companion papers' [17, 18] panel.

Figures 7–8 scale the exact algorithms; the HiPC'21/IPDPS'22 companion
papers show the same doubling-thread experiment for s-line *construction*.
Regenerated here for the hashmap algorithm and both queue-based algorithms
over the skewed and uniform stand-ins.
"""

import pytest

from repro.bench.harness import strong_scaling_construction
from repro.bench.reporting import format_scaling

GRID = (1, 2, 4, 8, 16, 32, 64)


@pytest.mark.parametrize("name", ["orkut-group", "com-orkut", "rand1"])
def test_construction_scaling(benchmark, record, name):
    series = benchmark.pedantic(
        strong_scaling_construction, args=(name,), kwargs={"s": 2,
        "thread_counts": GRID}, rounds=1, iterations=1,
    )
    record(
        f"Construction strong scaling (s=2): {name}",
        format_scaling(series),
    )
    for s in series:
        # the counting kernels are embarrassingly parallel: good scaling
        assert s.speedup_at(64) > 16.0, s.algorithm
        # and monotone up the grid
        speedups = [p.speedup for p in s.points]
        assert all(b >= a * 0.9 for a, b in zip(speedups, speedups[1:]))

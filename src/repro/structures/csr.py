"""Compressed Sparse Row adjacency — the frozen computation format.

This is the workhorse structure shared by every representation in the
framework: the bipartite representation is *two* mutually indexed CSRs
(:mod:`repro.structures.biadjacency`), the adjoin graph is one CSR over the
consolidated index set (:mod:`repro.structures.adjoin`), and s-line /
clique-expansion graphs are CSRs produced by the construction algorithms.

Design notes (per the paper's "hypergraphs as ranges" §III-A):

* the outer range is random-access: ``graph[i]`` returns vertex *i*'s
  neighbor array in O(1) as a **view** into the shared ``indices`` buffer;
* the inner range is forward-iterable: the returned ``ndarray`` slice.

Everything is struct-of-arrays (``indptr``/``indices``/optional
``weights``), contiguous ``int64``/``float64``, so hot kernels stay fully
vectorized.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
from scipy import sparse as sp

from .edgelist import EdgeList

__all__ = ["CSR"]

_INDEX_DTYPE = np.int64


class CSR:
    """Compressed sparse row adjacency over ``num_sources`` source vertices.

    Rectangular structures are fully supported (``num_targets`` may differ
    from ``num_sources``): the paper stresses that hypergraph incidence is
    generally a rectangular matrix (§III-B.1a).

    Parameters
    ----------
    indptr:
        ``int64[num_sources + 1]`` row-offset array, non-decreasing.
    indices:
        ``int64[nnz]`` neighbor IDs per row.
    weights:
        Optional ``float64[nnz]`` parallel attribute column.
    num_targets:
        Size of the target index space; defaults to ``max(indices) + 1``.
    sorted_rows:
        Declare rows already sorted (skips verification cost on trusted
        construction paths; checked lazily otherwise).
    """

    __slots__ = ("indptr", "indices", "weights", "_num_targets", "_sorted")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        num_targets: int | None = None,
        sorted_rows: bool | None = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=_INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=_INDEX_DTYPE)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if weights is None:
            self.weights = None
        else:
            self.weights = np.ascontiguousarray(weights, dtype=np.float64)
            if self.weights.shape != self.indices.shape:
                raise ValueError("weights length must match indices")
        inferred = int(self.indices.max()) + 1 if self.indices.size else 0
        if num_targets is None:
            self._num_targets = inferred
        else:
            if num_targets < inferred:
                raise ValueError("num_targets smaller than max index present")
            self._num_targets = int(num_targets)
        if sorted_rows is None:
            self._sorted = self._check_sorted()
        else:
            self._sorted = bool(sorted_rows)

    # -- construction --------------------------------------------------------
    @classmethod
    def adopt(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        num_targets: int = 0,
        sorted_rows: bool = True,
    ) -> "CSR":
        """Adopt already-validated buffers without copying or checking.

        The O(1) construction path for **trusted** sources — buffers that
        were produced by this library and round-tripped through a
        checksummed store (:mod:`repro.store`) or an equivalent provider.
        No dtype coercion, no invariant checks, no O(nnz) scans: the
        arrays are installed as-is (they may be read-only memory-mapped
        views).  Callers must guarantee every ``__init__`` invariant holds;
        ``num_targets`` and ``sorted_rows`` are recorded verbatim.
        """
        out = cls.__new__(cls)
        out.indptr = indptr
        out.indices = indices
        out.weights = weights
        out._num_targets = int(num_targets)
        out._sorted = bool(sorted_rows)
        return out

    @classmethod
    def from_coo(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        num_sources: int | None = None,
        num_targets: int | None = None,
    ) -> "CSR":
        """Index a COO pair into CSR (counting sort; rows come out sorted).

        This is the Python analogue of the paper's ``biadjacency(biedgelist&)``
        constructor: counting sort by source, then stable sort of each row's
        targets, all vectorized.
        """
        src = np.ascontiguousarray(src, dtype=_INDEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=_INDEX_DTYPE)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        n_src = int(src.max()) + 1 if src.size else 0
        if num_sources is not None:
            if num_sources < n_src:
                raise ValueError("num_sources smaller than max source present")
            n_src = int(num_sources)
        # lexsort: primary key src, secondary dst -> sorted rows for free
        order = np.lexsort((dst, src))
        src_s, dst_s = src[order], dst[order]
        counts = np.bincount(src_s, minlength=n_src).astype(_INDEX_DTYPE)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        w = None if weights is None else np.asarray(weights, np.float64)[order]
        return cls(indptr, dst_s, w, num_targets=num_targets, sorted_rows=True)

    @classmethod
    def from_edgelist(
        cls, el: EdgeList, num_targets: int | None = None
    ) -> "CSR":
        """Index an :class:`EdgeList` (single index space) into CSR."""
        return cls.from_coo(
            el.src,
            el.dst,
            el.weights,
            num_sources=el.num_vertices(),
            num_targets=el.num_vertices() if num_targets is None else num_targets,
        )

    @classmethod
    def from_scipy(cls, m: sp.spmatrix | sp.sparray) -> "CSR":
        """Wrap a scipy sparse matrix (converted to canonical CSR)."""
        m = sp.csr_matrix(m)
        m.sum_duplicates()
        m.sort_indices()
        return cls(
            m.indptr.astype(_INDEX_DTYPE),
            m.indices.astype(_INDEX_DTYPE),
            np.asarray(m.data, dtype=np.float64),
            num_targets=m.shape[1],
            sorted_rows=True,
        )

    @classmethod
    def empty(cls, num_sources: int, num_targets: int = 0) -> "CSR":
        """A CSR with ``num_sources`` rows and no edges."""
        return cls(
            np.zeros(num_sources + 1, dtype=_INDEX_DTYPE),
            np.empty(0, dtype=_INDEX_DTYPE),
            num_targets=num_targets,
            sorted_rows=True,
        )

    # -- range-of-ranges protocol --------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices()

    def __getitem__(self, i: int) -> np.ndarray:
        """Neighbor array of vertex ``i`` — an O(1) view, never a copy."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        indptr, indices = self.indptr, self.indices
        for i in range(indptr.size - 1):
            yield indices[indptr[i] : indptr[i + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSR(num_vertices={self.num_vertices()}, "
            f"num_targets={self._num_targets}, num_edges={self.num_edges()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSR):
            return NotImplemented
        return (
            self._num_targets == other._num_targets
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    __hash__ = None  # type: ignore[assignment]

    # -- paper API -------------------------------------------------------------
    def num_vertices(self) -> int:
        """Number of source vertices (rows)."""
        return int(self.indptr.size - 1)

    def num_targets(self) -> int:
        """Size of the target index space (columns)."""
        return self._num_targets

    def num_edges(self) -> int:
        """Number of stored (directed) edges — nnz."""
        return int(self.indices.size)

    def nbytes(self) -> int:
        """Memory footprint of the backing arrays in bytes."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    def degrees(self) -> np.ndarray:
        """Out-degree of every source vertex (paper: ``degrees()``)."""
        return np.diff(self.indptr)

    def degree(self, i: int) -> int:
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_weights(self, i: int) -> np.ndarray | None:
        """Weight slice parallel to ``self[i]`` (``None`` if unweighted)."""
        if self.weights is None:
            return None
        return self.weights[self.indptr[i] : self.indptr[i + 1]]

    # -- transforms --------------------------------------------------------------
    def transpose(self) -> "CSR":
        """The CSR of the reversed edges (dual incidence for hypergraphs)."""
        row = np.repeat(
            np.arange(self.num_vertices(), dtype=_INDEX_DTYPE), self.degrees()
        )
        return CSR.from_coo(
            self.indices,
            row,
            self.weights,
            num_sources=self._num_targets,
            num_targets=self.num_vertices(),
        )

    def sort_rows(self) -> "CSR":
        """Return an equivalent CSR with each neighbor list sorted."""
        if self._sorted:
            return self
        return CSR.from_coo(
            np.repeat(
                np.arange(self.num_vertices(), dtype=_INDEX_DTYPE),
                self.degrees(),
            ),
            self.indices,
            self.weights,
            num_sources=self.num_vertices(),
            num_targets=self._num_targets,
        )

    @property
    def has_sorted_rows(self) -> bool:
        return self._sorted

    def _check_sorted(self) -> bool:
        if self.indices.size < 2:
            return True
        # a row boundary may legally "decrease"; mask those positions out
        nondecreasing = self.indices[1:] >= self.indices[:-1]
        boundary = np.zeros(self.indices.size - 1, dtype=bool)
        inner = self.indptr[1:-1]
        boundary[inner[(inner > 0) & (inner < self.indices.size)] - 1] = True
        return bool(np.all(nondecreasing | boundary))

    def permuted(self, perm: np.ndarray) -> "CSR":
        """Relabel rows *and* columns by ``perm`` (square structures only).

        ``perm[old] == new``.  Used by relabel-by-degree (§III-B.2): the
        paper notes this optimization is valid for simple graphs and s-line
        graphs but scrambles the ID ranges of an adjoin graph.
        """
        if self.num_vertices() != self._num_targets:
            raise ValueError("permuted() requires a square structure")
        perm = np.asarray(perm, dtype=_INDEX_DTYPE)
        src = np.repeat(
            np.arange(self.num_vertices(), dtype=_INDEX_DTYPE), self.degrees()
        )
        return CSR.from_coo(
            perm[src],
            perm[self.indices],
            self.weights,
            num_sources=self.num_vertices(),
            num_targets=self._num_targets,
        )

    def to_scipy(self) -> sp.csr_matrix:
        """View as a scipy CSR matrix (weights default to 1.0)."""
        data = (
            np.ones(self.indices.size, dtype=np.float64)
            if self.weights is None
            else self.weights
        )
        return sp.csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self.num_vertices(), self._num_targets),
        )

    def compress(self):
        """Delta+varint-pack the ``indices`` column.

        Returns a :class:`~repro.structures.compressed.CompressedCSR`
        whose :meth:`~repro.structures.compressed.CompressedCSR.to_csr`
        round-trips bit-exactly.  Requires sorted rows (every
        construction path in this library produces them).
        """
        from .compressed import CompressedCSR

        return CompressedCSR.from_csr(self)

    def to_edgelist(self) -> EdgeList:
        """Flatten back to an edge list over max(num_vertices, num_targets)."""
        src = np.repeat(
            np.arange(self.num_vertices(), dtype=_INDEX_DTYPE), self.degrees()
        )
        return EdgeList(
            src,
            self.indices,
            self.weights,
            num_vertices=max(self.num_vertices(), self._num_targets),
        )

    def neighborhood_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` COO arrays — the flattened range-of-ranges."""
        src = np.repeat(
            np.arange(self.num_vertices(), dtype=_INDEX_DTYPE), self.degrees()
        )
        return src, self.indices.copy()

"""Delta + varint compressed CSR — smaller columns for cache and transport.

The framework's CSRs store sorted ``int64`` neighbor rows.  Sorted rows
compress extremely well as *gaps*: the first index of each row is stored
absolute, every following index as its difference from the predecessor,
and each value is LEB128 varint-encoded (7 payload bits per byte, high
bit = continuation).  Real incidence rows have small gaps, so most
encoded values are one byte — an ~8x shrink of the ``indices`` column —
which is the "bigger graphs fit in cache and in the shm/mmap transport"
lever of the compressed-hypergraph line of work ("Compressing
Hypergraphs using Suffix Sorting", PAPERS.md; we use the simpler
delta+varint member of that family).

:class:`CompressedCSR` keeps the ``indptr`` (element offsets) and
optional ``weights`` columns uncompressed — they are O(rows) and
O(nnz·8B) respectively, and keeping ``indptr`` raw preserves O(1)
``degrees()``/row addressing — and replaces ``indices`` with a byte
stream plus per-row byte offsets.  Decoding is fully vectorized
(:func:`varint_decode` loops over the ≤10 byte *positions*, not the
values) and can target any subset of rows (:meth:`decode_rows`), which
is what lets a worker decode only the chunk it was handed.

Round-trip contract: ``CompressedCSR.from_csr(c).to_csr() == c`` bit for
bit (same dtype, same ``num_targets``, same sortedness flag) for every
CSR with sorted rows.  Unsorted rows are rejected — gaps would go
negative.
"""

from __future__ import annotations

import numpy as np

from .csr import CSR

__all__ = [
    "CompressedCSR",
    "varint_decode",
    "varint_encode",
]

_INDEX_DTYPE = np.int64


def varint_encode(values: np.ndarray) -> np.ndarray:
    """LEB128-encode non-negative int64 values into one uint8 stream.

    Vectorized over *byte positions*: at most 10 passes (⌈64/7⌉), each a
    masked shift over every value still emitting bytes.
    """
    v = np.asarray(values, dtype=np.int64)
    if np.any(v < 0):
        raise ValueError("varint encoding requires non-negative values")
    if v.size == 0:
        return np.empty(0, dtype=np.uint8)
    u = v.astype(np.uint64)
    # bytes per value: number of 7-bit groups needed (>= 1)
    lengths = np.ones(u.size, dtype=np.int64)
    rest = u >> np.uint64(7)
    while rest.any():
        lengths += (rest != 0).astype(np.int64)
        rest >>= np.uint64(7)
    starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1])
    )
    out = np.zeros(int(lengths.sum()), dtype=np.uint8)
    for k in range(int(lengths.max())):
        mask = lengths > k
        byte = ((u[mask] >> np.uint64(7 * k)) & np.uint64(0x7F)).astype(
            np.uint8
        )
        cont = (lengths[mask] > k + 1).astype(np.uint8) << 7
        out[starts[mask] + k] = byte | cont
    return out


def varint_decode(data: np.ndarray, count: int | None = None) -> np.ndarray:
    """Decode a LEB128 uint8 stream back to int64 values.

    ``count`` (when known) skips recounting the terminator bytes.  The
    loop runs over byte positions within a value (≤ 10 iterations), with
    every iteration vectorized over all values.
    """
    b = np.asarray(data, dtype=np.uint8)
    if b.size == 0:
        return np.empty(0, dtype=_INDEX_DTYPE)
    ends = np.flatnonzero(b < 0x80)
    n = ends.size if count is None else int(count)
    if n != ends.size:
        raise ValueError("corrupt varint stream: terminator count mismatch")
    starts = np.concatenate((np.zeros(1, dtype=np.int64), ends[:-1] + 1))
    lengths = ends - starts + 1
    vals = np.zeros(n, dtype=np.uint64)
    for k in range(int(lengths.max())):
        mask = lengths > k
        vals[mask] |= (
            b[starts[mask] + k] & np.uint8(0x7F)
        ).astype(np.uint64) << np.uint64(7 * k)
    return vals.astype(_INDEX_DTYPE)


def _row_deltas(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-row delta transform: absolute first index, then gaps."""
    deltas = indices.astype(_INDEX_DTYPE, copy=True)
    if indices.size:
        deltas[1:] -= indices[:-1]
        row_starts = indptr[:-1][np.diff(indptr) > 0]
        deltas[row_starts] = indices[row_starts]
    return deltas


def _undelta(
    deltas: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Invert :func:`_row_deltas` given per-row element counts."""
    if deltas.size == 0:
        return deltas.astype(_INDEX_DTYPE)
    total = np.cumsum(deltas)
    bounds = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts))
    )
    live = counts > 0
    # subtract, per row, the running total accumulated before the row
    base = np.zeros(counts.size, dtype=np.int64)
    base[live] = np.where(
        bounds[:-1][live] > 0, total[bounds[:-1][live] - 1], 0
    )
    return total - np.repeat(base, counts)


class CompressedCSR:
    """A CSR whose ``indices`` column is delta+varint byte-packed.

    Parameters mirror the decoded structure: ``indptr`` is the ordinary
    element-offset array (``int64[rows + 1]``), ``offsets`` the parallel
    *byte*-offset array into ``data`` (``int64[rows + 1]``), ``data``
    the varint stream, ``weights`` the optional uncompressed attribute
    column aligned with the decoded indices.
    """

    __slots__ = (
        "indptr", "offsets", "data", "weights", "_num_targets", "_sorted",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        offsets: np.ndarray,
        data: np.ndarray,
        weights: np.ndarray | None = None,
        num_targets: int = 0,
        sorted_rows: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=_INDEX_DTYPE)
        self.offsets = np.ascontiguousarray(offsets, dtype=_INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=np.uint8)
        self.weights = (
            None
            if weights is None
            else np.ascontiguousarray(weights, dtype=np.float64)
        )
        if self.indptr.shape != self.offsets.shape:
            raise ValueError("indptr/offsets length mismatch")
        if self.offsets.size == 0 or self.offsets[-1] != self.data.size:
            raise ValueError("offsets must end at the data byte count")
        self._num_targets = int(num_targets)
        self._sorted = bool(sorted_rows)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSR) -> "CompressedCSR":
        """Compress a sorted-row CSR (bit-exact round trip guaranteed)."""
        if not csr.has_sorted_rows:
            raise ValueError(
                "delta encoding requires sorted rows (call sort_rows())"
            )
        indptr = csr.indptr
        deltas = _row_deltas(indptr, csr.indices)
        data = varint_encode(deltas)
        if csr.indices.size:
            # byte length of each encoded value -> per-row byte offsets
            lengths = np.ones(csr.indices.size, dtype=np.int64)
            rest = deltas.astype(np.uint64) >> np.uint64(7)
            while rest.any():
                lengths += (rest != 0).astype(np.int64)
                rest >>= np.uint64(7)
            byte_bounds = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(lengths))
            )
            offsets = byte_bounds[indptr]
        else:
            offsets = np.zeros_like(indptr)
        return cls(
            indptr,
            offsets,
            data,
            weights=csr.weights,
            num_targets=csr.num_targets(),
            sorted_rows=True,
        )

    @classmethod
    def adopt(
        cls,
        indptr: np.ndarray,
        offsets: np.ndarray,
        data: np.ndarray,
        weights: np.ndarray | None = None,
        num_targets: int = 0,
        sorted_rows: bool = True,
    ) -> "CompressedCSR":
        """Adopt already-validated buffers without copies or checks.

        The trusted O(1) path, mirroring :meth:`CSR.adopt` — used when
        the buffers come from a checksummed store slab or a shared
        handle this library exported.
        """
        out = cls.__new__(cls)
        out.indptr = indptr
        out.offsets = offsets
        out.data = data
        out.weights = weights
        out._num_targets = int(num_targets)
        out._sorted = bool(sorted_rows)
        return out

    # -- introspection -------------------------------------------------------
    def num_vertices(self) -> int:
        return int(self.indptr.size - 1)

    def num_targets(self) -> int:
        return self._num_targets

    def num_edges(self) -> int:
        return int(self.indptr[-1])

    @property
    def has_sorted_rows(self) -> bool:
        return self._sorted

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.offsets.nbytes + self.data.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    def ratio(self) -> float:
        """Compressed bytes / raw CSR bytes (< 1 means it shrank)."""
        raw = self.indptr.nbytes + self.num_edges() * 8
        if self.weights is not None:
            raw += self.weights.nbytes
        return self.nbytes() / raw if raw else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedCSR(rows={self.num_vertices()}, "
            f"nnz={self.num_edges()}, bytes={self.nbytes()}, "
            f"ratio={self.ratio():.3f})"
        )

    # -- decoding ------------------------------------------------------------
    def decode_row(self, i: int) -> np.ndarray:
        """One row's neighbor array (freshly allocated)."""
        chunk = self.data[self.offsets[i] : self.offsets[i + 1]]
        count = int(self.indptr[i + 1] - self.indptr[i])
        deltas = varint_decode(chunk, count)
        return np.cumsum(deltas) if deltas.size else deltas

    def decode_rows(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a row subset: ``(concatenated indices, per-row counts)``.

        Vectorized: one gather of the selected byte ranges, one varint
        decode of the combined stream, one segmented cumsum.  This is
        the per-chunk worker path — a task decodes only the rows its
        kernel touches.
        """
        ids = np.asarray(ids, dtype=_INDEX_DTYPE)
        counts = self.indptr[ids + 1] - self.indptr[ids]
        if ids.size == 0 or int(counts.sum()) == 0:
            return np.empty(0, dtype=_INDEX_DTYPE), counts
        byte_starts = self.offsets[ids]
        byte_counts = self.offsets[ids + 1] - byte_starts
        from repro.graph.traversal import multi_slice

        stream = multi_slice(self.data, byte_starts, byte_counts)
        deltas = varint_decode(stream, int(counts.sum()))
        return _undelta(deltas, counts), counts

    def to_csr(self) -> CSR:
        """Full decode back to an ordinary :class:`CSR` (bit-exact)."""
        indices, _counts = self.decode_rows(
            np.arange(self.num_vertices(), dtype=_INDEX_DTYPE)
        )
        return CSR.adopt(
            self.indptr,
            indices,
            self.weights,
            num_targets=self._num_targets,
            sorted_rows=self._sorted,
        )

"""Bipartite (bi-adjacency) hypergraph representation — two index sets.

Paper §III-B.1: a hypergraph ``H = (U, V)`` is represented as a bipartite
graph whose bi-adjacency list is stored as **two separate but mutually
indexed CSR structures** — the *hyperedge incidence list* (row = hyperedge,
neighbors = its hypernodes) and the *hypernode incidence list* (row =
hypernode, neighbors = the hyperedges it joins); see Figure 2 of the paper.

``BiAdjacency`` bundles both CSRs with the ``vertex_cardinality_`` of the
C++ ``bipartite_graph_base`` and guarantees they are mutual transposes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .csr import CSR
from .edgelist import BiEdgeList

__all__ = ["BiAdjacency", "biadjacency"]


class BiAdjacency:
    """Two mutually indexed incidence CSRs for one hypergraph.

    Parameters
    ----------
    edges:
        Hyperedge incidence CSR: ``edges[e]`` lists the hypernodes of
        hyperedge *e* (``biadjacency<0>`` in Listing 2).
    nodes:
        Hypernode incidence CSR: ``nodes[v]`` lists the hyperedges incident
        on hypernode *v* (``biadjacency<1>``).  If omitted it is derived by
        transposition.
    """

    __slots__ = ("edges", "nodes")

    def __init__(self, edges: CSR, nodes: CSR | None = None) -> None:
        self.edges = edges.sort_rows()
        self.nodes = (
            self.edges.transpose() if nodes is None else nodes.sort_rows()
        )
        if self.nodes.num_vertices() < self.edges.num_targets():
            raise ValueError(
                "hypernode CSR too small for the IDs referenced by edges"
            )
        if self.edges.num_edges() != self.nodes.num_edges():
            raise ValueError("edge/node incidence counts disagree")

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_biedgelist(cls, el: BiEdgeList) -> "BiAdjacency":
        """Index a :class:`BiEdgeList` into both incidence CSRs (Listing 2)."""
        n0, n1 = el.vertex_cardinality
        edges = CSR.from_coo(
            el.part0, el.part1, el.weights, num_sources=n0, num_targets=n1
        )
        nodes = CSR.from_coo(
            el.part1, el.part0, el.weights, num_sources=n1, num_targets=n0
        )
        return cls(edges, nodes)

    @classmethod
    def from_arrays(
        cls,
        edge_ids: Iterable[int] | np.ndarray,
        node_ids: Iterable[int] | np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
        num_edges: int | None = None,
        num_nodes: int | None = None,
    ) -> "BiAdjacency":
        """Build from parallel (hyperedge, hypernode) incidence arrays."""
        return cls.from_biedgelist(
            BiEdgeList(edge_ids, node_ids, weights, n0=num_edges, n1=num_nodes)
        )

    @classmethod
    def from_hyperedge_lists(
        cls, members: Iterable[Iterable[int]], num_nodes: int | None = None
    ) -> "BiAdjacency":
        """Build from a list of hyperedges, each an iterable of hypernodes."""
        eids: list[int] = []
        vids: list[int] = []
        count = 0
        for e, mem in enumerate(members):
            for v in mem:
                eids.append(e)
                vids.append(int(v))
            count = e + 1
        return cls.from_biedgelist(
            BiEdgeList(eids, vids, n0=count, n1=num_nodes)
        )

    # -- cardinality / sizes -----------------------------------------------------
    @property
    def vertex_cardinality(self) -> tuple[int, int]:
        """``(num_hyperedges, num_hypernodes)`` — Listing 1's base member."""
        return (self.edges.num_vertices(), self.nodes.num_vertices())

    def num_hyperedges(self) -> int:
        return self.edges.num_vertices()

    def num_hypernodes(self) -> int:
        return self.nodes.num_vertices()

    def num_incidences(self) -> int:
        """Total vertex–edge incidences (nnz of the incidence matrix)."""
        return self.edges.num_edges()

    def nbytes(self) -> int:
        """Memory footprint: both mutually indexed CSRs."""
        return self.edges.nbytes() + self.nodes.nbytes()

    # -- degrees -------------------------------------------------------------------
    def edge_sizes(self) -> np.ndarray:
        """``|e|`` for every hyperedge (the hyperedge "degrees")."""
        return self.edges.degrees()

    def node_degrees(self) -> np.ndarray:
        """Number of hyperedges each hypernode joins."""
        return self.nodes.degrees()

    # -- iteration (Listing 3) --------------------------------------------------
    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate hyperedge neighborhoods (outer range over hyperedges)."""
        return iter(self.edges)

    def members(self, e: int) -> np.ndarray:
        """Hypernodes of hyperedge ``e`` (sorted view)."""
        return self.edges[e]

    def memberships(self, v: int) -> np.ndarray:
        """Hyperedges incident on hypernode ``v`` (sorted view)."""
        return self.nodes[v]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BiAdjacency(num_hyperedges={self.num_hyperedges()}, "
            f"num_hypernodes={self.num_hypernodes()}, "
            f"num_incidences={self.num_incidences()})"
        )

    # -- dual -----------------------------------------------------------------------
    def dual(self) -> "BiAdjacency":
        """The dual hypergraph ``H*`` — swap the two incidence CSRs (§II-C)."""
        return BiAdjacency(self.nodes, self.edges)

    # -- misc --------------------------------------------------------------------------
    def neighbors_of_edge(self, e: int, *, min_overlap: int = 1) -> np.ndarray:
        """Hyperedges sharing ≥ ``min_overlap`` hypernodes with ``e`` (excl. e).

        A direct exact query on the bipartite representation (used by the
        naive s-line constructions and by tests as a tiny oracle).
        """
        counts = np.bincount(
            np.concatenate([self.nodes[v] for v in self.edges[e]])
            if self.edges.degree(e)
            else np.empty(0, dtype=np.int64),
            minlength=self.num_hyperedges(),
        )
        counts[e] = 0
        return np.flatnonzero(counts >= min_overlap)


def biadjacency(el: BiEdgeList, part: int = 0) -> CSR:
    """Listing 2's ``biadjacency<part>(biedgelist&)`` constructor.

    ``part=0`` indexes by hyperedge, ``part=1`` by hypernode.
    """
    n0, n1 = el.vertex_cardinality
    if part == 0:
        return CSR.from_coo(
            el.part0, el.part1, el.weights, num_sources=n0, num_targets=n1
        )
    if part == 1:
        return CSR.from_coo(
            el.part1, el.part0, el.weights, num_sources=n1, num_targets=n0
        )
    raise ValueError(f"part must be 0 or 1, got {part}")

"""Data-structure substrate: edge lists, CSR, bi-adjacency, adjoin graphs.

These are the Python analogues of the paper's Listing 1 classes
(``biedgelist``, ``biadjacency``, ``bipartite_graph_base``) plus the adjoin
graph of §III-B.2 and the sparse-matrix views of §II.
"""

from .adjoin import AdjoinGraph
from .biadjacency import BiAdjacency, biadjacency
from .csr import CSR
from .edgelist import BiEdgeList, EdgeList
from .matrices import (
    adjoin_adjacency_matrix,
    biadjacency_matrix,
    dual_incidence_matrix,
    incidence_matrix,
    overlap_matrix,
)
from .validate import (
    HypergraphInvariantError,
    validate_adjoin,
    validate_biadjacency,
    validate_csr,
)
from .relabel import (
    adjoin_safe_permutation,
    degree_permutation,
    inverse_permutation,
    is_permutation,
    relabel_by_degree,
    relabel_hyperedges,
)

__all__ = [
    "AdjoinGraph",
    "HypergraphInvariantError",
    "BiAdjacency",
    "BiEdgeList",
    "CSR",
    "EdgeList",
    "adjoin_adjacency_matrix",
    "adjoin_safe_permutation",
    "biadjacency",
    "biadjacency_matrix",
    "degree_permutation",
    "dual_incidence_matrix",
    "incidence_matrix",
    "inverse_permutation",
    "is_permutation",
    "overlap_matrix",
    "relabel_by_degree",
    "relabel_hyperedges",
    "validate_adjoin",
    "validate_biadjacency",
    "validate_csr",
]

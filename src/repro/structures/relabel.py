"""Relabel-by-degree and permutation utilities (paper §III-B.2, §III-C.3).

Relabel-by-degree ("permute-by-row/column") renumbers vertices by degree so
that high-degree vertices get small IDs (descending) or large IDs
(ascending), improving load balance and memory locality for blocked
partitions.

The paper's key observation: this trick is **incompatible with the adjoin
representation** — permuting the consolidated index set intermingles
hyperedge and hypernode IDs, making the ranges indistinguishable.  The
queue-based algorithms (Algorithms 1–2) exist precisely to tolerate
arbitrary, non-contiguous, permuted ID sets.  ``adjoin_safe_permutation``
implements the compromise: permute *within* each range so the block
boundary survives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .csr import CSR

if TYPE_CHECKING:  # runtime import stays local to relabel_hyperedges
    from .biadjacency import BiAdjacency

__all__ = [
    "balanced_ranges",
    "degree_permutation",
    "relabel_by_degree",
    "relabel_hyperedges",
    "inverse_permutation",
    "adjoin_safe_permutation",
    "is_permutation",
]


def degree_permutation(
    degrees: np.ndarray, order: str = "descending", *, stable: bool = True
) -> np.ndarray:
    """Permutation ``perm[old] = new`` sorting IDs by degree.

    ``order='descending'`` gives high-degree vertices the smallest new IDs;
    ``'ascending'`` the reverse.  Ties keep original relative order when
    ``stable`` (deterministic across runs).
    """
    degrees = np.asarray(degrees)
    if order not in ("ascending", "descending"):
        raise ValueError("order must be 'ascending' or 'descending'")
    kind = "stable" if stable else "quicksort"
    key = -degrees if order == "descending" else degrees
    ranked = np.argsort(key, kind=kind)  # ranked[new] = old
    perm = np.empty_like(ranked)
    perm[ranked] = np.arange(ranked.size, dtype=ranked.dtype)
    return perm.astype(np.int64)


def relabel_by_degree(
    graph: CSR, order: str = "descending"
) -> tuple[CSR, np.ndarray]:
    """Relabel a *square* CSR by degree; returns ``(new_graph, perm)``.

    ``perm[old] = new``; apply :func:`inverse_permutation` to map results
    computed on the relabeled graph back to original IDs.
    """
    perm = degree_permutation(graph.degrees(), order)
    return graph.permuted(perm), perm


def relabel_hyperedges(
    h: "BiAdjacency", order: str = "descending"
) -> tuple["BiAdjacency", np.ndarray]:
    """Relabel the *hyperedge* IDs of a bi-adjacency by size (§III-C.3).

    Valid on the two-index-set representation (the paper's point is that
    the equivalent trick on an adjoin graph scrambles the ranges).  Returns
    ``(relabeled BiAdjacency, perm)`` with ``perm[old_edge_id] = new_id``;
    line-graph outputs on the relabeled hypergraph map back through
    :func:`inverse_permutation`.
    """
    from .biadjacency import BiAdjacency

    perm = degree_permutation(h.edge_sizes(), order)
    src = np.repeat(
        np.arange(h.num_hyperedges(), dtype=np.int64), h.edge_sizes()
    )
    edges = CSR.from_coo(
        perm[src],
        h.edges.indices,
        h.edges.weights,
        num_sources=h.num_hyperedges(),
        num_targets=h.num_hypernodes(),
    )
    nodes = CSR.from_coo(
        h.edges.indices,
        perm[src],
        h.edges.weights,
        num_sources=h.num_hypernodes(),
        num_targets=h.num_hyperedges(),
    )
    return BiAdjacency(edges, nodes), perm


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv[new] = old`` for a permutation ``perm[old] = new``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def is_permutation(perm: np.ndarray) -> bool:
    """True iff ``perm`` is a permutation of ``[0, len(perm))``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    seen = np.zeros(perm.size, dtype=bool)
    inside = (perm >= 0) & (perm < perm.size)
    if not np.all(inside):
        return False
    seen[perm] = True
    return bool(np.all(seen))


def balanced_ranges(
    loads: np.ndarray, num_parts: int, order: str = "descending"
) -> list[np.ndarray]:
    """Split an ID space into ``num_parts`` load-balanced contiguous ranges.

    IDs are first ordered by :func:`degree_permutation` (so IDs of similar
    load — hyperedge size, node degree — are adjacent in the relabeled
    space: the paper's locality argument for relabel-by-degree), then the
    relabeled axis is cut at the cumulative-load quantiles, giving each
    part a contiguous *relabeled* range of roughly ``total_load /
    num_parts`` mass.  Returns one sorted array of **original** IDs per
    part; parts are disjoint, cover ``[0, len(loads))``, and may be empty
    when there are fewer IDs than parts.

    This is the placement rule of the sharded serving engine
    (:mod:`repro.service.shard`): each shard owns one range, so two-hop
    work per shard tracks incidence mass, not raw ID counts.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = loads.size
    if num_parts == 1 or n == 0:
        return [np.arange(n, dtype=np.int64)] + [
            np.empty(0, dtype=np.int64) for _ in range(num_parts - 1)
        ]
    perm = degree_permutation(loads, order)
    ranked = inverse_permutation(perm)  # ranked[new] = old
    # each ID contributes at least unit mass so empty-load prefixes still
    # spread across parts instead of collapsing into the first range
    cum = np.cumsum(loads[ranked] + 1.0)
    total = float(cum[-1])
    targets = total * np.arange(1, num_parts, dtype=np.float64) / num_parts
    bounds = np.concatenate(
        ([0], np.searchsorted(cum, targets, side="left") + 1, [n])
    )
    bounds = np.minimum(bounds, n)
    return [
        np.sort(ranked[int(lo):int(hi)])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


def adjoin_safe_permutation(
    degrees: np.ndarray, nrealedges: int, order: str = "descending"
) -> np.ndarray:
    """Degree permutation that keeps the adjoin block boundary intact.

    Hyperedge IDs ``[0, nrealedges)`` are permuted among themselves, and
    hypernode IDs among themselves, so range-aware algorithms still work
    after relabeling.  This is the solution §III-C promises for the adjoin
    relabeling problem.
    """
    degrees = np.asarray(degrees)
    if not 0 <= nrealedges <= degrees.size:
        raise ValueError("nrealedges out of range")
    perm = np.empty(degrees.size, dtype=np.int64)
    perm[:nrealedges] = degree_permutation(degrees[:nrealedges], order)
    perm[nrealedges:] = (
        degree_permutation(degrees[nrealedges:], order) + nrealedges
    )
    return perm

"""Matrix views of hypergraph representations (paper §II, §III-B).

Provides the incidence matrix ``B`` (rectangular, hypernodes × hyperedges
per the paper's Eq. 4), the bi-adjacency matrix of the bipartite form, the
adjoin adjacency ``A_G = [[0, B^t], [B, 0]]`` (Fig. 4), and the dual
(transpose).  All as ``scipy.sparse`` so rectangular operations — which the
paper calls out as a requirement hypergraph libraries often miss — are
first-class.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from .adjoin import AdjoinGraph
from .biadjacency import BiAdjacency

__all__ = [
    "incidence_matrix",
    "dual_incidence_matrix",
    "biadjacency_matrix",
    "adjoin_adjacency_matrix",
    "overlap_matrix",
]


def incidence_matrix(h: BiAdjacency, weighted: bool = False) -> sp.csr_matrix:
    """The ``n × m`` incidence matrix ``B`` of hypergraph ``H`` (Eq. 4).

    Rows are hypernodes, columns hyperedges; ``B[v, e] = 1`` iff ``v ∈ e``
    (or the stored incidence weight when ``weighted=True``).
    """
    m = h.nodes.to_scipy()
    if not weighted:
        m = m.copy()
        m.data[:] = 1.0
    return m


def dual_incidence_matrix(
    h: BiAdjacency, weighted: bool = False
) -> sp.csr_matrix:
    """Incidence matrix of the dual ``H*`` — the transpose ``B^t`` (§II-C)."""
    return sp.csr_matrix(incidence_matrix(h, weighted).T)


def biadjacency_matrix(h: BiAdjacency, weighted: bool = False) -> sp.csr_matrix:
    """The ``r × s`` bi-adjacency matrix of the bipartite form ``B(U, V, E)``.

    Rows are hyperedges (part 0), columns hypernodes (part 1) — Eq. 3 with
    ``U`` the hyperedge part, matching Listing 2's ``biadjacency<0>``.
    """
    m = h.edges.to_scipy()
    if not weighted:
        m = m.copy()
        m.data[:] = 1.0
    return m


def adjoin_adjacency_matrix(
    g: AdjoinGraph | BiAdjacency, weighted: bool = False
) -> sp.csr_matrix:
    """The square symmetric adjacency of the adjoin graph (Fig. 4).

    ``A_G = [[0, B^t_H], [B_H, 0]]`` with the hyperedge block first — the
    paper's block layout with hyperedges occupying the low ID range.  (Note
    the paper writes ``B_H`` for the incidence matrix with hypernodes as
    rows; in the adjoin layout the *upper-right* block maps hyperedge rows
    to hypernode columns, i.e. ``B^t`` in the paper's orientation.)
    """
    if isinstance(g, AdjoinGraph):
        m = g.graph.to_scipy()
        if not weighted:
            m = m.copy()
            m.data[:] = 1.0
        return m
    upper = biadjacency_matrix(g, weighted)  # hyperedges × hypernodes
    n_e, n_v = upper.shape
    zero_ee = sp.csr_matrix((n_e, n_e))
    zero_vv = sp.csr_matrix((n_v, n_v))
    return sp.csr_matrix(
        sp.bmat([[zero_ee, upper], [upper.T, zero_vv]], format="csr")
    )


def overlap_matrix(h: BiAdjacency, *, dual: bool = False) -> sp.csr_matrix:
    """Pairwise overlap counts between hyperedges: ``B^t B`` (or ``B B^t``).

    ``overlap[e, f] = |e ∩ f|``; the diagonal holds hyperedge sizes.  With
    ``dual=True`` the roles flip and entries count shared hyperedges between
    hypernode pairs (the s-clique side).  This is the vectorized oracle that
    every s-line construction algorithm is checked against.
    """
    b = incidence_matrix(h)  # hypernodes × hyperedges, 0/1
    prod = (b.T @ b) if not dual else (b @ b.T)
    prod = sp.csr_matrix(prod)
    prod.sum_duplicates()
    return prod


def is_symmetric(m: sp.spmatrix, tol: float = 0.0) -> bool:
    """Structural+numeric symmetry check used by adjoin invariant tests."""
    m = sp.csr_matrix(m)
    diff = (m - m.T).tocsr()
    if tol == 0.0:
        return diff.nnz == 0
    return bool(np.all(np.abs(diff.data) <= tol)) if diff.nnz else True

"""Edge-list containers (struct-of-arrays).

The paper's ``biedgelist``/``edgelist`` classes (Listing 1) are thin
struct-of-arrays containers that a :class:`~repro.structures.csr.CSR` or
:class:`~repro.structures.biadjacency.BiAdjacency` is later *indexed* from.
We mirror that split: an edge list is the mutable ingestion format, CSR the
frozen computation format.

All index arrays are ``int64`` and contiguous; attribute columns (for
example edge weights) ride along as parallel arrays, matching the
``std::tuple<std::vector<Attributes>...>`` layout of the C++ original.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["EdgeList", "BiEdgeList"]

_INDEX_DTYPE = np.int64


def _as_index_array(values: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce ``values`` to a contiguous int64 index array.

    Raises ``ValueError`` for negative indices — vertex/hyperedge IDs are
    non-negative in every representation the framework supports.
    """
    arr = np.ascontiguousarray(values, dtype=_INDEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"index array must be 1-D, got shape {arr.shape}")
    if arr.size and arr.min() < 0:
        raise ValueError("indices must be non-negative")
    return arr


class EdgeList:
    """A directed edge list ``(src, dst, *attributes)`` over one index set.

    Parameters
    ----------
    src, dst:
        Endpoint index arrays (equal length).
    weights:
        Optional parallel attribute column (float64).
    num_vertices:
        Size of the (single) index space.  Defaults to ``max(src, dst) + 1``.
    """

    __slots__ = ("src", "dst", "weights", "_num_vertices")

    def __init__(
        self,
        src: Iterable[int] | np.ndarray = (),
        dst: Iterable[int] | np.ndarray = (),
        weights: Iterable[float] | np.ndarray | None = None,
        num_vertices: int | None = None,
    ) -> None:
        self.src = _as_index_array(src)
        self.dst = _as_index_array(dst)
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src/dst length mismatch: {self.src.size} vs {self.dst.size}"
            )
        if weights is None:
            self.weights = None
        else:
            self.weights = np.ascontiguousarray(weights, dtype=np.float64)
            if self.weights.shape != self.src.shape:
                raise ValueError("weights length must match src/dst")
        inferred = 0
        if self.src.size:
            inferred = int(max(self.src.max(), self.dst.max())) + 1
        if num_vertices is None:
            self._num_vertices = inferred
        else:
            if num_vertices < inferred:
                raise ValueError(
                    f"num_vertices={num_vertices} too small for max index "
                    f"{inferred - 1}"
                )
            self._num_vertices = int(num_vertices)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.src.size)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(self.src.tolist(), self.dst.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(num_vertices={self.num_vertices()}, "
            f"num_edges={len(self)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        if self.num_vertices() != other.num_vertices():
            return False
        if not (
            np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
        ):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return bool(np.array_equal(self.weights, other.weights))
        return True

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # -- paper API ----------------------------------------------------------
    def num_vertices(self) -> int:
        """Size of the index space (paper: ``num_vertices()``)."""
        return self._num_vertices

    def num_edges(self) -> int:
        """Number of edges (paper: ``num_edges()``)."""
        return len(self)

    def nbytes(self) -> int:
        """Memory footprint of the backing arrays in bytes."""
        total = self.src.nbytes + self.dst.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    # -- transformations ----------------------------------------------------
    def symmetrize(self) -> "EdgeList":
        """Return a new edge list with both ``(u, v)`` and ``(v, u)``.

        Used to build undirected adjacency structures (for example the
        adjoin graph, whose adjacency matrix is symmetric by construction).
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        w = None if self.weights is None else np.concatenate([self.weights] * 2)
        return EdgeList(src, dst, w, num_vertices=self._num_vertices)

    def deduplicate(self) -> "EdgeList":
        """Return a new edge list with exact duplicate ``(src, dst)`` removed.

        Keeps the first occurrence of each pair (so the first weight wins),
        preserving sorted order of the unique pairs.
        """
        if not len(self):
            return EdgeList(num_vertices=self._num_vertices)
        key = self.src * max(self._num_vertices, 1) + self.dst
        _, first = np.unique(key, return_index=True)
        first.sort()
        w = None if self.weights is None else self.weights[first]
        return EdgeList(self.src[first], self.dst[first], w, self._num_vertices)

    def sorted_by(self, order: Sequence[int] | np.ndarray) -> "EdgeList":
        """Return a new edge list with rows permuted by ``order``."""
        order = np.asarray(order, dtype=_INDEX_DTYPE)
        w = None if self.weights is None else self.weights[order]
        return EdgeList(self.src[order], self.dst[order], w, self._num_vertices)

    def relabeled(self, perm: np.ndarray) -> "EdgeList":
        """Return a new edge list with every endpoint mapped through ``perm``.

        ``perm[old_id] == new_id``; ``perm`` must be a permutation of the
        full index space.
        """
        perm = np.asarray(perm, dtype=_INDEX_DTYPE)
        if perm.size != self._num_vertices:
            raise ValueError("permutation size must equal num_vertices")
        return EdgeList(
            perm[self.src], perm[self.dst], self.weights, self._num_vertices
        )


class BiEdgeList:
    """A bipartite edge list over **two separate index sets** (paper §III-B.1).

    Rows connect part-0 entities (hyperedges) to part-1 entities
    (hypernodes).  The class mirrors the C++ ``biedgelist`` and carries the
    ``vertex_cardinality_`` array of ``bipartite_graph_base``.

    Parameters
    ----------
    part0, part1:
        Endpoint arrays: ``part0[k]`` is a hyperedge ID, ``part1[k]`` a
        hypernode ID of incidence ``k``.
    weights:
        Optional incidence weights.
    n0, n1:
        Cardinalities of the two index sets.  Default to max-ID + 1.
    """

    __slots__ = ("part0", "part1", "weights", "_n0", "_n1")

    def __init__(
        self,
        part0: Iterable[int] | np.ndarray = (),
        part1: Iterable[int] | np.ndarray = (),
        weights: Iterable[float] | np.ndarray | None = None,
        n0: int | None = None,
        n1: int | None = None,
    ) -> None:
        self.part0 = _as_index_array(part0)
        self.part1 = _as_index_array(part1)
        if self.part0.shape != self.part1.shape:
            raise ValueError(
                f"part0/part1 length mismatch: {self.part0.size} vs "
                f"{self.part1.size}"
            )
        if weights is None:
            self.weights = None
        else:
            self.weights = np.ascontiguousarray(weights, dtype=np.float64)
            if self.weights.shape != self.part0.shape:
                raise ValueError("weights length must match part0/part1")
        inferred0 = int(self.part0.max()) + 1 if self.part0.size else 0
        inferred1 = int(self.part1.max()) + 1 if self.part1.size else 0
        self._n0 = inferred0 if n0 is None else int(n0)
        self._n1 = inferred1 if n1 is None else int(n1)
        if self._n0 < inferred0 or self._n1 < inferred1:
            raise ValueError("declared cardinality smaller than max index")

    # -- construction ------------------------------------------------------
    @classmethod
    def frozen(
        cls,
        part0: np.ndarray,
        part1: np.ndarray,
        weights: np.ndarray | None,
        n0: int,
        n1: int,
    ) -> "BiEdgeList":
        """Adopt already-validated arrays without copying or checking.

        The O(1) trusted-construction path (mirror of
        :meth:`repro.structures.csr.CSR.adopt`): arrays produced by this
        library and persisted through a checksummed store are installed
        as-is — no dtype coercion, no min/max scans.  The arrays may be
        read-only memory-mapped views; callers guarantee the ``__init__``
        invariants hold.
        """
        out = cls.__new__(cls)
        out.part0 = part0
        out.part1 = part1
        out.weights = weights
        out._n0 = int(n0)
        out._n1 = int(n1)
        return out

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.part0.size)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(self.part0.tolist(), self.part1.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n0={self._n0}, n1={self._n1}, "
            f"num_edges={len(self)})"
        )

    # -- paper API ----------------------------------------------------------
    @property
    def vertex_cardinality(self) -> tuple[int, int]:
        """``(n0, n1)`` — cardinalities of the two parts (Listing 1)."""
        return (self._n0, self._n1)

    def num_vertices(self, part: int | None = None) -> int:
        """Cardinality of one part, or of both parts combined."""
        if part is None:
            return self._n0 + self._n1
        if part == 0:
            return self._n0
        if part == 1:
            return self._n1
        raise ValueError(f"part must be 0 or 1, got {part}")

    def num_edges(self) -> int:
        return len(self)

    def nbytes(self) -> int:
        """Memory footprint of the backing arrays in bytes."""
        total = self.part0.nbytes + self.part1.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    # -- transformations ----------------------------------------------------
    def deduplicate(self) -> "BiEdgeList":
        """Drop exact duplicate incidences, keeping first occurrence."""
        if not len(self):
            return BiEdgeList(n0=self._n0, n1=self._n1)
        key = self.part0 * max(self._n1, 1) + self.part1
        _, first = np.unique(key, return_index=True)
        first.sort()
        w = None if self.weights is None else self.weights[first]
        return BiEdgeList(
            self.part0[first], self.part1[first], w, self._n0, self._n1
        )

    def swapped(self) -> "BiEdgeList":
        """Return the dual edge list (parts exchanged).

        The transpose of the incidence matrix is the incidence matrix of the
        dual hypergraph ``H*`` (paper §II-C).
        """
        return BiEdgeList(self.part1, self.part0, self.weights, self._n1, self._n0)

    def to_adjoin_edgelist(self) -> EdgeList:
        """Consolidate both index sets into one (paper §III-B.2).

        Part-0 entities (hyperedges) keep IDs ``[0, n0)``; part-1 entities
        (hypernodes) are shifted to ``[n0, n0 + n1)``.  The result is the
        (directed, edge→node) half of the adjoin graph; symmetrize to get
        the full adjacency.
        """
        return EdgeList(
            self.part0,
            self.part1 + self._n0,
            self.weights,
            num_vertices=self._n0 + self._n1,
        )

"""Adjoin-graph representation — one consolidated index set (paper §III-B.2).

The adjoin graph ``G`` of a hypergraph ``H`` re-indexes the two disjoint
index sets of the bipartite form into a single shared index space:
hyperedges keep IDs ``[0, n_e)`` and hypernodes are shifted to
``[n_e, n_e + n_v)``.  Its adjacency matrix is the symmetric block matrix

    A_G = [[0,   B^t],
           [B,   0  ]]

(where ``B`` is the incidence matrix of ``H``), so ``G`` is an ordinary
graph and **any graph algorithm** can run on it — provided the algorithm is
*range-aware*: it must know which half of the index space holds hyperedges
so results can be split back (``split_result``).
"""

from __future__ import annotations

import numpy as np

from .csr import CSR
from .edgelist import BiEdgeList, EdgeList

__all__ = ["AdjoinGraph"]


class AdjoinGraph:
    """A hypergraph consolidated into a single-index-set graph.

    Attributes
    ----------
    graph:
        Square, symmetric CSR over ``nrealedges + nrealnodes`` vertices.
    nrealedges, nrealnodes:
        The paper's names for the cardinalities of the hyperedge and
        hypernode ranges of the shared index set (Listing 2).
    """

    __slots__ = ("graph", "nrealedges", "nrealnodes")

    def __init__(self, graph: CSR, nrealedges: int, nrealnodes: int) -> None:
        if graph.num_vertices() != nrealedges + nrealnodes:
            raise ValueError(
                "adjoin graph must have nrealedges + nrealnodes vertices"
            )
        if graph.num_targets() > graph.num_vertices():
            raise ValueError("adjoin graph must be square")
        self.graph = graph
        self.nrealedges = int(nrealedges)
        self.nrealnodes = int(nrealnodes)

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_biedgelist(cls, el: BiEdgeList) -> "AdjoinGraph":
        """Adjoin a bipartite edge list: shift part-1 IDs by ``n0``, symmetrize."""
        n0, n1 = el.vertex_cardinality
        directed = el.to_adjoin_edgelist()
        graph = CSR.from_edgelist(directed.symmetrize())
        return cls(graph, n0, n1)

    @classmethod
    def from_edgelist(
        cls, el: EdgeList, nrealedges: int, nrealnodes: int
    ) -> "AdjoinGraph":
        """Wrap an already-consolidated edge list (``graph_reader_adjoin``)."""
        graph = CSR.from_coo(
            np.concatenate([el.src, el.dst]),
            np.concatenate([el.dst, el.src]),
            None if el.weights is None else np.concatenate([el.weights] * 2),
            num_sources=nrealedges + nrealnodes,
            num_targets=nrealedges + nrealnodes,
        )
        return cls(graph, nrealedges, nrealnodes)

    # -- range-awareness helpers -----------------------------------------------------
    def num_vertices(self) -> int:
        """Total size of the shared index set."""
        return self.graph.num_vertices()

    def is_hyperedge(self, ids: np.ndarray | int) -> np.ndarray | bool:
        """Whether consolidated ID(s) fall in the hyperedge range."""
        return np.asarray(ids) < self.nrealedges if not np.isscalar(ids) else ids < self.nrealedges

    def edge_id(self, adjoin_id: int) -> int:
        """Map a consolidated ID back to the original hyperedge ID."""
        if adjoin_id >= self.nrealedges:
            raise ValueError(f"id {adjoin_id} is not in the hyperedge range")
        return int(adjoin_id)

    def node_id(self, adjoin_id: int) -> int:
        """Map a consolidated ID back to the original hypernode ID."""
        if adjoin_id < self.nrealedges:
            raise ValueError(f"id {adjoin_id} is not in the hypernode range")
        return int(adjoin_id - self.nrealedges)

    def adjoin_edge_id(self, e: int) -> int:
        """Map a hyperedge ID into the shared index set (identity)."""
        if not 0 <= e < self.nrealedges:
            raise ValueError(f"hyperedge id {e} out of range")
        return int(e)

    def adjoin_node_id(self, v: int) -> int:
        """Map a hypernode ID into the shared index set (shift by n_e)."""
        if not 0 <= v < self.nrealnodes:
            raise ValueError(f"hypernode id {v} out of range")
        return int(v + self.nrealedges)

    def split_result(self, result: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a per-vertex result array of a graph algorithm back into
        ``(hyperedge_result, hypernode_result)`` (paper §III-B.2)."""
        result = np.asarray(result)
        if result.shape[0] != self.num_vertices():
            raise ValueError("result length must equal num_vertices()")
        return result[: self.nrealedges], result[self.nrealedges :]

    # -- niceties ----------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        return self.graph.degrees()

    def nbytes(self) -> int:
        """Memory footprint of the consolidated CSR."""
        return self.graph.nbytes()

    def edge_range(self) -> range:
        """IDs of the hyperedge half of the shared index set."""
        return range(0, self.nrealedges)

    def node_range(self) -> range:
        """IDs of the hypernode half of the shared index set."""
        return range(self.nrealedges, self.nrealedges + self.nrealnodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdjoinGraph(nrealedges={self.nrealedges}, "
            f"nrealnodes={self.nrealnodes}, "
            f"num_edges={self.graph.num_edges() // 2})"
        )

"""Structural invariant checkers — the framework's self-diagnosis layer.

Every representation has invariants the algorithms silently rely on
(sorted unique neighbor rows, mutual transposition of the two incidence
CSRs, the adjoin block structure).  ``validate_*`` functions verify them
explicitly and raise ``HypergraphInvariantError`` with a precise message —
used at trust boundaries (file ingestion), in failure-injection tests, and
handy when debugging custom construction code.
"""

from __future__ import annotations

import numpy as np

from .adjoin import AdjoinGraph
from .biadjacency import BiAdjacency
from .csr import CSR

__all__ = [
    "HypergraphInvariantError",
    "validate_csr",
    "validate_biadjacency",
    "validate_adjoin",
]


class HypergraphInvariantError(ValueError):
    """A structural invariant of a hypergraph representation is violated."""


def _fail(message: str) -> None:
    raise HypergraphInvariantError(message)


def validate_csr(
    g: CSR, *, require_sorted: bool = True, require_unique: bool = True
) -> None:
    """Check indptr monotonicity, index bounds, and per-row order/uniqueness."""
    if g.indptr[0] != 0 or g.indptr[-1] != g.indices.size:
        _fail("indptr must start at 0 and end at nnz")
    if np.any(np.diff(g.indptr) < 0):
        _fail("indptr must be non-decreasing")
    if g.indices.size:
        if int(g.indices.min()) < 0:
            _fail("negative neighbor index")
        if int(g.indices.max()) >= g.num_targets():
            _fail(
                f"neighbor index {int(g.indices.max())} out of range "
                f"[0, {g.num_targets()})"
            )
    if require_sorted or require_unique:
        for i in range(g.num_vertices()):
            row = g[i]
            if require_sorted and row.size > 1 and np.any(np.diff(row) < 0):
                _fail(f"row {i} is not sorted")
            if require_unique and row.size > 1 and np.any(np.diff(row) == 0):
                _fail(f"row {i} contains duplicate neighbors")


def validate_biadjacency(h: BiAdjacency) -> None:
    """Check both incidence CSRs and their mutual-transpose relationship."""
    validate_csr(h.edges)
    validate_csr(h.nodes)
    if h.edges.num_edges() != h.nodes.num_edges():
        _fail("edge/node incidence counts disagree")
    if h.edges.transpose().sort_rows() != h.nodes.sort_rows():
        _fail("hypernode incidence is not the transpose of hyperedge incidence")


def validate_adjoin(g: AdjoinGraph) -> None:
    """Check squareness, symmetry, and the bipartite block structure."""
    validate_csr(g.graph)
    if g.graph.num_vertices() != g.nrealedges + g.nrealnodes:
        _fail("vertex count must equal nrealedges + nrealnodes")
    src, dst = g.graph.neighborhood_pairs()
    src_is_edge = src < g.nrealedges
    dst_is_edge = dst < g.nrealedges
    if np.any(src_is_edge == dst_is_edge):
        bad = int(np.flatnonzero(src_is_edge == dst_is_edge)[0])
        _fail(
            "adjoin edge inside one partition: "
            f"({int(src[bad])}, {int(dst[bad])})"
        )
    # symmetry: the multiset of (src, dst) equals the multiset of (dst, src)
    n = g.graph.num_vertices()
    fwd = np.sort(src * n + dst)
    rev = np.sort(dst * n + src)
    if not np.array_equal(fwd, rev):
        _fail("adjoin graph is not symmetric")

"""Drive a live server with a workload; measure without lying.

Two run modes, two different truths:

* **open loop** (:func:`run_open_loop`) — the workload's Poisson
  schedule fixes each request's *intended* start time before the run
  begins.  Senders pipeline requests at those times over persistent
  :class:`~repro.service.session.SocketSession` connections regardless
  of how fast responses come back, and every latency is measured from
  the **intended** start to response arrival.  This is the
  coordinated-omission-correct number: when the server stalls, requests
  that *should* have been sent during the stall still count the stall
  against it.  Open loop answers "what do clients experience at this
  offered rate?".
* **closed loop** (:func:`run_closed_loop`) — each connection is a
  worker that sends, waits, then sends again.  Latency is pure service
  time; the offered rate adapts to the server.  Closed loop answers
  "how fast can N synchronous clients go?" — and, because a stalled
  server silently *stops being asked*, its tail percentiles flatter the
  server.  The test suite demonstrates exactly this divergence.

Both modes record per-operation :class:`OpResult` rows (tenant, op
kind, structured error code if any, latency) and snapshot the server's
``metrics`` op before and after, so the report can show server-side
panels (cache hit rates, shed counters, backend fallbacks) next to the
client-side latencies.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.service.session import SocketSession

from .workload import TraceOp, WorkloadGenerator, WorkloadSpec

__all__ = [
    "OpResult",
    "RunResult",
    "run_closed_loop",
    "run_open_loop",
    "run_workload",
]

#: structured error codes that mean "shed by admission control", not failure
SHED_CODES = frozenset({"overloaded", "quota_exceeded"})


@dataclass(frozen=True)
class OpResult:
    """One completed operation as the client saw it."""

    tenant: str
    kind: str
    ok: bool
    code: str | None  # structured error code when not ok
    latency_s: float  # from *intended* start (open loop) — CO-correct
    service_s: float  # from actual send — pure server+wire time
    intended_t: float  # offset of the intended start within the run

    @property
    def shed(self) -> bool:
        return self.code in SHED_CODES


@dataclass
class RunResult:
    """Everything one run produced, ready for :class:`LoadReport`."""

    mode: str  # "open" | "closed"
    duration_s: float  # measured wall-clock of the run
    results: list[OpResult]
    metrics_before: dict | None = None
    metrics_after: dict | None = None
    transport_errors: list[str] = field(default_factory=list)


def _classify(resp: object) -> tuple[bool, str | None]:
    """``(ok, error_code)`` from a raw response object."""
    if isinstance(resp, dict):
        if resp.get("ok") is False:
            err = resp.get("error")
            code = err.get("code") if isinstance(err, dict) else None
            return False, str(code) if code is not None else "error"
        return True, None
    if isinstance(resp, list):  # batch response: ok iff every item is
        bad = [r for r in resp
               if isinstance(r, dict) and r.get("ok") is False]
        if bad:
            return _classify(bad[0])
        return True, None
    return False, "malformed"


def _metrics_snapshot(address: tuple[str, int], timeout: float) -> dict | None:
    try:
        with SocketSession(*address, timeout=timeout, strict=False) as s:
            resp = s.request({"op": "metrics"})
    except (OSError, ValueError):
        return None
    if isinstance(resp, dict) and resp.get("ok") is not False:
        result = resp.get("result")
        return result if isinstance(result, dict) else None
    return None


def _split_by_connection(
    trace: list[TraceOp], connections: "dict[str, int] | int"
) -> dict[tuple[str, int], list[TraceOp]]:
    """Deal each tenant's ops round-robin across its connections."""
    per_conn: dict[tuple[str, int], list[TraceOp]] = {}
    counters: dict[str, int] = {}
    for op in trace:
        if isinstance(connections, dict):
            n = max(1, int(connections.get(op.tenant, 1)))
        else:
            n = max(1, int(connections))
        i = counters.get(op.tenant, 0)
        counters[op.tenant] = i + 1
        per_conn.setdefault((op.tenant, i % n), []).append(op)
    return per_conn


def _open_sessions(
    keys, address: tuple[str, int], timeout: float
) -> dict:
    """One connected :class:`SocketSession` per key.

    When the Nth connect fails, the N-1 sessions already opened are
    closed before the error propagates — a half-built connection pool
    must not leak sockets.
    """
    sessions: dict = {}
    ok = False
    try:
        for key in keys:
            sessions[key] = SocketSession(
                *address, timeout=timeout, strict=False
            )
        ok = True
    finally:
        if not ok:
            for session in sessions.values():
                session.close()
    return sessions


def run_open_loop(
    address: tuple[str, int],
    trace: list[TraceOp],
    connections: "dict[str, int] | int" = 1,
    timeout: float = 30.0,
    collect_metrics: bool = True,
) -> RunResult:
    """Replay a trace open-loop against a live server.

    Per (tenant, connection) pair one *sender* thread pipelines request
    lines at their intended times and one *receiver* thread drains the
    response lines (responses come back in order per connection, which
    both servers guarantee).  Latency for each op is measured from
    ``t0 + op.t`` — the moment the workload said the request should
    exist — not from when the sender actually got it onto the wire.
    """
    if not trace:
        raise ValueError("empty trace")
    per_conn = _split_by_connection(trace, connections)
    sessions = _open_sessions(per_conn, address, timeout)
    results: list[OpResult] = []
    errors: list[str] = []
    lock = threading.Lock()
    metrics_before = (
        _metrics_snapshot(address, timeout) if collect_metrics else None
    )
    start_barrier = threading.Barrier(2 * len(per_conn) + 1)
    t0_box: list[float] = []

    def sender(key: tuple[str, int], sent: deque) -> None:
        session, ops = sessions[key], per_conn[key]
        start_barrier.wait()
        t0 = t0_box[0]
        for op in ops:
            delay = (t0 + op.t) - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            # enqueue before send: the receiver pops only after a
            # response arrives, which can't precede its request
            sent.append((op, time.perf_counter()))
            try:
                session.send(op.payload)
            except (OSError, ValueError) as exc:
                sent.pop()
                with lock:
                    errors.append(f"send {key}: {exc}")
                break

    def receiver(key: tuple[str, int], sent: deque) -> None:
        session, ops = sessions[key], per_conn[key]
        start_barrier.wait()
        t0 = t0_box[0]
        for _ in range(len(ops)):
            try:
                resp = session.recv()
            except (OSError, ValueError) as exc:
                with lock:
                    errors.append(f"recv {key}: {exc}")
                break
            done = time.perf_counter()
            if not sent:  # sender aborted; nothing to attribute
                break
            op, send_t = sent.popleft()
            ok, code = _classify(resp)
            row = OpResult(
                tenant=op.tenant,
                kind=str(op.payload.get("op", "?")),
                ok=ok,
                code=code,
                latency_s=done - (t0 + op.t),
                service_s=done - send_t,
                intended_t=op.t,
            )
            with lock:
                results.append(row)

    try:
        threads = []
        for key in per_conn:
            sent: deque = deque()
            threads.append(
                threading.Thread(target=sender, args=(key, sent), daemon=True)
            )
            threads.append(
                threading.Thread(
                    target=receiver, args=(key, sent), daemon=True
                )
            )
        for t in threads:
            t.start()
        t0_box.append(time.perf_counter())
        start_barrier.wait()  # releases every sender/receiver at once
        for t in threads:
            t.join(timeout=timeout + max(op.t for op in trace) + 5.0)
        wall = time.perf_counter() - t0_box[0]
    finally:
        # every exit path — including a broken barrier or an interrupt
        # while joining — must release the connection pool
        for session in sessions.values():
            session.close()
    metrics_after = (
        _metrics_snapshot(address, timeout) if collect_metrics else None
    )
    return RunResult(
        mode="open",
        duration_s=wall,
        results=results,
        metrics_before=metrics_before,
        metrics_after=metrics_after,
        transport_errors=errors,
    )


def run_closed_loop(
    address: tuple[str, int],
    spec: WorkloadSpec,
    timeout: float = 30.0,
    collect_metrics: bool = True,
) -> RunResult:
    """Drive ``spec.tenants`` closed-loop for ``spec.duration_s``.

    Each tenant connection is one synchronous worker: send, wait for
    the response, repeat.  Latency and service time coincide here — the
    mode cannot see queueing it never caused.
    """
    gen = WorkloadGenerator(spec)
    results: list[OpResult] = []
    errors: list[str] = []
    lock = threading.Lock()
    metrics_before = (
        _metrics_snapshot(address, timeout) if collect_metrics else None
    )
    workers = [
        (tenant, conn) for tenant in spec.tenants
        for conn in range(tenant.connections)
    ]
    start_barrier = threading.Barrier(len(workers) + 1)
    t0_box: list[float] = []

    def worker(tenant, conn: int) -> None:
        stream = gen.stream(tenant, salt=conn)
        try:
            session = SocketSession(*address, timeout=timeout, strict=False)
        except OSError as exc:
            with lock:
                errors.append(f"connect {tenant.name}/{conn}: {exc}")
            start_barrier.wait()
            return
        try:
            # inside try/finally from the moment the socket exists: a
            # broken barrier must not leak the connection
            start_barrier.wait()
            t0 = t0_box[0]
            deadline = t0 + spec.duration_s
            while time.perf_counter() < deadline:
                payload = next(stream)
                sent = time.perf_counter()
                try:
                    resp = session.request(payload)
                except (OSError, ValueError) as exc:
                    with lock:
                        errors.append(f"{tenant.name}/{conn}: {exc}")
                    break
                done = time.perf_counter()
                ok, code = _classify(resp)
                row = OpResult(
                    tenant=tenant.name,
                    kind=str(payload.get("op", "?")),
                    ok=ok,
                    code=code,
                    latency_s=done - sent,
                    service_s=done - sent,
                    intended_t=sent - t0,
                )
                with lock:
                    results.append(row)
        finally:
            session.close()

    threads = [
        threading.Thread(target=worker, args=w, daemon=True)
        for w in workers
    ]
    for t in threads:
        t.start()
    t0_box.append(time.perf_counter())
    start_barrier.wait()
    for t in threads:
        t.join(timeout=spec.duration_s + timeout + 5.0)
    wall = time.perf_counter() - t0_box[0]
    metrics_after = (
        _metrics_snapshot(address, timeout) if collect_metrics else None
    )
    return RunResult(
        mode="closed",
        duration_s=wall,
        results=results,
        metrics_before=metrics_before,
        metrics_after=metrics_after,
        transport_errors=errors,
    )


def run_workload(
    address: tuple[str, int],
    spec: WorkloadSpec,
    mode: str = "open",
    timeout: float = 30.0,
    collect_metrics: bool = True,
) -> RunResult:
    """One-call front: generate from ``spec`` and run in ``mode``."""
    if mode == "open":
        trace = WorkloadGenerator(spec).schedule()
        connections = {t.name: t.connections for t in spec.tenants}
        return run_open_loop(
            address,
            trace,
            connections=connections,
            timeout=timeout,
            collect_metrics=collect_metrics,
        )
    if mode == "closed":
        return run_closed_loop(
            address, spec, timeout=timeout, collect_metrics=collect_metrics
        )
    raise ValueError(f"unknown mode {mode!r} (open|closed)")

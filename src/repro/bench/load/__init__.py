"""``repro.bench.load`` — traffic-shaped load generation and SLO gates.

The micro-benchmarks in :mod:`repro.bench` time algorithms in a tight
loop; this package benchmarks the *service* the way its users hit it:
multi-tenant request mixes with Zipf key popularity driven over real
sockets against :class:`~repro.service.server.AnalyticsServer` or
:class:`~repro.service.aserver.AsyncAnalyticsServer`, measured without
the coordinated-omission lie, and judged by declarative SLO gates.

* :mod:`~repro.bench.load.workload` — :class:`TenantSpec` /
  :class:`WorkloadSpec` traffic models, seeded generators, and
  replayable JSON-lines trace files (``repro generate trace``);
* :mod:`~repro.bench.load.runner` — open-loop (intended-start
  timestamps — stalls count against the server) and closed-loop
  (send-wait-send) socket runners producing :class:`OpResult` rows
  plus before/after server metric snapshots;
* :mod:`~repro.bench.load.report` — :class:`LoadReport` panels
  (p50/p99/p999 per tenant and per op, throughput, shed counts, cache
  and backend deltas) and :class:`SLOGate` pass/fail evaluation.

``benchmarks/bench_service_load.py`` is the batteries-included driver
(writes ``BENCH_service_load.json``); docs/LOAD.md is the manual.
"""

from .report import GateResult, LoadReport, SLOGate
from .runner import (
    OpResult,
    RunResult,
    run_closed_loop,
    run_open_loop,
    run_workload,
)
from .workload import (
    DEFAULT_MIX,
    HEAVY_OPS,
    MUTATION_OPS,
    OP_KINDS,
    POINT_OPS,
    TenantSpec,
    TraceOp,
    WorkloadGenerator,
    WorkloadSpec,
    ZipfKeys,
    read_trace,
    write_trace,
)

__all__ = [
    "DEFAULT_MIX",
    "GateResult",
    "HEAVY_OPS",
    "LoadReport",
    "MUTATION_OPS",
    "OP_KINDS",
    "OpResult",
    "POINT_OPS",
    "RunResult",
    "SLOGate",
    "TenantSpec",
    "TraceOp",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfKeys",
    "read_trace",
    "run_closed_loop",
    "run_open_loop",
    "run_workload",
    "write_trace",
]

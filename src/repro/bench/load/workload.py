"""Traffic-shaped workload generation: tenants, mixes, Zipf keys, traces.

A serving benchmark is only as honest as its traffic.  This module
models the request stream the paper's "build once, query many times"
service actually sees: a few **tenants**, each with its own request
rate, its own mix of cheap point lookups (``s_degree`` /
``s_neighbors``), heavy analytics (``s_connected_components`` /
``s_distance``), and mutation bursts (``update``), hitting keys with
**Zipf-distributed popularity** (a handful of hot vertices absorb most
lookups, exactly like real graph workloads).

Everything is seeded: the same :class:`WorkloadSpec` always produces
the same operations at the same intended timestamps, so a benchmark
run — or a CI regression — is reproducible bit for bit.  Traces
round-trip through JSON-lines files (:func:`write_trace` /
:func:`read_trace`, also ``repro generate trace``) so a recorded
workload can be replayed against any server build.

Open-loop arrivals are Poisson: per tenant, inter-arrival gaps are
drawn i.i.d. exponential at ``rps``, which is what makes the
coordinated-omission correction in :mod:`repro.bench.load.runner`
meaningful — the *intended* start times exist independently of how
slowly the server answers.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

__all__ = [
    "DEFAULT_MIX",
    "HEAVY_OPS",
    "MUTATION_OPS",
    "OP_KINDS",
    "POINT_OPS",
    "TenantSpec",
    "TraceOp",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfKeys",
    "read_trace",
    "write_trace",
]

#: cheap per-vertex lookups — the high-rps bread and butter
POINT_OPS = ("s_degree", "s_neighbors")
#: whole-graph / traversal analytics — the tail-latency makers
HEAVY_OPS = ("s_connected_components", "s_distance")
#: mutation bursts against dynamic datasets
MUTATION_OPS = ("update",)
OP_KINDS = POINT_OPS + HEAVY_OPS + MUTATION_OPS

#: read-mostly default: 80% point lookups, 15% heavy, 5% mutations
DEFAULT_MIX: Mapping[str, float] = {
    "s_degree": 0.55,
    "s_neighbors": 0.25,
    "s_connected_components": 0.08,
    "s_distance": 0.07,
    "update": 0.05,
}

_TRACE_FORMAT = "repro.bench.load/trace"
_TRACE_VERSION = 1


class ZipfKeys:
    """Zipf(``theta``) sampler over ``num_keys`` ranked keys.

    Key ``0`` is the hottest; P(key = k) ∝ 1 / (k + 1)**theta.  The CDF
    is precomputed once so each draw is a binary search, and draws are
    pure functions of the caller's ``Generator`` state — determinism
    stays with the seed.
    """

    def __init__(self, num_keys: int, theta: float = 1.1) -> None:
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if theta < 0:
            raise ValueError("zipf theta must be >= 0")
        self.num_keys = int(num_keys)
        self.theta = float(theta)
        weights = (np.arange(1, self.num_keys + 1, dtype=np.float64)
                   ** -self.theta)
        self._cdf = np.cumsum(weights / weights.sum())

    def draw(self, rng: np.random.Generator) -> int:
        """One key id in ``[0, num_keys)``."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape.

    Parameters
    ----------
    name:
        Tenant id stamped into every request envelope (``"tenant": name``)
        — the same id the server's quota buckets key on.
    rps:
        Intended request rate (open loop: Poisson arrivals at this rate;
        closed loop: an upper bound set by ``connections`` instead).
    connections:
        Concurrent persistent connections this tenant drives.
    mix:
        Operation mix, op name -> weight (normalized; defaults to
        :data:`DEFAULT_MIX`).  Ops: ``s_degree``, ``s_neighbors``,
        ``s_connected_components``, ``s_distance``, ``update``.
    datasets:
        Resident dataset names the tenant queries (popularity is Zipf
        across them too when there are several).
    s:
        The s parameter for s-metric queries.
    zipf_theta:
        Key-popularity skew; ``0`` is uniform, ``~1`` classic Zipf.
    burst:
        ``add_edge`` records per ``update`` mutation burst.
    """

    name: str
    rps: float = 50.0
    connections: int = 1
    mix: Mapping[str, float] | None = None
    datasets: tuple[str, ...] = ("load",)
    s: int = 1
    zipf_theta: float = 1.1
    burst: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rps <= 0:
            raise ValueError("tenant rps must be > 0")
        if self.connections < 1:
            raise ValueError("tenant connections must be >= 1")
        if not self.datasets:
            raise ValueError("tenant needs at least one dataset")
        for op in (self.mix or {}):
            if op not in OP_KINDS:
                raise ValueError(
                    f"unknown op {op!r} in mix (one of {sorted(OP_KINDS)})"
                )

    def resolved_mix(self) -> dict[str, float]:
        """Normalized op -> probability (drops zero-weight ops)."""
        raw = dict(DEFAULT_MIX if self.mix is None else self.mix)
        total = sum(raw.values())
        if total <= 0:
            raise ValueError("tenant mix weights must sum > 0")
        return {op: w / total for op, w in raw.items() if w > 0}

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "rps": self.rps,
            "connections": self.connections,
            "mix": self.resolved_mix(),
            "datasets": list(self.datasets),
            "s": self.s,
            "zipf_theta": self.zipf_theta,
            "burst": self.burst,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """A full workload: tenants + duration + keyspace + seed."""

    tenants: tuple[TenantSpec, ...]
    duration_s: float = 2.0
    seed: int = 0
    num_keys: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ValueError("workload needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.num_keys < 2:
            raise ValueError("num_keys must be >= 2")

    def as_dict(self) -> dict:
        return {
            "tenants": [t.as_dict() for t in self.tenants],
            "duration_s": self.duration_s,
            "seed": self.seed,
            "num_keys": self.num_keys,
        }


@dataclass(frozen=True)
class TraceOp:
    """One scheduled operation: intended start offset, tenant, payload."""

    t: float
    tenant: str
    payload: dict = field(compare=False)

    def as_dict(self) -> dict:
        return {"t": self.t, "tenant": self.tenant, "payload": self.payload}


class WorkloadGenerator:
    """Seeded operation streams and open-loop schedules for one spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._zipf: dict[float, ZipfKeys] = {}

    # -- seeding -------------------------------------------------------------
    def _rng(self, tenant: TenantSpec, salt: int) -> np.random.Generator:
        # crc32, not hash(): PYTHONHASHSEED must not leak into traces
        name_key = zlib.crc32(tenant.name.encode("utf-8"))
        return np.random.default_rng(
            [int(self.spec.seed) & 0xFFFFFFFF, name_key, int(salt)]
        )

    def _keys(self, theta: float) -> ZipfKeys:
        sampler = self._zipf.get(theta)
        if sampler is None:
            sampler = ZipfKeys(self.spec.num_keys, theta)
            self._zipf[theta] = sampler
        return sampler

    # -- payload synthesis ---------------------------------------------------
    def _payload(
        self, tenant: TenantSpec, rng: np.random.Generator
    ) -> dict:
        mix = tenant.resolved_mix()
        ops = sorted(mix)  # sorted: dict order must not affect the draw
        probs = np.array([mix[op] for op in ops])
        kind = ops[int(rng.choice(len(ops), p=probs))]
        keys = self._keys(tenant.zipf_theta)
        if len(tenant.datasets) == 1:
            dataset = tenant.datasets[0]
        else:
            dataset = tenant.datasets[
                self._keys(tenant.zipf_theta).draw(rng)
                % len(tenant.datasets)
            ]
        payload: dict = {"op": kind, "dataset": dataset,
                         "tenant": tenant.name}
        if kind in ("s_degree", "s_neighbors"):
            payload["s"] = tenant.s
            payload["v"] = keys.draw(rng)
        elif kind == "s_distance":
            payload["s"] = tenant.s
            payload["src"] = keys.draw(rng)
            dst = keys.draw(rng)
            if dst == payload["src"]:
                dst = (dst + 1) % self.spec.num_keys
            payload["dst"] = dst
        elif kind == "s_connected_components":
            payload["s"] = tenant.s
        elif kind == "update":
            records = []
            for _ in range(max(1, tenant.burst)):
                members = {keys.draw(rng) for _ in range(3)}
                while len(members) < 2:
                    members.add(int(rng.integers(self.spec.num_keys)))
                records.append(
                    {"op": "add_edge", "members": sorted(members)}
                )
            payload["ops"] = records
        return payload

    # -- closed loop: infinite per-tenant stream -----------------------------
    def stream(self, tenant: TenantSpec, salt: int = 0) -> Iterator[dict]:
        """Infinite seeded payload stream for one tenant (+ connection salt).

        Closed-loop workers pull from this as fast as the server answers;
        distinct ``salt`` values (one per connection) give independent
        but reproducible streams.
        """
        rng = self._rng(tenant, salt)
        while True:
            yield self._payload(tenant, rng)

    # -- open loop: merged Poisson schedule ----------------------------------
    def schedule(self) -> list[TraceOp]:
        """All tenants' Poisson arrivals over ``duration_s``, time-sorted.

        Each tenant draws exponential inter-arrival gaps at its ``rps``
        from its own seeded stream, so adding a tenant never perturbs
        another tenant's arrivals or payloads.
        """
        ops: list[TraceOp] = []
        for tenant in self.spec.tenants:
            rng = self._rng(tenant, salt=0x5EED)
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / tenant.rps))
                if t >= self.spec.duration_s:
                    break
                ops.append(
                    TraceOp(
                        t=round(t, 6),
                        tenant=tenant.name,
                        payload=self._payload(tenant, rng),
                    )
                )
        ops.sort(key=lambda op: (op.t, op.tenant))
        return ops


# -- trace files (JSON-lines) ------------------------------------------------

def write_trace(
    path, ops: list[TraceOp], spec: WorkloadSpec | None = None
) -> int:
    """Write a schedule as a JSON-lines trace file; returns op count.

    Line 1 is a header (format tag, version, and the generating spec
    when known); every following line is one :class:`TraceOp`.  The
    encoding is canonical (sorted keys) so identical workloads produce
    byte-identical files — ``diff`` is a regression test.
    """
    header = {
        "format": _TRACE_FORMAT,
        "version": _TRACE_VERSION,
        "ops": len(ops),
    }
    if spec is not None:
        header["spec"] = spec.as_dict()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for op in ops:
            fh.write(json.dumps(op.as_dict(), sort_keys=True) + "\n")
    return len(ops)


def read_trace(path) -> tuple[dict, list[TraceOp]]:
    """Read a trace file back: ``(header, ops)``."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(first)
        if header.get("format") != _TRACE_FORMAT:
            raise ValueError(
                f"{path} is not a {_TRACE_FORMAT} file "
                f"(format={header.get('format')!r})"
            )
        ops = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            ops.append(
                TraceOp(
                    t=float(rec["t"]),
                    tenant=str(rec["tenant"]),
                    payload=dict(rec["payload"]),
                )
            )
    ops.sort(key=lambda op: (op.t, op.tenant))
    return header, ops

"""Turn raw run results into panels, percentiles, and pass/fail gates.

:class:`LoadReport` aggregates a :class:`~repro.bench.load.runner.RunResult`
into the numbers an operator actually reads:

* **latency panels** — p50/p99/p999/mean/max per tenant and overall,
  computed through the same log-bucketed
  :class:`~repro.obs.metrics.Histogram` (and its interpolating
  :meth:`~repro.obs.metrics.Histogram.quantile`) the service itself
  exports, so the benchmark and the dashboards agree on methodology;
* **traffic panels** — throughput, goodput, error rate, shed rate and
  shed counts (sheds — ``overloaded`` / ``quota_exceeded`` responses —
  are admission control doing its job and are tallied separately from
  errors);
* **server panels** — deltas of the server's own ``metrics`` snapshots
  taken before/after the run: cache hits/derives/misses, per-reason and
  per-tenant shed counters, backend fallback tasks.

:class:`SLOGate` is the declarative pass/fail layer: a list of gates
(``p99_ms <= 50``, ``error_rate <= 0``, ``rps >= 200`` …, optionally
scoped to one tenant) evaluated against the report — the contract CI
enforces in the ``load-smoke`` job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.metrics import LATENCY_BUCKETS, Histogram

from .runner import OpResult, RunResult

__all__ = ["GateResult", "LoadReport", "SLOGate"]

#: gate metrics that mean "smaller is better" / "bigger is better" both
#: live here; anything in a panel dict with a numeric value is gateable
_GATE_METRICS = (
    "p50_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms",
    "error_rate", "shed_rate", "rps", "goodput_rps", "ops",
)


@dataclass(frozen=True)
class SLOGate:
    """One declarative objective: ``metric`` within ``[min, max]``.

    ``tenant=None`` gates the overall panel; a tenant name gates that
    tenant's panel (``SLOGate("p99_ms", max=50, tenant="quiet")`` is the
    noisy-neighbor promise in one line).
    """

    metric: str
    max: float | None = None
    min: float | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.metric not in _GATE_METRICS:
            raise ValueError(
                f"unknown gate metric {self.metric!r} "
                f"(one of {sorted(_GATE_METRICS)})"
            )
        if self.max is None and self.min is None:
            raise ValueError("gate needs max= and/or min=")

    @classmethod
    def from_dict(cls, spec: dict) -> "SLOGate":
        """``{"metric": "p99_ms", "max": 50, "tenant": "quiet"}``"""
        return cls(
            metric=spec["metric"],
            max=spec.get("max"),
            min=spec.get("min"),
            tenant=spec.get("tenant"),
        )

    def as_dict(self) -> dict:
        out: dict = {"metric": self.metric}
        if self.max is not None:
            out["max"] = self.max
        if self.min is not None:
            out["min"] = self.min
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    def check(self, value: float) -> bool:
        if self.max is not None and value > self.max:
            return False
        if self.min is not None and value < self.min:
            return False
        return True


@dataclass(frozen=True)
class GateResult:
    """One evaluated gate: the observed value and the verdict."""

    gate: SLOGate
    value: float
    ok: bool

    def as_dict(self) -> dict:
        return {**self.gate.as_dict(), "value": self.value, "ok": self.ok}

    def describe(self) -> str:
        scope = "overall" if self.gate.tenant is None else self.gate.tenant
        bounds = []
        if self.gate.min is not None:
            bounds.append(f">= {self.gate.min:g}")
        if self.gate.max is not None:
            bounds.append(f"<= {self.gate.max:g}")
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"[{verdict}] {scope}.{self.gate.metric} = {self.value:.4g} "
            f"(want {' and '.join(bounds)})"
        )


def _latency_panel(rows: Sequence[OpResult], duration_s: float) -> dict:
    """Percentiles + rates for one slice of results."""
    hist = Histogram("load_latency_seconds", bounds=LATENCY_BUCKETS)
    total = len(rows)
    errors = shed = 0
    latency_sum = 0.0
    latency_max = 0.0
    for row in rows:
        hist.observe(row.latency_s)
        latency_sum += row.latency_s
        latency_max = max(latency_max, row.latency_s)
        if row.shed:
            shed += 1
        elif not row.ok:
            errors += 1
    duration = max(duration_s, 1e-9)
    return {
        "ops": total,
        "rps": total / duration,
        "goodput_rps": (total - errors - shed) / duration,
        "error_rate": (errors / total) if total else 0.0,
        "shed_rate": (shed / total) if total else 0.0,
        "errors": errors,
        "shed": shed,
        "p50_ms": hist.quantile(0.50) * 1e3,
        "p99_ms": hist.quantile(0.99) * 1e3,
        "p999_ms": hist.quantile(0.999) * 1e3,
        "mean_ms": (latency_sum / total * 1e3) if total else 0.0,
        "max_ms": latency_max * 1e3,
    }


def _counter_map(metrics: dict | None) -> dict[str, float]:
    """Flatten a ``metrics`` op's registry snapshot into name{labels} -> value.

    The engine's ``metrics`` op returns ``registry`` as a list of
    instrument records (see ``MetricsRegistry.snapshot``); counters and
    gauges flatten to ``name{k=v,...}`` keys so before/after snapshots
    diff by plain dict subtraction.
    """
    out: dict[str, float] = {}
    if not metrics:
        return out
    registry = metrics.get("registry")
    if not isinstance(registry, list):
        return out
    for rec in registry:
        if not isinstance(rec, dict) or rec.get("kind") not in (
            "counter", "gauge"
        ):
            continue
        value = rec.get("value")
        if not isinstance(value, (int, float)):
            continue
        labels = rec.get("labels") or {}
        tag = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        out[f"{rec.get('name')}{{{tag}}}"] = float(value)
    return out


def _cache_stats(metrics: dict | None) -> dict[str, float]:
    out: dict[str, float] = {}
    if not metrics:
        return out
    cache = metrics.get("cache")
    if isinstance(cache, dict):
        for key in ("hits", "derives", "misses", "evictions", "bypasses"):
            value = cache.get(key)
            if isinstance(value, (int, float)):
                out[key] = float(value)
    return out


class LoadReport:
    """Aggregated view of one load run, ready for gates and JSON."""

    def __init__(self, run: RunResult) -> None:
        self.run = run
        self.tenants = sorted({r.tenant for r in run.results})

    # -- panels --------------------------------------------------------------
    def panel(self, tenant: str | None = None) -> dict:
        """Latency/traffic panel, overall or for one tenant."""
        rows = (
            self.run.results if tenant is None
            else [r for r in self.run.results if r.tenant == tenant]
        )
        return _latency_panel(rows, self.run.duration_s)

    def op_panel(self) -> dict:
        """Per-op-kind latency panels (where the tail actually lives)."""
        kinds = sorted({r.kind for r in self.run.results})
        return {
            kind: _latency_panel(
                [r for r in self.run.results if r.kind == kind],
                self.run.duration_s,
            )
            for kind in kinds
        }

    def server_panel(self) -> dict:
        """Server-side counter deltas across the run (best effort).

        Cache traffic, shed counters (per reason and per tenant), and
        backend fallback tasks — everything the ``metrics`` op exposes
        that moved during the run.
        """
        before = _counter_map(self.run.metrics_before)
        after = _counter_map(self.run.metrics_after)
        deltas = {
            key: after[key] - before.get(key, 0.0)
            for key in after
            if after[key] != before.get(key, 0.0)
        }
        cache_before = _cache_stats(self.run.metrics_before)
        cache_after = _cache_stats(self.run.metrics_after)
        cache = {
            key: cache_after[key] - cache_before.get(key, 0.0)
            for key in cache_after
        }
        lookups = cache.get("hits", 0.0) + cache.get("derives", 0.0) \
            + cache.get("misses", 0.0)
        panel: dict = {"counters": deltas, "cache": cache}
        if lookups > 0:
            panel["cache_hit_rate"] = (
                cache.get("hits", 0.0) + cache.get("derives", 0.0)
            ) / lookups
        for snap_key, out_key in (
            ("metrics_before", "backend_before"),
            ("metrics_after", "backend_after"),
        ):
            snap = getattr(self.run, snap_key)
            if isinstance(snap, dict) and isinstance(
                snap.get("backend"), dict
            ):
                panel[out_key] = snap["backend"]
        return panel

    # -- gates ---------------------------------------------------------------
    def evaluate(
        self, gates: "Iterable[SLOGate | dict]"
    ) -> list[GateResult]:
        """Evaluate every gate against its (overall or tenant) panel."""
        panels: dict[str | None, dict] = {None: self.panel()}
        out: list[GateResult] = []
        for gate in gates:
            if isinstance(gate, dict):
                gate = SLOGate.from_dict(gate)
            if gate.tenant not in panels:
                panels[gate.tenant] = self.panel(gate.tenant)
            value = float(panels[gate.tenant][gate.metric])
            out.append(GateResult(gate, value, gate.check(value)))
        return out

    def passes(self, gates: "Iterable[SLOGate | dict]") -> bool:
        return all(g.ok for g in self.evaluate(gates))

    # -- serialization -------------------------------------------------------
    def as_dict(self, gates: "Iterable[SLOGate | dict]" = ()) -> dict:
        """JSON-safe report: overall, per-tenant, per-op, server, gates."""
        evaluated = self.evaluate(gates)
        return {
            "mode": self.run.mode,
            "duration_s": self.run.duration_s,
            "overall": self.panel(),
            "tenants": {t: self.panel(t) for t in self.tenants},
            "ops": self.op_panel(),
            "server": self.server_panel(),
            "transport_errors": list(self.run.transport_errors),
            "gates": [g.as_dict() for g in evaluated],
            "gates_ok": all(g.ok for g in evaluated),
        }

    def format_text(self) -> str:
        """Aligned per-tenant summary for terminals and CI job logs."""
        from repro.bench.reporting import format_table

        header = [
            "tenant", "ops", "rps", "p50_ms", "p99_ms", "p999_ms",
            "err%", "shed",
        ]
        rows = []
        for tenant in [None, *self.tenants]:
            p = self.panel(tenant)
            rows.append([
                "(all)" if tenant is None else tenant,
                str(p["ops"]),
                f"{p['rps']:.1f}",
                f"{p['p50_ms']:.2f}",
                f"{p['p99_ms']:.2f}",
                f"{p['p999_ms']:.2f}",
                f"{p['error_rate'] * 100:.2f}",
                str(p["shed"]),
            ])
        title = f"load run: mode={self.run.mode} " \
                f"duration={self.run.duration_s:.2f}s"
        return title + "\n" + format_table(header, rows)

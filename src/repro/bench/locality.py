"""Memory-locality estimation — the *other* half of relabel-by-degree.

§III-B.2 credits relabel-by-degree with improving both "workload
distribution and memory access pattern" (citing Cuthill–McKee [9]).  The
scheduler simulation captures the former; this module estimates the
latter: for a traversal kernel, how many distinct cache lines does each
chunk touch?  Relabeling hot entities to adjacent IDs compacts their CSR
rows, so the same work touches fewer lines.

The estimate counts unique 64-byte lines (8 int64 entries) across the
indptr positions and index values a two-hop chunk reads — a standard
first-order reuse-distance proxy, deterministic and exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.structures.csr import CSR

__all__ = ["chunk_lines_touched", "traversal_line_traffic"]

#: int64 entries per 64-byte cache line.
_ENTRIES_PER_LINE = 8


def _lines(positions: np.ndarray) -> int:
    """Number of distinct cache lines covering the given array offsets."""
    if positions.size == 0:
        return 0
    return int(np.unique(positions // _ENTRIES_PER_LINE).size)


def chunk_lines_touched(graph: CSR, ids: np.ndarray) -> int:
    """Distinct cache lines a one-hop gather over ``ids`` reads.

    Counts lines of: the ``indptr`` entries consulted, the ``indices``
    ranges streamed, and the *target-indexed* accesses the values imply
    (e.g. ``dist[target]`` lookups in BFS/CC kernels).
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return 0
    total = _lines(ids)  # indptr accesses (contiguous with the ID space)
    starts = graph.indptr[ids]
    ends = graph.indptr[ids + 1]
    # indices[] ranges streamed: count each row's spanned lines
    from repro.graph.traversal import multi_slice

    counts = ends - starts
    span_positions = multi_slice(
        np.arange(graph.indices.size, dtype=np.int64), starts, counts
    )
    total += _lines(span_positions)
    # per-target random accesses
    targets = multi_slice(graph.indices, starts, counts)
    total += _lines(targets)
    return total


def traversal_line_traffic(
    graph: CSR, chunks: list[np.ndarray]
) -> tuple[int, np.ndarray]:
    """Total and per-chunk cache-line traffic of a chunked traversal."""
    per_chunk = np.array(
        [chunk_lines_touched(graph, c) for c in chunks], dtype=np.int64
    )
    return int(per_chunk.sum()), per_chunk

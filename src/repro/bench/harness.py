"""Experiment drivers for the paper's figures (Figs. 7–9) and Table I.

Each driver runs the relevant algorithms over the Table I stand-ins on the
simulated runtime, sweeping the paper's axes (thread counts for strong
scaling; algorithm × partitioning × relabeling for the s-line comparison)
and returning structured results the ``benchmarks/`` files print and the
integration tests assert shape properties on.

Runtime configurations mirror the systems compared (DESIGN.md §2):

* **NWHy** algorithms → work-stealing scheduler, cyclic partitioning
  (oneTBB with the paper's cyclic range adaptor);
* **Hygra** baselines → static scheduler, blocked partitioning (OpenMP
  static loops over contiguous chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.adjoinbfs import adjoinbfs
from repro.algorithms.adjoincc import adjoincc
from repro.algorithms.hyperbfs import hyperbfs_direction_optimizing
from repro.algorithms.hypercc import hypercc
from repro.baselines.hygra import hygra_bfs, hygra_cc
from repro.io import datasets
from repro.linegraph import (
    slinegraph_hashmap,
    slinegraph_intersection,
    slinegraph_queue_hashmap,
    slinegraph_queue_intersection,
)
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph
from repro.structures.biadjacency import BiAdjacency
from repro.structures.relabel import relabel_hyperedges

__all__ = [
    "DEFAULT_THREADS",
    "ScalingPoint",
    "ScalingSeries",
    "Fig9Row",
    "nwhy_runtime",
    "hygra_runtime",
    "strong_scaling_cc",
    "strong_scaling_bfs",
    "fig9_slinegraph",
    "bfs_source",
]

#: The paper's strong-scaling thread grid (doubling, Fig. 7–8).
DEFAULT_THREADS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


def nwhy_runtime(
    num_threads: int,
    backend: str | None = None,
    workers: int | None = None,
) -> ParallelRuntime:
    """Simulated oneTBB: work stealing + cyclic range adaptor.

    ``backend``/``workers`` select a real execution backend for pure
    phases (see docs/PARALLEL.md); the simulated ledger — and therefore
    every figure — is bit-identical regardless.
    """
    return ParallelRuntime(
        num_threads=num_threads, scheduler="work_stealing",
        partitioner="cyclic", backend=backend, workers=workers,
    )


def hygra_runtime(
    num_threads: int,
    backend: str | None = None,
    workers: int | None = None,
) -> ParallelRuntime:
    """Simulated OpenMP static loops: static scheduler + blocked chunks."""
    return ParallelRuntime(
        num_threads=num_threads, scheduler="static", partitioner="blocked",
        backend=backend, workers=workers,
    )


@dataclass(frozen=True)
class ScalingPoint:
    threads: int
    makespan: float
    speedup: float


@dataclass
class ScalingSeries:
    """One line of a strong-scaling plot (one algorithm on one dataset)."""

    algorithm: str
    dataset: str
    points: list[ScalingPoint] = field(default_factory=list)

    def speedup_at(self, threads: int) -> float:
        for p in self.points:
            if p.threads == threads:
                return p.speedup
        raise KeyError(threads)

    @property
    def max_speedup(self) -> float:
        return max(p.speedup for p in self.points)


def _reps(name: str) -> tuple[BiAdjacency, AdjoinGraph]:
    el = datasets.load(name)
    return BiAdjacency.from_biedgelist(el), AdjoinGraph.from_biedgelist(el)


def bfs_source(h: BiAdjacency) -> int:
    """Deterministic BFS source: the highest-degree hypernode."""
    return int(np.argmax(h.node_degrees()))


_CC_ENGINES = {
    "AdjoinCC": lambda h, ag, rt: adjoincc(ag, "afforest", runtime=rt),
    "HyperCC": lambda h, ag, rt: hypercc(h, runtime=rt),
    "HygraCC": lambda h, ag, rt: hygra_cc(h, runtime=rt),
}

_BFS_ENGINES = {
    "AdjoinBFS": lambda h, ag, src, rt: adjoinbfs(ag, src, runtime=rt),
    "HyperBFS": lambda h, ag, src, rt: hyperbfs_direction_optimizing(
        h, src, runtime=rt
    ),
    "HygraBFS": lambda h, ag, src, rt: hygra_bfs(h, src, runtime=rt),
}


def _runtime_for(
    algorithm: str,
    threads: int,
    backend: str | None = None,
    workers: int | None = None,
) -> ParallelRuntime:
    factory = hygra_runtime if algorithm.startswith("Hygra") else nwhy_runtime
    return factory(threads, backend=backend, workers=workers)


def strong_scaling_cc(
    dataset: str,
    thread_counts: tuple[int, ...] = DEFAULT_THREADS,
    algorithms: tuple[str, ...] = ("AdjoinCC", "HyperCC", "HygraCC"),
    backend: str | None = None,
    workers: int | None = None,
) -> list[ScalingSeries]:
    """Figure 7 driver: CC makespans/speedups over the thread grid."""
    h, ag = _reps(dataset)
    out: list[ScalingSeries] = []
    for alg in algorithms:
        engine = _CC_ENGINES[alg]
        series = ScalingSeries(algorithm=alg, dataset=dataset)
        base: float | None = None
        for t in thread_counts:
            with _runtime_for(alg, t, backend, workers) as rt:
                rt.new_run()
                engine(h, ag, rt)
                span = rt.makespan
            if base is None:
                base = span
            series.points.append(
                ScalingPoint(t, span, base / span if span else float("inf"))
            )
        out.append(series)
    return out


def strong_scaling_bfs(
    dataset: str,
    thread_counts: tuple[int, ...] = DEFAULT_THREADS,
    algorithms: tuple[str, ...] = ("AdjoinBFS", "HyperBFS", "HygraBFS"),
    backend: str | None = None,
    workers: int | None = None,
) -> list[ScalingSeries]:
    """Figure 8 driver: BFS makespans/speedups over the thread grid."""
    h, ag = _reps(dataset)
    src = bfs_source(h)
    out: list[ScalingSeries] = []
    for alg in algorithms:
        engine = _BFS_ENGINES[alg]
        series = ScalingSeries(algorithm=alg, dataset=dataset)
        base: float | None = None
        for t in thread_counts:
            with _runtime_for(alg, t, backend, workers) as rt:
                rt.new_run()
                engine(h, ag, src, rt)
                span = rt.makespan
            if base is None:
                base = span
            series.points.append(
                ScalingPoint(t, span, base / span if span else float("inf"))
            )
        out.append(series)
    return out


def strong_scaling_construction(
    dataset: str,
    s: int = 2,
    thread_counts: tuple[int, ...] = DEFAULT_THREADS,
    algorithms: tuple[str, ...] = (
        "Hashmap", "Alg1 (queue hashmap)", "Alg2 (queue intersect)",
    ),
    backend: str | None = None,
    workers: int | None = None,
) -> list[ScalingSeries]:
    """Construction strong scaling — the companion papers' [17, 18] panel.

    Same thread grid as Figs. 7–8, applied to the s-line construction
    algorithms themselves (cyclic partitioning, work stealing).
    """
    h, _ = _reps(dataset)
    out: list[ScalingSeries] = []
    for alg in algorithms:
        fn = _FIG9_ALGOS[alg]
        series = ScalingSeries(algorithm=alg, dataset=dataset)
        base: float | None = None
        for t in thread_counts:
            with nwhy_runtime(t, backend=backend, workers=workers) as rt:
                rt.new_run()
                fn(h, s, runtime=rt)
                span = rt.makespan
            if base is None:
                base = span
            series.points.append(
                ScalingPoint(t, span, base / span if span else float("inf"))
            )
        out.append(series)
    return out


@dataclass(frozen=True)
class Fig9Row:
    """One bar of Fig. 9: an algorithm's best config on one (dataset, s)."""

    dataset: str
    s: int
    algorithm: str
    best_makespan: float
    normalized: float  # relative to the Hashmap algorithm's best
    best_config: str  # e.g. 'cyclic/desc'


_FIG9_ALGOS = {
    "Hashmap": slinegraph_hashmap,
    "Intersection": slinegraph_intersection,
    "Alg1 (queue hashmap)": slinegraph_queue_hashmap,
    "Alg2 (queue intersect)": slinegraph_queue_intersection,
}


def fig9_slinegraph(
    dataset: str,
    s: int = 2,
    threads: int = 32,
    partitioners: tuple[str, ...] = ("blocked", "cyclic"),
    relabels: tuple[str, ...] = ("none", "ascending", "descending"),
    backend: str | None = None,
    workers: int | None = None,
    kernel: str | None = None,
) -> list[Fig9Row]:
    """Figure 9 driver: best-config s-line construction, Hashmap-normalized.

    Per the paper: every algorithm is run under every partitioning strategy
    and relabel-by-degree order, and only the fastest configuration is
    reported; results are normalized to Hashmap's best time.

    ``kernel`` forces one counting kernel (``auto`` is the dispatcher)
    on every builder that accepts it; queue-intersection keeps its
    definitional two-phase kernel when the forced one doesn't apply.
    """
    h, _ = _reps(dataset)
    variants: dict[str, BiAdjacency] = {"none": h}
    for order in ("ascending", "descending"):
        if order in relabels:
            variants[order], _perm = relabel_hyperedges(h, order)
    rows: list[tuple[str, float, str]] = []
    for alg_name, fn in _FIG9_ALGOS.items():
        kw: dict = {}
        if kernel is not None:
            kw = {"kernel": kernel}
            if fn is slinegraph_queue_intersection and kernel not in (
                "auto", "intersection"
            ):
                kw = {}  # its pair queue *is* the intersection strategy
        best = float("inf")
        best_cfg = ""
        for part in partitioners:
            for rel in relabels:
                with ParallelRuntime(
                    num_threads=threads,
                    scheduler="work_stealing",
                    partitioner=part,
                    backend=backend,
                    workers=workers,
                ) as rt:
                    rt.new_run()
                    fn(variants[rel], s, runtime=rt, **kw)
                    if rt.makespan < best:
                        best = rt.makespan
                        best_cfg = f"{part}/{rel}"
        rows.append((alg_name, best, best_cfg))
    hash_best = next(b for name, b, _ in rows if name == "Hashmap")
    return [
        Fig9Row(dataset, s, name, best, best / hash_best, cfg)
        for name, best, cfg in rows
    ]

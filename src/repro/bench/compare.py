"""Compare two benchmark result dumps (regression diffing).

``pytest benchmarks/ --benchmark-only`` with ``REPRO_RESULTS_JSON=path``
writes every reproduced table as JSON.  This module diffs two such dumps —
run before and after a change — and reports added/removed/changed tables,
so benchmark-visible regressions show up as text instead of eyeballing.

Usage::

    REPRO_RESULTS_JSON=before.json pytest benchmarks/ --benchmark-only
    # ... make changes ...
    REPRO_RESULTS_JSON=after.json pytest benchmarks/ --benchmark-only
    python -m repro.bench.compare before.json after.json
"""

from __future__ import annotations

import difflib
import json
import sys
from pathlib import Path

__all__ = ["load_results", "diff_results", "main"]


def load_results(path: str | Path) -> dict[str, str]:
    """Load a REPRO_RESULTS_JSON dump as ``{title: text}``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ValueError("results dump must be a JSON list")
    out: dict[str, str] = {}
    for entry in payload:
        if not isinstance(entry, dict) or "title" not in entry:
            raise ValueError("each entry needs 'title' and 'text'")
        out[entry["title"]] = entry.get("text", "")
    return out


def diff_results(
    before: dict[str, str], after: dict[str, str]
) -> tuple[list[str], bool]:
    """Human-readable diff lines + whether anything changed."""
    lines: list[str] = []
    changed = False
    for title in sorted(set(before) - set(after)):
        lines.append(f"- removed: {title}")
        changed = True
    for title in sorted(set(after) - set(before)):
        lines.append(f"+ added:   {title}")
        changed = True
    for title in sorted(set(before) & set(after)):
        if before[title] == after[title]:
            continue
        changed = True
        lines.append(f"~ changed: {title}")
        diff = difflib.unified_diff(
            before[title].splitlines(),
            after[title].splitlines(),
            lineterm="",
            n=1,
        )
        lines.extend(f"    {d}" for d in list(diff)[3:])
    if not changed:
        lines.append("no differences")
    return lines, changed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: exit 1 when the dumps differ (CI-friendly)."""
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: python -m repro.bench.compare BEFORE.json AFTER.json")
        return 2
    before = load_results(args[0])
    after = load_results(args[1])
    lines, changed = diff_results(before, after)
    for line in lines:
        print(line)
    return 1 if changed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())

"""Plain-text reporting: the rows/series the paper's tables and figures show.

No plotting dependencies — benchmarks print aligned ASCII so the output in
``bench_output.txt`` is directly comparable to the paper's figures (series
of speedups per thread count; normalized bars per algorithm).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.io.datasets import DatasetStats

from .harness import Fig9Row, ScalingSeries

__all__ = ["format_table", "format_table1", "format_scaling", "format_fig9"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align a list of rows under headers (numbers right-aligned)."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                  for c, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join([line, sep, *body])


def _fmt(c: object) -> str:
    if isinstance(c, float):
        return f"{c:.2f}"
    return str(c)


def _numeric(c: str) -> bool:
    try:
        float(c)
        return True
    except ValueError:
        return False


def format_table1(stats: Sequence[DatasetStats]) -> str:
    """Table I layout: dataset, |V|, |E|, d̄_v, d̄_e, Δ_v, Δ_e."""
    headers = ["hypergraph", "|V|", "|E|", "avg d_v", "avg d_e", "max d_v", "max d_e"]
    return format_table(headers, [s.row() for s in stats])


def format_scaling(series: Sequence[ScalingSeries]) -> str:
    """One strong-scaling panel: speedup per algorithm per thread count."""
    if not series:
        return "(empty)"
    threads = [p.threads for p in series[0].points]
    headers = ["algorithm"] + [f"t={t}" for t in threads]
    rows = [
        [s.algorithm] + [f"{p.speedup:.2f}x" for p in s.points] for s in series
    ]
    title = f"dataset: {series[0].dataset} (simulated speedup vs 1 thread)"
    return title + "\n" + format_table(headers, rows)


def format_fig9(rows: Sequence[Fig9Row]) -> str:
    """Fig. 9 panel: normalized best-config construction time per algorithm."""
    if not rows:
        return "(empty)"
    headers = ["algorithm", "normalized", "best config"]
    body = [[r.algorithm, f"{r.normalized:.2f}", r.best_config] for r in rows]
    title = (
        f"dataset: {rows[0].dataset}, s={rows[0].s} "
        "(runtime relative to Hashmap, lower is better)"
    )
    return title + "\n" + format_table(headers, body)

"""One-button reproduction self-check: the paper's headline claims, fast.

``verify_headline_claims()`` runs a compressed version of every claim
EXPERIMENTS.md asserts — on the smallest stand-ins, in well under a minute
— and returns pass/fail lines.  Exposed as ``python -m repro verify`` so a
fresh checkout can validate itself without running the full benchmark
suite.

Checks:

1. **correctness parity** — AdjoinCC == HyperCC == HygraCC labels and
   AdjoinBFS == HyperBFS == HygraBFS distances;
2. **construction agreement** — all s-line algorithms equal the scipy
   oracle, on bipartite and adjoin inputs;
3. **Fig. 7 shape** — AdjoinCC out-scales HygraCC on a skewed input;
4. **Fig. 8 shape** — AdjoinBFS ≈ HygraBFS on the uniform input;
5. **Fig. 9 shape** — Algorithm 1 ≈ Hashmap, Algorithm 2 ≈ Intersection;
6. **approximation identity** — 1-line distance = bipartite distance / 2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["verify_headline_claims"]


def verify_headline_claims(verbose: bool = False) -> tuple[list[str], bool]:
    """Run the compressed claim checks; returns ``(report_lines, all_ok)``."""
    from repro.algorithms.adjoincc import adjoincc
    from repro.algorithms.hyperbfs import hyperbfs_direction_optimizing
    from repro.algorithms.hypercc import hypercc
    from repro.algorithms.adjoinbfs import adjoinbfs
    from repro.baselines.hygra import hygra_bfs, hygra_cc
    from repro.bench.harness import (
        bfs_source,
        fig9_slinegraph,
        strong_scaling_bfs,
        strong_scaling_cc,
    )
    from repro.graph.bfs import bfs_top_down
    from repro.io.datasets import load
    from repro.linegraph import (
        ALGORITHMS,
        linegraph_csr,
        slinegraph_matrix,
        to_two_graph,
    )
    from repro.structures.adjoin import AdjoinGraph
    from repro.structures.biadjacency import BiAdjacency

    lines: list[str] = []
    ok = True

    def check(name: str, passed: bool, detail: str = "") -> None:
        nonlocal ok
        ok = ok and passed
        mark = "PASS" if passed else "FAIL"
        suffix = f" — {detail}" if (detail and (verbose or not passed)) else ""
        lines.append(f"[{mark}] {name}{suffix}")

    el = load("orkut-group")
    h = BiAdjacency.from_biedgelist(el)
    g = AdjoinGraph.from_biedgelist(el)

    # 1. exact-algorithm parity
    e1, n1 = hypercc(h)
    e2, n2 = adjoincc(g)
    e3, n3 = hygra_cc(h)
    check(
        "CC parity (Hyper == Adjoin == Hygra)",
        np.array_equal(e1, e2) and np.array_equal(e1, e3)
        and np.array_equal(n1, n2) and np.array_equal(n1, n3),
    )
    src = bfs_source(h)
    b1 = hyperbfs_direction_optimizing(h, src)
    b2 = adjoinbfs(g, src)
    b3 = hygra_bfs(h, src)
    check(
        "BFS parity (Hyper == Adjoin == Hygra)",
        all(
            np.array_equal(b1[i], b2[i]) and np.array_equal(b1[i], b3[i])
            for i in (0, 1)
        ),
    )

    # 2. construction agreement (skip the quadratic reference on size)
    ref = slinegraph_matrix(h, 2)
    names = sorted(set(ALGORITHMS) - {"naive", "matrix"})
    agree = all(to_two_graph(h, 2, name) == ref for name in names)
    agree = agree and to_two_graph(g, 2, "queue_hashmap") == ref
    check("construction agreement (all algorithms == oracle)", agree,
          f"{len(names) + 1} variants")

    # 3. Fig. 7 shape
    cc = {s.algorithm: s for s in strong_scaling_cc("orkut-group", (1, 64))}
    check(
        "Fig. 7 shape (AdjoinCC out-scales HygraCC on skew)",
        cc["AdjoinCC"].speedup_at(64) > cc["HygraCC"].speedup_at(64),
        f"{cc['AdjoinCC'].speedup_at(64):.1f}x vs "
        f"{cc['HygraCC'].speedup_at(64):.1f}x",
    )

    # 4. Fig. 8 shape
    bfs = {s.algorithm: s for s in strong_scaling_bfs("rand1", (1, 64))}
    ratio = bfs["AdjoinBFS"].speedup_at(64) / bfs["HygraBFS"].speedup_at(64)
    check(
        "Fig. 8 shape (AdjoinBFS ≈ HygraBFS on uniform input)",
        0.5 < ratio < 2.0,
        f"ratio {ratio:.2f}",
    )

    # 5. Fig. 9 shape
    rows = {r.algorithm: r for r in fig9_slinegraph("rand1", s=2, threads=16)}
    alg1_ok = rows["Alg1 (queue hashmap)"].best_makespan < (
        2.0 * rows["Hashmap"].best_makespan
    )
    alg2_ratio = (
        rows["Alg2 (queue intersect)"].best_makespan
        / rows["Intersection"].best_makespan
    )
    check(
        "Fig. 9 shape (queue ≈ non-queue counterparts)",
        alg1_ok and 0.5 < alg2_ratio < 2.0,
        f"Alg1 {rows['Alg1 (queue hashmap)'].normalized:.2f}x of Hashmap, "
        f"Alg2/Intersection {alg2_ratio:.2f}",
    )

    # 6. the s=1 exactness identity on a slice of sources
    lg1 = linegraph_csr(slinegraph_matrix(h, 1))
    identity = True
    for e_src in range(0, h.num_hyperedges(), max(h.num_hyperedges() // 4, 1)):
        from repro.algorithms.hyperbfs import hyperbfs_top_down

        line_dist, _ = bfs_top_down(lg1, e_src)
        edge_dist, _ = hyperbfs_top_down(h, e_src, source_is_edge=True)
        reached = edge_dist >= 0
        identity = identity and np.array_equal(
            line_dist[reached] * 2, edge_dist[reached]
        ) and np.all(line_dist[~reached] == -1)
    check("approximation identity (d_L1 = d_bipartite / 2)", identity)

    return lines, ok

"""Benchmark harness: drivers + reporting for the paper's tables/figures.

Algorithm micro-benchmarks live here; the *service* load harness —
multi-tenant traffic shaping, open/closed-loop socket runners,
coordinated-omission-correct latency, SLO gates — is the
:mod:`repro.bench.load` subpackage (imported explicitly, not re-exported,
so importing :mod:`repro.bench` never drags in the serving stack).
"""

from .harness import (
    DEFAULT_THREADS,
    Fig9Row,
    ScalingPoint,
    ScalingSeries,
    bfs_source,
    fig9_slinegraph,
    hygra_runtime,
    nwhy_runtime,
    strong_scaling_bfs,
    strong_scaling_cc,
    strong_scaling_construction,
)
from .reporting import format_fig9, format_scaling, format_table, format_table1

__all__ = [
    "DEFAULT_THREADS",
    "Fig9Row",
    "ScalingPoint",
    "ScalingSeries",
    "bfs_source",
    "fig9_slinegraph",
    "format_fig9",
    "format_scaling",
    "format_table",
    "format_table1",
    "hygra_runtime",
    "nwhy_runtime",
    "strong_scaling_bfs",
    "strong_scaling_cc",
    "strong_scaling_construction",
]

"""Benchmark harness: drivers + reporting for the paper's tables/figures."""

from .harness import (
    DEFAULT_THREADS,
    Fig9Row,
    ScalingPoint,
    ScalingSeries,
    bfs_source,
    fig9_slinegraph,
    hygra_runtime,
    nwhy_runtime,
    strong_scaling_bfs,
    strong_scaling_cc,
    strong_scaling_construction,
)
from .reporting import format_fig9, format_scaling, format_table, format_table1

__all__ = [
    "DEFAULT_THREADS",
    "Fig9Row",
    "ScalingPoint",
    "ScalingSeries",
    "bfs_source",
    "fig9_slinegraph",
    "format_fig9",
    "format_scaling",
    "format_table",
    "format_table1",
    "hygra_runtime",
    "nwhy_runtime",
    "strong_scaling_bfs",
    "strong_scaling_cc",
    "strong_scaling_construction",
]

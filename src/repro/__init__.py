"""repro — a Python reproduction of NWHy, the Northwest Hypergraph framework.

Liu, Firoz, Gebremedhin, Lumsdaine: "NWHy: A Framework for Hypergraph
Analytics: Representations, Data structures, and Algorithms" (IPDPS 2022).

Quickstart (paper Listing 5)::

    import numpy as np
    from repro import NWHypergraph

    row = np.array([0, 1, 2, 0, 1, 2])   # hyperedge IDs
    col = np.array([0, 0, 0, 1, 1, 1])   # hypernode IDs
    hg = NWHypergraph(row, col)
    s2lg = hg.s_linegraph(s=2)
    s2lg.is_s_connected()
    s2lg.s_connected_components()
    s2lg.s_betweenness_centrality(normalized=True)

Subpackages
-----------
``repro.core``
    ``NWHypergraph`` / ``SLineGraph`` public API.
``repro.structures``
    Edge lists, CSR, bi-adjacency, adjoin graphs, sparse-matrix views.
``repro.linegraph``
    Six s-line construction algorithms incl. the paper's queue-based
    Algorithms 1–2, the ensemble builder, and clique expansion.
``repro.algorithms``
    Exact hypergraph algorithms: HyperBFS/HyperCC, AdjoinBFS/AdjoinCC,
    toplexes.
``repro.graph``
    NWGraph-style graph algorithm substrate (BFS/CC/SSSP/centralities).
``repro.parallel``
    Simulated work-stealing runtime, range adaptors, cost model.
``repro.baselines``
    Hygra (HygraBFS/HygraCC) comparators.
``repro.io``
    MatrixMarket I/O, seeded hypergraph generators, Table I stand-ins.
``repro.service``
    Serving layer: resident hypergraph store, byte-budgeted s-line-graph
    cache with s-monotone reuse, JSON query engine, JSON-lines TCP server
    (``python -m repro serve`` / ``query``).
"""

from .core import NWHypergraph, SLineGraph
from .parallel import CostModel, ParallelRuntime
from .structures import (
    AdjoinGraph,
    BiAdjacency,
    BiEdgeList,
    CSR,
    EdgeList,
)

__version__ = "1.0.0"

__all__ = [
    "AdjoinGraph",
    "BiAdjacency",
    "BiEdgeList",
    "CSR",
    "CostModel",
    "EdgeList",
    "NWHypergraph",
    "ParallelRuntime",
    "SLineGraph",
    "__version__",
]

"""Public test helpers — seeded factories and hypothesis strategies.

Downstream users extending the framework need the same generators the
internal suite uses: seeded random hypergraphs for example-based tests and
a hypothesis strategy for property-based ones.  Importing the strategy
requires hypothesis; everything else is dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import BiEdgeList

__all__ = ["random_hypergraph", "assert_valid_hypergraph", "hypergraphs"]


def random_hypergraph(
    seed: int = 0,
    num_edges: int = 40,
    num_nodes: int = 60,
    max_size: int = 5,
    min_size: int = 1,
) -> BiEdgeList:
    """A seeded random hypergraph: each hyperedge draws distinct members.

    The example-based workhorse of the internal suite, exported for
    downstream tests.  Deterministic given the seed.
    """
    if not 0 < min_size <= max_size:
        raise ValueError("need 0 < min_size <= max_size")
    rng = np.random.default_rng(seed)
    rows: list[int] = []
    cols: list[int] = []
    for e in range(num_edges):
        size = int(rng.integers(min_size, max_size + 1))
        members = rng.choice(num_nodes, size=min(size, num_nodes),
                             replace=False)
        rows.extend([e] * len(members))
        cols.extend(members.tolist())
    return BiEdgeList(rows, cols, n0=num_edges, n1=num_nodes)


def assert_valid_hypergraph(el: BiEdgeList) -> BiAdjacency:
    """Build both representations and run every invariant checker.

    Returns the validated ``BiAdjacency`` for further assertions; raises
    ``HypergraphInvariantError`` (or ``ValueError``) on any violation.
    """
    from repro.structures.adjoin import AdjoinGraph
    from repro.structures.validate import (
        validate_adjoin,
        validate_biadjacency,
    )

    h = BiAdjacency.from_biedgelist(el)
    validate_biadjacency(h)
    validate_adjoin(AdjoinGraph.from_biedgelist(el))
    return h


def hypergraphs(max_edges: int = 12, max_nodes: int = 10):
    """A hypothesis strategy generating small ``BiEdgeList`` hypergraphs.

    Requires hypothesis (raises ``ImportError`` otherwise).  Hyperedges
    may be empty; nodes may be isolated — the full space the framework
    must tolerate.
    """
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - env without hypothesis
        raise ImportError(
            "hypergraphs() requires the optional hypothesis dependency"
        ) from exc

    @st.composite
    def _build(draw):
        n_e = draw(st.integers(1, max_edges))
        n_v = draw(st.integers(1, max_nodes))
        members = draw(
            st.lists(
                st.sets(st.integers(0, n_v - 1), max_size=n_v),
                min_size=n_e,
                max_size=n_e,
            )
        )
        rows = [e for e, mem in enumerate(members) for _ in mem]
        cols = [v for mem in members for v in mem]
        return BiEdgeList(rows, cols, n0=n_e, n1=n_v)

    return _build()

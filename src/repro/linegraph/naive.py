"""Naive s-line construction: test every hyperedge pair (paper §III-C.3).

Considers all ``n_e·(n_e−1)/2`` pairs and intersects their member lists —
quadratic, but simple and obviously correct.  Kept as the smallest oracle
(besides the scipy one) the efficient algorithms are validated against, and
as the baseline the paper's algorithm-count comparisons start from.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import finalize_edges, intersect_count_sorted, pair_counters

__all__ = ["slinegraph_naive"]


def slinegraph_naive(
    h: BiAdjacency,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> EdgeList:
    """All-pairs set-intersection s-line construction.

    O(n_e² + total intersection work); only sensible for small inputs.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "naive")
    n = h.num_hyperedges()
    sizes = h.edge_sizes()
    examined = [0]  # bodies run serially; plain accumulation is safe

    def pairs_for(block: np.ndarray) -> TaskResult:
        src: list[int] = []
        dst: list[int] = []
        cnt: list[int] = []
        work = 0
        for e in block.tolist():
            if sizes[e] < s:
                continue
            mem_e = h.members(e)
            for f in range(e + 1, n):
                if sizes[f] < s:
                    continue
                examined[0] += 1  # repro: noqa-R003 — stats counter; serial bodies
                work += int(min(sizes[e], sizes[f]))
                c = intersect_count_sorted(mem_e, h.members(f))
                if c >= s:
                    src.append(e)
                    dst.append(f)
                    cnt.append(c)
        return TaskResult(
            (np.array(src), np.array(dst), np.array(cnt)), float(work + block.size)
        )

    with tr.span("slinegraph.naive", s=s) as span:
        all_ids = np.arange(n, dtype=np.int64)
        with tr.span("naive.pairs"):
            if runtime is None:
                parts = [pairs_for(all_ids).value]
            else:
                runtime.new_run()
                parts = runtime.parallel_for(
                    runtime.partition(all_ids), pairs_for, phase="naive_pairs"
                )
        src = np.concatenate([p[0] for p in parts]) if parts else np.empty(0)
        dst = np.concatenate([p[1] for p in parts]) if parts else np.empty(0)
        cnt = np.concatenate([p[2] for p in parts]) if parts else np.empty(0)
        c_cand.inc(examined[0])
        c_pruned.inc(examined[0] - src.size)
        c_emit.inc(src.size)
        span.set(candidates=examined[0], emitted=int(src.size))
        with tr.span("naive.finalize"):
            return finalize_edges(src, dst, cnt, n)

"""Naive s-line construction: test every hyperedge pair (paper §III-C.3).

Considers all ``n_e·(n_e−1)/2`` pairs and intersects their member lists —
quadratic, but simple and obviously correct.  Kept as the smallest oracle
(besides the scipy one) the efficient algorithms are validated against, and
as the baseline the paper's algorithm-count comparisons start from.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)
from .kernels import NaivePairsKernel

__all__ = ["slinegraph_naive"]


def slinegraph_naive(
    h,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
) -> EdgeList:
    """All-pairs set-intersection s-line construction.

    O(n_e² + total intersection work); only sensible for small inputs.
    Deliberately *not* dispatched: this is the oracle the adaptive
    kernels are validated against.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "naive")
    edges, _, n, _ = resolve_incidence(h)
    runtime, owned = resolve_runtime(runtime, backend, workers)

    try:
        with tr.span("slinegraph.naive", s=s) as span:
            all_ids = np.arange(n, dtype=np.int64)
            with tr.span("naive.pairs"):
                if runtime is None:
                    kernel = NaivePairsKernel(edges, s, n)
                    parts = [kernel(all_ids).value]
                else:
                    runtime.new_run()
                    with runtime.share(edges) as (se,):
                        kernel = NaivePairsKernel(se, s, n)
                        parts = runtime.parallel_for(
                            runtime.partition(all_ids),
                            kernel,
                            phase="naive_pairs",
                            pure=True,
                        )
            src = np.concatenate([p[0] for p in parts]) if parts else np.empty(0)
            dst = np.concatenate([p[1] for p in parts]) if parts else np.empty(0)
            cnt = np.concatenate([p[2] for p in parts]) if parts else np.empty(0)
            stats = merge_kernel_stats([p[3] for p in parts])
            examined = total_candidates(stats)
            c_cand.inc(examined)
            c_pruned.inc(examined - src.size)
            c_emit.inc(src.size)
            emit_kernel_counters(metrics, stats)
            span.set(candidates=examined, emitted=int(src.size))
            with tr.span("naive.finalize"):
                return finalize_edges(src, dst, cnt, n)
    finally:
        if owned:
            runtime.close()

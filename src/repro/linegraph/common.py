"""Shared pieces of the s-line graph construction algorithms.

Every construction algorithm in this package produces the same artifact: an
undirected edge list over the **hyperedge ID space** where ``{e, f}`` is an
edge iff ``|e ∩ f| ≥ s`` (paper §II-D), stored once with ``e < f`` and
carrying the overlap size as the edge weight.  ``finalize_edges``
canonicalizes to that form so algorithms can be compared bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.structures.csr import CSR
from repro.structures.edgelist import EdgeList

__all__ = [
    "batch_intersect_counts",
    "empty_linegraph",
    "emit_kernel_counters",
    "filter_overlaps",
    "finalize_edges",
    "intersect_count_sorted",
    "kernel_stats",
    "merge_kernel_stats",
    "pair_counters",
    "total_candidates",
    "two_hop_pair_counts",
    "two_hop_pair_weighted",
    "linegraph_csr",
    "resolve_incidence",
    "resolve_runtime",
]


def resolve_runtime(runtime, backend=None, workers=None):
    """Turn a builder's ``runtime``/``backend``/``workers`` args into a runtime.

    Builders accept either an explicit
    :class:`~repro.parallel.runtime.ParallelRuntime` *or* a backend spec
    (``'simulated'``/``'threaded'``/``'process'``, optionally with a
    worker count), from which a runtime is constructed on the spot.
    Returns ``(runtime_or_None, owned)``; when ``owned`` the caller must
    ``close()`` the runtime after the build (it holds a live pool).
    """
    if backend is None and workers is None:
        return runtime, False
    if runtime is not None:
        raise ValueError("pass either runtime= or backend=/workers=, not both")
    from repro.parallel.backends import default_workers
    from repro.parallel.runtime import ParallelRuntime

    w = default_workers() if workers is None else max(1, int(workers))
    return (
        ParallelRuntime(
            num_threads=w,
            partitioner="cyclic",
            backend=backend or "simulated",
            workers=w,
        ),
        True,
    )


def pair_counters(metrics, algorithm: str):
    """The construction-counter trio for one algorithm run.

    Returns ``(candidates, pruned, emitted)`` counters labeled with the
    algorithm name: *candidates* is how many hyperedge pairs the
    heuristic examined, *pruned* how many it rejected (degree filter or
    overlap below ``s``), *emitted* how many s-line edges it produced
    (before canonical dedup).  These are the quantities the line-graph
    paper's heuristic comparisons are stated in — with a shared
    :class:`~repro.obs.metrics.MetricsRegistry` the algorithms become
    directly comparable on live runs.  ``metrics=None`` yields no-ops.
    """
    from repro.obs.metrics import as_metrics

    m = as_metrics(metrics)
    return (
        m.counter("slinegraph_candidate_pairs_total", algorithm=algorithm),
        m.counter("slinegraph_pruned_pairs_total", algorithm=algorithm),
        m.counter("slinegraph_emitted_pairs_total", algorithm=algorithm),
    )


def kernel_stats(
    kernel: str,
    rows: int = 0,
    candidates: int = 0,
    emitted: int = 0,
    tasks: int = 1,
) -> dict:
    """Per-kernel-family statistics for one task's work.

    Every construction kernel returns one of these (keyed by family
    name) as the final element of its result tuple, so the numbers
    travel *inside* the task result — the only channel that survives a
    process boundary — instead of being mutated into shared counters.
    The builders merge them (:func:`merge_kernel_stats`) and emit the
    uniform ``linegraph_kernel_*_total{kernel=...}`` counters
    (:func:`emit_kernel_counters`) once per build.
    """
    return {
        kernel: {
            "tasks": int(tasks),
            "rows": int(rows),
            "candidates": int(candidates),
            "emitted": int(emitted),
        }
    }


def merge_kernel_stats(parts) -> dict:
    """Sum a sequence of :func:`kernel_stats` dicts per kernel family."""
    out: dict = {}
    for part in parts:
        for name, counts in part.items():
            slot = out.setdefault(
                name, {"tasks": 0, "rows": 0, "candidates": 0, "emitted": 0}
            )
            for k, v in counts.items():
                slot[k] = slot.get(k, 0) + int(v)
    return out


def total_candidates(stats: dict) -> int:
    """Candidate pairs examined, summed across kernel families."""
    return sum(c.get("candidates", 0) for c in stats.values())


def emit_kernel_counters(metrics, stats: dict) -> None:
    """Emit the uniform per-kernel counter trio from merged stats.

    ``linegraph_kernel_{tasks,candidates,emitted}_total`` labeled by
    kernel family — the same three numbers for every family (hashmap,
    intersection, bitset, naive, pair_gather, pair_intersect, shard),
    whether the work ran inline, on a builder, or under shards.
    """
    from repro.obs.metrics import as_metrics

    m = as_metrics(metrics)
    for name, counts in stats.items():
        m.counter("linegraph_kernel_tasks_total", kernel=name).inc(
            counts.get("tasks", 0)
        )
        m.counter("linegraph_kernel_candidates_total", kernel=name).inc(
            counts.get("candidates", 0)
        )
        m.counter("linegraph_kernel_emitted_total", kernel=name).inc(
            counts.get("emitted", 0)
        )
    if "dispatch" in stats:
        # bucket-table counters: how many rows each family was chosen for
        # and how many buckets ran in total (the "dispatch" pseudo-family
        # records chunk totals in rows/tasks)
        for name, counts in stats.items():
            if name == "dispatch":
                continue
            m.counter("dispatch_rows_total", kernel=name).inc(
                counts.get("rows", 0)
            )
            m.counter("dispatch_buckets_total", kernel=name).inc(
                counts.get("tasks", 0)
            )


def resolve_incidence(h) -> tuple[CSR, CSR, int, np.ndarray]:
    """Normalize a hypergraph representation for line-graph construction.

    Accepts either a :class:`~repro.structures.biadjacency.BiAdjacency`
    (two index sets) or an :class:`~repro.structures.adjoin.AdjoinGraph`
    (one consolidated index set) — the representation independence that
    motivates the paper's queue-based algorithms.  Returns
    ``(edge_incidence, node_incidence, num_hyperedges, edge_sizes)``; for
    an adjoin graph both incidence roles are played by the single CSR and
    hyperedge IDs are the low range ``[0, nrealedges)``.
    """
    from repro.structures.adjoin import AdjoinGraph
    from repro.structures.biadjacency import BiAdjacency

    if isinstance(h, BiAdjacency):
        return h.edges, h.nodes, h.num_hyperedges(), h.edge_sizes()
    if isinstance(h, AdjoinGraph):
        g = h.graph
        return g, g, h.nrealedges, g.degrees()[: h.nrealedges]
    raise TypeError(
        f"expected BiAdjacency or AdjoinGraph, got {type(h).__name__}"
    )


def finalize_edges(
    src: np.ndarray,
    dst: np.ndarray,
    counts: np.ndarray | None,
    num_hyperedges: int,
) -> EdgeList:
    """Canonical s-line edge list: ``src < dst``, sorted, deduplicated.

    ``counts`` (overlap sizes) become weights; duplicates must agree on
    their count (they always do — overlap is a function of the pair), so
    first-wins dedup is safe.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    w = None if counts is None else np.asarray(counts, np.float64)[keep]
    if lo.size:
        key = lo * num_hyperedges + hi
        uniq, first = np.unique(key, return_index=True)
        lo, hi = uniq // num_hyperedges, uniq % num_hyperedges
        w = None if w is None else w[first]
    return EdgeList(lo, hi, w, num_vertices=num_hyperedges)


def empty_linegraph(num_hyperedges: int) -> EdgeList:
    """The canonical empty s-line graph (weighted, zero edges)."""
    zero = np.empty(0, dtype=np.int64)
    return finalize_edges(zero, zero, zero, num_hyperedges)


def filter_overlaps(el: EdgeList, s: int) -> EdgeList:
    """Derive ``L_s`` from a canonical ``L_{s'}`` edge list with ``s' <= s``.

    Every construction algorithm records the overlap size ``|e ∩ f|`` as
    the edge weight (:func:`finalize_edges`), and the s-line graphs are
    monotone in s: ``L_s ⊆ L_{s'}`` whenever ``s' <= s``, with identical
    overlap weights on the surviving pairs.  So the expensive counting pass
    never has to rerun — thresholding the cached weighted edge list is
    enough.  This is the s-monotone reuse path of the serving cache
    (:mod:`repro.service.cache`).

    Raises ``ValueError`` if ``el`` carries no overlap weights (a weighted
    ``Σ w·w`` construction, or a hand-built list, cannot be thresholded).
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    if el.weights is None:
        raise ValueError(
            "filter_overlaps requires overlap counts as edge weights"
        )
    keep = el.weights >= s
    return EdgeList(
        el.src[keep],
        el.dst[keep],
        el.weights[keep],
        num_vertices=el.num_vertices(),
    )


def intersect_count_sorted(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| for two *sorted unique* int arrays (searchsorted merge).

    The inner kernel of the set-intersection algorithms ([17], Algorithm 2).
    """
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return 0
    pos = np.searchsorted(b, a)
    pos[pos == b.size] = b.size - 1
    return int(np.count_nonzero(b[pos] == a))


def batch_intersect_counts(
    members: CSR, pairs: np.ndarray
) -> np.ndarray:
    """``|members[a] ∩ members[b]|`` for every row ``(a, b)`` of ``pairs``.

    The batched form of :func:`intersect_count_sorted`: all pairs of one
    chunk are intersected with two sorted-key-array passes instead of a
    Python loop per pair.  Keys pack ``(pair_index, node)`` so collisions
    across pairs are impossible; ``np.intersect1d`` on the two key arrays
    yields exactly the common members, and a ``bincount`` over the pair
    index recovers per-pair counts.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64)
    from repro.graph.traversal import multi_slice

    n_v = members.num_targets()
    idx = np.arange(pairs.shape[0], dtype=np.int64)

    def keyed(side: np.ndarray) -> np.ndarray:
        starts = members.indptr[side]
        counts = members.indptr[side + 1] - starts
        vals = multi_slice(members.indices, starts, counts)
        owner = np.repeat(idx, counts)
        return owner * n_v + vals

    common = np.intersect1d(
        keyed(pairs[:, 0]), keyed(pairs[:, 1]), assume_unique=True
    )
    return np.bincount(common // n_v, minlength=pairs.shape[0]).astype(np.int64)


def two_hop_pair_counts(
    edges: CSR,
    nodes: CSR,
    hyperedge_ids: np.ndarray,
    *,
    upper_only: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Vectorized two-hop expansion with per-pair multiplicity counts.

    For every hyperedge *e* in ``hyperedge_ids``, walks e → member
    hypernode → co-incident hyperedge *f* and counts how often each ``(e,
    f)`` pair appears — which is exactly ``|e ∩ f|``.  This is the hashmap
    algorithm's counting step, done with one ``np.unique`` over packed keys
    instead of a per-edge hash table.

    Returns ``(src, dst, overlap, work)`` where ``work`` is the number of
    two-hop traversals performed (the cost the paper's kernels are bound
    by).  ``upper_only`` keeps only ``f > e`` pairs (line 10's ``i < j``).

    Under ``upper_only`` a member hypernode of degree 1 can only
    produce the self-candidate ``e`` itself, which the ``f > e`` filter
    always discards — so those members are pruned *before* the hop-2
    gather/repeat rather than materializing pairs destined for the
    filter.  (Micro-bench, rand1 full frontier: 1.06x; degree-1-heavy
    powerlaw tails: 1.3–1.6x — the saved work is exactly the count of
    degree-1 incidences.)  ``upper_only=False`` callers keep the full
    expansion: the diagonal self-pairs they rely on (`s_traversal`,
    toplex) come from precisely those members.
    """
    hyperedge_ids = np.asarray(hyperedge_ids, dtype=np.int64)
    if hyperedge_ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, 0
    # hop 1: e -> its member hypernodes
    starts = edges.indptr[hyperedge_ids]
    sizes = edges.indptr[hyperedge_ids + 1] - starts
    from repro.graph.traversal import multi_slice

    members = multi_slice(edges.indices, starts, sizes)
    # hop 2: member -> all hyperedges incident on it
    m_starts = nodes.indptr[members]
    m_sizes = nodes.indptr[members + 1] - m_starts
    if upper_only:
        # degree-1 members only yield the self-candidate: skip them
        m_sizes = np.where(m_sizes > 1, m_sizes, 0)
    cand = multi_slice(nodes.indices, m_starts, m_sizes)
    # source-edge labels for each candidate, fused into ONE repeat: the
    # member-level intermediate (repeat ids by sizes, then again by
    # m_sizes) is equivalent to repeating ids by the per-edge candidate
    # totals — one pass over |ids| segments instead of two over |members|
    m_cum = np.concatenate((np.zeros(1, np.int64), np.cumsum(m_sizes)))
    bounds = np.concatenate((np.zeros(1, np.int64), np.cumsum(sizes)))
    per_edge = m_cum[bounds[1:]] - m_cum[bounds[:-1]]
    e_for_cand = np.repeat(hyperedge_ids, per_edge)
    work = int(cand.size + members.size)
    if upper_only:
        keep = cand > e_for_cand
        cand, e_for_cand = cand[keep], e_for_cand[keep]
    if cand.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, work
    n = edges.num_vertices()
    key = e_for_cand * n + cand
    uniq, counts = np.unique(key, return_counts=True)
    src, dst = np.divmod(uniq, n)
    return src, dst, counts.astype(np.int64), work


def two_hop_pair_weighted(
    edges: CSR,
    nodes: CSR,
    hyperedge_ids: np.ndarray,
    *,
    upper_only: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`two_hop_pair_counts`, plus *weighted* overlaps.

    The weighted overlap of ``(e, f)`` is ``Σ_{v ∈ e∩f} w(e,v)·w(f,v)`` —
    the entries of the weighted ``BᵗB`` product — useful when incidences
    carry intensities (e.g. author contribution shares).  Requires both
    incidence CSRs to be weighted (as ``BiAdjacency.from_biedgelist``
    produces); raises ``ValueError`` otherwise.

    Returns ``(src, dst, count, weighted)``.
    """
    if edges.weights is None or nodes.weights is None:
        raise ValueError("weighted overlap requires weighted incidences")
    hyperedge_ids = np.asarray(hyperedge_ids, dtype=np.int64)
    if hyperedge_ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)
    from repro.graph.traversal import multi_slice

    starts = edges.indptr[hyperedge_ids]
    sizes = edges.indptr[hyperedge_ids + 1] - starts
    members = multi_slice(edges.indices, starts, sizes)
    w_first = multi_slice(edges.weights, starts, sizes)
    e_for_member = np.repeat(hyperedge_ids, sizes)
    m_starts = nodes.indptr[members]
    m_sizes = nodes.indptr[members + 1] - m_starts
    if upper_only:
        # as in two_hop_pair_counts: degree-1 members only self-pair
        m_sizes = np.where(m_sizes > 1, m_sizes, 0)
    cand = multi_slice(nodes.indices, m_starts, m_sizes)
    w_second = multi_slice(nodes.weights, m_starts, m_sizes)
    e_for_cand = np.repeat(e_for_member, m_sizes)
    w_prod = np.repeat(w_first, m_sizes) * w_second
    if upper_only:
        keep = cand > e_for_cand
        cand, e_for_cand, w_prod = cand[keep], e_for_cand[keep], w_prod[keep]
    if cand.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)
    n = edges.num_vertices()
    key = e_for_cand * n + cand
    uniq, inverse, counts = np.unique(
        key, return_inverse=True, return_counts=True
    )
    weighted = np.bincount(inverse, weights=w_prod, minlength=uniq.size)
    return uniq // n, uniq % n, counts.astype(np.int64), weighted


def linegraph_csr(el: EdgeList) -> CSR:
    """Symmetrize an s-line edge list into a CSR graph ready for metrics."""
    return CSR.from_edgelist(el.symmetrize(), num_targets=el.num_vertices())

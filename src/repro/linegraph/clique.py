"""Clique-expansion and s-clique graphs (paper §III-B.3, §II-D).

The clique expansion replaces each hyperedge with a clique over its
members.  Dually to s-line graphs, the **s-clique graph** connects two
*hypernodes* whenever they co-occur in at least *s* hyperedges; the paper's
identity "clique expansion = 1-clique graph = 1-line graph of the dual"
falls straight out of these definitions and is enforced by tests.
"""

from __future__ import annotations

from repro.parallel.runtime import ParallelRuntime
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList

from .hashmap import slinegraph_hashmap

__all__ = ["clique_expansion", "scliquegraph"]


def scliquegraph(
    h: BiAdjacency,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    algorithm=None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
) -> EdgeList:
    """s-clique graph: hypernodes joined by ≥ s shared hyperedges.

    Implemented — exactly as the paper defines it — as the s-line graph of
    the dual hypergraph.  ``algorithm`` may be any single-s construction
    from this package (defaults to the hashmap algorithm); ``tracer``,
    ``metrics``, and the ``backend``/``workers`` execution-backend spec
    forward to it (see :mod:`repro.obs`, :mod:`repro.parallel.backends`).
    """
    construct = algorithm if algorithm is not None else slinegraph_hashmap
    kwargs = {}
    if backend is not None or workers is not None:
        kwargs = {"backend": backend, "workers": workers}
    return construct(
        h.dual(), s, runtime=runtime, tracer=tracer, metrics=metrics, **kwargs
    )


def clique_expansion(
    h: BiAdjacency,
    runtime: ParallelRuntime | None = None,
    algorithm=None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
) -> EdgeList:
    """Clique-expansion graph of a hypergraph: the ``s = 1`` clique graph.

    Every pair of hypernodes sharing at least one hyperedge becomes a graph
    edge; the weight records in how many hyperedges the pair co-occurs.
    The well-known blow-up (§III-B.3: size can grow quadratically in
    hyperedge cardinality) is the caller's problem — this function will
    faithfully materialize it.
    """
    return scliquegraph(
        h, 1, runtime=runtime, algorithm=algorithm,
        tracer=tracer, metrics=metrics, backend=backend, workers=workers,
    )

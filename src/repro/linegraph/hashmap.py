"""Hashmap-counting s-line construction — Liu et al. [18] (non-queue).

For each hyperedge *e* (outer parallel loop over the contiguous range
``[0, n_e)``), count, in a per-thread hash map, how many shared hypernodes
each co-incident hyperedge *f > e* has with *e*; emit ``{e, f}`` when the
count reaches *s*.  Degree-based pruning skips hyperedges with fewer than
*s* members.

The Python kernel replaces the per-edge hash map with one vectorized
multiplicity count over the chunk's packed two-hop keys
(:func:`~repro.linegraph.common.two_hop_pair_counts`) — the same
arithmetic, one ``np.unique`` instead of millions of hash probes.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    empty_linegraph,
    finalize_edges,
    pair_counters,
    two_hop_pair_counts,
)

__all__ = ["slinegraph_hashmap"]


def slinegraph_hashmap(
    h: BiAdjacency,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    weighted: bool = False,
    tracer=None,
    metrics=None,
) -> EdgeList:
    """Hashmap-based counting construction over the full hyperedge range.

    This is the fastest non-queue algorithm in the paper's Fig. 9 and the
    normalization baseline of that figure.

    ``weighted=True`` emits the weighted overlap ``Σ w(e,v)·w(f,v)`` as the
    edge weight (requires weighted incidences); the ``s`` threshold always
    applies to the *set* overlap ``|e ∩ f|`` per the paper's definition.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "hashmap")
    n = h.num_hyperedges()
    eligible = np.flatnonzero(h.edge_sizes() >= s).astype(np.int64)
    candidates = [0]  # bodies run serially; plain accumulation is safe

    def body(chunk: np.ndarray) -> TaskResult:
        if weighted:
            from .common import two_hop_pair_weighted

            src, dst, cnt, wgt = two_hop_pair_weighted(
                h.edges, h.nodes, chunk
            )
            candidates[0] += cnt.size  # repro: noqa-R003 — stats counter; serial bodies
            work = int(cnt.sum()) + chunk.size
            keep = cnt >= s
            return TaskResult(
                (src[keep], dst[keep], wgt[keep]), float(work)
            )
        src, dst, cnt, work = two_hop_pair_counts(h.edges, h.nodes, chunk)
        candidates[0] += cnt.size  # repro: noqa-R003 — stats counter; serial bodies
        keep = cnt >= s
        return TaskResult(
            (src[keep], dst[keep], cnt[keep]), float(work + chunk.size)
        )

    with tr.span("slinegraph.hashmap", s=s, weighted=weighted) as span:
        with tr.span("hashmap.count"):
            if runtime is None:
                parts = [body(eligible).value]
            else:
                runtime.new_run()
                parts = runtime.parallel_for(
                    runtime.partition(eligible), body, phase="hashmap_count"
                )
        if not parts:
            return empty_linegraph(n)
        src = np.concatenate([p[0] for p in parts])
        dst = np.concatenate([p[1] for p in parts])
        cnt = np.concatenate([p[2] for p in parts])
        c_cand.inc(candidates[0])
        c_pruned.inc(candidates[0] - src.size)
        c_emit.inc(src.size)
        span.set(candidates=candidates[0], emitted=int(src.size))
        with tr.span("hashmap.finalize"):
            return finalize_edges(src, dst, cnt, n)

"""Hashmap-counting s-line construction — Liu et al. [18] (non-queue).

For each hyperedge *e* (outer parallel loop over the contiguous range
``[0, n_e)``), count, in a per-thread hash map, how many shared hypernodes
each co-incident hyperedge *f > e* has with *e*; emit ``{e, f}`` when the
count reaches *s*.  Degree-based pruning skips hyperedges with fewer than
*s* members.

The Python kernel replaces the per-edge hash map with one vectorized
multiplicity count over the chunk's packed two-hop keys
(:func:`~repro.linegraph.common.two_hop_pair_counts`) — the same
arithmetic, one ``np.unique`` instead of millions of hash probes.  The
body lives in :class:`~repro.linegraph.kernels.HashmapCountKernel`, a
picklable pure kernel, so the same construction runs unchanged on the
simulated, threaded, and process backends.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    empty_linegraph,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)

__all__ = ["slinegraph_hashmap"]


def slinegraph_hashmap(
    h,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    weighted: bool = False,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
) -> EdgeList:
    """Hashmap-based counting construction over the full hyperedge range.

    This is the fastest non-queue algorithm in the paper's Fig. 9 and the
    normalization baseline of that figure.  Accepts ``BiAdjacency`` or
    ``AdjoinGraph``.

    ``weighted=True`` emits the weighted overlap ``Σ w(e,v)·w(f,v)`` as the
    edge weight (requires weighted incidences); the ``s`` threshold always
    applies to the *set* overlap ``|e ∩ f|`` per the paper's definition.

    ``backend``/``workers`` build a throwaway runtime on that execution
    backend (see :mod:`repro.parallel.backends`); alternatively pass a
    ``runtime`` already configured with one.

    ``kernel`` selects the counting body (one of
    :data:`~repro.linegraph.dispatch.KERNEL_NAMES`); the default
    ``"auto"`` is the degree-bucketed adaptive dispatcher — every choice
    yields bit-identical graphs.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    from .dispatch import make_count_kernel

    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "hashmap")
    edges, nodes, n, sizes = resolve_incidence(h)
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    runtime, owned = resolve_runtime(runtime, backend, workers)

    try:
        with tr.span("slinegraph.hashmap", s=s, weighted=weighted) as span:
            with tr.span("hashmap.count"):
                if runtime is None:
                    body = make_count_kernel(
                        kernel, edges, nodes, s, weighted=weighted
                    )
                    parts = [body(eligible).value]
                else:
                    runtime.new_run()
                    with runtime.share(edges, nodes) as (se, sn):
                        body = make_count_kernel(
                            kernel, se, sn, s, weighted=weighted
                        )
                        parts = runtime.parallel_for(
                            runtime.partition(eligible),
                            body,
                            phase="hashmap_count",
                            pure=True,
                        )
            if not parts:
                return empty_linegraph(n)
            src = np.concatenate([p[0] for p in parts])
            dst = np.concatenate([p[1] for p in parts])
            cnt = np.concatenate([p[2] for p in parts])
            stats = merge_kernel_stats([p[3] for p in parts])
            candidates = total_candidates(stats)
            c_cand.inc(candidates)
            c_pruned.inc(candidates - src.size)
            c_emit.inc(src.size)
            emit_kernel_counters(metrics, stats)
            span.set(
                candidates=candidates,
                emitted=int(src.size),
                kernels=",".join(sorted(k for k in stats if k != "dispatch")),
            )
            with tr.span("hashmap.finalize"):
                return finalize_edges(src, dst, cnt, n)
    finally:
        if owned:
            runtime.close()

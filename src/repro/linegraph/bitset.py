"""Bitset-adjacency s-overlap kernel — the dense complement (ROADMAP 3).

The hashmap and intersection families pay per *incidence*: the two-hop
expansion of a hyperedge ``e`` touches ``Σ_{v∈e} deg(v)`` keys, then
sorts them (``np.unique``).  On skewed inputs — a few huge hyperedges
over well-connected hypernodes — that expansion explodes quadratically
while the vertex universe stays small.  That regime is where the classic
dense representation wins (the heuristic-kernel-selection argument of
the high-order line-graph paper, PAPERS.md): pack each incidence row
into a bit vector of ``⌈n_v/64⌉`` uint64 words, and ``|e ∩ f|`` becomes
a bitwise AND plus a popcount — ``n_v/64`` word operations per pair,
branchless, no sorting, no hashing.

Packing uses ``np.packbits`` over a boolean row matrix; popcount is a
256-entry byte lookup table (numpy has no vectorized popcount on
integers, but ``POPCOUNT8[bytes].sum(axis=1)`` is one gather + one
reduction).  The AND itself runs on the uint64 view of the packed rows
so the inner loop moves 8 bytes per operation.

:class:`BitsetOverlapKernel` is shaped exactly like the other kernel
bodies (:mod:`repro.linegraph.kernels`): picklable, pure, opens its
inputs via :func:`~repro.parallel.shared.open_handles`, returns
``TaskResult((src, dst, overlap, stats), work)`` — so it runs unchanged
on the simulated, threaded, and process backends and plugs into the
degree-bucketed dispatcher (:mod:`repro.linegraph.dispatch`).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import TaskResult
from repro.parallel.shared import open_handles

from .common import kernel_stats

__all__ = [
    "BitsetOverlapKernel",
    "bitset_overlap_counts",
    "pack_rows",
    "popcount_bytes",
]

#: bits set in each possible byte value — the vectorized popcount table
POPCOUNT8 = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)

#: pad packed rows to whole uint64 words so the AND runs 8 bytes at a time
_WORD_BYTES = 8


def pack_rows(csr, ids: np.ndarray, num_targets: int) -> np.ndarray:
    """Pack the incidence rows ``ids`` into a bitset matrix.

    Returns ``uint8[len(ids), W8]`` with ``W8 = ⌈num_targets/8⌉`` rounded
    up to a multiple of 8 (so the matrix reinterprets as uint64 words).
    Bit ``v`` of row ``k`` is set iff target ``v`` is a member of row
    ``ids[k]``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    width = ((int(num_targets) + 63) // 64) * _WORD_BYTES
    if ids.size == 0:
        return np.zeros((0, width), dtype=np.uint8)
    starts = csr.indptr[ids]
    counts = csr.indptr[ids + 1] - starts
    from repro.graph.traversal import multi_slice

    members = multi_slice(csr.indices, starts, counts)
    rows = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
    dense = np.zeros((ids.size, int(num_targets)), dtype=np.uint8)
    dense[rows, members] = 1
    packed = np.packbits(dense, axis=1, bitorder="little")
    if packed.shape[1] < width:
        pad = np.zeros((ids.size, width - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    return np.ascontiguousarray(packed)


def popcount_bytes(packed: np.ndarray) -> np.ndarray:
    """Row-wise popcount of a packed uint8 matrix."""
    if packed.size == 0:
        return np.zeros(packed.shape[0], dtype=np.int64)
    return POPCOUNT8[packed].sum(axis=1)


def bitset_overlap_counts(
    row: np.ndarray, others: np.ndarray
) -> np.ndarray:
    """``|row ∩ others[k]|`` for every packed row ``k``.

    ``row`` is one packed bitset (uint8), ``others`` a packed matrix of
    the same width.  The AND runs on the uint64 reinterpretation; the
    popcount on the byte view of the result.
    """
    if others.size == 0:
        return np.zeros(others.shape[0], dtype=np.int64)
    a = row.view(np.uint64)
    b = others.reshape(others.shape[0], -1).view(np.uint64)
    common = (b & a[None, :]).view(np.uint8)
    return POPCOUNT8[common].sum(axis=1)


class BitsetOverlapKernel:
    """Dense s-overlap body: packed-bitset AND + popcount per pair.

    For each row ``e`` of its chunk the kernel compares against *every*
    eligible row (size ≥ s) — the dense all-candidates sweep, chosen by
    the dispatcher only where the two-hop expansion would cost more than
    ``n_eligible · n_v/64`` word operations.  ``upper_only`` keeps
    ``f > e`` partners (the builders' triangle convention); ``False``
    keeps every ``f ≠ e`` (the shard kernels' row-ownership convention).

    Same result tuple as :class:`~repro.linegraph.kernels.
    HashmapCountKernel` — ``(src, dst, overlap, stats)`` — and exact
    overlap counts, so outputs are bit-identical after
    :func:`~repro.linegraph.common.finalize_edges`.
    """

    __slots__ = ("edges", "s", "upper_only")

    def __init__(self, edges, s: int, upper_only: bool = True) -> None:
        self.edges = edges
        self.s = int(s)
        self.upper_only = bool(upper_only)

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges) as (edges,):
            src, dst, cnt, stats, work = bitset_rows(
                edges, chunk, self.s, upper_only=self.upper_only
            )
            return TaskResult((src, dst, cnt, stats), work)


def bitset_rows(
    edges, chunk: np.ndarray, s: int, upper_only: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict, float]:
    """The dense sweep body, reusable by the dispatcher's bucket runner.

    Returns ``(src, dst, overlap, stats, work)`` with ``work`` counted
    in examined pairs (the ledger currency the other kernels use).
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    sizes = np.diff(edges.indptr)
    live = chunk[sizes[chunk] >= s]
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    n_v = edges.num_targets()
    empty = np.empty(0, dtype=np.int64)
    if live.size == 0 or eligible.size == 0:
        stats = kernel_stats("bitset", rows=int(chunk.size))
        return empty, empty, empty, stats, float(chunk.size)
    packed_all = pack_rows(edges, eligible, n_v)
    # chunk rows are a subset of the eligible rows: reuse their packing
    pos = np.searchsorted(eligible, live)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_cnt: list[np.ndarray] = []
    examined = 0
    for k, e in zip(pos.tolist(), live.tolist()):
        counts = bitset_overlap_counts(packed_all[k], packed_all)
        if upper_only:
            keep = (counts >= s) & (eligible > e)
            examined += int((eligible > e).sum())
        else:
            keep = (counts >= s) & (eligible != e)
            examined += int(eligible.size - 1)
        hits = np.flatnonzero(keep)
        if hits.size:
            out_src.append(np.full(hits.size, e, dtype=np.int64))
            out_dst.append(eligible[hits])
            out_cnt.append(counts[hits])
    if out_src:
        src = np.concatenate(out_src)
        dst = np.concatenate(out_dst)
        cnt = np.concatenate(out_cnt)
    else:
        src, dst, cnt = empty, empty, empty
    stats = kernel_stats(
        "bitset",
        rows=int(chunk.size),
        candidates=examined,
        emitted=int(src.size),
    )
    return src, dst, cnt, stats, float(examined + chunk.size)

"""scipy.sparse oracle for s-line construction: ``Bᵗ B`` overlap counts.

The overlap count between hyperedges is one sparse matrix product away:
``(Bᵗ B)[e, f] = |e ∩ f|`` for the 0/1 incidence matrix ``B``.  This is
the independent implementation every hand-written construction algorithm is
validated against (DESIGN.md §5) — different code path, different math
library, same answer — and doubles as the fastest single-core construction
for dense-overlap inputs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList
from repro.structures.matrices import overlap_matrix

from .common import finalize_edges

__all__ = ["slinegraph_matrix"]


def slinegraph_matrix(
    h: BiAdjacency, s: int = 1, weighted: bool = False
) -> EdgeList:
    """s-line graph via one sparse ``Bᵗ B`` product.

    ``weighted=True`` computes edge weights from the *weighted* incidence
    product (``Σ_v w(e,v)·w(f,v)``) while thresholding on the set overlap,
    matching ``slinegraph_hashmap(weighted=True)``.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    n = h.num_hyperedges()
    ov = sp.coo_matrix(overlap_matrix(h))
    keep = (ov.row < ov.col) & (ov.data >= s)
    rows = ov.row[keep].astype(np.int64)
    cols = ov.col[keep].astype(np.int64)
    data = ov.data[keep]
    if weighted:
        from repro.structures.matrices import incidence_matrix

        bw = incidence_matrix(h, weighted=True)
        prod = sp.csr_matrix(bw.T @ bw)
        data = np.asarray(prod[rows, cols]).ravel()
    return finalize_edges(rows, cols, data, n)

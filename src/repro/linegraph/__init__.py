"""s-line graph construction algorithms (paper §III-C.3).

Six constructions producing identical canonical edge lists: naive
all-pairs, set-intersection [17], hashmap counting [18], the paper's two
new queue-based algorithms (Algorithms 1–2), and a scipy sparse-product
oracle; plus the ensemble builder and clique-expansion/s-clique graphs.

``to_two_graph`` is the paper-styled dispatch entry point (Listing 2's
``to_two_graph_hashmap_cyclic`` family).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime

from .bitset import BitsetOverlapKernel
from .clique import clique_expansion, scliquegraph
from .common import (
    filter_overlaps,
    finalize_edges,
    intersect_count_sorted,
    linegraph_csr,
    resolve_incidence,
    two_hop_pair_counts,
)
from .dispatch import (
    KERNEL_NAMES,
    AdaptiveKernel,
    DispatchPolicy,
    make_count_kernel,
)
from .ensemble import slinegraph_ensemble
from .hashmap import slinegraph_hashmap
from .intersection import slinegraph_intersection
from .naive import slinegraph_naive
from .queue_hashmap import slinegraph_queue_hashmap
from .queue_intersect import slinegraph_queue_intersection
from .threaded import slinegraph_threaded
from .vectorized import slinegraph_matrix

ALGORITHMS = {
    "naive": slinegraph_naive,
    "intersection": slinegraph_intersection,
    "hashmap": slinegraph_hashmap,
    "queue_hashmap": slinegraph_queue_hashmap,
    "queue_intersection": slinegraph_queue_intersection,
    "matrix": slinegraph_matrix,
    "threaded": slinegraph_threaded,
}


def to_two_graph(
    h,
    s: int = 1,
    algorithm: str = "hashmap",
    runtime: ParallelRuntime | None = None,
    queue_ids: np.ndarray | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
):
    """Construct the s-line ("two-graph") edge list of a hypergraph.

    Paper-style dispatcher over :data:`ALGORITHMS`.  ``'auto'`` picks the
    configuration the Fig. 9 measurements favor: hashmap counting on the
    bipartite representation, its queue-based variant (Algorithm 1) for
    adjoin inputs (the non-queue loops assume a contiguous hyperedge
    range).  The queue-based algorithms additionally accept ``queue_ids``;
    the matrix oracle ignores ``runtime`` (one sparse product).

    ``tracer``/``metrics`` (:mod:`repro.obs`, no-op when ``None``) reach
    every instrumented algorithm; the ``matrix`` oracle is uninstrumented
    and ignores them.  ``backend``/``workers`` select a real execution
    backend (``'threaded'``/``'process'``) when no ``runtime`` is passed —
    results are bit-identical either way (see docs/PARALLEL.md).

    ``kernel`` selects the counting body (one of
    :data:`~repro.linegraph.dispatch.KERNEL_NAMES`; ``None`` → each
    builder's default, which for the hashmap-family builders is the
    degree-bucketed adaptive dispatcher — see docs/KERNELS.md).  The
    ``naive`` and ``matrix`` oracles ignore it.
    """
    if algorithm == "auto":
        from repro.structures.adjoin import AdjoinGraph

        algorithm = (
            "queue_hashmap" if isinstance(h, AdjoinGraph) else "hashmap"
        )
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS) + ['auto']}"
        ) from None
    be_kwargs = {}
    if backend is not None or workers is not None:
        be_kwargs = {"backend": backend, "workers": workers}
    if kernel is not None:
        if algorithm in ("matrix", "naive"):
            raise ValueError(
                f"algorithm {algorithm!r} is an oracle; kernel= does not apply"
            )
        be_kwargs["kernel"] = kernel
    if algorithm in ("queue_hashmap", "queue_intersection"):
        return fn(
            h, s, runtime=runtime, queue_ids=queue_ids,
            tracer=tracer, metrics=metrics, **be_kwargs,
        )
    if algorithm == "matrix":
        return fn(h, s)
    if algorithm == "threaded":
        # the threaded builder *is* a backend choice; workers maps to its
        # pool size and an explicit runtime overrides everything
        return fn(
            h, s, runtime=runtime, num_workers=workers,
            tracer=tracer, metrics=metrics,
            **({"kernel": kernel} if kernel is not None else {}),
        )
    return fn(
        h, s, runtime=runtime, tracer=tracer, metrics=metrics, **be_kwargs
    )


def to_two_graph_hashmap_cyclic(
    edge_side,
    node_side,
    degrees,
    s: int,
    num_threads: int,
    num_bins: int | None = None,
):
    """Listing 2 parity: ``to_two_graph_hashmap_cyclic(hyperedges,
    hypernodes, degrees, s, num_threads, num_bins)``.

    Builds a :class:`~repro.structures.biadjacency.BiAdjacency` view of the
    two incidence CSRs and runs the hashmap construction on a cyclic
    work-stealing runtime.  ``degrees`` is accepted for signature parity
    (the CSR already knows its degrees); ``num_bins`` maps to the runtime's
    grain.
    """
    from repro.structures.biadjacency import BiAdjacency

    h = BiAdjacency(edge_side, node_side)
    del degrees  # carried by the CSR; kept for paper-API parity
    grain = max(1, (num_bins or 4 * num_threads) // max(num_threads, 1))
    rt = ParallelRuntime(
        num_threads=num_threads, partitioner="cyclic", grain=grain
    )
    return slinegraph_hashmap(h, s, runtime=rt)


def to_two_graph_hashmap_blocked(
    edge_side, node_side, degrees, s: int, num_threads: int,
    num_bins: int | None = None,
):
    """Blocked-partitioning sibling of :func:`to_two_graph_hashmap_cyclic`."""
    from repro.structures.biadjacency import BiAdjacency

    h = BiAdjacency(edge_side, node_side)
    del degrees
    grain = max(1, (num_bins or 4 * num_threads) // max(num_threads, 1))
    rt = ParallelRuntime(
        num_threads=num_threads, partitioner="blocked", grain=grain
    )
    return slinegraph_hashmap(h, s, runtime=rt)


__all__ = [
    "ALGORITHMS",
    "AdaptiveKernel",
    "BitsetOverlapKernel",
    "DispatchPolicy",
    "KERNEL_NAMES",
    "make_count_kernel",
    "to_two_graph_hashmap_blocked",
    "to_two_graph_hashmap_cyclic",
    "clique_expansion",
    "filter_overlaps",
    "finalize_edges",
    "intersect_count_sorted",
    "linegraph_csr",
    "resolve_incidence",
    "scliquegraph",
    "slinegraph_ensemble",
    "slinegraph_hashmap",
    "slinegraph_intersection",
    "slinegraph_matrix",
    "slinegraph_naive",
    "slinegraph_queue_hashmap",
    "slinegraph_queue_intersection",
    "slinegraph_threaded",
    "to_two_graph",
    "two_hop_pair_counts",
]

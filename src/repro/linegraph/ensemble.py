"""Ensemble s-line construction — all requested s values in one pass [18].

Overlap counts are independent of *s*: computing them once and filtering at
each threshold produces the whole ensemble ``{L_s(H) : s ∈ S}`` for the
price of the largest construction (the ensemble algorithm of Liu et al.
[18], available in NWHy alongside the single-s constructions).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)

__all__ = ["slinegraph_ensemble"]


def slinegraph_ensemble(
    h,
    s_values: list[int] | tuple[int, ...],
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
) -> dict[int, EdgeList]:
    """Build ``{s: L_s(H)}`` for every ``s`` in ``s_values`` in one pass.

    Counting is pruned at ``min(s_values)`` (pairs below the smallest
    threshold can never appear in any requested line graph).  The
    candidate/pruned/emitted counters are stated at the ``min(s_values)``
    threshold — the one counting pass the ensemble actually runs.
    ``kernel`` picks the counting body (default ``"auto"``: the adaptive
    dispatcher); every choice yields the same ensemble bit for bit.
    """
    s_values = sorted(set(int(s) for s in s_values))
    if not s_values:
        return {}
    if s_values[0] < 1:
        raise ValueError("every s must be >= 1")
    from .dispatch import make_count_kernel

    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "ensemble")
    s_min = s_values[0]
    edges, nodes, n_e, sizes = resolve_incidence(h)
    eligible = np.flatnonzero(sizes >= s_min).astype(np.int64)
    runtime, owned = resolve_runtime(runtime, backend, workers)

    try:
        with tr.span(
            "slinegraph.ensemble", s_min=s_min, num_s=len(s_values)
        ) as span:
            with tr.span("ensemble.count"):
                if runtime is None:
                    body = make_count_kernel(kernel, edges, nodes, s_min)
                    parts = [body(eligible).value]
                else:
                    runtime.new_run()
                    with runtime.share(edges, nodes) as (se, sn):
                        body = make_count_kernel(kernel, se, sn, s_min)
                        parts = runtime.parallel_for(
                            runtime.partition(eligible),
                            body,
                            phase="ensemble_count",
                            pure=True,
                        )
            if parts:
                src = np.concatenate([p[0] for p in parts])
                dst = np.concatenate([p[1] for p in parts])
                cnt = np.concatenate([p[2] for p in parts])
                stats = merge_kernel_stats([p[3] for p in parts])
                candidates = total_candidates(stats)
            else:
                src = dst = cnt = np.empty(0, dtype=np.int64)
                stats, candidates = {}, 0
            c_cand.inc(candidates)
            c_pruned.inc(candidates - src.size)
            c_emit.inc(src.size)
            emit_kernel_counters(metrics, stats)
            span.set(candidates=candidates, emitted=int(src.size))
            with tr.span("ensemble.filter"):
                out: dict[int, EdgeList] = {}
                for s in s_values:
                    keep = cnt >= s
                    out[s] = finalize_edges(src[keep], dst[keep], cnt[keep], n_e)
                return out
    finally:
        if owned:
            runtime.close()

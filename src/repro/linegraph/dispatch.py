"""Degree-bucketed adaptive kernel dispatch (ROADMAP 3).

The construction algorithms used to commit to one kernel family for the
whole graph.  But kernel economics are a *per-row* question: a low-degree
hyperedge is cheapest under two-hop hashmap counting, a huge hyperedge
over well-connected hypernodes is cheapest under the dense bitset sweep
(:mod:`repro.linegraph.bitset`), and a toy graph isn't worth any
machinery at all.  This module implements the heuristic-kernel-selection
idea of the high-order line-graph paper (PAPERS.md) at chunk granularity:
:class:`AdaptiveKernel` partitions each frontier chunk into degree /
candidate-density buckets (:func:`bucketize`) and runs the chosen body
per bucket — naive, hashmap, intersection, or bitset — concatenating the
exact per-pair overlaps.

Every body computes the same exact overlap counts, so the dispatcher's
output is **bit-identical** to any fixed kernel after
:func:`~repro.linegraph.common.finalize_edges` — the backend-equivalence
property suite holds it to account.  Bucketing decisions depend only on
the incidence structure, ``s``, and the policy (never on the execution
backend, thread count, or timing), so results and the simulated cost
ledger stay deterministic.

The choice is observable: the kernel's returned stats carry one entry
per family actually used (``linegraph_kernel_*_total{kernel=...}``
counters via :func:`~repro.linegraph.common.emit_kernel_counters`), and
builders add ``dispatch_rows_total{kernel=...}`` /
``dispatch_buckets_total{kernel=...}`` from the same stats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.runtime import TaskResult
from repro.parallel.shared import open_handles

from .bitset import BitsetOverlapKernel, bitset_rows
from .common import (
    batch_intersect_counts,
    kernel_stats,
    merge_kernel_stats,
    two_hop_pair_counts,
)

__all__ = [
    "AdaptiveKernel",
    "DispatchPolicy",
    "KERNEL_NAMES",
    "bucketize",
    "make_count_kernel",
]

#: the kernel-selection surface exposed on builders / CLI / service
KERNEL_NAMES = ("auto", "naive", "hashmap", "intersection", "bitset")


@dataclass(frozen=True)
class DispatchPolicy:
    """Knobs of the per-bucket kernel choice (all deterministic).

    ``naive_max_edges``
        Graphs with at most this many hyperedge rows skip all machinery:
        the whole chunk goes to the all-pairs naive body.
    ``bitset_advantage``
        A row goes to the dense bitset sweep when its estimated two-hop
        expansion exceeds ``bitset_advantage ×`` the dense sweep cost
        (``num_rows × ⌈n_v/64⌉`` word operations).
    ``bitset_min_expansion``
        Absolute expansion floor below which bitset is never considered
        (packing has fixed costs a small row can't amortize).
    ``bitset_max_bytes``
        Memory guard: the packed eligible-row matrix
        (``num_rows × ⌈n_v/8⌉`` bytes) must fit under this bound.
    ``intersect_min_s``
        When set, non-bitset rows with ``s ≥ intersect_min_s`` use the
        explicit set-intersection body.  Default ``None``: in this
        vectorized implementation the hashmap count *is* the candidate
        gather, so intersection never wins on time — the knob exists for
        experiments and for forcing the family via ``kernel=``.
    """

    naive_max_edges: int = 8
    bitset_advantage: float = 1.5
    bitset_min_expansion: int = 4096
    bitset_max_bytes: int = 64 * 1024 * 1024
    intersect_min_s: int | None = None


_DEFAULT_POLICY = DispatchPolicy()


def bucketize(
    edges,
    nodes,
    chunk: np.ndarray,
    s: int,
    policy: DispatchPolicy = _DEFAULT_POLICY,
) -> list[tuple[str, np.ndarray]]:
    """Partition one chunk's rows into (kernel name, row ids) buckets.

    Rows below the ``s`` size threshold are dropped (no kernel can emit
    from them).  Buckets come back in fixed order (naive, bitset,
    intersection, hashmap) with only non-empty entries, and the
    assignment depends solely on incidence structure + ``s`` + policy —
    never on backend or timing — so dispatch is reproducible.
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    sizes = edges.indptr[chunk + 1] - edges.indptr[chunk]
    live = chunk[sizes >= s]
    if live.size == 0:
        return []
    n_rows = edges.num_vertices()
    if n_rows <= policy.naive_max_edges:
        return [("naive", live)]
    n_v = edges.num_targets()
    words = (n_v + 63) // 64
    dense_cost = float(n_rows) * words
    packed_bytes = float(n_rows) * words * 8
    # estimated two-hop expansion per row: Σ_{v∈e} deg(v)
    starts = edges.indptr[live]
    counts = edges.indptr[live + 1] - starts
    from repro.graph.traversal import multi_slice

    members = multi_slice(edges.indices, starts, counts)
    m_deg = nodes.indptr[members + 1] - nodes.indptr[members]
    deg_cum = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(m_deg))
    )
    bounds = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts))
    )
    expansion = deg_cum[bounds[1:]] - deg_cum[bounds[:-1]]
    to_bitset = (
        (expansion >= policy.bitset_min_expansion)
        & (expansion >= policy.bitset_advantage * dense_cost)
        if packed_bytes <= policy.bitset_max_bytes
        else np.zeros(live.size, dtype=bool)
    )
    out: list[tuple[str, np.ndarray]] = []
    if to_bitset.any():
        out.append(("bitset", live[to_bitset]))
    rest = live[~to_bitset]
    if rest.size:
        if (
            policy.intersect_min_s is not None
            and s >= policy.intersect_min_s
        ):
            out.append(("intersection", rest))
        else:
            out.append(("hashmap", rest))
    return out


# -- per-bucket bodies (operate on opened CSRs, return uniform tuples) ------


def _hashmap_rows(edges, nodes, ids, s, upper_only):
    src, dst, cnt, work = two_hop_pair_counts(
        edges, nodes, ids, upper_only=upper_only
    )
    keep = cnt >= s
    if not upper_only:
        keep &= src != dst
    stats = kernel_stats(
        "hashmap",
        rows=int(ids.size),
        candidates=int(cnt.size),
        emitted=int(keep.sum()),
    )
    return src[keep], dst[keep], cnt[keep], stats, float(work + ids.size)


def _intersection_rows(edges, nodes, ids, s, upper_only):
    src_c, dst_c, _, walk_work = two_hop_pair_counts(
        edges, nodes, ids, upper_only=upper_only
    )
    candidates = int(src_c.size)
    keep = edges.indptr[dst_c + 1] - edges.indptr[dst_c] >= s
    if not upper_only:
        keep &= src_c != dst_c
    src_c, dst_c = src_c[keep], dst_c[keep]
    counts = batch_intersect_counts(
        edges, np.stack([src_c, dst_c], axis=1)
    )
    work = float(walk_work + ids.size)
    if src_c.size:
        sizes_a = edges.indptr[src_c + 1] - edges.indptr[src_c]
        sizes_b = edges.indptr[dst_c + 1] - edges.indptr[dst_c]
        work += float(np.minimum(sizes_a, sizes_b).sum())
    hit = counts >= s
    stats = kernel_stats(
        "intersection",
        rows=int(ids.size),
        candidates=candidates,
        emitted=int(hit.sum()),
    )
    return src_c[hit], dst_c[hit], counts[hit], stats, work


def _naive_rows(edges, ids, s, upper_only):
    sizes = np.diff(edges.indptr)
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_cnt: list[np.ndarray] = []
    examined = 0
    work = float(ids.size)
    for e in np.asarray(ids, dtype=np.int64).tolist():
        partners = (
            eligible[eligible > e] if upper_only else eligible[eligible != e]
        )
        if partners.size == 0:
            continue
        examined += int(partners.size)
        pairs = np.stack(
            [np.full(partners.size, e, dtype=np.int64), partners], axis=1
        )
        counts = batch_intersect_counts(edges, pairs)
        work += float(np.minimum(sizes[e], sizes[partners]).sum())
        hit = counts >= s
        if hit.any():
            out_src.append(pairs[hit, 0])
            out_dst.append(pairs[hit, 1])
            out_cnt.append(counts[hit])
    empty = np.empty(0, dtype=np.int64)
    src = np.concatenate(out_src) if out_src else empty
    dst = np.concatenate(out_dst) if out_dst else empty
    cnt = np.concatenate(out_cnt) if out_cnt else empty
    stats = kernel_stats(
        "naive",
        rows=int(np.asarray(ids).size),
        candidates=examined,
        emitted=int(src.size),
    )
    return src, dst, cnt, stats, work


def adaptive_rows(
    edges,
    nodes,
    chunk: np.ndarray,
    s: int,
    upper_only: bool = True,
    policy: DispatchPolicy = _DEFAULT_POLICY,
    force: str | None = None,
):
    """Bucket a chunk and run the chosen body per bucket.

    Returns the uniform ``(src, dst, overlap, stats, work)`` tuple; the
    stats dict gains one entry per family used plus a ``"dispatch"``
    entry whose ``tasks`` counts buckets (so the bucket table is
    reconstructible from counters alone).
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    if force is not None and force != "auto":
        sizes = edges.indptr[chunk + 1] - edges.indptr[chunk]
        buckets = [(force, chunk[sizes >= s])]
    else:
        buckets = bucketize(edges, nodes, chunk, s, policy)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_cnt: list[np.ndarray] = []
    stats_parts: list[dict] = []
    work = float(chunk.size)
    for name, ids in buckets:
        if ids.size == 0:
            continue
        if name == "bitset":
            src, dst, cnt, stats, w = bitset_rows(
                edges, ids, s, upper_only=upper_only
            )
        elif name == "intersection":
            src, dst, cnt, stats, w = _intersection_rows(
                edges, nodes, ids, s, upper_only
            )
        elif name == "naive":
            src, dst, cnt, stats, w = _naive_rows(edges, ids, s, upper_only)
        elif name == "hashmap":
            src, dst, cnt, stats, w = _hashmap_rows(
                edges, nodes, ids, s, upper_only
            )
        else:
            raise ValueError(f"unknown kernel bucket {name!r}")
        out_src.append(src)
        out_dst.append(dst)
        out_cnt.append(cnt)
        stats_parts.append(stats)
        work += w
    empty = np.empty(0, dtype=np.int64)
    src = np.concatenate(out_src) if out_src else empty
    dst = np.concatenate(out_dst) if out_dst else empty
    cnt = np.concatenate(out_cnt) if out_cnt else empty
    stats = merge_kernel_stats(stats_parts)
    stats.update(
        kernel_stats("dispatch", rows=int(chunk.size), tasks=len(buckets))
    )
    return src, dst, cnt, stats, work


class AdaptiveKernel:
    """Picklable chunk body running the degree-bucketed dispatch.

    Drop-in for :class:`~repro.linegraph.kernels.HashmapCountKernel`
    (same ``TaskResult((src, dst, overlap, stats), work)`` shape, same
    exact overlaps) on every execution backend.  ``force`` pins one
    family for the whole chunk — how ``kernel="bitset"`` etc. is served
    in contexts that need non-default ``upper_only``.
    """

    __slots__ = ("edges", "nodes", "s", "upper_only", "policy", "force")

    def __init__(
        self,
        edges,
        nodes,
        s: int,
        upper_only: bool = True,
        policy: DispatchPolicy = _DEFAULT_POLICY,
        force: str | None = None,
    ) -> None:
        self.edges = edges
        self.nodes = nodes
        self.s = int(s)
        self.upper_only = bool(upper_only)
        self.policy = policy
        self.force = force

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges, self.nodes) as (edges, nodes):
            src, dst, cnt, stats, work = adaptive_rows(
                edges,
                nodes,
                chunk,
                self.s,
                upper_only=self.upper_only,
                policy=self.policy,
                force=self.force,
            )
            return TaskResult((src, dst, cnt, stats), work)


def make_count_kernel(
    kernel: str | None,
    edges,
    nodes,
    s: int,
    weighted: bool = False,
    degree_filter: bool = False,
    upper_only: bool = True,
    policy: DispatchPolicy = _DEFAULT_POLICY,
):
    """Build the counting body for one builder run.

    ``kernel`` is one of :data:`KERNEL_NAMES` (``None`` → ``"auto"``,
    the dispatcher).  Weighted constructions always use the hashmap body
    (the only family that accumulates the ``Σ w·w`` products).
    """
    from .kernels import HashmapCountKernel

    name = kernel or "auto"
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(KERNEL_NAMES)}"
        )
    if weighted:
        if name not in ("auto", "hashmap"):
            raise ValueError(
                "weighted constructions require the hashmap kernel"
            )
        return HashmapCountKernel(
            edges, nodes, s, weighted=True, degree_filter=degree_filter
        )
    if name == "bitset" and upper_only:
        return BitsetOverlapKernel(edges, s)
    return AdaptiveKernel(
        edges,
        nodes,
        s,
        upper_only=upper_only,
        policy=policy,
        force=None if name == "auto" else name,
    )

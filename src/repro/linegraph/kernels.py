"""Picklable construction kernels — one body per builder, backend-agnostic.

The s-line builders used to close over their incidence CSRs; a closure
runs fine on the simulated loop and a thread pool but cannot cross a
process boundary.  These module-level kernel classes hold their inputs as
instance attributes instead, so one object serves all three execution
backends:

* under ``simulated``/``threaded`` the attributes are plain CSRs and
  :func:`repro.parallel.shared.open_handles` passes them through;
* under ``process`` the builder wraps them via ``runtime.share(...)``
  first, the kernel pickles to a ~300-byte handle bundle, and each task
  attaches the shared blocks zero-copy.

Every kernel is **pure**: it only reads its inputs and returns freshly
allocated arrays (the ``np.unique``/``bincount`` outputs), which is what
lets :meth:`~repro.parallel.runtime.ParallelRuntime.parallel_for` route
it to a real pool with ``pure=True``.  Candidate-pair statistics that the
builders used to accumulate in closed-over lists now travel inside the
returned value — a list mutation would race under real threads and be
silently lost under processes.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import TaskResult
from repro.parallel.shared import open_handles

from .common import (
    batch_intersect_counts,
    intersect_count_sorted,
    kernel_stats,
    two_hop_pair_counts,
    two_hop_pair_weighted,
)

__all__ = [
    "HashmapCountKernel",
    "IntersectionKernel",
    "NaivePairsKernel",
    "PairGatherKernel",
    "PairIntersectKernel",
]


def _row_sizes(csr, ids: np.ndarray) -> np.ndarray:
    """Row lengths (= hyperedge sizes) for ``ids`` without a full diff."""
    return csr.indptr[ids + 1] - csr.indptr[ids]


class HashmapCountKernel:
    """Hashmap-counting body (hashmap, queue_hashmap, ensemble, threaded).

    Returns ``TaskResult((src, dst, weight, stats), work)`` where
    ``stats`` is a :func:`~repro.linegraph.common.kernel_stats` dict —
    candidates are the co-incident pairs examined before the ``s``
    threshold, the statistic the builders' counters report.
    """

    __slots__ = ("edges", "nodes", "s", "weighted", "degree_filter")

    def __init__(
        self, edges, nodes, s: int,
        weighted: bool = False, degree_filter: bool = False,
    ) -> None:
        self.edges = edges
        self.nodes = nodes
        self.s = int(s)
        self.weighted = bool(weighted)
        self.degree_filter = bool(degree_filter)

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges, self.nodes) as (edges, nodes):
            live = chunk
            if self.degree_filter:  # Alg. 1 line 6
                live = chunk[_row_sizes(edges, chunk) >= self.s]
            if self.weighted:
                src, dst, cnt, wgt = two_hop_pair_weighted(edges, nodes, live)
                keep = cnt >= self.s
                work = int(cnt.sum()) + chunk.size
                stats = kernel_stats(
                    "hashmap",
                    rows=int(live.size),
                    candidates=int(cnt.size),
                    emitted=int(keep.sum()),
                )
                return TaskResult(
                    (src[keep], dst[keep], wgt[keep], stats), float(work)
                )
            src, dst, cnt, work = two_hop_pair_counts(edges, nodes, live)
            keep = cnt >= self.s
            stats = kernel_stats(
                "hashmap",
                rows=int(live.size),
                candidates=int(cnt.size),
                emitted=int(keep.sum()),
            )
            return TaskResult(
                (src[keep], dst[keep], cnt[keep], stats),
                float(work + chunk.size),
            )


class IntersectionKernel:
    """Candidate gathering + per-pair set intersection (one-phase [17])."""

    __slots__ = ("edges", "nodes", "s")

    def __init__(self, edges, nodes, s: int) -> None:
        self.edges = edges
        self.nodes = nodes
        self.s = int(s)

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges, self.nodes) as (edges, nodes):
            # candidate pairs via two-hop walk (counts discarded: the
            # heuristic algorithm re-derives overlap by explicit
            # intersection)
            src_c, dst_c, _, walk_work = two_hop_pair_counts(
                edges, nodes, chunk
            )
            candidates = int(src_c.size)
            keep = _row_sizes(edges, dst_c) >= self.s
            src_c, dst_c = src_c[keep], dst_c[keep]
            pairs = np.stack([src_c, dst_c], axis=1)
            counts = batch_intersect_counts(edges, pairs)
            work = walk_work + (
                int(
                    np.minimum(
                        _row_sizes(edges, src_c), _row_sizes(edges, dst_c)
                    ).sum()
                )
                if src_c.size
                else 0
            )
            hit = counts >= self.s
            stats = kernel_stats(
                "intersection",
                rows=int(chunk.size),
                candidates=candidates,
                emitted=int(hit.sum()),
            )
            return TaskResult(
                (src_c[hit], dst_c[hit], counts[hit], stats),
                float(work + chunk.size),
            )


class PairGatherKernel:
    """Algorithm 2 phase 1: enqueue candidate pairs from the two-hop walk."""

    __slots__ = ("edges", "nodes", "s")

    def __init__(self, edges, nodes, s: int) -> None:
        self.edges = edges
        self.nodes = nodes
        self.s = int(s)

    def __call__(self, chunk: np.ndarray) -> TaskResult:
        with open_handles(self.edges, self.nodes) as (edges, nodes):
            src, dst, _, work = two_hop_pair_counts(edges, nodes, chunk)
            keep = _row_sizes(edges, dst) >= self.s  # candidate-side pruning
            pairs = np.stack([src[keep], dst[keep]], axis=1)
            # phase 1 examines candidates; emission happens in phase 2 —
            # merging both phases' stats reproduces the builder totals
            stats = kernel_stats(
                "intersection",
                rows=int(chunk.size),
                candidates=int(src.size),
            )
            return TaskResult((pairs, stats), float(work + chunk.size))


class PairIntersectKernel:
    """Algorithm 2 phase 2: per-pair sorted-merge set intersection.

    Unlike the other kernels its chunks are *pair arrays* (the drained
    queue's rows), not hyperedge IDs — each row is consumed exactly once,
    so the pairs travel with the task while the member CSR stays shared.
    """

    __slots__ = ("edges", "s")

    def __init__(self, edges, s: int) -> None:
        self.edges = edges
        self.s = int(s)

    def __call__(self, pairs: np.ndarray) -> TaskResult:
        with open_handles(self.edges) as (edges,):
            counts = batch_intersect_counts(edges, pairs)
            work = (
                int(
                    np.minimum(
                        _row_sizes(edges, pairs[:, 0]),
                        _row_sizes(edges, pairs[:, 1]),
                    ).sum()
                )
                if pairs.size
                else 0
            )
            keep = counts >= self.s
            stats = kernel_stats(
                "intersection", emitted=int(keep.sum())
            )
            return TaskResult(
                (pairs[keep, 0], pairs[keep, 1], counts[keep], stats),
                float(work + pairs.shape[0]),
            )


class NaivePairsKernel:
    """All-pairs oracle body: intersect every ``f > e`` (paper §III-C.3)."""

    __slots__ = ("edges", "s", "n")

    def __init__(self, edges, s: int, n: int) -> None:
        self.edges = edges
        self.s = int(s)
        self.n = int(n)

    def __call__(self, block: np.ndarray) -> TaskResult:
        with open_handles(self.edges) as (edges,):
            sizes = np.diff(edges.indptr)  # oracle-scale inputs; O(n) is fine
            src: list[int] = []
            dst: list[int] = []
            cnt: list[int] = []
            examined = 0
            work = 0
            for e in block.tolist():
                if sizes[e] < self.s:
                    continue
                mem_e = edges[e]
                for f in range(e + 1, self.n):
                    if sizes[f] < self.s:
                        continue
                    examined += 1
                    work += int(min(sizes[e], sizes[f]))
                    c = intersect_count_sorted(mem_e, edges[f])
                    if c >= self.s:
                        src.append(e)
                        dst.append(f)
                        cnt.append(c)
            stats = kernel_stats(
                "naive",
                rows=int(block.size),
                candidates=examined,
                emitted=len(src),
            )
            return TaskResult(
                (np.array(src), np.array(dst), np.array(cnt), stats),
                float(work + block.size),
            )

"""Set-intersection s-line construction — Liu et al. [17] (non-queue).

For each hyperedge *e*, the two-hop walk collects the *candidate* set
``{f > e : e, f co-incident}`` (each candidate once — the heuristic part:
pairs that share no hypernode are never intersected, and degree-pruned
candidates are skipped), then an explicit sorted-merge set intersection of
the member lists decides whether ``|e ∩ f| ≥ s``.

Compared to the hashmap algorithm this trades the counting hash map for
per-pair intersections — cheaper when candidates are few or *s* is large
(early exit), costlier when overlap structure is dense.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    batch_intersect_counts,
    empty_linegraph,
    finalize_edges,
    pair_counters,
    two_hop_pair_counts,
)

__all__ = ["slinegraph_intersection"]


def slinegraph_intersection(
    h: BiAdjacency,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> EdgeList:
    """Candidate-gathering + per-pair set intersection construction."""
    if s < 1:
        raise ValueError("s must be >= 1")
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "intersection")
    n = h.num_hyperedges()
    sizes = h.edge_sizes()
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    candidates = [0]  # bodies run serially; plain accumulation is safe

    def body(chunk: np.ndarray) -> TaskResult:
        # candidate pairs via two-hop walk (counts discarded: the heuristic
        # algorithm re-derives overlap by explicit intersection)
        src_c, dst_c, _, walk_work = two_hop_pair_counts(
            h.edges, h.nodes, chunk
        )
        candidates[0] += src_c.size  # repro: noqa-R003 — stats counter; serial bodies
        # degree pruning on the candidate side
        keep = sizes[dst_c] >= s
        src_c, dst_c = src_c[keep], dst_c[keep]
        pairs = np.stack([src_c, dst_c], axis=1)
        counts = batch_intersect_counts(h.edges, pairs)
        work = walk_work + (
            int(np.minimum(sizes[src_c], sizes[dst_c]).sum())
            if src_c.size
            else 0
        )
        hit = counts >= s
        return TaskResult(
            (src_c[hit], dst_c[hit], counts[hit]),
            float(work + chunk.size),
        )

    with tr.span("slinegraph.intersection", s=s) as span:
        with tr.span("intersection.candidates"):
            if runtime is None:
                parts = [body(eligible).value]
            else:
                runtime.new_run()
                parts = runtime.parallel_for(
                    runtime.partition(eligible), body, phase="intersection"
                )
        if not parts:
            return empty_linegraph(n)
        src = np.concatenate([p[0] for p in parts])
        dst = np.concatenate([p[1] for p in parts])
        cnt = np.concatenate([p[2] for p in parts])
        c_cand.inc(candidates[0])
        c_pruned.inc(candidates[0] - src.size)
        c_emit.inc(src.size)
        span.set(candidates=candidates[0], emitted=int(src.size))
        with tr.span("intersection.finalize"):
            return finalize_edges(src, dst, cnt, n)

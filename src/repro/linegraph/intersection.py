"""Set-intersection s-line construction — Liu et al. [17] (non-queue).

For each hyperedge *e*, the two-hop walk collects the *candidate* set
``{f > e : e, f co-incident}`` (each candidate once — the heuristic part:
pairs that share no hypernode are never intersected, and degree-pruned
candidates are skipped), then an explicit sorted-merge set intersection of
the member lists decides whether ``|e ∩ f| ≥ s``.

Compared to the hashmap algorithm this trades the counting hash map for
per-pair intersections — cheaper when candidates are few or *s* is large
(early exit), costlier when overlap structure is dense.  The body is the
picklable :class:`~repro.linegraph.kernels.IntersectionKernel`, so the
construction runs on any execution backend.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    empty_linegraph,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)
from .kernels import IntersectionKernel

__all__ = ["slinegraph_intersection"]


def slinegraph_intersection(
    h,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
) -> EdgeList:
    """Candidate-gathering + per-pair set intersection construction.

    ``kernel=None`` keeps the algorithm's defining set-intersection body;
    any :data:`~repro.linegraph.dispatch.KERNEL_NAMES` value (notably
    ``"auto"``, the adaptive dispatcher) swaps the counting strategy
    while producing the identical graph.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "intersection")
    edges, nodes, n, sizes = resolve_incidence(h)
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    runtime, owned = resolve_runtime(runtime, backend, workers)

    def make_body(e, nd):
        if kernel is None or kernel == "intersection":
            return IntersectionKernel(e, nd, s)
        from .dispatch import make_count_kernel

        return make_count_kernel(kernel, e, nd, s)

    try:
        with tr.span("slinegraph.intersection", s=s) as span:
            with tr.span("intersection.candidates"):
                if runtime is None:
                    parts = [make_body(edges, nodes)(eligible).value]
                else:
                    runtime.new_run()
                    with runtime.share(edges, nodes) as (se, sn):
                        parts = runtime.parallel_for(
                            runtime.partition(eligible),
                            make_body(se, sn),
                            phase="intersection",
                            pure=True,
                        )
            if not parts:
                return empty_linegraph(n)
            src = np.concatenate([p[0] for p in parts])
            dst = np.concatenate([p[1] for p in parts])
            cnt = np.concatenate([p[2] for p in parts])
            stats = merge_kernel_stats([p[3] for p in parts])
            candidates = total_candidates(stats)
            c_cand.inc(candidates)
            c_pruned.inc(candidates - src.size)
            c_emit.inc(src.size)
            emit_kernel_counters(metrics, stats)
            span.set(candidates=candidates, emitted=int(src.size))
            with tr.span("intersection.finalize"):
                return finalize_edges(src, dst, cnt, n)
    finally:
        if owned:
            runtime.close()

"""Algorithm 1 — single-phase queue-based hashmap s-line construction.

The paper's first new algorithm.  Instead of a fixed ``for e in [0, n_e)``
loop, all candidate hyperedge IDs are first *enqueued* into per-thread work
queues (Alg. 1 line 2) and then processed from the merged queue — so the
IDs may be original, permuted by relabel-by-degree, or adjoin-consolidated;
the iteration structure no longer assumes a contiguous ``[0, n_e)`` space.
Per item the counting step is identical to the hashmap algorithm
(:mod:`repro.linegraph.hashmap`); enqueuing is linear in the number of
hyperedges, so asymptotic complexity is unchanged (§III-C.3).

Works on **both** representations: pass a ``BiAdjacency`` or an
``AdjoinGraph``.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.parallel.workqueue import ThreadLocalQueues, WorkQueue
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    empty_linegraph,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)

__all__ = ["slinegraph_queue_hashmap"]


def slinegraph_queue_hashmap(
    h,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    queue_ids: np.ndarray | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
) -> EdgeList:
    """Single-phase queue-based construction (paper Algorithm 1).

    Parameters
    ----------
    h:
        ``BiAdjacency`` or ``AdjoinGraph``.
    s:
        Minimum overlap.
    runtime:
        Optional simulated runtime (costs follow two-hop work per chunk).
    queue_ids:
        Hyperedge IDs to enqueue; defaults to all of them.  May be permuted
        — the result is identical because line 10's ``i < j`` comparison
        runs on whatever IDs the queue carries, covering each unordered
        pair exactly once either way.
    tracer, metrics:
        Optional :mod:`repro.obs` instruments (no-op when ``None``).
    backend, workers:
        Alternative to ``runtime``: build one on the named execution
        backend (the counting phase then runs on a real pool).
    kernel:
        Counting body for the drained queue (default ``"auto"``: the
        adaptive dispatcher of :mod:`repro.linegraph.dispatch`); results
        are bit-identical across choices.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    from .dispatch import make_count_kernel

    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "queue_hashmap")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    if queue_ids is None:
        queue_ids = np.arange(n_e, dtype=np.int64)
    else:
        # Alg. 1 line 2 enqueues each hyperedge exactly once; a duplicated
        # ID inside one counting chunk would double its pair multiplicities
        queue_ids = np.unique(np.asarray(queue_ids, dtype=np.int64))
    runtime, owned = resolve_runtime(runtime, backend, workers)

    try:
        nt = runtime.num_threads if runtime is not None else 1
        local = ThreadLocalQueues(nt, width=1)
        with tr.span("slinegraph.queue_hashmap", s=s) as span:
            # Phase 0 (Alg. 1 line 2): enqueue candidate IDs, thread-locally.
            with tr.span("queue_hashmap.enqueue"):
                if runtime is None:
                    local.push(0, queue_ids)
                else:
                    runtime.new_run()
                    chunks = runtime.partition(queue_ids)

                    def enqueue(chunk: np.ndarray) -> TaskResult:
                        # round-robin chunk -> thread assignment mirrors the
                        # simulated static placement; actual thread identity is
                        # irrelevant to the result because merge order is
                        # deterministic
                        return TaskResult(chunk, float(chunk.size))

                    for i, part in enumerate(
                        runtime.parallel_for(chunks, enqueue, phase="enqueue_ids")
                    ):
                        local.push(i % nt, part)
                queue = WorkQueue(local.merge())

            # Main loop (lines 5–14): drain the queue; per item, hashmap
            # counting with the line-6 degree filter inside the kernel.
            out_src: list[np.ndarray] = []
            out_dst: list[np.ndarray] = []
            out_cnt: list[np.ndarray] = []
            stats_parts: list[dict] = []

            with tr.span("queue_hashmap.count"):
                if runtime is None:
                    body = make_count_kernel(
                        kernel, edges, nodes, s, degree_filter=True
                    )
                    parts = [body(queue.drain()).value]
                else:
                    drained = queue.drain()
                    with runtime.share(edges, nodes) as (se, sn):
                        body = make_count_kernel(
                            kernel, se, sn, s, degree_filter=True
                        )
                        parts = runtime.parallel_for(
                            runtime.partition(drained),
                            body,
                            phase="queue_hashmap",
                            pure=True,
                        )
            for src, dst, cnt, part_stats in parts:
                out_src.append(src)
                out_dst.append(dst)
                out_cnt.append(cnt)
                stats_parts.append(part_stats)
            stats = merge_kernel_stats(stats_parts)
            candidates = total_candidates(stats)

            # line 15: concatenate per-thread edge lists (prefix sum + parallel
            # copy)
            if runtime is not None:
                total = sum(a.size for a in out_src)
                runtime.serial_phase(
                    float(runtime.num_threads), phase="merge_offsets"
                )
                runtime.parallel_for(
                    runtime.partition(total),
                    lambda c: TaskResult(None, float(c.size)),
                    phase="merge_results_copy",
                )
            if not out_src:
                return empty_linegraph(n_e)
            emitted = sum(a.size for a in out_src)
            c_cand.inc(candidates)
            c_pruned.inc(candidates - emitted)
            c_emit.inc(emitted)
            emit_kernel_counters(metrics, stats)
            span.set(candidates=candidates, emitted=emitted)
            with tr.span("queue_hashmap.finalize"):
                return finalize_edges(
                    np.concatenate(out_src),
                    np.concatenate(out_dst),
                    np.concatenate(out_cnt),
                    n_e,
                )
    finally:
        if owned:
            runtime.close()

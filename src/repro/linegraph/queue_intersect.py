"""Algorithm 2 — two-phase queue-based set-intersection construction.

The paper's second new algorithm:

* **Phase 1** (lines 1–6): walk every eligible hyperedge's two-hop
  neighborhood and enqueue each candidate pair ``(e_i, e_j)``, ``i < j``,
  into per-thread queues, then merge.
* **Phase 2** (lines 9–13): drain the pair queue; per pair, a sorted-merge
  set intersection of the two member lists decides ``|e_i ∩ e_j| ≥ s``.

Because phase 2 iterates over *pairs* — a single flat loop — the workload
granularity is much finer than the three-nested-loop one-phase algorithms,
which is the load-balancing advantage §III-C.3 argues for.  Like
Algorithm 1 it is representation-independent (``BiAdjacency`` or
``AdjoinGraph``, original or permuted IDs).  Both phase bodies are
picklable kernels, so each phase runs on any execution backend; phase 2's
chunks are the drained pair rows themselves (consumed once, so they
travel with the tasks while the member CSR stays shared).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.parallel.workqueue import ThreadLocalQueues, WorkQueue
from repro.structures.edgelist import EdgeList

from repro.obs.tracer import as_tracer

from .common import (
    emit_kernel_counters,
    empty_linegraph,
    finalize_edges,
    merge_kernel_stats,
    pair_counters,
    resolve_incidence,
    resolve_runtime,
    total_candidates,
)
from .kernels import PairGatherKernel, PairIntersectKernel

__all__ = ["slinegraph_queue_intersection"]


def slinegraph_queue_intersection(
    h,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    queue_ids: np.ndarray | None = None,
    tracer=None,
    metrics=None,
    backend=None,
    workers: int | None = None,
    kernel: str | None = None,
) -> EdgeList:
    """Two-phase queue-based construction (paper Algorithm 2).

    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``); ``backend``/``workers`` build a runtime on the
    named execution backend when no ``runtime`` is passed.  ``kernel``
    exists for builder-API uniformity; the pair queue *is* this
    algorithm's strategy, so only the intersection family (``None`` /
    ``"auto"`` / ``"intersection"``) is accepted.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    if kernel not in (None, "auto", "intersection"):
        raise ValueError(
            "queue_intersection is definitionally two-phase intersection; "
            f"kernel={kernel!r} is not applicable"
        )
    tr = as_tracer(tracer)
    c_cand, c_pruned, c_emit = pair_counters(metrics, "queue_intersection")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    if queue_ids is None:
        queue_ids = np.arange(n_e, dtype=np.int64)
    else:
        # each hyperedge is enqueued once (duplicates would re-emit its
        # candidate pairs; harmless for phase 2 but wasted work)
        queue_ids = np.unique(np.asarray(queue_ids, dtype=np.int64))
    runtime, owned = resolve_runtime(runtime, backend, workers)
    nt = runtime.num_threads if runtime is not None else 1

    try:
        with tr.span("slinegraph.queue_intersection", s=s) as span:
            # ---- Phase 1: enqueue eligible candidate pairs ----------------
            eligible = queue_ids[sizes[queue_ids] >= s]
            local = ThreadLocalQueues(nt, width=2)
            stats_parts: list[dict] = []

            with tr.span("queue_intersection.enqueue_pairs"):
                if runtime is None:
                    body = PairGatherKernel(edges, nodes, s)
                    pairs, part_stats = body(eligible).value
                    stats_parts.append(part_stats)
                    local.push(0, pairs)
                else:
                    runtime.new_run()
                    with runtime.share(edges, nodes) as (se, sn):
                        body = PairGatherKernel(se, sn, s)
                        parts = runtime.parallel_for(
                            runtime.partition(eligible),
                            body,
                            phase="enqueue_pairs",
                            pure=True,
                        )
                    for i, (pairs, part_stats) in enumerate(parts):
                        stats_parts.append(part_stats)
                        local.push(i % nt, pairs)
                merged = local.merge()
                if runtime is not None:
                    # merging per-thread queues = one prefix sum over thread
                    # counts (serial) + a parallel block copy; mirrors the C++
                    # concatenation
                    runtime.serial_phase(
                        float(nt), phase="merge_pair_queue_offsets"
                    )
                    runtime.parallel_for(
                        runtime.partition(max(merged.shape[0], 0)),
                        lambda c: TaskResult(None, float(c.size)),
                        phase="merge_pair_queue_copy",
                    )
                queue = WorkQueue(
                    merged.reshape(-1, 2) if merged.size else merged
                )

            # ---- Phase 2: per-pair set intersection -----------------------
            with tr.span("queue_intersection.intersect"):
                all_pairs = queue.drain()
                if all_pairs.ndim == 1:
                    all_pairs = all_pairs.reshape(-1, 2)
                if runtime is None:
                    body = PairIntersectKernel(edges, s)
                    results = [body(all_pairs).value]
                else:
                    # the pair queue has one-row granularity; chunk by pair
                    # index and ship each task its own pair rows
                    pair_chunks = [
                        all_pairs[idx]
                        for idx in runtime.partition(all_pairs.shape[0])
                    ]
                    with runtime.share(edges) as (se,):
                        body = PairIntersectKernel(se, s)
                        results = runtime.parallel_for(
                            pair_chunks,
                            body,
                            phase="intersect_pairs",
                            pure=True,
                        )

            stats_parts.extend(r[3] for r in results)
            stats = merge_kernel_stats(stats_parts)
            candidates = total_candidates(stats)
            emitted = sum(int(r[0].size) for r in results)
            c_cand.inc(candidates)
            c_pruned.inc(candidates - emitted)
            c_emit.inc(emitted)
            emit_kernel_counters(metrics, stats)
            span.set(candidates=candidates, emitted=emitted)
            srcs = [r[0] for r in results if r[0].size]
            if not srcs:
                return empty_linegraph(n_e)
            with tr.span("queue_intersection.finalize"):
                return finalize_edges(
                    np.concatenate(srcs),
                    np.concatenate([r[1] for r in results if r[1].size]),
                    np.concatenate([r[2] for r in results if r[2].size]),
                    n_e,
                )
    finally:
        if owned:
            runtime.close()

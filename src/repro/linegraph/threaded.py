"""Thread-parallel s-line construction — real concurrency for pure kernels.

``slinegraph_threaded`` chunks the eligible hyperedges cyclically (the
paper's skew-smoothing adaptor), maps the pure hashmap-counting body over
a genuine thread pool (:mod:`repro.parallel.threads`), and merges —
bit-identical results to the serial/simulated constructions, with actual
multi-core overlap where the host provides it (the NumPy kernels release
the GIL).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.partition import cyclic_range
from repro.parallel.threads import ThreadedMap
from repro.structures.edgelist import EdgeList

from .common import (
    empty_linegraph,
    finalize_edges,
    resolve_incidence,
    two_hop_pair_counts,
)

__all__ = ["slinegraph_threaded"]


def slinegraph_threaded(
    h,
    s: int = 1,
    num_workers: int = 4,
    chunks_per_worker: int = 4,
) -> EdgeList:
    """Hashmap-counting construction over a real thread pool.

    Accepts ``BiAdjacency`` or ``AdjoinGraph`` (like the queue-based
    algorithms).  Results equal every other construction algorithm.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    eligible = np.flatnonzero(sizes >= s).astype(np.int64)
    if eligible.size == 0:
        return empty_linegraph(n_e)
    chunks = cyclic_range(eligible, max(1, num_workers * chunks_per_worker))

    def body(chunk: np.ndarray):
        src, dst, cnt, _ = two_hop_pair_counts(edges, nodes, chunk)
        keep = cnt >= s
        return src[keep], dst[keep], cnt[keep]

    parts = ThreadedMap(num_workers).map(body, chunks)
    src = np.concatenate([p[0] for p in parts])
    dst = np.concatenate([p[1] for p in parts])
    cnt = np.concatenate([p[2] for p in parts])
    return finalize_edges(src, dst, cnt, n_e)

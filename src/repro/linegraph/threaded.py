"""Thread-parallel s-line construction — real concurrency for pure kernels.

``slinegraph_threaded`` is the hashmap-counting construction run on a
:class:`~repro.parallel.backends.ThreadedBackend`: eligible hyperedges are
chunked cyclically (the paper's skew-smoothing adaptor), the pure counting
kernel maps over a genuine thread pool, and results merge bit-identically
with every other construction.  Historically this was a one-off built on
:mod:`repro.parallel.threads`; it now delegates to
:func:`~repro.linegraph.hashmap.slinegraph_hashmap` through the general
backend layer, which also fixes its simulated ledger — each chunk charges
the incidences its two-hop walk actually touched (via the kernel's
``TaskResult`` work), not the chunk length, so makespans agree with the
other builders.
"""

from __future__ import annotations

from repro.parallel.backends import default_workers
from repro.parallel.runtime import ParallelRuntime
from repro.structures.edgelist import EdgeList

from .hashmap import slinegraph_hashmap

__all__ = ["slinegraph_threaded"]


def slinegraph_threaded(
    h,
    s: int = 1,
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
    kernel: str | None = None,
) -> EdgeList:
    """Hashmap-counting construction over a real thread pool.

    Accepts ``BiAdjacency`` or ``AdjoinGraph`` (like the queue-based
    algorithms).  Results equal every other construction algorithm.
    ``num_workers=None`` sizes the pool to a bounded ``os.cpu_count()``.
    Pass a ``runtime`` to reuse an existing pool/backend instead (then
    ``num_workers``/``chunks_per_worker`` are ignored).
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    if runtime is not None:
        return slinegraph_hashmap(
            h, s, runtime=runtime, tracer=tracer, metrics=metrics,
            kernel=kernel,
        )
    workers = default_workers() if num_workers is None else int(num_workers)
    if workers <= 0:
        raise ValueError("num_workers must be positive")
    with ParallelRuntime(
        num_threads=workers,
        partitioner="cyclic",
        grain=max(1, int(chunks_per_worker)),
        backend="threaded",
        workers=workers,
    ) as rt:
        return slinegraph_hashmap(
            h, s, runtime=rt, tracer=tracer, metrics=metrics, kernel=kernel
        )

"""Exact hypergraph algorithms (paper §III-C.1, C.2, C.4).

HyperBFS/HyperCC operate on the bipartite (two-index-set) representation;
AdjoinBFS/AdjoinCC run stock graph algorithms on the adjoin (one-index-set)
representation; toplex computation finds maximal hyperedges.
"""

from .adjoinbfs import adjoinbfs
from .adjoincc import adjoincc
from .hyperbfs import (
    hyperbfs,
    hyperbfs_bottom_up,
    hyperbfs_direction_optimizing,
    hyperbfs_top_down,
)
from .hypercc import hypercc
from .hyperpath import Entity, hyperpath, hypertree
from .s_traversal import (
    s_bfs_lazy,
    s_connected_components_lazy,
    s_distance_lazy,
    s_neighbors_lazy,
)
from .toplex import toplexes, toplexes_algorithm3

__all__ = [
    "adjoinbfs",
    "adjoincc",
    "hyperbfs",
    "hyperbfs_bottom_up",
    "hyperbfs_direction_optimizing",
    "hyperbfs_top_down",
    "Entity",
    "hypercc",
    "hyperpath",
    "hypertree",
    "s_bfs_lazy",
    "s_connected_components_lazy",
    "s_distance_lazy",
    "s_neighbors_lazy",
    "toplexes",
    "toplexes_algorithm3",
]

"""AdjoinCC — connected components on the adjoin representation.

Paper §III-C.2: AdjoinCC runs a stock graph CC engine — Afforest [27] by
default, label propagation as the alternative — on the consolidated adjoin
graph, then splits the label array back into the hyperedge and hypernode
halves.  Labels are canonical minimum-consolidated-ID, so AdjoinCC and
HyperCC agree exactly.
"""

from __future__ import annotations

import numpy as np

from repro.graph.cc import connected_components
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph

__all__ = ["adjoincc"]


def adjoincc(
    g: AdjoinGraph,
    algorithm: str = "afforest",
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """CC over the adjoin graph; returns ``(edge_labels, node_labels)``.

    ``algorithm`` ∈ {'afforest', 'label_propagation', 'shiloach_vishkin'}.
    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``).
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    with as_tracer(tracer).span("cc.adjoincc", algorithm=algorithm):
        labels = connected_components(
            g.graph, algorithm=algorithm, runtime=runtime
        )
        edge_labels, node_labels = g.split_result(labels)
    as_metrics(metrics).counter(
        "traversal_runs_total", algorithm="adjoincc"
    ).inc()
    return np.ascontiguousarray(edge_labels), np.ascontiguousarray(node_labels)

"""HyperBFS — breadth-first search on the bipartite representation.

Paper §III-C.1: BFS over a hypergraph held as two mutually indexed
incidence CSRs.  The frontier alternates between the hyperedge and
hypernode index spaces, and the algorithm must maintain **two** of every
per-vertex structure (distance, parent, visited) — the bookkeeping overhead
the paper names as the bi-adjacency representation's main drawback.

Distances are *bipartite hops*: a hypernode and an incident hyperedge are
one hop apart, two hypernodes sharing a hyperedge are two hops apart.
Top-down and bottom-up variants are provided (the paper's HyperBFS includes
both [5]).
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import gather_neighbors
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency

__all__ = [
    "hyperbfs_top_down",
    "hyperbfs_bottom_up",
    "hyperbfs_direction_optimizing",
    "hyperbfs",
]


def _instrumented(
    impl, name, h, source, source_is_edge, runtime, tracer, metrics
):
    """Run a HyperBFS variant under a span + run counter (repro.obs)."""
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    with as_tracer(tracer).span(
        "bfs." + name, source=int(source), source_is_edge=bool(source_is_edge)
    ):
        result = impl(h, source, source_is_edge, runtime)
    as_metrics(metrics).counter("traversal_runs_total", algorithm=name).inc()
    return result


def _claim(dist: np.ndarray, parent: np.ndarray, src, dst, level: int):
    """First-writer-wins level assignment (CAS semantics)."""
    fresh = dist[dst] < 0
    src, dst = src[fresh], dst[fresh]
    uniq, first = np.unique(dst, return_index=True)
    dist[uniq] = level
    parent[uniq] = src[first]
    return uniq, int(fresh.size)


def hyperbfs_top_down(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool = False,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-down HyperBFS.  Returns ``(edge_dist, node_dist)``.

    ``source`` is a hypernode ID unless ``source_is_edge``.  Unreached
    entities keep distance ``-1``.  ``tracer``/``metrics`` are optional
    :mod:`repro.obs` instruments (no-op when ``None``).
    """
    return _instrumented(
        _top_down, "hyperbfs_top_down", h, source, source_is_edge,
        runtime, tracer, metrics,
    )


def _top_down(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool,
    runtime: ParallelRuntime | None,
) -> tuple[np.ndarray, np.ndarray]:
    ne, nv = h.vertex_cardinality
    edge_dist = np.full(ne, -1, dtype=np.int64)
    node_dist = np.full(nv, -1, dtype=np.int64)
    edge_parent = np.full(ne, -1, dtype=np.int64)
    node_parent = np.full(nv, -1, dtype=np.int64)
    if source_is_edge:
        edge_dist[source] = 0
        frontier, on_edges = np.array([source], dtype=np.int64), True
    else:
        node_dist[source] = 0
        frontier, on_edges = np.array([source], dtype=np.int64), False
    level = 0
    while frontier.size:
        level += 1
        graph = h.edges if on_edges else h.nodes
        dist = node_dist if on_edges else edge_dist
        parent = node_parent if on_edges else edge_parent
        if runtime is None:
            src, dst = gather_neighbors(graph, frontier)
            frontier, _ = _claim(dist, parent, src, dst, level)
        else:
            parts = runtime.parallel_for(
                runtime.partition(frontier),
                lambda c: _td_task(graph, dist, parent, c, level),
                phase=f"hyperbfs_{'E' if on_edges else 'N'}_{level}",
            )
            frontier = (
                np.unique(np.concatenate(parts))
                if parts
                else np.empty(0, dtype=np.int64)
            )
        on_edges = not on_edges
    return edge_dist, node_dist


def _td_task(graph, dist, parent, chunk, level):
    src, dst = gather_neighbors(graph, chunk)
    nxt, work = _claim(dist, parent, src, dst, level)
    return TaskResult(nxt, float(work + chunk.size))


def hyperbfs_bottom_up(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool = False,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bottom-up HyperBFS: each level scans the *unvisited* opposite side.

    At an odd level every unvisited hypernode (resp. hyperedge) probes its
    incidence list for a member of the current frontier.  Same results as
    :func:`hyperbfs_top_down`; different work profile.
    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments.
    """
    return _instrumented(
        _bottom_up, "hyperbfs_bottom_up", h, source, source_is_edge,
        runtime, tracer, metrics,
    )


def _bottom_up(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool,
    runtime: ParallelRuntime | None,
) -> tuple[np.ndarray, np.ndarray]:
    ne, nv = h.vertex_cardinality
    edge_dist = np.full(ne, -1, dtype=np.int64)
    node_dist = np.full(nv, -1, dtype=np.int64)
    if source_is_edge:
        edge_dist[source] = 0
        on_edges = True
        in_frontier = np.zeros(ne, dtype=bool)
    else:
        node_dist[source] = 0
        on_edges = False
        in_frontier = np.zeros(nv, dtype=bool)
    in_frontier[source] = True
    level = 0
    frontier_size = 1
    while frontier_size:
        level += 1
        # scanning side: the opposite index space of the current frontier
        graph = h.nodes if on_edges else h.edges  # rows = scanning side
        dist = node_dist if on_edges else edge_dist
        candidates = np.flatnonzero(dist < 0)
        if runtime is None:
            nxt, _ = _bu_scan(graph, in_frontier, dist, candidates, level)
        else:
            parts = runtime.parallel_for(
                runtime.partition(candidates),
                lambda c: _bu_task(graph, in_frontier, dist, c, level),
                phase=f"hyperbfs_bu_{level}",
            )
            nxt = (
                np.unique(np.concatenate(parts))
                if parts
                else np.empty(0, dtype=np.int64)
            )
        in_frontier = np.zeros(dist.size, dtype=bool)
        in_frontier[nxt] = True
        frontier_size = nxt.size
        on_edges = not on_edges
    return edge_dist, node_dist


def _bu_scan(graph, in_frontier, dist, candidates, level):
    src, dst = gather_neighbors(graph, candidates)
    hits = in_frontier[dst]
    found = np.unique(src[hits])
    dist[found] = level
    return found, int(dst.size)


def _bu_task(graph, in_frontier, dist, chunk, level):
    nxt, work = _bu_scan(graph, in_frontier, dist, chunk, level)
    return TaskResult(nxt, float(work + chunk.size))


def hyperbfs_direction_optimizing(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool = False,
    runtime: ParallelRuntime | None = None,
    alpha: float = 15.0,
    beta: float = 18.0,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """HyperBFS switching top-down/bottom-up per level (Beamer heuristic).

    The paper's NWHy "HyperBFS" ships both sweep directions [5]; this
    combines them: switch to bottom-up when the frontier's incidence count
    exceeds ``unexplored / alpha``, back to top-down when the frontier
    shrinks below ``side_size / beta``.  Distances are identical to the
    single-direction variants.  ``tracer``/``metrics`` are optional
    :mod:`repro.obs` instruments.
    """
    return _instrumented(
        lambda h_, src, sie, rt: _direction_optimizing(
            h_, src, sie, rt, alpha, beta
        ),
        "hyperbfs_direction_optimizing", h, source, source_is_edge,
        runtime, tracer, metrics,
    )


def _direction_optimizing(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool,
    runtime: ParallelRuntime | None,
    alpha: float,
    beta: float,
) -> tuple[np.ndarray, np.ndarray]:
    ne, nv = h.vertex_cardinality
    edge_dist = np.full(ne, -1, dtype=np.int64)
    node_dist = np.full(nv, -1, dtype=np.int64)
    edge_parent = np.full(ne, -1, dtype=np.int64)
    node_parent = np.full(nv, -1, dtype=np.int64)
    if source_is_edge:
        edge_dist[source] = 0
    else:
        node_dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    on_edges = source_is_edge
    unexplored = 2 * h.num_incidences()
    bottom_up = False
    level = 0
    while frontier.size:
        level += 1
        fwd = h.edges if on_edges else h.nodes  # frontier side -> opposite
        rev = h.nodes if on_edges else h.edges  # opposite side -> frontier
        dist = node_dist if on_edges else edge_dist
        parent = node_parent if on_edges else edge_parent
        scout = int(
            (fwd.indptr[frontier + 1] - fwd.indptr[frontier]).sum()
        )
        if not bottom_up and scout > unexplored / alpha:
            bottom_up = True
        elif bottom_up and frontier.size < dist.size / beta:
            bottom_up = False
        unexplored -= scout
        if bottom_up:
            in_frontier = np.zeros(
                ne if on_edges else nv, dtype=bool
            )
            in_frontier[frontier] = True
            candidates = np.flatnonzero(dist < 0)
            if runtime is None:
                nxt, _ = _bu_scan(rev, in_frontier, dist, candidates, level)
            else:
                parts = runtime.parallel_for(
                    runtime.partition(candidates),
                    lambda c: _bu_task(rev, in_frontier, dist, c, level),
                    phase=f"hyperbfs_do_bu_{level}",
                )
                nxt = (
                    np.unique(np.concatenate(parts))
                    if parts
                    else np.empty(0, dtype=np.int64)
                )
        else:
            if runtime is None:
                src, dst = gather_neighbors(fwd, frontier)
                nxt, _ = _claim(dist, parent, src, dst, level)
            else:
                parts = runtime.parallel_for(
                    runtime.partition(frontier),
                    lambda c: _td_task(fwd, dist, parent, c, level),
                    phase=f"hyperbfs_do_td_{level}",
                )
                nxt = (
                    np.unique(np.concatenate(parts))
                    if parts
                    else np.empty(0, dtype=np.int64)
                )
        frontier = nxt
        on_edges = not on_edges
    return edge_dist, node_dist


def hyperbfs(
    h: BiAdjacency,
    source: int,
    source_is_edge: bool = False,
    direction: str = "top_down",
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch between the HyperBFS variants.

    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``).
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    if direction == "top_down":
        fn = hyperbfs_top_down
    elif direction == "bottom_up":
        fn = hyperbfs_bottom_up
    elif direction == "direction_optimizing":
        fn = hyperbfs_direction_optimizing
    else:
        raise ValueError(f"unknown direction {direction!r}")
    with as_tracer(tracer).span(
        "bfs.hyper",
        direction=direction,
        source=source,
        source_is_edge=source_is_edge,
    ):
        result = fn(
            h, source, source_is_edge, runtime,
            tracer=tracer, metrics=metrics,
        )
    as_metrics(metrics).counter(
        "traversal_runs_total", algorithm="hyperbfs"
    ).inc()
    return result

"""HyperCC — connected components on the bipartite representation.

Paper §III-C.1: label propagation ([22], [28]) over the two mutually
indexed incidence CSRs.  Two label arrays are maintained (one per index
set); each round pushes hyperedge labels to member hypernodes and hypernode
labels back to incident hyperedges, min-combining, until a fixpoint.

Labels are initialized in the **consolidated** numbering (hyperedge *e* →
``e``, hypernode *v* → ``n_e + v``), so HyperCC, AdjoinCC and HygraCC all
converge to byte-identical canonical labels — the cross-representation
invariant the integration tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import gather_neighbors
from repro.parallel.atomics import write_min
from repro.parallel.runtime import ParallelRuntime, TaskResult
from repro.structures.biadjacency import BiAdjacency

__all__ = ["hypercc"]


def hypercc(
    h: BiAdjacency,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Label-propagation CC over a bi-adjacency hypergraph.

    Returns ``(edge_labels, node_labels)`` in consolidated numbering: the
    label of a component is the smallest consolidated ID it contains (for a
    non-isolated component, always a hyperedge ID).

    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``).
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    ne, nv = h.vertex_cardinality
    edge_labels = np.arange(ne, dtype=np.int64)
    node_labels = np.arange(ne, ne + nv, dtype=np.int64)
    rounds = 0
    with as_tracer(tracer).span("cc.hypercc") as span:
        while True:
            rounds += 1
            changed = 0
            if runtime is None:
                src, dst = h.edges.neighborhood_pairs()
                changed += write_min(node_labels, dst, edge_labels[src])
                src, dst = h.nodes.neighborhood_pairs()
                changed += write_min(edge_labels, dst, node_labels[src])
            else:
                parts = runtime.parallel_for(
                    runtime.partition(ne),
                    lambda c: _push(h.edges, edge_labels, node_labels, c),
                    phase=f"hypercc_push_E_{rounds}",
                )
                changed += sum(parts)
                parts = runtime.parallel_for(
                    runtime.partition(nv),
                    lambda c: _push(h.nodes, node_labels, edge_labels, c),
                    phase=f"hypercc_push_N_{rounds}",
                )
                changed += sum(parts)
            if not changed:
                break
        span.set(rounds=rounds)
    as_metrics(metrics).counter(
        "traversal_rounds_total", algorithm="hypercc"
    ).inc(rounds)
    return edge_labels, node_labels


def _push(graph, from_labels, to_labels, chunk) -> TaskResult:
    src, dst = gather_neighbors(graph, chunk)
    changed = write_min(to_labels, dst, from_labels[src])
    return TaskResult(changed, float(dst.size + chunk.size))

"""Toplex computation — maximal hyperedges (paper Algorithm 3).

A *toplex* is a hyperedge contained in no other hyperedge.  Two
implementations:

* :func:`toplexes_algorithm3` — a faithful transcription of the paper's
  Algorithm 3 (grow a tentative toplex set, testing containment both ways
  and evicting subsumed members);
* :func:`toplexes` — a vectorized containment test: ``e ⊆ f`` iff
  ``|e ∩ f| = |e|``, so one two-hop multiplicity count finds every
  containment at once.

Both return the same set.  Duplicate hyperedges: exactly one copy (the
lowest ID) is reported, matching Algorithm 3's ``i < j`` guard.
"""

from __future__ import annotations

import numpy as np

from repro.linegraph.common import resolve_incidence, two_hop_pair_counts
from repro.parallel.runtime import ParallelRuntime, TaskResult

__all__ = ["toplexes", "toplexes_algorithm3"]


def toplexes(
    h,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> np.ndarray:
    """IDs of all maximal hyperedges, ascending (vectorized containment).

    ``h`` may be a ``BiAdjacency`` or an ``AdjoinGraph``.  A hyperedge *e*
    is dominated iff some *f* has ``|e ∩ f| = |e|`` and either ``|f| > |e|``
    (proper superset) or ``|f| = |e|`` with ``f < e`` (duplicate; the
    smallest ID survives).  ``tracer``/``metrics`` hook into
    :mod:`repro.obs` (span ``toplexes`` + dominated-count counter).
    """
    from repro.obs import as_metrics, as_tracer

    tr = as_tracer(tracer)
    m = as_metrics(metrics)
    edges, nodes, n_e, sizes = resolve_incidence(h)
    ids = np.arange(n_e, dtype=np.int64)

    def body(chunk: np.ndarray) -> TaskResult:
        src, dst, cnt, work = two_hop_pair_counts(
            edges, nodes, chunk, upper_only=False
        )
        contained = (cnt == sizes[src]) & (src != dst)
        src_c, dst_c = src[contained], dst[contained]
        proper = sizes[dst_c] > sizes[src_c]
        dup_loser = (sizes[dst_c] == sizes[src_c]) & (dst_c < src_c)
        dominated = np.unique(src_c[proper | dup_loser])
        return TaskResult(dominated, float(work + chunk.size))

    with tr.span("toplexes", edges=int(n_e)):
        if runtime is None:
            parts = [body(ids).value]
        else:
            runtime.new_run()
            parts = runtime.parallel_for(
                runtime.partition(ids), body, phase="toplex_containment"
            )
    dominated = (
        np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)
    )
    m.counter("toplex_dominated_total").inc(int(dominated.size))
    keep = np.ones(n_e, dtype=bool)
    keep[dominated] = False
    # empty hyperedges are contained in every hyperedge; Algorithm 3 treats
    # the empty set as dominated whenever any non-empty hyperedge exists
    if n_e and sizes.max(initial=0) > 0:
        empty_ids = np.flatnonzero(sizes == 0)
        keep[empty_ids] = False
        # ...unless *all* hyperedges are empty, in which case the first
        # empty hyperedge is the unique toplex (duplicate rule)
    elif n_e:
        keep[:] = False
        keep[0] = True
    return np.flatnonzero(keep).astype(np.int64)


def toplexes_algorithm3(h) -> np.ndarray:
    """Literal Algorithm 3 (quadratic reference implementation).

    Maintains the tentative toplex set ``Ě``; each hyperedge is tested for
    containment against the current members, evicting any it subsumes.
    Kept small and readable as the ground truth for :func:`toplexes`.
    """
    edges, _, n_e, sizes = resolve_incidence(h)
    members = [frozenset(edges[e].tolist()) for e in range(n_e)]
    toplex: list[int] = []
    for i in range(n_e):
        flag = True
        survivors: list[int] = []
        for j in toplex:
            if not flag:
                survivors.append(j)
                continue
            if members[i] <= members[j]:
                flag = False
                survivors.append(j)
            elif members[j] < members[i]:
                continue  # evict j: strictly contained in i
            elif members[j] == members[i]:  # pragma: no cover - unreachable
                flag = False
                survivors.append(j)
            else:
                survivors.append(j)
        toplex = survivors
        if flag:
            toplex.append(i)
    return np.array(sorted(toplex), dtype=np.int64)

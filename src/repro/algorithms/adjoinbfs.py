"""AdjoinBFS — direction-optimizing BFS on the adjoin representation.

Paper §III-C.2: because the adjoin graph is an ordinary (symmetric) graph
over one consolidated index set, the stock direction-optimizing BFS of the
graph substrate runs unchanged; the only hypergraph-specific steps are
mapping the source into the shared index space and splitting the resulting
distance array back into hyperedge and hypernode halves.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import bfs_direction_optimizing, bfs_top_down
from repro.parallel.runtime import ParallelRuntime
from repro.structures.adjoin import AdjoinGraph

__all__ = ["adjoinbfs"]


def adjoinbfs(
    g: AdjoinGraph,
    source: int,
    source_is_edge: bool = False,
    runtime: ParallelRuntime | None = None,
    direction_optimizing: bool = True,
    tracer=None,
    metrics=None,
) -> tuple[np.ndarray, np.ndarray]:
    """BFS over the adjoin graph; returns ``(edge_dist, node_dist)``.

    Distances are bipartite hops, identical to
    :func:`repro.algorithms.hyperbfs.hyperbfs_top_down` — the two
    representations must agree, which the integration tests enforce.
    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``).
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.tracer import as_tracer

    with as_tracer(tracer).span(
        "bfs.adjoin", source=source, source_is_edge=source_is_edge
    ):
        adjoin_source = (
            g.adjoin_edge_id(source)
            if source_is_edge
            else g.adjoin_node_id(source)
        )
        engine = (
            bfs_direction_optimizing if direction_optimizing else bfs_top_down
        )
        dist, _parent = engine(g.graph, adjoin_source, runtime=runtime)
        edge_dist, node_dist = g.split_result(dist)
    as_metrics(metrics).counter(
        "traversal_runs_total", algorithm="adjoinbfs"
    ).inc()
    return np.ascontiguousarray(edge_dist), np.ascontiguousarray(node_dist)

"""Lazy s-line traversal — s-metrics without materializing the line graph.

Materializing ``L_s(H)`` can dwarf the hypergraph itself (the same blow-up
§III-B.3 describes for clique expansion).  For one-off queries —
"are these two hyperedges s-connected?", "what is their s-distance?" — the
line graph's neighborhoods can instead be generated **on demand** from the
bipartite structure: the s-neighbors of hyperedge *e* are exactly the
two-hop co-incident hyperedges whose multiplicity reaches *s*
(:func:`repro.linegraph.common.two_hop_pair_counts` with ``upper_only``
off).

This trades recomputation for memory: each BFS level costs the two-hop
volume of its frontier, but nothing is stored beyond the visited set.
Results are bit-identical to running the graph algorithms on the
materialized s-line graph (tested).
"""

from __future__ import annotations

import numpy as np

from repro.linegraph.common import resolve_incidence, two_hop_pair_counts
from repro.parallel.runtime import ParallelRuntime, TaskResult

__all__ = [
    "s_neighbors_lazy",
    "s_bfs_lazy",
    "s_distance_lazy",
    "s_connected_components_lazy",
]


def s_neighbors_lazy(h, e: int, s: int = 1) -> np.ndarray:
    """s-neighbors of hyperedge ``e``, generated on the fly (sorted)."""
    if s < 1:
        raise ValueError("s must be >= 1")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    if sizes[e] < s:
        return np.empty(0, dtype=np.int64)
    _, cand, cnt, _ = two_hop_pair_counts(
        edges, nodes, np.array([e], dtype=np.int64), upper_only=False
    )
    keep = (cnt >= s) & (cand != e)
    return np.sort(cand[keep])


def s_bfs_lazy(
    h,
    source: int,
    s: int = 1,
    runtime: ParallelRuntime | None = None,
    tracer=None,
    metrics=None,
) -> np.ndarray:
    """BFS over the *implicit* s-line graph from hyperedge ``source``.

    Returns hop distances per hyperedge (``-1`` unreachable).  A source
    below the size threshold is its own sole reachable vertex.
    ``tracer``/``metrics`` are optional :mod:`repro.obs` instruments
    (no-op when ``None``).
    """
    from repro.obs import as_metrics, as_tracer

    if s < 1:
        raise ValueError("s must be >= 1")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    dist = np.full(n_e, -1, dtype=np.int64)
    dist[source] = 0
    if sizes[source] < s:
        return dist
    frontier = np.array([source], dtype=np.int64)
    level = 0
    with as_tracer(tracer).span("bfs.s_lazy", source=int(source), s=int(s)):
        while frontier.size:
            level += 1

            def expand(chunk: np.ndarray) -> TaskResult:
                src, cand, cnt, work = two_hop_pair_counts(
                    edges, nodes, chunk, upper_only=False
                )
                keep = (cnt >= s) & (dist[cand] < 0)
                return TaskResult(
                    np.unique(cand[keep]), float(work + chunk.size)
                )

            if runtime is None:
                parts = [expand(frontier).value]
            else:
                parts = runtime.parallel_for(
                    runtime.partition(frontier), expand,
                    phase=f"s_bfs_lazy_{level}",
                )
            nxt = (
                np.unique(np.concatenate(parts))
                if parts
                else np.empty(0, dtype=np.int64)
            )
            nxt = nxt[dist[nxt] < 0]
            dist[nxt] = level
            frontier = nxt
    as_metrics(metrics).counter(
        "traversal_runs_total", algorithm="s_bfs_lazy"
    ).inc()
    return dist


def s_distance_lazy(h, src: int, dest: int, s: int = 1) -> int:
    """s-distance between two hyperedges without materializing ``L_s``.

    Early-exits as soon as ``dest`` is reached.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    if src == dest:
        return 0
    edges, nodes, n_e, sizes = resolve_incidence(h)
    if sizes[src] < s or sizes[dest] < s:
        return -1
    visited = np.zeros(n_e, dtype=bool)
    visited[src] = True
    frontier = np.array([src], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, cand, cnt, _ = two_hop_pair_counts(
            edges, nodes, frontier, upper_only=False
        )
        keep = (cnt >= s) & ~visited[cand]
        nxt = np.unique(cand[keep])
        if np.any(nxt == dest):
            return level
        visited[nxt] = True
        frontier = nxt
    return -1


def s_connected_components_lazy(h, s: int = 1) -> np.ndarray:
    """Canonical min-ID s-component labels, lazily (repeated s-BFS).

    Hyperedges below the size threshold are isolated (own label).
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    edges, nodes, n_e, sizes = resolve_incidence(h)
    labels = np.arange(n_e, dtype=np.int64)
    seen = np.zeros(n_e, dtype=bool)
    for e in range(n_e):
        if seen[e] or sizes[e] < s:
            continue
        dist = s_bfs_lazy(h, e, s)
        members = np.flatnonzero(dist >= 0)
        labels[members] = e  # e is the smallest unseen ID in its component
        seen[members] = True
    return labels

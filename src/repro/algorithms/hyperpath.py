"""Hypertrees and hyperpaths — Hygra/MESH-style reachability artifacts.

The frameworks the paper compares against ship *hypertree* and *hyperpath*
computations (§V): a hypertree is the BFS forest of the bipartite
expansion rooted at an entity, and a hyperpath is one shortest alternating
node–edge–node… chain between two entities.  Both drop out of HyperBFS's
parent arrays; this module materializes them with explicit types so users
get labeled ``('node', id)`` / ``('edge', id)`` steps rather than raw
consolidated IDs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import gather_neighbors
from repro.structures.biadjacency import BiAdjacency

__all__ = ["hypertree", "hyperpath", "Entity"]

#: A typed entity reference: ``('node', id)`` or ``('edge', id)``.
Entity = tuple[str, int]


def _bfs_with_parents(
    h: BiAdjacency, source: int, source_is_edge: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """HyperBFS keeping parents on both sides (top-down)."""
    ne, nv = h.vertex_cardinality
    edge_dist = np.full(ne, -1, dtype=np.int64)
    node_dist = np.full(nv, -1, dtype=np.int64)
    edge_parent = np.full(ne, -1, dtype=np.int64)  # parent is a node ID
    node_parent = np.full(nv, -1, dtype=np.int64)  # parent is an edge ID
    if source_is_edge:
        edge_dist[source] = 0
    else:
        node_dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    on_edges = source_is_edge
    level = 0
    while frontier.size:
        level += 1
        graph = h.edges if on_edges else h.nodes
        dist = node_dist if on_edges else edge_dist
        parent = node_parent if on_edges else edge_parent
        src, dst = gather_neighbors(graph, frontier)
        fresh = dist[dst] < 0
        src, dst = src[fresh], dst[fresh]
        uniq, first = np.unique(dst, return_index=True)
        dist[uniq] = level
        parent[uniq] = src[first]
        frontier = uniq
        on_edges = not on_edges
    return edge_dist, node_dist, edge_parent, node_parent


def hypertree(
    h: BiAdjacency, source: int, source_is_edge: bool = False
) -> dict[Entity, Entity | None]:
    """The BFS hypertree rooted at an entity.

    Maps every *reached* entity to its tree parent (the root maps to
    ``None``).  Parents alternate types: a hyperedge's parent is a
    hypernode and vice versa.
    """
    edge_dist, node_dist, edge_parent, node_parent = _bfs_with_parents(
        h, source, source_is_edge
    )
    tree: dict[Entity, Entity | None] = {}
    root: Entity = ("edge" if source_is_edge else "node", int(source))
    for e in np.flatnonzero(edge_dist >= 0).tolist():
        tree[("edge", e)] = (
            None if ("edge", e) == root else ("node", int(edge_parent[e]))
        )
    for v in np.flatnonzero(node_dist >= 0).tolist():
        tree[("node", v)] = (
            None if ("node", v) == root else ("edge", int(node_parent[v]))
        )
    return tree


def hyperpath(
    h: BiAdjacency,
    source: Entity,
    target: Entity,
) -> list[Entity]:
    """One shortest alternating path between two entities (``[]`` if none).

    Entities are ``('node', id)`` or ``('edge', id)``.  The returned list
    starts at ``source`` and ends at ``target``; consecutive entries
    alternate between hypernodes and hyperedges.
    """
    for kind, _ in (source, target):
        if kind not in ("node", "edge"):
            raise ValueError(f"entity kind must be 'node' or 'edge', got {kind!r}")
    src_kind, src_id = source
    edge_dist, node_dist, edge_parent, node_parent = _bfs_with_parents(
        h, src_id, src_kind == "edge"
    )
    kind, ident = target
    dist = edge_dist if kind == "edge" else node_dist
    if dist[ident] < 0:
        return []
    path: list[Entity] = [(kind, int(ident))]
    while path[-1] != source:
        k, i = path[-1]
        if k == "edge":
            path.append(("node", int(edge_parent[i])))
        else:
            path.append(("edge", int(node_parent[i])))
    path.reverse()
    return path

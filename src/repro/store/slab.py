"""Page-aligned slab file: raw numpy buffers, memory-mapped on open.

The slab is the durable twin of a frozen CSR's struct-of-arrays layout:
each array is written verbatim (contiguous ``int64``/``float64`` bytes)
at a page-aligned offset, and *all* structure — offsets, shapes, dtypes,
checksums — lives in the manifest (:mod:`repro.store.manifest`).  Opening
is one ``mmap`` plus ``np.frombuffer`` views: O(1) in the data, zero
copies, and the OS pages incidence lists in on demand, so datasets may
exceed RAM.

Page alignment buys two things: every array view is itself mappable at
its own offset (``mmap`` offsets must be allocation-granularity aligned),
which is what makes :class:`MappedArray` a picklable ~200-byte handle a
worker process can open independently; and arrays never share a page, so
``madvise``-style tuning stays per-array.

:class:`MappedArray`/:class:`MappedCSR` implement the
:class:`~repro.parallel.shared.BufferHandle`/\
:class:`~repro.parallel.shared.CSRHandle` interface — the second provider
next to POSIX shm, letting the process backend ship store-backed graphs
to workers without copying (:func:`handle_of` recovers the handle for any
ndarray that is a view into a registered open slab).

A note on ``close()``: CPython refuses to close an ``mmap`` while
exported pointers (live ``np.frombuffer`` views) exist, raising
``BufferError``.  Handles tolerate that and leave reclamation to the
garbage collector — a read-only file mapping is harmless to keep, unlike
a POSIX shm block, which is why the shm provider must be strict where
this one may be lazy.
"""

from __future__ import annotations

import mmap
import os
import threading
import zlib
from pathlib import Path

import numpy as np

from repro.parallel.shared import BufferHandle, CSRHandle

from .manifest import SlabEntry, StoreCorruptError

__all__ = [
    "PAGE_SIZE",
    "MappedArray",
    "MappedCSR",
    "SlabFile",
    "SlabWriter",
    "handle_of",
    "csr_handle_of",
]

#: slab section alignment; also satisfies mmap.ALLOCATIONGRANULARITY
PAGE_SIZE = 4096


def _align(offset: int) -> int:
    return (offset + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


#: open slab registry: id(SlabFile) -> (path, base_address, length).
#: lets handle_of() recognize ndarrays backed by a registered mapping so
#: the process backend can ship them as MappedArray handles.
_OPEN_SLABS: dict[int, tuple[str, int, int]] = {}
_OPEN_LOCK = threading.Lock()


class SlabWriter:
    """Streams arrays into a slab file, recording :class:`SlabEntry` rows.

    Sections are page-aligned with zero padding between them; ``crc32``
    is computed over exactly the payload bytes.  :meth:`finish` flushes
    and fsyncs, so a slab referenced by a saved manifest is durable.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._offset = 0
        self.entries: dict[str, SlabEntry] = {}

    def add(self, name: str, array: np.ndarray) -> SlabEntry:
        """Append one array section; returns its manifest entry."""
        if name in self.entries:
            raise ValueError(f"duplicate slab entry {name!r}")
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise ValueError(
                f"slab entry {name!r} has object dtype {array.dtype!r}; "
                "only fixed-width numeric buffers are persistable"
            )
        pad = _align(self._offset) - self._offset
        if pad:
            self._fh.write(b"\x00" * pad)
            self._offset += pad
        payload = array.tobytes()
        self._fh.write(payload)
        entry = SlabEntry(
            name=name,
            offset=self._offset,
            nbytes=len(payload),
            shape=tuple(array.shape),
            dtype=array.dtype.str,
            crc32=zlib.crc32(payload),
        )
        self._offset += len(payload)
        self.entries[name] = entry
        return entry

    def finish(self) -> dict[str, SlabEntry]:
        """Flush + fsync + close; returns the recorded entries."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        return self.entries


class SlabFile:
    """One read-only mapping of a slab file, serving zero-copy views.

    ``array(entry)`` returns an ndarray view into the shared mapping —
    no per-array mmap, no copies.  The instance registers its address
    range so :func:`handle_of` can hand out :class:`MappedArray` handles
    for its views.  ``verify()`` checks every checksum (O(bytes), kept
    off the open path).
    """

    def __init__(
        self, path: str | os.PathLike, entries: dict[str, SlabEntry]
    ) -> None:
        self.path = Path(path)
        self.entries = dict(entries)
        size = max((e.offset + e.nbytes for e in entries.values()), default=0)
        self._mm: mmap.mmap | None = None
        self._base_addr = 0
        if size:
            with open(self.path, "rb") as fh:
                actual = os.fstat(fh.fileno()).st_size
                if actual < size:
                    raise StoreCorruptError(
                        f"slab {self.path} truncated: {actual} bytes on "
                        f"disk, manifest expects ≥ {size}"
                    )
                self._mm = mmap.mmap(
                    fh.fileno(), length=size, access=mmap.ACCESS_READ
                )
            base = np.frombuffer(self._mm, dtype=np.uint8, count=1)
            self._base_addr = int(base.__array_interface__["data"][0])
            with _OPEN_LOCK:
                _OPEN_SLABS[id(self)] = (str(self.path), self._base_addr, size)

    def array(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of one recorded array."""
        entry = self.entries.get(name)
        if entry is None:
            raise KeyError(f"slab has no entry {name!r}")
        if entry.nbytes == 0 or self._mm is None:
            return np.empty(entry.shape, dtype=np.dtype(entry.dtype))
        arr = np.frombuffer(
            self._mm,
            dtype=np.dtype(entry.dtype),
            count=int(np.prod(entry.shape, dtype=np.int64)),
            offset=entry.offset,
        )
        return arr.reshape(entry.shape)

    def verify(self) -> list[str]:
        """Names of entries whose payload fails its crc32 (empty = clean)."""
        bad: list[str] = []
        for name, entry in sorted(self.entries.items()):
            if entry.nbytes == 0:
                continue
            if self._mm is None:
                bad.append(name)
                continue
            payload = self._mm[entry.offset : entry.offset + entry.nbytes]
            if zlib.crc32(payload) != entry.crc32:
                bad.append(name)
        return bad

    def nbytes(self) -> int:
        """Mapped length in bytes (0 for an empty slab)."""
        return 0 if self._mm is None else len(self._mm)

    def close(self) -> None:
        """Drop the registry entry and close the mapping if possible.

        With live views the underlying ``mmap`` close raises
        ``BufferError``; the mapping then lives until the last view is
        garbage collected (see module docstring).
        """
        with _OPEN_LOCK:
            _OPEN_SLABS.pop(id(self), None)
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # live views; reclaimed when they are collected
            self._mm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlabFile({str(self.path)!r}, arrays={len(self.entries)}, "
            f"nbytes={self.nbytes()})"
        )


class MappedArray(BufferHandle):
    """A picklable handle to one array inside a slab file.

    The mmap twin of :class:`~repro.parallel.shared.SharedArray`: what
    travels is ``(path, offset, shape, dtype)``; :meth:`open` maps the
    containing page range read-only and returns the view.  ``release``
    is just ``close`` — the slab file is owned by the store, never by a
    handle.
    """

    __slots__ = ("path", "offset", "shape", "dtype", "_mm")

    def __init__(
        self, path: str, offset: int, shape: tuple[int, ...], dtype: str
    ) -> None:
        self.path = str(path)
        self.offset = int(offset)
        self.shape = tuple(int(d) for d in shape)
        self.dtype = str(dtype)
        self._mm: mmap.mmap | None = None

    # -- pickling: the handle travels, the mapping does not -------------------
    def __getstate__(self) -> tuple:
        return (self.path, self.offset, self.shape, self.dtype)

    def __setstate__(self, state: tuple) -> None:
        self.path, self.offset, self.shape, self.dtype = state
        self._mm = None

    # -- attachment -----------------------------------------------------------
    def open(self) -> np.ndarray:
        if self.nbytes == 0:
            return np.empty(self.shape, dtype=np.dtype(self.dtype))
        gran = mmap.ALLOCATIONGRANULARITY
        map_start = self.offset - (self.offset % gran)
        delta = self.offset - map_start
        if self._mm is None:
            with open(self.path, "rb") as fh:
                self._mm = mmap.mmap(
                    fh.fileno(),
                    length=delta + self.nbytes,
                    offset=map_start,
                    access=mmap.ACCESS_READ,
                )
        arr = np.frombuffer(
            self._mm,
            dtype=np.dtype(self.dtype),
            count=int(np.prod(self.shape, dtype=np.int64)),
            offset=delta,
        )
        return arr.reshape(self.shape)

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # live views; reclaimed when they are collected
            self._mm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedArray({self.path!r}, offset={self.offset}, "
            f"shape={self.shape}, dtype={self.dtype})"
        )


class MappedCSR(CSRHandle):
    """A CSR whose buffers are :class:`MappedArray` handles.

    Pickles to a few hundred bytes; workers rebuild the CSR as read-only
    views over their own mapping of the store's slab file.  No owner
    teardown — the store owns the file.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedCSR(path={self.indptr.path!r}, "
            f"nbytes={self.nbytes})"
        )


def handle_of(array: np.ndarray) -> MappedArray | None:
    """The :class:`MappedArray` for a view into a registered open slab.

    Returns ``None`` when ``array`` is not backed by any open
    :class:`SlabFile` mapping (or is non-contiguous) — callers fall back
    to the shm provider.
    """
    if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
        return None
    if array.size == 0:
        return None
    addr = int(array.__array_interface__["data"][0])
    with _OPEN_LOCK:
        slabs = list(_OPEN_SLABS.values())
    for path, base, length in slabs:
        if base <= addr and addr + array.nbytes <= base + length:
            return MappedArray(path, addr - base, array.shape, array.dtype.str)
    return None


def csr_handle_of(csr: object) -> MappedCSR | None:
    """The :class:`MappedCSR` for a CSR whose buffers all live in slabs.

    Mixed CSRs (some buffers mapped, some heap-allocated) return ``None``
    — partial zero-copy would complicate ownership for no real win.
    """
    indptr = handle_of(csr.indptr)
    indices = handle_of(csr.indices)
    if indptr is None or indices is None:
        return None
    weights: MappedArray | None = None
    if csr.weights is not None:
        weights = handle_of(csr.weights)
        if weights is None:
            return None
    return MappedCSR(
        indptr, indices, weights, csr.num_targets(), csr.has_sorted_rows
    )

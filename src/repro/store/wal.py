"""Write-ahead log: durable, checksummed mutation batches.

Framing (all little-endian)::

    file   := MAGIC record*
    MAGIC  := b"RPROWAL1"                          (8 bytes)
    record := length:u32 crc32:u32 payload[length]
    payload := UTF-8 JSON {"version": N, "ops": [<Mutation wire dicts>]}

Append is write + flush + ``fsync`` — a batch is durable before its
apply is acknowledged.  A crash can only tear the *last* record (POSIX
appends are ordered), so :func:`read_wal` scans from the front and stops
at the first frame that is short or fails its checksum: everything
before it is the committed prefix, everything after is the torn tail.
Reopening for append truncates the tail away; versions must continue
contiguously from the manifest's ``base_version`` (records at or below
it are stale leftovers of a checkpoint that crashed before resetting the
log, and are skipped).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.dynamic.log import LogBatch, Mutation

from .manifest import StoreCorruptError

__all__ = ["WAL_MAGIC", "WalTail", "WriteAheadLog", "read_wal"]

WAL_MAGIC = b"RPROWAL1"
_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class WalTail:
    """What a WAL scan found: the committed prefix and any torn tail."""

    records: int
    committed_bytes: int
    total_bytes: int
    torn: bool = False
    reason: str = ""

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.committed_bytes

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "committed_bytes": self.committed_bytes,
            "total_bytes": self.total_bytes,
            "torn": self.torn,
            "torn_bytes": self.torn_bytes,
            "reason": self.reason,
        }


def read_wal(path: str | os.PathLike) -> tuple[list[LogBatch], WalTail]:
    """Scan a WAL file, returning committed batches and the tail report.

    Never raises for torn/truncated tails (the expected crash artifact);
    raises :class:`~repro.store.manifest.StoreCorruptError` only for
    damage a crash cannot explain — a corrupt magic with bytes *beyond*
    it, or a framed payload that passes its checksum yet fails to parse.
    """
    path = Path(path)
    if not path.exists():
        return [], WalTail(0, 0, 0, torn=False, reason="missing")
    data = path.read_bytes()
    total = len(data)
    if total < len(WAL_MAGIC):
        if data == WAL_MAGIC[:total]:
            return [], WalTail(0, 0, total, torn=True, reason="short magic")
        raise StoreCorruptError(f"WAL {path}: bad magic {data[:8]!r}")
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise StoreCorruptError(f"WAL {path}: bad magic {data[:8]!r}")
    batches: list[LogBatch] = []
    pos = len(WAL_MAGIC)
    while pos < total:
        if pos + _HEADER.size > total:
            return batches, WalTail(
                len(batches), pos, total, torn=True, reason="short header"
            )
        length, crc = _HEADER.unpack_from(data, pos)
        start = pos + _HEADER.size
        end = start + length
        if end > total:
            return batches, WalTail(
                len(batches), pos, total, torn=True, reason="short payload"
            )
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return batches, WalTail(
                len(batches), pos, total, torn=True, reason="crc mismatch"
            )
        try:
            batch = LogBatch.from_wire(json.loads(payload.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            # checksum passed yet the payload is not ours — not a torn
            # write but genuine corruption (or a foreign file)
            raise StoreCorruptError(
                f"WAL {path}: record at byte {pos} unparseable: {exc}"
            ) from exc
        batches.append(batch)
        pos = end
    return batches, WalTail(len(batches), pos, total, torn=False)


class WriteAheadLog:
    """Append side of the WAL (one writer per store directory).

    Opening scans the existing file, truncates any torn tail back to the
    last committed record, and positions at the end.  ``append`` is the
    durability point: the record is fsync'd before returning.
    """

    def __init__(self, path: str | os.PathLike, metrics: object = None) -> None:
        from repro.obs.metrics import as_metrics

        self.path = Path(path)
        self._metrics = as_metrics(metrics)
        self.recovered_tail: WalTail
        if self.path.exists():
            _, tail = read_wal(self.path)
            self.recovered_tail = tail
            self._fh = open(self.path, "r+b")
            if tail.torn:
                self._fh.truncate(max(tail.committed_bytes, 0))
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._metrics.counter("store.wal_truncations").inc()
            if tail.committed_bytes == 0 and tail.reason in (
                "missing",
                "short magic",
            ):
                self._fh.write(WAL_MAGIC)
                self._fh.flush()
                os.fsync(self._fh.fileno())
            self._fh.seek(0, os.SEEK_END)
        else:
            self.recovered_tail = WalTail(0, 0, 0, torn=False, reason="new")
            self._fh = open(self.path, "w+b")
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._appends = 0
        self._closed = False

    def append(self, version: int, mutations: Sequence[Mutation]) -> int:
        """Durably append one committed batch; returns bytes written."""
        if self._closed:
            raise StoreCorruptError(f"WAL {self.path} is closed")
        batch = LogBatch(version=int(version), mutations=tuple(mutations))
        payload = json.dumps(batch.to_wire(), separators=(",", ":")).encode(
            "utf-8"
        )
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._appends += 1
        self._metrics.counter("store.wal_appends").inc()
        self._metrics.counter("store.wal_bytes").inc(len(frame))
        return len(frame)

    def reset(self) -> None:
        """Drop every record (the post-checkpoint step); keeps the magic."""
        self._fh.seek(0)
        self._fh.truncate(0)
        self._fh.write(WAL_MAGIC)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.seek(0, os.SEEK_END)

    def tell(self) -> int:
        """Current file length in bytes (magic included)."""
        return self._fh.tell()

    @property
    def appends(self) -> int:
        """Batches appended through this writer instance."""
        return self._appends

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
            self._closed = True

    def stats(self) -> dict:
        """JSON-safe writer stats (``repro store inspect`` payload)."""
        return {
            "path": str(self.path),
            "bytes": self.tell() if not self._closed else None,
            "appends": self._appends,
            "recovered_tail": self.recovered_tail.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog({str(self.path)!r}, appends={self._appends})"

"""The store manifest — versioned metadata over one slab + WAL pair.

A store directory is three files::

    <dir>/manifest.json   this manifest (the commit point — written last)
    <dir>/data.slab       page-aligned raw array sections (no header)
    <dir>/wal.log         write-ahead log of mutation batches

The slab file itself is headerless: every byte of structure lives here —
per-array offset/shape/dtype/crc32 (:class:`SlabEntry`), the CSR
compositions over those arrays, the hypergraph cardinalities, the
``base_version`` the snapshot was taken at, and the recorded hot
s-line-graph entries.  Saving is atomic (tmp file + fsync + rename), so a
reader either sees the previous complete manifest or the new one, never a
torn mix — the recovery rules in ``docs/STORAGE.md`` build on exactly
this property.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "SlabEntry",
    "StoreCorruptError",
    "StoreError",
    "is_store_dir",
    "load_manifest",
    "save_manifest",
]

#: on-disk format revision; bumped on incompatible layout changes
FORMAT_VERSION = 1

#: the sniffable marker file — a directory containing it is a store
MANIFEST_NAME = "manifest.json"


class StoreError(Exception):
    """Base error for :mod:`repro.store` failures."""


class StoreCorruptError(StoreError):
    """The on-disk state violates the format invariants.

    Raised for unreadable manifests, checksum mismatches, WAL version
    gaps — anything recovery cannot (and must not) silently repair.
    Distinct from a *torn tail*, which is expected after a crash and is
    recovered automatically.
    """


@dataclass(frozen=True)
class SlabEntry:
    """One array's location inside the slab file.

    ``offset`` is page-aligned; ``crc32`` covers exactly the ``nbytes``
    payload bytes and is verified on demand (``repro store inspect
    --verify``), never on the O(1) open path.
    """

    name: str
    offset: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: str
    crc32: int

    @classmethod
    def from_dict(cls, data: dict) -> "SlabEntry":
        try:
            return cls(
                name=str(data["name"]),
                offset=int(data["offset"]),
                nbytes=int(data["nbytes"]),
                shape=tuple(int(d) for d in data["shape"]),
                dtype=str(data["dtype"]),
                crc32=int(data["crc32"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(f"bad slab entry {data!r}: {exc}") from exc


@dataclass
class Manifest:
    """Everything needed to reopen a store in O(1).

    ``csrs`` composes named arrays into CSRs: each value carries the
    array names of its buffers plus the scalar CSR metadata.  ``hot``
    records s-line graphs persisted at checkpoint time for cache
    rehydration.  ``base_version`` is the
    :class:`~repro.dynamic.hypergraph.DynamicHypergraph` version the
    snapshot was taken at; WAL records at or below it are stale (a
    checkpoint crashed before resetting the log) and are skipped on
    replay.
    """

    name: str
    base_version: int
    num_edges: int
    num_nodes: int
    num_incidences: int
    arrays: dict[str, SlabEntry] = field(default_factory=dict)
    csrs: dict[str, dict] = field(default_factory=dict)
    hot: list[dict] = field(default_factory=list)
    slab: str = "data.slab"
    wal: str = "wal.log"
    created_at: str = ""
    format_version: int = FORMAT_VERSION

    def to_dict(self) -> dict:
        out = asdict(self)
        out["arrays"] = {k: asdict(v) for k, v in self.arrays.items()}
        for entry in out["arrays"].values():
            entry["shape"] = list(entry["shape"])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        try:
            arrays = {
                str(k): SlabEntry.from_dict(v)
                for k, v in dict(data["arrays"]).items()
            }
            return cls(
                name=str(data["name"]),
                base_version=int(data["base_version"]),
                num_edges=int(data["num_edges"]),
                num_nodes=int(data["num_nodes"]),
                num_incidences=int(data["num_incidences"]),
                arrays=arrays,
                csrs={str(k): dict(v) for k, v in dict(data["csrs"]).items()},
                hot=[dict(h) for h in data.get("hot", [])],
                slab=str(data.get("slab", "data.slab")),
                wal=str(data.get("wal", "wal.log")),
                created_at=str(data.get("created_at", "")),
                format_version=int(data["format_version"]),
            )
        except StoreCorruptError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(f"bad manifest: {exc}") from exc

    def slab_bytes(self) -> int:
        """Total payload bytes across every recorded array."""
        return sum(e.nbytes for e in self.arrays.values())


def is_store_dir(path: str | os.PathLike) -> bool:
    """Whether ``path`` is a directory holding a store manifest."""
    p = Path(path)
    return p.is_dir() and (p / MANIFEST_NAME).is_file()


def save_manifest(directory: str | os.PathLike, manifest: Manifest) -> Path:
    """Atomically persist ``manifest`` into ``directory``.

    Write-to-tmp + fsync + rename: the rename is the commit point, and
    the directory is fsync'd afterwards so the rename itself is durable.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    _fsync_dir(directory)
    return target


def load_manifest(directory: str | os.PathLike) -> Manifest:
    """Load and validate the manifest of a store directory."""
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise StoreError(f"{directory} is not a store (no {MANIFEST_NAME})")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        raise StoreCorruptError(f"unreadable manifest {path}: {exc}") from exc
    manifest = Manifest.from_dict(data)
    if manifest.format_version > FORMAT_VERSION:
        raise StoreError(
            f"store format v{manifest.format_version} is newer than this "
            f"library supports (v{FORMAT_VERSION})"
        )
    return manifest


def _fsync_dir(directory: Path) -> None:
    """Durably record a rename in its parent directory (POSIX only)."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)

"""``repro.store`` — durable mmap-backed CSR store with WAL + warm restart.

The persistence layer under everything PRs 1–5 built: frozen CSR
structures live as page-aligned memory-mapped slabs
(:mod:`~repro.store.slab`) described by a versioned, checksummed
manifest (:mod:`~repro.store.manifest`); live mutations append to a
length-prefixed, crc32-checked, fsync'd write-ahead log
(:mod:`~repro.store.wal`); snapshots fold the log back into slabs
(:mod:`~repro.store.snapshot`); and :func:`open_store`
(:mod:`~repro.store.recover`) reopens the whole stack in O(1), replaying
only the WAL tail — the crash-safe warm restart behind
``repro serve --store``.

The format is specified in ``docs/STORAGE.md``.
"""

from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    SlabEntry,
    StoreCorruptError,
    StoreError,
    is_store_dir,
    load_manifest,
    save_manifest,
)
from .recover import (
    DurableDynamicHypergraph,
    RecoveryReport,
    StoreHandle,
    open_store,
    read_store,
)
from .slab import (
    PAGE_SIZE,
    MappedArray,
    MappedCSR,
    SlabFile,
    SlabWriter,
    csr_handle_of,
    handle_of,
)
from .snapshot import build_store, write_snapshot
from .wal import WAL_MAGIC, WalTail, WriteAheadLog, read_wal

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "PAGE_SIZE",
    "WAL_MAGIC",
    "DurableDynamicHypergraph",
    "Manifest",
    "MappedArray",
    "MappedCSR",
    "RecoveryReport",
    "SlabEntry",
    "SlabFile",
    "SlabWriter",
    "StoreCorruptError",
    "StoreError",
    "StoreHandle",
    "WalTail",
    "WriteAheadLog",
    "build_store",
    "csr_handle_of",
    "handle_of",
    "is_store_dir",
    "load_manifest",
    "open_store",
    "read_store",
    "read_wal",
    "save_manifest",
    "write_snapshot",
]
